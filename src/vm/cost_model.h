// Cycle-cost model for the virtualization event path.
//
// All costs are in CPU cycles on a `cpu_ghz` clock. The defaults are
// calibrated so the Baseline configuration reproduces the magnitudes of
// the paper's Table I / Fig. 5 on their testbed (Xeon E5-4610 v2, 2.3 GHz):
// a round trip guest->host->guest costs a few thousand cycles ("hundreds
// or thousands of cycles" [Adams & Agesen 2006] plus handler work), which
// at ~130k exits/s yields the paper's ~70% time-in-guest.
#pragma once

#include "base/units.h"

namespace es2 {

struct CostModel {
  double cpu_ghz = 2.3;

  // --- hardware VM transition costs -----------------------------------
  Cycles exit_transition = 1300;   // VM exit: state save + host resume
  Cycles entry_transition = 1100;  // VM entry: VMRESUME
  Cycles inject_interrupt = 500;   // extra entry work for event injection

  // --- host-side exit handling, per cause ------------------------------
  Cycles handle_io_instruction = 3000;   // decode + ioeventfd signal + wakeup
  Cycles handle_apic_access = 2000;      // emulate the EOI register write
  Cycles handle_external_interrupt = 1500;  // ack host interrupt, dispatch
  Cycles handle_hlt = 1800;              // kvm_vcpu_block bookkeeping
  Cycles handle_ept_violation = 7000;
  Cycles handle_other = 2500;

  // --- posted-interrupt hardware costs (exit-less path) ----------------
  Cycles pi_post_descriptor = 250;  // hypervisor: PIR write + ON test
  Cycles pi_notification_ipi = 400; // send the special notification IPI
  Cycles pi_sync_deliver = 350;     // in-guest PIR->vIRR sync + delivery
  Cycles pi_virtual_eoi = 150;      // virtual EOI handled by hardware

  // --- guest-side interrupt costs --------------------------------------
  Cycles guest_irq_dispatch = 900;  // IDT vectoring + handler prologue
  Cycles guest_eoi_write = 120;     // the EOI store itself (pre-trap)

  // --- background noise -------------------------------------------------
  // Sporadic exits the paper files under "Others" (EPT violations, MSR
  // accesses, pending-interrupt windows). Modeled as a periodic source
  // active only while the vCPU is in guest mode.
  SimDuration other_exit_period = usec(950);

  SimDuration ns(Cycles c) const { return cycles_to_ns(c, cpu_ghz); }
};

}  // namespace es2
