#include "vm/vcpu.h"

#include "base/assert.h"
#include "base/log.h"
#include "base/strings.h"
#include "metrics/metrics.h"
#include "profile/hooks.h"
#include "trace/hooks.h"
#include "vm/vm.h"

namespace es2 {

#if ES2_TRACE_ENABLED
namespace {
int core_of(const SimThread& thread) {
  return thread.core() != nullptr ? thread.core()->id() : -1;
}
}  // namespace
#endif

Vcpu::Vcpu(Vm& vm, int index, int pinned_core)
    : vm_(vm),
      sim_(vm.host().sim()),
      index_(index),
      thread_(sim_, format("%s/vcpu%d", vm.name().c_str(), index)),
      pinned_core_(pinned_core) {
  thread_.set_main([this] { run_loop(); });
  thread_.add_notifier([this](SimThread&, bool in) {
    if (in) {
      on_sched_in();
    } else {
      on_sched_out();
    }
  });
  vm.host().sched().add(thread_, pinned_core);
}

void Vcpu::start() {
  thread_.wake();
  arm_noise_timer();
}

// ---------------------------------------------------------------------------
// Execution plumbing
// ---------------------------------------------------------------------------

void Vcpu::timed_exec(bool guest, Cycles cost, std::function<void()> done) {
  const SimDuration ns = vm_.host().costs().ns(cost);
  thread_.exec(ns, [this, guest, ns, done = std::move(done)] {
    stats_.add_span(ns, guest);
    done();
  });
}

void Vcpu::guest_exec(Cycles cost, std::function<void()> done) {
  ES2_CHECK_MSG(mode_ == Mode::kGuest, "guest_exec while in host mode");
  timed_exec(/*guest=*/true, cost, std::move(done));
}

void Vcpu::host_exec(Cycles cost, std::function<void()> done) {
  ES2_CHECK_MSG(mode_ == Mode::kHost, "host_exec while in guest mode");
  timed_exec(/*guest=*/false, cost, std::move(done));
}

void Vcpu::suspend_guest_activity() {
  if (auto seg = thread_.suspend_active()) {
    suspended_.push_back(std::move(*seg));
  }
}

void Vcpu::continue_in_guest() {
  ES2_CHECK(mode_ == Mode::kGuest);
  if (!suspended_.empty()) {
    PausedSegment seg = std::move(suspended_.back());
    suspended_.pop_back();
    thread_.resume_segment(std::move(seg));
    return;
  }
  vm_.guest().run(index_);
}

// ---------------------------------------------------------------------------
// VM exit / entry
// ---------------------------------------------------------------------------

void Vcpu::vm_exit(ExitReason cause, Cycles handle_cost,
                   std::function<void()> then) {
  ES2_CHECK_MSG(mode_ == Mode::kGuest, "vm_exit while already in host mode");
  mode_ = Mode::kHost;
  stats_.record_exit(cause);
#if ES2_PROFILE_ENABLED
  Profiler::Scope prof_scope(active_profiler(sim_), ProfComp::kVcpuExit);
#endif
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    tr->emit(sim_.now(), TraceKind::kVmExit, vm_.id(), index_,
             core_of(thread_), static_cast<std::uint32_t>(cause));
  }
#endif
  const CostModel& c = vm_.host().costs();
  host_exec(c.exit_transition + handle_cost, std::move(then));
}

void Vcpu::vm_entry() {
  ES2_CHECK(mode_ == Mode::kHost);
  const CostModel& costs = vm_.host().costs();
  Cycles entry_cost = costs.entry_transition;

  int inject = -1;
  if (exitless_irqs()) {
    // PI: hardware syncs the descriptor as part of VM entry. ELI: the
    // physical APIC delivers pending vectors once the vCPU re-occupies
    // its core.
    vapic_.sync_pir();
  } else {
    inject = lapic_.deliverable();
    if (inject >= 0) entry_cost += costs.inject_interrupt;
  }

#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    tr->emit(sim_.now(), TraceKind::kVmEntry, vm_.id(), index_,
             core_of(thread_),
             inject >= 0 ? static_cast<std::uint32_t>(inject) : 0xffffffffu,
             inject >= 0 ? tr->vector_corr(vm_.id(), index_, inject) : 0);
  }
#endif
  host_exec(entry_cost, [this, inject] {
    mode_ = Mode::kGuest;
    if (inject >= 0) {
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(sim_)) {
        tr->emit(sim_.now(), TraceKind::kIrqInject, vm_.id(), index_,
                 core_of(thread_), static_cast<std::uint32_t>(inject),
                 tr->vector_corr(vm_.id(), index_, inject));
      }
#endif
      lapic_.begin_service(static_cast<Vector>(inject));
      dispatch_irq(static_cast<Vector>(inject));
      return;
    }
    if (exitless_irqs()) {
      const int v = vapic_.deliverable();
      if (v >= 0) {
        dispatch_irq(vapic_.deliver());
        return;
      }
    }
    continue_in_guest();
  });
}

void Vcpu::dispatch_irq(Vector vector) {
  ES2_CHECK(mode_ == Mode::kGuest);
  ++irqs_taken_;
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    // Consume the pending-delivery entry and open an in-service frame; the
    // matching EOI pops it (nested interrupts stack).
    const std::uint64_t corr = tr->take_vector_corr(vm_.id(), index_, vector);
    tr->push_service(vm_.id(), index_, corr);
    tr->emit(sim_.now(), TraceKind::kIrqDispatch, vm_.id(), index_,
             core_of(thread_), vector, corr);
  }
#endif
#if ES2_PROFILE_ENABLED
  // dispatch -> EOI is this vcpu's interrupt-service span (nested
  // interrupts fold into the outer span; the begin-on-open counts as
  // dropped rather than opening a second slot).
  if (Profiler* pf = active_profiler(sim_)) {
    pf->span_begin(ProfComp::kGuestIrqService,
                   static_cast<unsigned>(vm_.id() * 16 + index_), sim_.now());
  }
#endif
  const CostModel& c = vm_.host().costs();
  guest_exec(c.guest_irq_dispatch,
             [this, vector] { vm_.guest().take_interrupt(index_, vector); });
}

// ---------------------------------------------------------------------------
// Guest-facing primitives
// ---------------------------------------------------------------------------

void Vcpu::guest_io_kick(std::function<void()> notify,
                         std::function<void()> done) {
  const CostModel& c = vm_.host().costs();
  vm_exit(ExitReason::kIoInstruction, c.handle_io_instruction,
          [this, notify = std::move(notify), done = std::move(done)]() mutable {
            notify();  // ioeventfd signal in host context
            // Guest code after the kick instruction resumes post-entry.
            suspended_.push_back(PausedSegment{0, std::move(done)});
            vm_entry();
          });
}

void Vcpu::guest_eoi(std::function<void()> done) {
#if ES2_PROFILE_ENABLED
  if (Profiler* pf = active_profiler(sim_)) {
    pf->span_end(ProfComp::kGuestIrqService,
                 static_cast<unsigned>(vm_.id() * 16 + index_), sim_.now());
  }
#endif
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    // The EOI write closes the innermost in-service frame, whichever
    // mechanism (trap or virtual EOI) retires it below.
    tr->emit(sim_.now(), TraceKind::kEoi, vm_.id(), index_, core_of(thread_),
             0, tr->pop_service(vm_.id(), index_));
  }
#endif
  const CostModel& c = vm_.host().costs();
  if (exitless_irqs()) {
    // PI: exit-less virtual EOI (paper Fig. 2 step 5); ELI: the physical
    // EOI register is exposed to the guest. After the EOI retires,
    // hardware immediately delivers the next deliverable virtual interrupt,
    // nesting in front of the handler epilogue.
    guest_exec(c.pi_virtual_eoi, [this, done = std::move(done)]() mutable {
      const bool more = vapic_.eoi();
      if (more) {
        suspended_.push_back(PausedSegment{0, std::move(done)});
        dispatch_irq(vapic_.deliver());
        return;
      }
      done();
    });
    return;
  }
  // Baseline: the EOI write itself is a short guest op, then traps.
  guest_exec(c.guest_eoi_write, [this, done = std::move(done)]() mutable {
    const CostModel& costs = vm_.host().costs();
    vm_exit(ExitReason::kApicAccess, costs.handle_apic_access,
            [this, done = std::move(done)]() mutable {
              lapic_.eoi();  // any newly deliverable vector injects at entry
              suspended_.push_back(PausedSegment{0, std::move(done)});
              vm_entry();
            });
  });
}

void Vcpu::guest_halt() {
  const CostModel& c = vm_.host().costs();
  vm_exit(ExitReason::kHlt, c.handle_hlt, [this] {
    if (interrupt_pending()) {
      vm_entry();
      return;
    }
    halted_ = true;
    thread_.block();
    // Wake path: run_loop() performs the next VM entry.
  });
}

void Vcpu::irq_done() {
  ES2_CHECK(mode_ == Mode::kGuest);
  continue_in_guest();
}

// ---------------------------------------------------------------------------
// Host-facing interrupt delivery
// ---------------------------------------------------------------------------

bool Vcpu::exitless_irqs() const {
  return vm_.irq_mode() != InterruptVirtMode::kEmulatedLapic;
}

bool Vcpu::interrupt_pending() const {
  if (exitless_irqs()) {
    return vapic_.pi().has_posted() || vapic_.has_pending();
  }
  return lapic_.has_pending();
}

void Vcpu::deliver_interrupt(Vector vector) {
#if ES2_TRACE_ENABLED
  std::uint64_t corr = 0;
  if (Tracer* tr = active_tracer(sim_)) {
    // Adopt the journey of the MSI being delivered (set by the backend
    // around the synchronous router call); timer/IPI deliveries arrive
    // without one and start their own.
    corr = tr->take_inflight();
    if (corr == 0) corr = tr->begin_journey();
    tr->remember_vector(vm_.id(), index_, vector, corr);
  }
#endif
  if (vm_.irq_mode() == InterruptVirtMode::kExitlessDirect) {
    // ELI/DID-style deprivileging (§II-C): the physical Local-APIC delivers
    // straight through the guest IDT when the vCPU occupies its core —
    // no exit for delivery, no exit for the (exposed) EOI. The flip side:
    // the interrupt state lives in the core's physical APIC, so if the
    // vCPU is descheduled the interrupt stalls until it runs again, and
    // whoever holds the core meanwhile is exposed to misdelivery /
    // interruptibility loss — the reason ELI requires dedicated cores.
    vapic_.pi().post(vector);  // reuse the bitmap as the physical IRR
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(sim_)) {
      tr->emit(sim_.now(), TraceKind::kPiPost, vm_.id(), index_,
               core_of(thread_), vector, corr);
    }
#endif
    if (thread_.running() && mode_ == Mode::kGuest) {
      suspend_guest_activity();
      const CostModel& c = vm_.host().costs();
      guest_exec(c.pi_sync_deliver, [this] {
        vapic_.sync_pir();
        const int v = vapic_.deliverable();
        if (v >= 0) {
          dispatch_irq(vapic_.deliver());
        } else {
          continue_in_guest();
        }
      });
      return;
    }
    ++eli_stalls_;
    if (pinned_core_ >= 0) {
      const SimThread* tenant =
          vm_.host().sched().core(pinned_core_).current();
      // Another thread on our core while an interrupt sits in the physical
      // APIC: the hazard case the paper describes.
      if (tenant != nullptr && tenant != &thread_) ++eli_hazards_;
    }
    if (halted_) {
      halted_ = false;
      thread_.wake();
    }
    return;
  }

  if (vm_.irq_mode() == InterruptVirtMode::kPostedInterrupt) {
    const bool need_notification = vapic_.pi().post(vector);
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(sim_)) {
      tr->emit(sim_.now(),
               need_notification ? TraceKind::kPiPost : TraceKind::kPiCoalesced,
               vm_.id(), index_, core_of(thread_), vector, corr);
    }
#endif
    if (!need_notification) return;  // coalesced by the ON bit

    if (thread_.running() && mode_ == Mode::kGuest) {
      // Notification IPI received in guest mode: hardware syncs PIR->vIRR
      // and delivers through the guest IDT with NO exit (Fig. 2 steps 3-4).
      suspend_guest_activity();
      const CostModel& c = vm_.host().costs();
      guest_exec(c.pi_sync_deliver, [this] {
        vapic_.sync_pir();
        const int v = vapic_.deliverable();
        if (v >= 0) {
          dispatch_irq(vapic_.deliver());
        } else {
          continue_in_guest();
        }
      });
      return;
    }
    // Wakeup path: vCPU not in guest mode. PIR syncs at the next VM entry;
    // a halted vCPU is woken via the PI wakeup vector handler.
    if (halted_) {
      halted_ = false;
      thread_.wake();
    }
    return;
  }

  // Baseline: software-emulated LAPIC.
  lapic_.post(vector);
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    tr->emit(sim_.now(), TraceKind::kLapicPost, vm_.id(), index_,
             core_of(thread_), vector, corr);
  }
#endif
  if (thread_.running() && mode_ == Mode::kGuest) {
    // The emulated LAPIC cannot touch a running guest: it kicks the vCPU
    // with an IPI, forcing an EXTERNAL_INTERRUPT exit, and injects during
    // the subsequent VM entry (Fig. 1 steps 3-4).
    suspend_guest_activity();
    const CostModel& c = vm_.host().costs();
    vm_exit(ExitReason::kExternalInterrupt, c.handle_external_interrupt,
            [this] { vm_entry(); });
    return;
  }
  if (halted_) {
    halted_ = false;
    thread_.wake();
  }
  // Otherwise the vCPU is mid-exit or descheduled: injection happens for
  // free at its next VM entry (this is why the paper's Table I shows fewer
  // delivery exits than completion exits).
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

void Vcpu::run_loop() {
  if (halted_) {
    if (!interrupt_pending()) {
      thread_.block();
      return;
    }
    halted_ = false;
  }
  ES2_CHECK(mode_ == Mode::kHost);
  vm_entry();
}

void Vcpu::on_sched_out() {
  if (mode_ == Mode::kGuest) {
    // An involuntary preemption of guest code is itself mediated by a VM
    // exit in reality (the host timer tick / resched IPI lands as an
    // EXTERNAL_INTERRUPT exit before schedule() runs).
    stats_.record_exit(ExitReason::kExternalInterrupt);
    need_entry_on_resume_ = true;
  }
}

void Vcpu::on_sched_in() {
  if (!need_entry_on_resume_) return;
  need_entry_on_resume_ = false;
  ES2_CHECK(mode_ == Mode::kGuest);
  // Re-entering the guest after preemption requires a real VM entry, which
  // is also where pending interrupts posted while descheduled inject.
  suspend_guest_activity();
  mode_ = Mode::kHost;
  vm_entry();
}

// ---------------------------------------------------------------------------
// Background "Others" exits (EPT violations, MSR traps, ...)
// ---------------------------------------------------------------------------

void Vcpu::arm_noise_timer() {
  const SimDuration period = vm_.host().costs().other_exit_period;
  if (period <= 0) return;
  noise_timer_ = sim_.after(period, [this] { noise_tick(); });
}

void Vcpu::noise_tick() {
  if (thread_.running() && mode_ == Mode::kGuest &&
      thread_.has_active_segment()) {
    suspend_guest_activity();
    const CostModel& c = vm_.host().costs();
    const bool ept = (noise_seq_++ % 3) == 0;
    vm_exit(ept ? ExitReason::kEptViolation : ExitReason::kOther,
            ept ? c.handle_ept_violation : c.handle_other,
            [this] { vm_entry(); });
  }
  arm_noise_timer();
}

void Vcpu::register_metrics(MetricsRegistry& registry) {
  MetricLabels base = {{"vm", vm_.name()},
                       {"vcpu", format("%d", index_)}};
  for (int r = 0; r < kNumExitReasons; ++r) {
    const auto reason = static_cast<ExitReason>(r);
    if (reason == ExitReason::kCount) continue;
    MetricLabels labels = base;
    labels.emplace_back("cause", exit_reason_name(reason));
    registry.probe("vm.exits", std::move(labels), [this, reason] {
      return static_cast<double>(stats_.lifetime_count(reason));
    });
  }
  registry.probe("vm.exits.total", base, [this] {
    return static_cast<double>(stats_.lifetime_total());
  });
  registry.probe("vm.irqs_taken", base, [this] {
    return static_cast<double>(irqs_taken_);
  });
  if (vm_.irq_mode() == InterruptVirtMode::kExitlessDirect) {
    registry.probe("vm.eli.stalls", base, [this] {
      return static_cast<double>(eli_stalls_);
    });
    registry.probe("vm.eli.hazards", base, [this] {
      return static_cast<double>(eli_hazards_);
    });
  }
  registry.probe("apic.lapic.posts", base, [this] {
    return static_cast<double>(lapic_.posts());
  });
  registry.probe("apic.lapic.eois", base, [this] {
    return static_cast<double>(lapic_.eois());
  });
  registry.probe("apic.lapic.pending", base, [this] {
    return static_cast<double>(lapic_.pending_count());
  });
  registry.probe("apic.pi.posts", base, [this] {
    return static_cast<double>(vapic_.pi().posts());
  });
  registry.probe("apic.pi.notifications", base, [this] {
    return static_cast<double>(vapic_.pi().notifications());
  });
  registry.probe("apic.vapic.eois", base, [this] {
    return static_cast<double>(vapic_.eois());
  });
}

void Vcpu::snapshot_state(SnapshotWriter& w) const {
  w.put_u8(static_cast<std::uint8_t>(mode_));
  w.put_bool(halted_);
  w.put_bool(need_entry_on_resume_);
  w.put_u32(static_cast<std::uint32_t>(suspended_.size()));
  for (const PausedSegment& s : suspended_) w.put_i64(s.remaining);
  lapic_.snapshot_state(w);
  vapic_.snapshot_state(w);
  stats_.snapshot_state(w);
  w.put_i64(irqs_taken_);
  w.put_i64(eli_stalls_);
  w.put_i64(eli_hazards_);
  w.put_u64(noise_seq_);
  thread_.snapshot_state(w);
}

}  // namespace es2
