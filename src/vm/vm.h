// Virtual machine and host containers.
//
// `KvmHost` is the hypervisor-side world: the physical cores + CFS
// scheduler, the cycle-cost model, the MSI router, and the VMs. `Vm` groups
// vCPUs, the guest-OS binding, and the per-guest LAPIC timer emulation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/cfs.h"
#include "sim/simulator.h"
#include "vm/cost_model.h"
#include "vm/guest_cpu.h"
#include "vm/irq_router.h"
#include "vm/vcpu.h"

namespace es2 {

class KvmHost;

class Vm : public Snapshottable {
 public:
  /// `pinned_cores[i]` pins vCPU i (-1 leaves it migratable).
  Vm(KvmHost& host, int id, std::string name, std::vector<int> pinned_cores,
     InterruptVirtMode irq_mode);
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  KvmHost& host() { return host_; }
  InterruptVirtMode irq_mode() const { return irq_mode_; }

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Vcpu& vcpu(int i);

  /// Binds the guest OS model. Must happen before start().
  void set_guest(GuestCpu* guest) { guest_ = guest; }
  GuestCpu& guest();

  /// Guest LAPIC timer frequency (0 disables). Default 250 Hz, like a
  /// CONFIG_HZ_250 Linux guest.
  void set_timer_hz(int hz) { timer_hz_ = hz; }

  /// Starts all vCPUs and the guest timer emulation.
  void start();

  /// Opens a fresh measurement window on every vCPU (post-warmup).
  void begin_stats_window();

  /// Sum of all vCPU exit statistics.
  ExitStats aggregate_stats() const;

  /// Serializes the VM's timer config plus every vCPU's state.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void arm_guest_timer(int vcpu_index);
  void guest_timer_tick(int vcpu_index, SimDuration period);

  KvmHost& host_;
  int id_;
  std::string name_;
  InterruptVirtMode irq_mode_;
  GuestCpu* guest_ = nullptr;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  int timer_hz_ = 250;
  std::vector<EventHandle> timer_events_;
};

class KvmHost {
 public:
  KvmHost(Simulator& sim, int num_cores, CostModel costs = {},
          CfsParams cfs_params = {});
  KvmHost(const KvmHost&) = delete;
  KvmHost& operator=(const KvmHost&) = delete;

  Simulator& sim() { return sim_; }
  CfsScheduler& sched() { return sched_; }
  const CostModel& costs() const { return costs_; }
  IrqRouter& router() { return router_; }

  Vm& create_vm(std::string name, std::vector<int> pinned_cores,
                InterruptVirtMode irq_mode);

  int num_vms() const { return static_cast<int>(vms_.size()); }
  Vm& vm(int i);

 private:
  Simulator& sim_;
  CostModel costs_;
  CfsScheduler sched_;
  IrqRouter router_;
  std::vector<std::unique_ptr<Vm>> vms_;
};

}  // namespace es2
