#include "vm/exit.h"

#include "snapshot/snapshot.h"

#include "base/assert.h"
#include "base/strings.h"

namespace es2 {

const char* exit_reason_name(ExitReason reason) {
  switch (reason) {
    case ExitReason::kExternalInterrupt: return "external_interrupt";
    case ExitReason::kApicAccess: return "apic_access";
    case ExitReason::kIoInstruction: return "io_instruction";
    case ExitReason::kHlt: return "hlt";
    case ExitReason::kEptViolation: return "ept_violation";
    case ExitReason::kPendingInterrupt: return "pending_interrupt";
    case ExitReason::kMsrAccess: return "msr_access";
    case ExitReason::kOther: return "other";
    case ExitReason::kCount: break;
  }
  ES2_UNREACHABLE("bad exit reason");
}

bool is_other_bucket(ExitReason reason) {
  switch (reason) {
    case ExitReason::kExternalInterrupt:
    case ExitReason::kApicAccess:
    case ExitReason::kIoInstruction:
      return false;
    default:
      return true;
  }
}

void ExitStats::begin_window(SimTime now) {
  window_start_ = now;
  window_base_ = counts_;
  window_total_base_ = total_;
  spans_.reset();
}

double ExitStats::rate(ExitReason reason, SimTime now) const {
  const SimDuration w = window(now);
  if (w <= 0) return 0.0;
  return static_cast<double>(count(reason)) / to_seconds(w);
}

double ExitStats::total_rate(SimTime now) const {
  const SimDuration w = window(now);
  if (w <= 0) return 0.0;
  return static_cast<double>(total()) / to_seconds(w);
}

double ExitStats::others_rate(SimTime now) const {
  const SimDuration w = window(now);
  if (w <= 0) return 0.0;
  std::int64_t others = 0;
  for (int i = 0; i < kNumExitReasons; ++i) {
    const auto reason = static_cast<ExitReason>(i);
    if (is_other_bucket(reason)) others += count(reason);
  }
  return static_cast<double>(others) / to_seconds(w);
}

void ExitStats::merge(const ExitStats& other) {
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
    window_base_[i] += other.window_base_[i];
  }
  total_ += other.total_;
  window_total_base_ += other.window_total_base_;
  // Keep the earliest window start so rates stay conservative.
  if (other.window_start_ < window_start_ || window_start_ == 0) {
    window_start_ = other.window_start_;
  }
  spans_.add(other.spans_.guest_time(), true);
  spans_.add(other.spans_.host_time(), false);
}

std::string ExitStats::summary(SimTime now) const {
  std::string out = format("exits/s: total=%.0f", total_rate(now));
  for (int i = 0; i < kNumExitReasons; ++i) {
    const auto reason = static_cast<ExitReason>(i);
    if (count(reason) == 0) continue;
    out += format(" %s=%.0f", exit_reason_name(reason), rate(reason, now));
  }
  out += format(" TIG=%.1f%%", tig_percent());
  return out;
}

void ExitStats::snapshot_state(SnapshotWriter& w) const {
  for (int i = 0; i < kNumExitReasons; ++i)
    w.put_i64(counts_[static_cast<std::size_t>(i)]);
  for (int i = 0; i < kNumExitReasons; ++i)
    w.put_i64(window_base_[static_cast<std::size_t>(i)]);
  w.put_i64(total_);
  w.put_i64(window_total_base_);
  w.put_i64(window_start_);
  w.put_i64(spans_.guest_time());
  w.put_i64(spans_.host_time());
}

}  // namespace es2
