// VM-exit taxonomy and perf-kvm-style accounting.
//
// The paper's measurements (Table I, Fig. 5) are breakdowns of VM exits by
// cause plus the time-in-guest (TIG) percentage. `ExitStats` reproduces the
// perf-kvm view: a counter per cause and guest/host time integration, with
// a resettable measurement window.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "base/units.h"
#include "stats/meters.h"

namespace es2 {

class SnapshotWriter;

enum class ExitReason : int {
  kExternalInterrupt = 0,  // interrupt arrived while in guest mode (IPI kick,
                           // host timer tick, …)
  kApicAccess,             // guest Local-APIC access trapped (EOI write)
  kIoInstruction,          // guest I/O request notification (virtqueue kick)
  kHlt,                    // guest executed HLT
  kEptViolation,           // two-dimensional paging fault
  kPendingInterrupt,       // interrupt-window exit
  kMsrAccess,              // trapped MSR read/write
  kOther,
  kCount,
};

inline constexpr int kNumExitReasons = static_cast<int>(ExitReason::kCount);

const char* exit_reason_name(ExitReason reason);

/// True for causes the paper folds into its "Others" bucket.
bool is_other_bucket(ExitReason reason);

class ExitStats {
 public:
  void record_exit(ExitReason reason) {
    counts_[static_cast<size_t>(reason)] += 1;
    ++total_;
  }

  /// Accrues vCPU time spent in guest or host context.
  void add_span(SimDuration span, bool in_guest) { spans_.add(span, in_guest); }

  /// Starts a measurement window at `now` (typically after warmup).
  void begin_window(SimTime now);

  std::int64_t count(ExitReason reason) const {
    return counts_[static_cast<size_t>(reason)] -
           window_base_[static_cast<size_t>(reason)];
  }
  std::int64_t total() const { return total_ - window_total_base_; }

  /// Cumulative counts since construction, ignoring the measurement
  /// window — what the metrics registry samples (monotone time-series).
  std::int64_t lifetime_count(ExitReason reason) const {
    return counts_[static_cast<size_t>(reason)];
  }
  std::int64_t lifetime_total() const { return total_; }

  /// Exits per second for one cause over the window ending at `now`.
  double rate(ExitReason reason, SimTime now) const;
  double total_rate(SimTime now) const;

  /// Paper-style grouping: delivery/completion/io/others rates.
  double others_rate(SimTime now) const;

  /// Time-in-guest percentage over accounted vCPU time in the window.
  double tig_percent() const { return spans_.tig_percent(); }
  SimDuration guest_time() const { return spans_.guest_time(); }
  SimDuration host_time() const { return spans_.host_time(); }

  void merge(const ExitStats& other);

  std::string summary(SimTime now) const;

  /// Serializes lifetime counts, window bases and guest/host time spans.
  void snapshot_state(SnapshotWriter& w) const;

 private:
  SimDuration window(SimTime now) const { return now - window_start_; }

  std::array<std::int64_t, kNumExitReasons> counts_{};
  std::array<std::int64_t, kNumExitReasons> window_base_{};
  std::int64_t total_ = 0;
  std::int64_t window_total_base_ = 0;
  SimTime window_start_ = 0;
  SpanAccumulator spans_;
};

}  // namespace es2
