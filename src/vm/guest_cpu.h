// Interface between the virtual CPU layer and the guest OS model.
//
// The VM layer is guest-agnostic (the paper's "no guest modification"
// property holds by construction: nothing in src/es2 touches anything
// behind this interface). A guest implementation drives execution by
// calling back into `Vcpu` primitives (guest_exec / guest_io_kick /
// guest_eoi / guest_halt / irq_done).
#pragma once

#include "apic/vectors.h"

namespace es2 {

class GuestCpu {
 public:
  virtual ~GuestCpu() = default;

  /// The vCPU is in guest mode with no current activity: the guest decides
  /// what to run (task work, idle HLT, …) by invoking Vcpu primitives. Must
  /// synchronously start some activity.
  virtual void run(int vcpu_index) = 0;

  /// An interrupt was delivered through the guest IDT on this vCPU. The
  /// guest runs its handler (hardirq -> EOI -> softirq) and finally calls
  /// Vcpu::irq_done().
  virtual void take_interrupt(int vcpu_index, Vector vector) = 0;
};

}  // namespace es2
