// MSI interrupt routing — the kvm_set_msi_irq equivalent.
//
// Devices (vhost-net backends) raise MSI/MSI-X interrupts toward a VM.
// The router resolves the destination vCPU from the message (the guest's
// affinity setting) and hands the vector to that vCPU's delivery mechanism.
//
// This is exactly where the paper's ES2 hooks in (§V-C): an interceptor may
// rewrite the destination of *device* interrupts before resolution. The
// router enforces the safety rule itself: non-device vectors (timer, IPIs)
// are never offered to the interceptor.
#pragma once

#include <cstdint>
#include <functional>

#include "apic/vectors.h"

namespace es2 {

class Vm;

class IrqRouter {
 public:
  /// Returns the new destination vCPU index, or a negative value to keep
  /// the message's own destination.
  using Interceptor = std::function<int(Vm&, const MsiMessage&)>;

  void set_interceptor(Interceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }
  bool has_interceptor() const { return static_cast<bool>(interceptor_); }

  /// Routes one MSI to `vm`. Applies the interceptor (device vectors only),
  /// resolves lowest-priority arbitration, and delivers.
  void deliver_msi(Vm& vm, const MsiMessage& msg);

  std::int64_t delivered() const { return delivered_; }
  std::int64_t redirected() const { return redirected_; }

 private:
  Interceptor interceptor_;
  std::int64_t delivered_ = 0;
  std::int64_t redirected_ = 0;
  std::uint64_t lowest_prio_rr_ = 0;
};

}  // namespace es2
