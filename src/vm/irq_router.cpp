#include "vm/irq_router.h"

#include "base/assert.h"
#include "vm/vm.h"

namespace es2 {

void IrqRouter::deliver_msi(Vm& vm, const MsiMessage& msg) {
  ES2_CHECK(vm.num_vcpus() > 0);
  int dest = msg.dest_vcpu;

  // ES2 interception point (kvm_set_msi_irq). Only device vectors are
  // offered for redirection: timer/IPI vectors are generated for specific
  // vCPUs and redirecting them could crash the guest.
  if (interceptor_ && is_device_vector(msg.vector)) {
    const int redirect = interceptor_(vm, msg);
    if (redirect >= 0) {
      ES2_CHECK(redirect < vm.num_vcpus());
      if (redirect != dest) ++redirected_;
      dest = redirect;
    }
  } else if (msg.mode == DeliveryMode::kLowestPriority && vm.num_vcpus() > 1) {
    // Without ES2, lowest-priority arbitration follows the guest affinity
    // hint in the MSI address; hardware may rotate among equal-priority
    // candidates, but KVM's implementation keeps the programmed target.
    dest = msg.dest_vcpu;
  }

  ES2_CHECK_MSG(dest >= 0 && dest < vm.num_vcpus(),
                "MSI destination out of range");
  ++delivered_;
  vm.vcpu(dest).deliver_interrupt(msg.vector);
}

}  // namespace es2
