// Virtual CPU: the guest/host mode state machine that generates VM exits.
//
// A `Vcpu` owns one schedulable `SimThread` and orchestrates the virtual
// I/O event path of the paper's Fig. 1:
//
//  * guest I/O request  -> IO_INSTRUCTION exit -> notify backend -> entry;
//  * interrupt delivery -> (Baseline) kick IPI -> EXTERNAL_INTERRUPT exit ->
//    injection at VM entry,    (PI) exit-less PIR post + in-guest sync;
//  * interrupt completion -> (Baseline) EOI trap -> APIC_ACCESS exit,
//    (PI) exit-less virtual EOI.
//
// Guest work arrives as preemptible segments; an interrupt suspends the
// active segment onto a stack, runs the handler chain, and resumes — so
// nested interrupts and injection-at-entry fall out naturally.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apic/lapic.h"
#include "apic/vapic.h"
#include "apic/vectors.h"
#include "cpu/thread.h"
#include "sim/simulator.h"
#include "vm/cost_model.h"
#include "vm/exit.h"
#include "vm/guest_cpu.h"

namespace es2 {

class MetricsRegistry;
class Vm;

/// How virtual interrupts reach this VM (the paper's Baseline vs PI axis,
/// plus the §II-C related-work alternative).
enum class InterruptVirtMode {
  kEmulatedLapic,     // software LAPIC: kick-IPI exits + EOI trap exits
  kPostedInterrupt,   // hardware vAPIC page: exit-less delivery/completion
  kExitlessDirect,    // ELI/DID-style: physical-LAPIC deprivileging — exit-
                      // less to a RUNNING vCPU, but interrupt state lives in
                      // the core's physical APIC, so a descheduled target
                      // stalls delivery and hazards the core's next tenant
};

class Vcpu {
 public:
  Vcpu(Vm& vm, int index, int pinned_core);
  Vcpu(const Vcpu&) = delete;
  Vcpu& operator=(const Vcpu&) = delete;

  /// Makes the vCPU runnable; it performs its first VM entry when first
  /// scheduled.
  void start();

  int index() const { return index_; }
  Vm& vm() { return vm_; }
  SimThread& thread() { return thread_; }
  const SimThread& thread() const { return thread_; }

  /// True while the vCPU thread occupies a physical core (paper's "online").
  bool online() const { return thread_.running(); }
  bool in_guest() const { return mode_ == Mode::kGuest; }
  bool halted() const { return halted_; }

  // --- guest-facing primitives (invoked by the GuestCpu implementation) --

  /// Runs `cost` cycles of unprivileged guest work, then `done`.
  void guest_exec(Cycles cost, std::function<void()> done);

  /// Guest I/O request notification (virtqueue kick): traps with an
  /// IO_INSTRUCTION exit; `notify` runs in host context (the ioeventfd
  /// signal), then the vCPU re-enters and `done` continues guest code.
  void guest_io_kick(std::function<void()> notify, std::function<void()> done);

  /// End-of-interrupt write from the guest's handler. Baseline: APIC_ACCESS
  /// exit; PI: exit-less virtual EOI. `done` continues handler epilogue
  /// (softirq part) in guest mode.
  void guest_eoi(std::function<void()> done);

  /// Guest went idle: HLT exit; the thread blocks until an interrupt.
  void guest_halt();

  /// The guest finished an interrupt context (after EOI + softirq); the
  /// vCPU resumes whatever was interrupted.
  void irq_done();

  // --- host-facing ------------------------------------------------------

  /// Delivers a virtual interrupt via the configured mechanism. Called by
  /// the IRQ router (device MSIs) or the guest timer emulation.
  void deliver_interrupt(Vector vector);

  /// True if an undelivered interrupt is pending in IRR or PIR.
  bool interrupt_pending() const;

  ExitStats& stats() { return stats_; }
  const ExitStats& stats() const { return stats_; }

  /// Interrupts taken by this vCPU (through the guest IDT) so far.
  std::int64_t irqs_taken() const { return irqs_taken_; }

  /// ELI/DID mode only: deliveries that stalled because the target vCPU
  /// was descheduled (its state is captive in the physical LAPIC).
  std::int64_t eli_stalls() const { return eli_stalls_; }
  /// ELI/DID mode only: stalled deliveries that occurred while ANOTHER
  /// VM's vCPU occupied the core — the paper's interruptibility-loss /
  /// misdelivery hazard (§II-C).
  std::int64_t eli_hazards() const { return eli_hazards_; }

  EmulatedLapic& lapic() { return lapic_; }
  VApicPage& vapic() { return vapic_; }

  /// True when interrupt delivery/completion need no VM exits (PI or
  /// ELI-style deprivileging).
  bool exitless_irqs() const;

  /// Registers this vCPU's telemetry — exit counts by cause, interrupts
  /// taken, LAPIC/PI activity — as read-only probes over the counters
  /// above (labels vm=<name>, vcpu=<index>). Zero hot-path cost.
  void register_metrics(MetricsRegistry& registry);

  /// Serializes mode, interrupt state (LAPIC/vAPIC), exit statistics and
  /// the vCPU thread's scheduling state. Embedded in the owning Vm's
  /// snapshot section.
  void snapshot_state(SnapshotWriter& w) const;

 private:
  enum class Mode { kHost, kGuest };

  void run_loop();  // thread main body
  void host_exec(Cycles cost, std::function<void()> done);
  void timed_exec(bool guest, Cycles cost, std::function<void()> done);

  /// Transitions guest->host for `cause`, runs handler work, then `then`.
  void vm_exit(ExitReason cause, Cycles handle_cost, std::function<void()> then);
  void vm_entry();

  /// Resumes the innermost suspended guest activity, or asks the guest OS
  /// for new work.
  void continue_in_guest();

  /// Suspends the active guest segment (if any) onto the stack.
  void suspend_guest_activity();

  /// Dispatches `vector` through the guest IDT (dispatch cost + handler).
  void dispatch_irq(Vector vector);

  void on_sched_in();
  void on_sched_out();
  void arm_noise_timer();
  void noise_tick();

  Vm& vm_;
  Simulator& sim_;
  int index_;
  SimThread thread_;
  Mode mode_ = Mode::kHost;
  bool halted_ = false;
  bool need_entry_on_resume_ = false;
  std::vector<PausedSegment> suspended_;
  EmulatedLapic lapic_;
  VApicPage vapic_;
  ExitStats stats_;
  std::int64_t irqs_taken_ = 0;
  std::int64_t eli_stalls_ = 0;
  std::int64_t eli_hazards_ = 0;
  int pinned_core_ = -1;
  std::uint64_t noise_seq_ = 0;
  EventHandle noise_timer_;
};

}  // namespace es2
