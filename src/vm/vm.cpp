#include "vm/vm.h"

#include "base/assert.h"

namespace es2 {

Vm::Vm(KvmHost& host, int id, std::string name, std::vector<int> pinned_cores,
       InterruptVirtMode irq_mode)
    : host_(host), id_(id), name_(std::move(name)), irq_mode_(irq_mode) {
  ES2_CHECK_MSG(!pinned_cores.empty(), "a VM needs at least one vCPU");
  vcpus_.reserve(pinned_cores.size());
  for (size_t i = 0; i < pinned_cores.size(); ++i) {
    vcpus_.push_back(
        std::make_unique<Vcpu>(*this, static_cast<int>(i), pinned_cores[i]));
  }
  timer_events_.resize(vcpus_.size());
}

Vcpu& Vm::vcpu(int i) {
  ES2_CHECK(i >= 0 && i < num_vcpus());
  return *vcpus_[static_cast<size_t>(i)];
}

GuestCpu& Vm::guest() {
  ES2_CHECK_MSG(guest_ != nullptr, "VM has no guest OS bound");
  return *guest_;
}

void Vm::start() {
  ES2_CHECK_MSG(guest_ != nullptr, "bind a guest before starting the VM");
  for (auto& vcpu : vcpus_) vcpu->start();
  if (timer_hz_ > 0) {
    for (int i = 0; i < num_vcpus(); ++i) arm_guest_timer(i);
  }
}

void Vm::arm_guest_timer(int vcpu_index) {
  const SimDuration period = kSecond / timer_hz_;
  // Stagger per-vCPU timers like real LAPIC timers drift apart.
  const SimDuration phase =
      period * (vcpu_index + 1) / (num_vcpus() + 1);
  timer_events_[static_cast<size_t>(vcpu_index)] =
      host_.sim().after(phase, [this, vcpu_index, period] {
        guest_timer_tick(vcpu_index, period);
      });
}

void Vm::guest_timer_tick(int vcpu_index, SimDuration period) {
  // The guest timer is a per-vCPU interrupt: KVM injects it directly
  // at its affine vCPU; it never passes the MSI router, so ES2
  // redirection can never touch it (paper §V-C).
  vcpu(vcpu_index).deliver_interrupt(kLocalTimerVector);
  timer_events_[static_cast<size_t>(vcpu_index)] =
      host_.sim().after(period, [this, vcpu_index, period] {
        guest_timer_tick(vcpu_index, period);
      });
}

void Vm::begin_stats_window() {
  const SimTime now = host_.sim().now();
  for (auto& vcpu : vcpus_) vcpu->stats().begin_window(now);
}

ExitStats Vm::aggregate_stats() const {
  ExitStats total;
  for (const auto& vcpu : vcpus_) total.merge(vcpu->stats());
  return total;
}

KvmHost::KvmHost(Simulator& sim, int num_cores, CostModel costs,
                 CfsParams cfs_params)
    : sim_(sim), costs_(costs), sched_(sim, num_cores, cfs_params) {}

Vm& KvmHost::create_vm(std::string name, std::vector<int> pinned_cores,
                       InterruptVirtMode irq_mode) {
  vms_.push_back(std::make_unique<Vm>(*this, num_vms(), std::move(name),
                                      std::move(pinned_cores), irq_mode));
  return *vms_.back();
}

Vm& KvmHost::vm(int i) {
  ES2_CHECK(i >= 0 && i < num_vms());
  return *vms_[static_cast<size_t>(i)];
}

void Vm::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(id_));
  w.put_u32(static_cast<std::uint32_t>(timer_hz_));
  w.put_u32(static_cast<std::uint32_t>(vcpus_.size()));
  for (const auto& vcpu : vcpus_) vcpu->snapshot_state(w);
}

}  // namespace es2
