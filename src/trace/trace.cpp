#include "trace/trace.h"

#include "base/assert.h"

namespace es2 {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kVmExit: return "vm_exit";
    case TraceKind::kVmEntry: return "vm_entry";
    case TraceKind::kIrqInject: return "irq_inject";
    case TraceKind::kKick: return "kick";
    case TraceKind::kKickSuppressed: return "kick_suppressed";
    case TraceKind::kKickDrop: return "kick_drop";
    case TraceKind::kWireRx: return "wire_rx";
    case TraceKind::kMsiRaise: return "msi_raise";
    case TraceKind::kMsiDrop: return "msi_drop";
    case TraceKind::kIrqSuppressed: return "irq_suppressed";
    case TraceKind::kPiPost: return "pi_post";
    case TraceKind::kPiCoalesced: return "pi_coalesced";
    case TraceKind::kLapicPost: return "lapic_post";
    case TraceKind::kIrqDispatch: return "irq_dispatch";
    case TraceKind::kEoi: return "eoi";
    case TraceKind::kSchedIn: return "sched_in";
    case TraceKind::kSchedOut: return "sched_out";
    case TraceKind::kWorkerWake: return "worker_wake";
    case TraceKind::kWorkerTurn: return "worker_turn";
    case TraceKind::kNotifyEnable: return "notify_enable";
    case TraceKind::kNotifyDisable: return "notify_disable";
    case TraceKind::kNapiPoll: return "napi_poll";
    case TraceKind::kWatchdogRecover: return "watchdog_recover";
    case TraceKind::kFaultInject: return "fault_inject";
    case TraceKind::kRingFault: return "ring_fault";
    case TraceKind::kQueueReset: return "queue_reset";
    case TraceKind::kDeviceReset: return "device_reset";
    case TraceKind::kRenegotiate: return "renegotiate";
    case TraceKind::kWorkerCrash: return "worker_crash";
    case TraceKind::kWorkerRestart: return "worker_restart";
    case TraceKind::kRecovered: return "recovered";
    case TraceKind::kCount: break;
  }
  return "?";
}

Tracer::Tracer(TraceOptions options)
    : capacity_(options.capacity > 0 ? options.capacity : 1) {}

void Tracer::grow() {
  // Back the next ring region with a fresh slab. Only reached while the
  // ring warms up (emit indices are sequential modulo capacity, so once
  // every slot has been written the ring recycles slabs forever).
  const std::size_t remaining = capacity_ - allocated_;
  const std::size_t size = remaining < kSlabSize ? remaining : kSlabSize;
  slabs_.push_back(std::make_unique<TraceRecord[]>(kSlabSize));
  allocated_ += size;
}

void Tracer::emit(SimTime t, TraceKind kind, int vm, int vcpu, int cpu,
                  std::uint32_t arg, std::uint64_t corr) {
  if (!enabled_) return;
  const std::size_t index = static_cast<std::size_t>(total_ % capacity_);
  if (index >= allocated_) grow();
  TraceRecord& r = slot(index);
  r.t = t;
  r.corr = corr;
  r.arg = arg;
  r.kind = kind;
  r.cpu = static_cast<std::int8_t>(cpu);
  r.vm = static_cast<std::int8_t>(vm);
  r.vcpu = static_cast<std::int8_t>(vcpu);
  ++total_;
  if (corr != 0) last_corr_ = corr;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  const std::uint64_t held = total_ < capacity_ ? total_ : capacity_;
  out.reserve(static_cast<std::size_t>(held));
  // Oldest surviving record first: once wrapped, that is the slot the next
  // emit would overwrite.
  const std::uint64_t first = total_ - held;
  for (std::uint64_t i = 0; i < held; ++i) {
    const std::size_t index =
        static_cast<std::size_t>((first + i) % capacity_);
    out.push_back(slabs_[index / kSlabSize][index % kSlabSize]);
  }
  return out;
}

void Tracer::remember_vector(int vm, int vcpu, int vector,
                             std::uint64_t corr) {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0 || vector < 0 || vector >= kNumVectors) return;
  const std::size_t index =
      static_cast<std::size_t>(ctx) * kNumVectors + static_cast<std::size_t>(vector);
  if (index >= vector_corr_.size()) vector_corr_.resize(index + 1, 0);
  vector_corr_[index] = corr;
}

std::uint64_t Tracer::vector_corr(int vm, int vcpu, int vector) const {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0 || vector < 0 || vector >= kNumVectors) return 0;
  const std::size_t index =
      static_cast<std::size_t>(ctx) * kNumVectors + static_cast<std::size_t>(vector);
  return index < vector_corr_.size() ? vector_corr_[index] : 0;
}

std::uint64_t Tracer::take_vector_corr(int vm, int vcpu, int vector) {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0 || vector < 0 || vector >= kNumVectors) return 0;
  const std::size_t index =
      static_cast<std::size_t>(ctx) * kNumVectors + static_cast<std::size_t>(vector);
  if (index >= vector_corr_.size()) return 0;
  const std::uint64_t corr = vector_corr_[index];
  vector_corr_[index] = 0;
  return corr;
}

void Tracer::push_service(int vm, int vcpu, std::uint64_t corr) {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0) return;
  if (static_cast<std::size_t>(ctx) >= service_.size()) {
    service_.resize(static_cast<std::size_t>(ctx) + 1);
  }
  service_[static_cast<std::size_t>(ctx)].push_back(corr);
}

std::uint64_t Tracer::current_service(int vm, int vcpu) const {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0 || static_cast<std::size_t>(ctx) >= service_.size()) return 0;
  const auto& stack = service_[static_cast<std::size_t>(ctx)];
  return stack.empty() ? 0 : stack.back();
}

std::uint64_t Tracer::pop_service(int vm, int vcpu) {
  const int ctx = ctx_index(vm, vcpu);
  if (ctx < 0 || static_cast<std::size_t>(ctx) >= service_.size()) return 0;
  auto& stack = service_[static_cast<std::size_t>(ctx)];
  if (stack.empty()) return 0;
  const std::uint64_t corr = stack.back();
  stack.pop_back();
  return corr;
}

}  // namespace es2
