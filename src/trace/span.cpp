#include "trace/span.h"

#include <unordered_map>

namespace es2 {

namespace {

void note(SimTime& landmark, SimTime t) {
  if (landmark < 0) landmark = t;
}

}  // namespace

SpanBreakdown build_spans(const std::vector<TraceRecord>& records,
                          std::vector<JourneySpan>* spans_out) {
  std::vector<JourneySpan> spans;
  std::unordered_map<std::uint64_t, std::size_t> by_corr;
  by_corr.reserve(records.size() / 4 + 1);

  for (const TraceRecord& r : records) {
    if (r.corr == 0) continue;
    auto [it, inserted] = by_corr.try_emplace(r.corr, spans.size());
    if (inserted) {
      spans.emplace_back();
      spans.back().corr = r.corr;
    }
    JourneySpan& span = spans[it->second];
    // Tracked independently: a journey's early records are backend-side
    // (vm known, vcpu not); the vcpu becomes known at dispatch.
    if (span.vm < 0 && r.vm >= 0) span.vm = r.vm;
    if (span.vcpu < 0 && r.vcpu >= 0) span.vcpu = r.vcpu;
    switch (r.kind) {
      case TraceKind::kKick:
      case TraceKind::kWireRx:
        note(span.kick, r.t);
        break;
      case TraceKind::kWorkerTurn:
        note(span.backend, r.t);
        break;
      case TraceKind::kMsiRaise:
      case TraceKind::kPiPost:
      case TraceKind::kLapicPost:
        note(span.msi, r.t);
        break;
      case TraceKind::kIrqDispatch:
        note(span.dispatch, r.t);
        break;
      case TraceKind::kEoi:
        note(span.eoi, r.t);
        break;
      default:
        break;
    }
  }

  SpanBreakdown b;
  b.journeys = static_cast<std::int64_t>(spans.size());
  for (const JourneySpan& s : spans) {
    if (s.complete()) {
      ++b.complete;
    } else {
      ++b.partial;
    }
    if (s.kick >= 0 && s.backend >= s.kick) {
      b.kick_to_backend.record(s.backend - s.kick);
    }
    if (s.backend >= 0 && s.msi >= s.backend) {
      b.backend_to_msi.record(s.msi - s.backend);
    }
    if (s.msi >= 0 && s.dispatch >= s.msi) {
      b.msi_to_dispatch.record(s.dispatch - s.msi);
    }
    if (s.dispatch >= 0 && s.eoi >= s.dispatch) {
      b.dispatch_to_eoi.record(s.eoi - s.dispatch);
    }
    const SimTime start = s.start();
    if (start >= 0 && s.eoi >= start) {
      b.end_to_end.record(s.eoi - start);
    }
  }
  if (spans_out != nullptr) *spans_out = std::move(spans);
  return b;
}

}  // namespace es2
