// Span builder: stitches trace records into per-I/O-request journeys.
//
// A journey is every record sharing one correlation id, reduced to its
// landmark timestamps:
//
//   kick      guest kick or wire arrival (the journey's origin)
//   backend   first vhost handler turn that serviced it
//   msi       MSI raise (or PI post for timer/IPI journeys)
//   dispatch  vector dispatched through the guest IDT
//   eoi       the matching EOI write
//
// Landmarks record the FIRST occurrence only — a coalesced journey keeps
// its earliest post — and any prefix may be missing (a timer interrupt has
// no kick; a suppressed TX interrupt has no msi/dispatch/eoi). Stage
// histograms are fed from every journey that has both endpoints of the
// stage, so partial journeys still contribute the stages they completed.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "trace/trace.h"

namespace es2 {

struct JourneySpan {
  std::uint64_t corr = 0;
  std::int8_t vm = -1;
  std::int8_t vcpu = -1;
  // Landmark sim-times (ns); -1 = landmark never observed.
  SimTime kick = -1;
  SimTime backend = -1;
  SimTime msi = -1;
  SimTime dispatch = -1;
  SimTime eoi = -1;

  /// A journey that reached interrupt dispatch and completion.
  bool complete() const { return dispatch >= 0 && eoi >= 0; }
  /// Earliest observed landmark, or -1 for an empty span.
  SimTime start() const {
    for (SimTime t : {kick, backend, msi, dispatch, eoi}) {
      if (t >= 0) return t;
    }
    return -1;
  }
};

/// Per-stage latency breakdown over a set of journeys (all values ns).
struct SpanBreakdown {
  std::int64_t journeys = 0;
  std::int64_t complete = 0;
  std::int64_t partial = 0;
  Histogram kick_to_backend;   // kick/wire arrival -> handler turn
  Histogram backend_to_msi;    // handler turn -> MSI raise
  Histogram msi_to_dispatch;   // MSI raise -> guest IDT dispatch
  Histogram dispatch_to_eoi;   // handler dispatch -> EOI
  Histogram end_to_end;        // first landmark -> EOI
};

/// Builds journeys from `records` (any order; stitched by corr) and
/// returns the stage breakdown. Pass `spans` to also receive the spans,
/// ordered by first appearance in the record stream.
SpanBreakdown build_spans(const std::vector<TraceRecord>& records,
                          std::vector<JourneySpan>* spans = nullptr);

}  // namespace es2
