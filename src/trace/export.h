// Trace exporters: Perfetto/chrome://tracing JSON and a compact binary
// format with a reader.
//
// The JSON form targets ui.perfetto.dev / chrome://tracing directly:
// records become instant events on (vm, vcpu) tracks and journeys become
// async begin/end pairs, so a kick->EOI path reads as one horizontal bar.
// The binary form is fixed-width little-endian — 24 bytes per record after
// a 16-byte header — and is what the determinism tests compare: two runs
// are byte-identical iff their binary traces are.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/span.h"
#include "trace/trace.h"

namespace es2 {

/// A generic duration slice other layers (the profiler) can hand to the
/// Perfetto exporter so their scopes render next to the journey bars.
/// Slices draw as complete ("X") events on a dedicated profiler pid with
/// one tid lane per `track`.
struct PerfettoSlice {
  std::string name;
  int track = 0;
  SimTime begin = 0;
  SimTime end = 0;
};

/// Chrome trace-event JSON ("traceEvents" array). `spans` adds async
/// journey bars on top of the instant records; pass an empty vector to
/// export records only. `extra_slices` appends duration events from
/// outside the tracer (profiler component scopes).
std::string to_perfetto_json(const std::vector<TraceRecord>& records,
                             const std::vector<JourneySpan>& spans = {},
                             const std::vector<PerfettoSlice>& extra_slices = {});

/// Compact binary form: "ES2T" magic, u32 version, u64 record count, then
/// 24 bytes per record, everything little-endian regardless of host.
std::string to_binary(const std::vector<TraceRecord>& records);

/// Parses `data` produced by to_binary. Returns false (leaving `out`
/// empty) on bad magic, version or truncation.
bool read_binary(const std::string& data, std::vector<TraceRecord>* out);

/// Writes `data` to `path` (binary mode). Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& data);

/// Reads all of `path` into `out`. Returns false on I/O failure.
bool read_file(const std::string& path, std::string* out);

/// Strict structural JSON check (objects/arrays/strings/numbers/bools/
/// null, full-input consumption). No external dependency; used by smoke
/// tests to assert exported traces parse.
bool json_valid(const std::string& text);

}  // namespace es2
