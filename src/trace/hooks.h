// Compile-time gate for the hot-path trace instrumentation.
//
// The trace *library* (Tracer, spans, exporters) is always built and unit
// tested; only the emit call sites threaded through the model layers are
// conditional. The build defines ES2_TRACE_ENABLED=1 when configured with
// -DES2_TRACE=ON; otherwise this header pins it to 0 and every call site
// wrapped in `#if ES2_TRACE_ENABLED` vanishes, so the default build's
// event path carries zero tracing instructions and goldens stay
// bit-identical.
//
// Call-site pattern:
//
//   #if ES2_TRACE_ENABLED
//     if (Tracer* tr = active_tracer(sim)) {
//       tr->emit(sim.now(), TraceKind::kKick, vm, vcpu, cpu, arg, corr);
//     }
//   #endif
#pragma once

#ifndef ES2_TRACE_ENABLED
#define ES2_TRACE_ENABLED 0
#endif

#if ES2_TRACE_ENABLED

#include "sim/simulator.h"
#include "trace/trace.h"

namespace es2 {

/// The simulator's tracer when one is attached and enabled, else null.
inline Tracer* active_tracer(Simulator& sim) {
  Tracer* tracer = sim.tracer();
  return tracer != nullptr && tracer->enabled() ? tracer : nullptr;
}

}  // namespace es2

#endif  // ES2_TRACE_ENABLED
