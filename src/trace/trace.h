// Event-path tracer: typed per-event records on the virtual I/O path.
//
// A `Tracer` captures one record per interesting event — VM exits by
// cause, eventfd kicks, MSI/PI posts, LAPIC/vAPIC injection, EOI writes,
// CFS sched_in/out, vhost worker wake/turns, virtqueue notify-suppress
// decisions — each stamped `(sim_time, cpu, vm, vcpu, cause,
// correlation_id)`. Records land in a slab ring buffer with the same
// discipline as the event core: slabs are allocated once while the ring
// warms up and then recycled forever, so the steady-state emit path
// performs zero heap allocations.
//
// Tracing is passive by design: a Tracer draws no RNG numbers, schedules
// no events and never touches model state, so enabling it cannot perturb
// a run (asserted by tests). The hot-path instrumentation call sites are
// additionally compiled out unless the build sets `ES2_TRACE` (see
// trace/hooks.h), keeping the default build's goldens bit-identical at
// zero instruction cost.
//
// Correlation ids stitch one I/O request's journey across the async
// layers. The id is minted at the journey's origin (guest kick / wire
// arrival) and handed forward through three tiny registers:
//
//   * per-queue kick registers (owned by the vhost backend) carry the id
//     from kick to worker turn to MSI raise;
//   * `set_inflight`/`take_inflight` carries it across the synchronous
//     raise_msi -> IrqRouter -> Vcpu::deliver_interrupt call chain;
//   * a per-(vm,vcpu,vector) map carries it from interrupt post to the
//     (possibly much later) injection/dispatch, and a per-vcpu service
//     stack carries it from dispatch to the matching EOI, nesting
//     included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/units.h"

namespace es2 {

enum class TraceKind : std::uint8_t {
  kVmExit = 0,       // arg = ExitReason
  kVmEntry,          // arg = injected vector, or 0xffffffff when none
  kIrqInject,        // Baseline: vector injected during VM entry
  kKick,             // guest kick (ioeventfd signal); arg: 0=tx 1=rx-refill
  kKickSuppressed,   // EVENT_IDX said no kick needed; arg: 0=tx 1=rx-refill
  kKickDrop,         // fault injector swallowed the kick
  kWireRx,           // packet arrived from the wire into the backend
  kMsiRaise,         // backend raised an MSI; arg = vector
  kMsiDrop,          // fault injector swallowed the MSI; arg = vector
  kIrqSuppressed,    // EVENT_IDX said no interrupt needed; arg: 0=tx 1=rx
  kPiPost,           // posted-interrupt/direct PIR post; arg = vector
  kPiCoalesced,      // PIR post coalesced by the ON bit; arg = vector
  kLapicPost,        // emulated-LAPIC IRR post; arg = vector
  kIrqDispatch,      // vector dispatched through the guest IDT; arg = vector
  kEoi,              // guest EOI write (trapping or virtual)
  kSchedIn,          // CFS scheduled a thread onto a core; arg = thread id
  kSchedOut,         // CFS descheduled a thread; arg = thread id
  kWorkerWake,       // vhost worker activated (handler queued)
  kWorkerTurn,       // a virtqueue handler starts a turn; arg: 0=tx 1=rx
  kNotifyEnable,     // notifications/interrupts re-armed; arg: queue code
  kNotifyDisable,    // notifications/interrupts masked; arg: queue code
  kNapiPoll,         // guest NAPI poll pass starts
  kWatchdogRecover,  // netdev watchdog recovery; arg: 0=tx-rekick 1=rx-poll
  kFaultInject,      // lifecycle fault injected; arg = LifecycleFault
  kRingFault,        // ring-integrity fault detected; arg = RingFault
  kQueueReset,       // single-queue reset+re-enable; arg: 0=tx 1=rx
  kDeviceReset,      // full device reset (status -> 0)
  kRenegotiate,      // renegotiation complete (DRIVER_OK); arg = feature bits
  kWorkerCrash,      // vhost worker crashed; arg = restart delay (ns)
  kWorkerRestart,    // vhost worker restarted
  kRecovered,        // lifecycle fault recovered; arg = RecoveryRung
  kCount
};

/// Stable lowercase name for exporters ("vm_exit", "kick", ...).
const char* trace_kind_name(TraceKind kind);

/// One trace record. 24 bytes, trivially copyable; the ring stores these
/// by value.
struct TraceRecord {
  SimTime t = 0;
  std::uint64_t corr = 0;       // journey correlation id; 0 = uncorrelated
  std::uint32_t arg = 0;        // kind-specific payload (cause/vector/...)
  TraceKind kind = TraceKind::kVmExit;
  std::int8_t cpu = -1;         // physical core, -1 when off-core
  std::int8_t vm = -1;          // -1 for host-side records
  std::int8_t vcpu = -1;

  bool operator==(const TraceRecord&) const = default;
};
static_assert(sizeof(TraceRecord) == 24, "TraceRecord grew past 24 bytes");

struct TraceOptions {
  /// Request tracing for this run (harness convenience; the Testbed only
  /// constructs a Tracer when set).
  bool enabled = false;
  /// Ring capacity in records; once full the ring overwrites the oldest.
  std::size_t capacity = std::size_t{1} << 16;
};

class Tracer {
 public:
  explicit Tracer(TraceOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime switch; a constructed-but-disabled tracer drops every emit.
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Appends a record. Zero allocations once the ring has warmed up to
  /// its capacity (slabs are only ever added, never freed or moved).
  void emit(SimTime t, TraceKind kind, int vm, int vcpu, int cpu,
            std::uint32_t arg = 0, std::uint64_t corr = 0);

  /// Records currently held, oldest first (at most `capacity`).
  std::vector<TraceRecord> snapshot() const;

  /// Total records emitted while enabled (including overwritten ones).
  std::uint64_t emitted() const { return total_; }
  /// Records lost to ring wraparound.
  std::uint64_t dropped() const {
    return total_ > capacity_ ? total_ - capacity_ : 0;
  }
  std::size_t capacity() const { return capacity_; }

  // --- correlation-id plumbing (all O(1), allocation-free once warm) ----

  /// Mints a fresh journey id (ids start at 1; 0 means "no journey").
  std::uint64_t begin_journey() { return ++corr_seq_; }

  /// Most recent correlation id seen by emit(); audit/watchdog reports use
  /// it to point at the journey nearest a detected violation.
  std::uint64_t last_corr() const { return last_corr_; }

  /// Register carrying a journey across a synchronous call chain
  /// (raise_msi -> router -> deliver_interrupt).
  void set_inflight(std::uint64_t corr) { inflight_ = corr; }
  std::uint64_t take_inflight() {
    const std::uint64_t c = inflight_;
    inflight_ = 0;
    return c;
  }

  /// Pending-delivery map: post time -> injection/dispatch time, keyed by
  /// (vm, vcpu, vector). take_* consumes the entry.
  void remember_vector(int vm, int vcpu, int vector, std::uint64_t corr);
  std::uint64_t vector_corr(int vm, int vcpu, int vector) const;
  std::uint64_t take_vector_corr(int vm, int vcpu, int vector);

  /// Per-vcpu in-service stack: pushed at dispatch, popped at EOI, so
  /// nested interrupts resolve to the right journey.
  void push_service(int vm, int vcpu, std::uint64_t corr);
  std::uint64_t current_service(int vm, int vcpu) const;
  std::uint64_t pop_service(int vm, int vcpu);

 private:
  static constexpr std::size_t kSlabSize = 4096;
  static constexpr int kMaxVcpusPerVm = 16;
  static constexpr int kNumVectors = 256;

  TraceRecord& slot(std::size_t index) {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }
  void grow();
  static int ctx_index(int vm, int vcpu) {
    if (vm < 0 || vcpu < 0 || vcpu >= kMaxVcpusPerVm) return -1;
    return vm * kMaxVcpusPerVm + vcpu;
  }

  bool enabled_ = false;
  std::size_t capacity_;
  std::size_t allocated_ = 0;  // slots backed by slabs so far
  std::uint64_t total_ = 0;    // records emitted (monotonic)
  std::vector<std::unique_ptr<TraceRecord[]>> slabs_;

  std::uint64_t corr_seq_ = 0;
  std::uint64_t inflight_ = 0;
  std::uint64_t last_corr_ = 0;
  // Flat (vm,vcpu,vector) -> corr map and per-(vm,vcpu) service stacks,
  // grown on first touch and reused for the rest of the run.
  std::vector<std::uint64_t> vector_corr_;
  std::vector<std::vector<std::uint64_t>> service_;
};

}  // namespace es2
