#include "trace/export.h"

#include <cstdio>

#include "base/strings.h"

namespace es2 {

// ---------------------------------------------------------------------------
// Perfetto / chrome://tracing JSON
// ---------------------------------------------------------------------------

namespace {

/// Trace-event `ts` is microseconds; emit with ns precision.
std::string ts_us(SimTime t) {
  return format("%.3f", static_cast<double>(t) / 1e3);
}

/// pid/tid lanes: pid 0 is the host (vhost worker, wire, scheduler);
/// guests are pid vm+1 with one tid per vcpu.
int lane_pid(const TraceRecord& r) { return r.vm < 0 ? 0 : r.vm + 1; }
int lane_tid(const TraceRecord& r) { return r.vcpu < 0 ? 0 : r.vcpu + 1; }

}  // namespace

std::string to_perfetto_json(const std::vector<TraceRecord>& records,
                             const std::vector<JourneySpan>& spans,
                             const std::vector<PerfettoSlice>& extra_slices) {
  std::string out;
  out.reserve(records.size() * 120 + spans.size() * 160 +
              extra_slices.size() * 110 + 64);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& r : records) {
    if (!first) out += ',';
    first = false;
    out += format(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,"
        "\"pid\":%d,\"tid\":%d,\"args\":{\"arg\":%u,\"corr\":%llu,"
        "\"cpu\":%d}}",
        trace_kind_name(r.kind), ts_us(r.t).c_str(), lane_pid(r), lane_tid(r),
        static_cast<unsigned>(r.arg),
        static_cast<unsigned long long>(r.corr), static_cast<int>(r.cpu));
  }
  for (const JourneySpan& s : spans) {
    const SimTime start = s.start();
    if (start < 0 || s.eoi < start) continue;  // incomplete: no bar to draw
    const int pid = s.vm < 0 ? 0 : s.vm + 1;
    const unsigned long long id = static_cast<unsigned long long>(s.corr);
    out += format(
        ",{\"name\":\"journey\",\"cat\":\"journey\",\"ph\":\"b\","
        "\"id\":%llu,\"ts\":%s,\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"corr\":%llu}}",
        id, ts_us(start).c_str(), pid, s.vcpu < 0 ? 0 : s.vcpu + 1, id);
    out += format(
        ",{\"name\":\"journey\",\"cat\":\"journey\",\"ph\":\"e\","
        "\"id\":%llu,\"ts\":%s,\"pid\":%d,\"tid\":%d}",
        id, ts_us(s.eoi).c_str(), pid, s.vcpu < 0 ? 0 : s.vcpu + 1);
  }
  // Profiler scopes land on their own pid so they group as one "process"
  // under the journey lanes in the Perfetto UI.
  constexpr int kProfilerPid = 100;
  for (const PerfettoSlice& s : extra_slices) {
    if (s.end < s.begin) continue;
    if (!first) out += ',';
    first = false;
    out += format(
        "{\"name\":\"%s\",\"cat\":\"profile\",\"ph\":\"X\",\"ts\":%s,"
        "\"dur\":%s,\"pid\":%d,\"tid\":%d}",
        s.name.c_str(), ts_us(s.begin).c_str(), ts_us(s.end - s.begin).c_str(),
        kProfilerPid, s.track);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'E', 'S', '2', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kRecordSize = 24;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string to_binary(const std::vector<TraceRecord>& records) {
  std::string out;
  out.reserve(kHeaderSize + records.size() * kRecordSize);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u64(out, static_cast<std::uint64_t>(records.size()));
  for (const TraceRecord& r : records) {
    put_u64(out, static_cast<std::uint64_t>(r.t));
    put_u64(out, r.corr);
    put_u32(out, r.arg);
    out.push_back(static_cast<char>(r.kind));
    out.push_back(static_cast<char>(r.cpu));
    out.push_back(static_cast<char>(r.vm));
    out.push_back(static_cast<char>(r.vcpu));
  }
  return out;
}

bool read_binary(const std::string& data, std::vector<TraceRecord>* out) {
  out->clear();
  if (data.size() < kHeaderSize) return false;
  if (data.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  if (get_u32(data, 4) != kVersion) return false;
  const std::uint64_t count = get_u64(data, 8);
  if (data.size() != kHeaderSize + count * kRecordSize) return false;
  out->reserve(static_cast<std::size_t>(count));
  std::size_t at = kHeaderSize;
  for (std::uint64_t i = 0; i < count; ++i, at += kRecordSize) {
    TraceRecord r;
    r.t = static_cast<SimTime>(get_u64(data, at));
    r.corr = get_u64(data, at + 8);
    r.arg = get_u32(data, at + 16);
    r.kind = static_cast<TraceKind>(static_cast<unsigned char>(data[at + 20]));
    r.cpu = static_cast<std::int8_t>(data[at + 21]);
    r.vm = static_cast<std::int8_t>(data[at + 22]);
    r.vcpu = static_cast<std::int8_t>(data[at + 23]);
    out->push_back(r);
  }
  return true;
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && written == data.size();
  return ok;
}

bool read_file(const std::string& path, std::string* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  bool value() {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (peek() == '}') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++at_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == '}') { ++at_; return true; }
      return false;
    }
  }

  bool array() {
    ++at_;  // '['
    skip_ws();
    if (peek() == ']') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == ']') { ++at_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++at_;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c == '"') { ++at_; return true; }
      if (c == '\\') {
        ++at_;
        if (at_ >= text_.size()) return false;
      }
      ++at_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    while (is_digit(peek())) ++at_;
    if (peek() == '.') {
      ++at_;
      if (!is_digit(peek())) return false;
      while (is_digit(peek())) ++at_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++at_;
      if (peek() == '+' || peek() == '-') ++at_;
      if (!is_digit(peek())) return false;
      while (is_digit(peek())) ++at_;
    }
    // At least one digit somewhere past an optional sign.
    return at_ > start + (text_[start] == '-' ? 1u : 0u);
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++at_) {
      if (at_ >= text_.size() || text_[at_] != *p) return false;
    }
    return true;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  char peek() const { return at_ < text_.size() ? text_[at_] : '\0'; }
  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

bool json_valid(const std::string& text) { return JsonChecker(text).run(); }

}  // namespace es2
