// ASCII table rendering for benchmark/report output.
//
// The bench binaries print paper-reference rows next to measured rows;
// `Table` keeps the columns aligned without every harness reimplementing
// padding logic.
#pragma once

#include <string>
#include <vector>

namespace es2 {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders the table; every column is sized to its widest cell. The first
  /// column is left-aligned, the rest right-aligned.
  std::string render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace es2
