// Deterministic random number generation for simulations.
//
// Every stochastic component draws from its own `Rng` stream, derived from
// the scenario seed plus a stream label, so adding a new consumer never
// perturbs the draws seen by existing ones (the classic reproducibility
// pitfall with one shared engine).
//
// The engine is xoshiro256++ seeded via splitmix64 — fast, high quality,
// and trivially portable.
#pragma once

#include <cstdint>
#include <string_view>

namespace es2 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream from a parent seed and a label, so each
  /// component gets its own reproducible sequence.
  static Rng stream(std::uint64_t seed, std::string_view label);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p in [0, 1].
  bool bernoulli(double p);

  /// Normal variate (Box–Muller), clamped to >= 0 when `nonneg` is set.
  double normal(double mean, double stddev, bool nonneg = true);

  /// Raw engine state for checkpointing. A stream restored from a saved
  /// state produces exactly the draws the original would have produced.
  struct State {
    std::uint64_t s[4];
  };
  State state() const;
  void restore(const State& st);

 private:
  std::uint64_t state_[4];
};

}  // namespace es2
