// Always-on invariant checking for the simulator.
//
// Simulation bugs corrupt results silently, so invariant checks stay on in
// all build types. `ES2_CHECK` aborts with a source location and message;
// `ES2_DCHECK` compiles out in NDEBUG builds for hot paths only.
#pragma once

#include <string>

namespace es2::detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);
}  // namespace es2::detail

#define ES2_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::es2::detail::check_failed(__FILE__, __LINE__, #expr, "");     \
    }                                                                 \
  } while (0)

#define ES2_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::es2::detail::check_failed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define ES2_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define ES2_DCHECK(expr) ES2_CHECK(expr)
#endif

#define ES2_UNREACHABLE(msg) \
  ::es2::detail::check_failed(__FILE__, __LINE__, "unreachable", (msg))
