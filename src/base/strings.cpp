#include "base/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace es2 {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, copy);
  }
  va_end(copy);
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fixed(double value, int prec) {
  return format("%.*f", prec, value);
}

std::string rate_str(double per_second) {
  if (per_second >= 1e6) return format("%.2fM/s", per_second / 1e6);
  if (per_second >= 1e3) return format("%.1fk/s", per_second / 1e3);
  return format("%.1f/s", per_second);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace es2
