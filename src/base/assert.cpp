#include "base/assert.h"

#include <cstdio>
#include <cstdlib>

namespace es2::detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::fprintf(stderr, "ES2_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace es2::detail
