#include "base/table.h"

#include <algorithm>

#include "base/assert.h"

namespace es2 {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ES2_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ES2_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto hrule = [&] {
    std::string line = "+";
    for (const size_t w : widths) {
      line.append(w + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  };

  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      const size_t pad = widths[i] - cells[i].size();
      line.push_back(' ');
      if (i == 0) {
        line += cells[i];
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += cells[i];
      }
      line += " |";
    }
    line.push_back('\n');
    return line;
  };

  std::string out = hrule();
  out += render_cells(headers_);
  out += hrule();
  for (const auto& row : rows_) {
    if (row.rule_before) out += hrule();
    out += render_cells(row.cells);
  }
  out += hrule();
  return out;
}

}  // namespace es2
