#include "base/log.h"

#include <cstdarg>
#include <cstdio>

namespace es2 {

namespace detail {

std::string vformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

bool LogRateLimiter::allow(SimTime now, std::int64_t* suppressed) {
  if (!started_ || now >= window_start_ + window_ || now < window_start_) {
    started_ = true;
    window_start_ = now;
    in_window_ = 0;
  }
  if (max_ > 0 && in_window_ >= max_) {
    ++since_last_allowed_;
    ++total_suppressed_;
    return false;
  }
  ++in_window_;
  if (suppressed != nullptr) *suppressed = since_last_allowed_;
  since_last_allowed_ = 0;
  return true;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, SimTime now, const std::string& msg) {
  if (!enabled(level)) return;
  if (sink_) {
    sink_(level, msg);
    return;
  }
  std::fprintf(stderr, "[%12.6fms %-5s] %s\n", to_millis(now),
               level_name(level), msg.c_str());
}

}  // namespace es2
