// Minimal JSON document model with a strict parser and a deterministic
// serializer.
//
// The repo speaks JSON in three places — metrics exports, BENCH_*.json
// perf snapshots, and trace exports — and the regression gate must *read*
// the first two back. This is a small, dependency-free value type: objects
// preserve insertion order (so serialize(parse(x)) is stable), numbers are
// doubles, and the parser rejects trailing garbage. It is not a streaming
// parser; documents here are a few hundred KiB at most.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace es2 {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0.0) const;
  const std::string& as_string() const { return string_; }

  // --- arrays --------------------------------------------------------------
  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  // --- objects (insertion-ordered) ----------------------------------------
  /// Null when the key is absent (or this is not an object).
  const Json* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Inserts or overwrites `key`.
  void set(std::string key, Json v);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Convenience lookups with fallbacks (object use only).
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  // --- text ----------------------------------------------------------------
  /// Parses `text` (full input must be consumed). Returns false and fills
  /// `error` (position + reason) on malformed input.
  static bool parse(const std::string& text, Json* out, std::string* error);

  /// Deterministic serialization: members in insertion order, numbers via
  /// shortest round-trip formatting, `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Escapes `s` as a JSON string literal (with quotes).
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // arrays
  std::vector<std::pair<std::string, Json>> members_;  // objects
};

/// Formats a double with the shortest representation that round-trips
/// (integers print without a fraction). Shared by every JSON emitter so
/// exports are byte-stable across call sites.
std::string json_number(double v);

}  // namespace es2
