// Time and data-size units for the ES2 simulator.
//
// All simulated time is kept in integer nanoseconds (`SimTime` /
// `SimDuration`), which keeps the event queue deterministic and free of
// floating-point drift. CPU work is expressed in cycles and converted to
// time through a per-host clock frequency.
#pragma once

#include <cstdint>

namespace es2 {

/// Absolute simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time in nanoseconds.
using SimDuration = std::int64_t;

/// CPU work expressed in clock cycles.
using Cycles = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration usec(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration msec(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration sec(std::int64_t n) { return n * kSecond; }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_micros(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts CPU cycles to nanoseconds on a clock of `ghz` gigahertz.
/// Rounds to the nearest nanosecond, with a floor of 1ns for nonzero work
/// so that no work item ever completes at the instant it starts.
constexpr SimDuration cycles_to_ns(Cycles c, double ghz) {
  if (c <= 0) return 0;
  const double ns = static_cast<double>(c) / ghz;
  const auto rounded = static_cast<SimDuration>(ns + 0.5);
  return rounded > 0 ? rounded : 1;
}

/// Data sizes.
using Bytes = std::int64_t;
inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;

/// Bits-per-second of throughput given bytes moved over a duration.
constexpr double bits_per_second(Bytes bytes, SimDuration elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / to_seconds(elapsed);
}

constexpr double mbps(Bytes bytes, SimDuration elapsed) {
  return bits_per_second(bytes, elapsed) / 1e6;
}

}  // namespace es2
