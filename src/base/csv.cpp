#include "base/csv.h"

#include <filesystem>
#include <fstream>

#include "base/assert.h"

namespace es2 {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ES2_CHECK(!headers_.empty());
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  ES2_CHECK_MSG(cells.size() == headers_.size(),
                "CSV row width must match header width");
  rows_.push_back(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) out.push_back(',');
      out += escape(cells[i]);
    }
    out.push_back('\n');
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace es2
