#include "base/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace es2 {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double Json::as_number(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

const Json& Json::at(std::size_t i) const {
  static const Json kNullValue;
  return i < items_.size() ? items_[i] : kNullValue;
}

void Json::push_back(Json v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v ? v->as_number(fallback) : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v ? v->as_bool(fallback) : fallback;
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
  // Integers up to 2^53 print exactly without a fraction; everything else
  // uses the shortest form that round-trips through strtod.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void newline_indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      *out += json_number(number_);
      break;
    case Kind::kString:
      *out += escape(string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        *out += escape(k);
        *out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Json* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& why) {
    if (error_ && error_->empty()) {
      *error_ = "json: " + why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(const char* word) {
    std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point; surrogate pairs are not
            // needed for our ASCII-ish metric names but encode losslessly
            // enough for round-tripping control characters.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json* out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("invalid number");
    }
    *out = Json::number(v);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null")) return false;
        *out = Json::null();
        return true;
      case 't':
        if (!literal("true")) return false;
        *out = Json::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = Json::boolean(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json::string(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        *out = Json::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          Json item;
          skip_ws();
          if (!parse_value(&item, depth + 1)) return false;
          out->push_back(std::move(item));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        *out = Json::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (pos_ >= text_.size() || text_[pos_] != '"') {
            return fail("expected object key");
          }
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':'");
          }
          ++pos_;
          skip_ws();
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          out->set(std::move(key), std::move(value));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return parse_number(out);
        }
        return fail("unexpected character");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* error) {
  if (error) error->clear();
  Parser p(text, error);
  return p.run(out);
}

}  // namespace es2
