// Small string/format helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace es2 {

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a count with thousands separators, e.g. 130840 -> "130,840".
std::string with_commas(std::int64_t value);

/// Formats a double with `prec` decimals.
std::string fixed(double value, int prec);

/// Human-readable rate, e.g. 12345.6 -> "12.3k/s".
std::string rate_str(double per_second);

std::vector<std::string> split(const std::string& s, char sep);

}  // namespace es2
