#include "base/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Relaxed is enough: callers only read deltas from the thread doing the
// allocating, and exactness across racing threads is not required.
std::atomic<std::int64_t> g_count{0};
std::atomic<std::int64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}
}  // namespace

namespace es2::test {
std::int64_t allocation_count() {
  return g_count.load(std::memory_order_relaxed);
}
std::int64_t allocation_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}
}  // namespace es2::test

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
