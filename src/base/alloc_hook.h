// Allocation-counting test hook.
//
// Linking the `es2_alloc_hook` library into a binary replaces the global
// operator new/delete with counting versions, so tests and benchmarks can
// assert that a code region performs zero heap allocations (the event
// core's steady-state contract). Not linked into the core libraries —
// only test/bench binaries pay for it.
#pragma once

#include <cstdint>

namespace es2::test {

/// Total global operator new calls in this process so far.
std::int64_t allocation_count();

/// Total bytes requested from global operator new so far.
std::int64_t allocation_bytes();

/// Counts allocations across a scope:
///   AllocationCounter c;  ...work...  EXPECT_EQ(c.delta(), 0);
class AllocationCounter {
 public:
  AllocationCounter() : start_(allocation_count()) {}
  std::int64_t delta() const { return allocation_count() - start_; }
  void reset() { start_ = allocation_count(); }

 private:
  std::int64_t start_;
};

}  // namespace es2::test
