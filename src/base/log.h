// Minimal leveled logging with a simulation-time prefix.
//
// Logging is off by default (benchmarks must stay quiet); tests and
// debugging sessions enable it per-level. The sink is replaceable so tests
// can capture output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "base/units.h"

namespace es2 {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the output sink; pass nullptr to restore the stderr default.
  void set_sink(Sink sink);

  void log(LogLevel level, SimTime now, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

/// Sim-time token window for throttling repetitive warnings (fault
/// injection, overload paths): at most `max_per_window` messages per
/// `window` of simulated time. State is per-instance — parallel scenarios
/// each own their limiter; never share one through a static.
class LogRateLimiter {
 public:
  /// Allows `max_per_window` messages per `window` of simulated time;
  /// `max_per_window` <= 0 disables throttling.
  LogRateLimiter(SimDuration window, int max_per_window)
      : window_(window), max_(max_per_window) {}

  /// True if a message stamped `now` may be emitted. `suppressed`, when
  /// non-null, receives the number of messages swallowed since the last
  /// allowed one, so readers can tell the log is throttled.
  bool allow(SimTime now, std::int64_t* suppressed = nullptr);

  std::int64_t total_suppressed() const { return total_suppressed_; }

 private:
  SimDuration window_;
  int max_;
  bool started_ = false;
  SimTime window_start_ = 0;
  int in_window_ = 0;
  std::int64_t since_last_allowed_ = 0;
  std::int64_t total_suppressed_ = 0;
};

namespace detail {
// printf-style formatting into std::string.
std::string vformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define ES2_LOG_AT(level, now, ...)                                     \
  do {                                                                  \
    if (::es2::Logger::instance().enabled(level)) {                     \
      ::es2::Logger::instance().log(level, (now),                       \
                                    ::es2::detail::vformat(__VA_ARGS__)); \
    }                                                                   \
  } while (0)

#define ES2_TRACE(now, ...) ES2_LOG_AT(::es2::LogLevel::kTrace, now, __VA_ARGS__)
#define ES2_DEBUG(now, ...) ES2_LOG_AT(::es2::LogLevel::kDebug, now, __VA_ARGS__)
#define ES2_INFO(now, ...) ES2_LOG_AT(::es2::LogLevel::kInfo, now, __VA_ARGS__)
#define ES2_WARN(now, ...) ES2_LOG_AT(::es2::LogLevel::kWarn, now, __VA_ARGS__)
#define ES2_ERROR(now, ...) ES2_LOG_AT(::es2::LogLevel::kError, now, __VA_ARGS__)

/// Rate-limited warning: consults `limiter` (a LogRateLimiter lvalue) only
/// when the warn level is enabled, so disabled logging costs one branch.
#define ES2_WARN_RL(limiter, now, ...)                                     \
  do {                                                                     \
    if (::es2::Logger::instance().enabled(::es2::LogLevel::kWarn)) {       \
      std::int64_t es2_rl_suppressed = 0;                                  \
      if ((limiter).allow((now), &es2_rl_suppressed)) {                    \
        if (es2_rl_suppressed > 0) {                                       \
          ES2_WARN((now), "(%lld similar warnings suppressed)",            \
                   static_cast<long long>(es2_rl_suppressed));             \
        }                                                                  \
        ES2_WARN((now), __VA_ARGS__);                                      \
      }                                                                    \
    }                                                                      \
  } while (0)

}  // namespace es2
