// Minimal leveled logging with a simulation-time prefix.
//
// Logging is off by default (benchmarks must stay quiet); tests and
// debugging sessions enable it per-level. The sink is replaceable so tests
// can capture output.
#pragma once

#include <functional>
#include <string>

#include "base/units.h"

namespace es2 {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the output sink; pass nullptr to restore the stderr default.
  void set_sink(Sink sink);

  void log(LogLevel level, SimTime now, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

namespace detail {
// printf-style formatting into std::string.
std::string vformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define ES2_LOG_AT(level, now, ...)                                     \
  do {                                                                  \
    if (::es2::Logger::instance().enabled(level)) {                     \
      ::es2::Logger::instance().log(level, (now),                       \
                                    ::es2::detail::vformat(__VA_ARGS__)); \
    }                                                                   \
  } while (0)

#define ES2_TRACE(now, ...) ES2_LOG_AT(::es2::LogLevel::kTrace, now, __VA_ARGS__)
#define ES2_DEBUG(now, ...) ES2_LOG_AT(::es2::LogLevel::kDebug, now, __VA_ARGS__)
#define ES2_INFO(now, ...) ES2_LOG_AT(::es2::LogLevel::kInfo, now, __VA_ARGS__)
#define ES2_WARN(now, ...) ES2_LOG_AT(::es2::LogLevel::kWarn, now, __VA_ARGS__)
#define ES2_ERROR(now, ...) ES2_LOG_AT(::es2::LogLevel::kError, now, __VA_ARGS__)

}  // namespace es2
