#include "base/rng.h"

#include <cmath>

#include "base/assert.h"

namespace es2 {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

// FNV-1a over the label, mixed into the stream seed.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng Rng::stream(std::uint64_t seed, std::string_view label) {
  return Rng(seed ^ hash_label(label));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ES2_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  ES2_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  ES2_CHECK(mean > 0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  return st;
}

void Rng::restore(const State& st) {
  for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
}

double Rng::normal(double mean, double stddev, bool nonneg) {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  double v = mean + stddev * z;
  if (nonneg && v < 0.0) v = 0.0;
  return v;
}

}  // namespace es2
