// CSV emission for benchmark series (one file per figure).
#pragma once

#include <string>
#include <vector>

namespace es2 {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  std::string render() const;

  /// Writes the CSV to `path`, creating parent directories as needed.
  /// Returns false (and leaves no partial file) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace es2
