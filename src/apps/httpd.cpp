#include "apps/httpd.h"

#include <algorithm>

#include "base/assert.h"
#include "base/strings.h"
#include "metrics/metrics.h"

namespace es2 {

// ---------------------------------------------------------------------------
// ApacheServer
// ---------------------------------------------------------------------------

struct HttpRequest {
  std::uint64_t flow = 0;
  std::uint64_t probe_id = 0;
};

class ApacheServer::Worker final : public GuestTask {
 public:
  Worker(ApacheServer& server, int index, int vcpu)
      : GuestTask(server.os_, format("apache/%d", index), vcpu),
        server_(server) {
    block_self();
  }

  /// False when the accept queue is full (the request is dropped — a real
  /// server's listen/accept machinery is finite, and under a connection
  /// storm this bound is what keeps memory flat).
  bool enqueue(HttpRequest req) {
    if (static_cast<int>(queue_.size()) >= server_.costs_.accept_queue) {
      return false;
    }
    queue_.push_back(req);
    wake();
    return true;
  }

  void run_unit(Vcpu& vcpu) override {
    if (queue_.empty() && segments_left_ == 0) {
      block_self();
      os().task_done(vcpu);
      return;
    }
    if (segments_left_ == 0) {
      // Begin a new request: parse + page lookup.
      current_ = queue_.front();
      queue_.pop_front();
      const ApacheCosts& c = server_.costs_;
      segments_left_ = segments_for(c.page_size);
      sent_offset_ = 0;
      vcpu.guest_exec(c.request_parse + c.page_lookup,
                      [this, &vcpu] { send_segment(vcpu); });
      return;
    }
    send_segment(vcpu);
  }

 private:
  void send_segment(Vcpu& vcpu) {
    const ApacheCosts& c = server_.costs_;
    const Bytes mss = kMtu - kTcpUdpHeader;
    const Bytes payload = std::min<Bytes>(mss, c.page_size - sent_offset_);
    const GuestParams& gp = os().params();
    const Cycles cost =
        gp.tcp_send_per_packet / 2 +  // sendfile-style, cheaper per segment
        static_cast<Cycles>(gp.tx_cycles_per_byte *
                            static_cast<double>(payload));
    vcpu.guest_exec(cost, [this, &vcpu, payload] {
      Packet seg;
      seg.proto = Proto::kTcp;
      seg.flow = current_.flow;
      seg.payload = payload;
      seg.wire_size = payload + kTcpUdpHeader;
      seg.probe_id = current_.probe_id;
      seg.seq = static_cast<std::uint64_t>(sent_offset_);
      server_.dev_.transmit(
          vcpu, make_packet(std::move(seg)), [this, &vcpu, payload](bool sent) {
            if (sent) {
              sent_offset_ += payload;
              --segments_left_;
              if (segments_left_ == 0) {
                ++server_.served_;
                os().note_app_progress();
              }
            } else {
              server_.dev_.add_tx_waiter(*this);
              block_self();
            }
            os().task_done(vcpu);
          });
    });
  }

  ApacheServer& server_;
  std::deque<HttpRequest> queue_;
  HttpRequest current_;
  int segments_left_ = 0;
  Bytes sent_offset_ = 0;
};

class ApacheServer::RequestSink final : public FlowSink {
 public:
  RequestSink(ApacheServer& server, std::uint64_t flow) : server_(server) {
    server.os_.register_flow(flow, *this);
  }

  void on_packet(Vcpu&, const PacketPtr& packet,
                 std::function<void()> done) override {
    HttpRequest req{packet->flow, packet->probe_id};
    const size_t w = packet->flow % server_.workers_.size();
    if (!server_.workers_[w]->enqueue(req)) ++server_.accept_queue_drops_;
    done();
  }

 private:
  ApacheServer& server_;
};

/// Accept path: SYNs land in a bounded backlog; the listener task accepts
/// and responds SYN/ACK.
class ApacheServer::ListenerTask final : public GuestTask {
 public:
  ListenerTask(ApacheServer& server)
      : GuestTask(server.os_, "apache/listener", 0), server_(server) {
    block_self();
  }

  bool enqueue_syn(const PacketPtr& syn) {
    if (static_cast<int>(backlog_.size()) >= server_.costs_.syn_backlog) {
      return false;  // backlog overflow: the SYN is dropped
    }
    backlog_.push_back(syn);
    wake();
    return true;
  }

  std::size_t backlog_size() const { return backlog_.size(); }

  void run_unit(Vcpu& vcpu) override {
    if (backlog_.empty()) {
      block_self();
      os().task_done(vcpu);
      return;
    }
    PacketPtr syn = backlog_.front();
    backlog_.pop_front();
    vcpu.guest_exec(server_.costs_.accept_cost, [this, &vcpu, syn] {
      Packet synack;
      synack.proto = Proto::kTcp;
      synack.flow = syn->flow;
      synack.wire_size = kTcpUdpHeader;
      synack.flags.syn = true;
      synack.flags.ack = true;
      synack.probe_id = syn->probe_id;
      synack.sent_at = syn->sent_at;
      const std::uint64_t probe = syn->probe_id;
      server_.dev_.transmit(
          vcpu, make_packet(std::move(synack)), [this, &vcpu, probe](bool sent) {
            if (sent) {
              ++server_.accepts_;
              os().note_app_progress();
              if (server_.costs_.serve_page_per_connection &&
                  !server_.workers_.empty()) {
                // The new connection immediately carries one HTTP request.
                const size_t w = probe % server_.workers_.size();
                if (!server_.workers_[w]->enqueue(
                        HttpRequest{server_.listen_flow_, probe})) {
                  ++server_.accept_queue_drops_;
                }
              }
            }
            os().task_done(vcpu);
          });
    });
  }

 private:
  ApacheServer& server_;
  std::deque<PacketPtr> backlog_;
};

class ApacheServer::ListenSink final : public FlowSink {
 public:
  ListenSink(ApacheServer& server, std::uint64_t flow) : server_(server) {
    server.os_.register_flow(flow, *this);
  }

  void on_packet(Vcpu&, const PacketPtr& packet,
                 std::function<void()> done) override {
    // Rung 3 of the overload ladder: SYN-cookie-style early shedding. The
    // listen path refuses new connections beyond a tiny backlog *before*
    // the expensive accept, reserving the remaining CPU for connections
    // already admitted.
    if (server_.dev_.overload_rung() >= 3 &&
        server_.listener_->backlog_size() >=
            static_cast<std::size_t>(server_.costs_.shed_backlog)) {
      ++server_.shed_drops_;
      done();
      return;
    }
    if (!server_.listener_->enqueue_syn(packet)) ++server_.syn_drops_;
    done();
  }

 private:
  ApacheServer& server_;
};

ApacheServer::ApacheServer(GuestOs& os, VirtioNetFrontend& dev,
                           std::uint64_t base_flow, int client_conns,
                           int workers, ApacheCosts costs)
    : os_(os), dev_(dev), costs_(costs), listen_flow_(base_flow) {
  ES2_CHECK(workers > 0);
  listener_ = std::make_unique<ListenerTask>(*this);
  os.add_task(*listener_);
  listen_sink_ = std::make_unique<ListenSink>(*this, listen_flow_);
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(*this, i, i % os.vm().num_vcpus()));
    os.add_task(*workers_.back());
  }
  // Persistent ApacheBench connections use flows base+1 .. base+conns.
  for (int c = 1; c <= client_conns; ++c) {
    sinks_.push_back(std::make_unique<RequestSink>(*this, base_flow + c));
  }
}

ApacheServer::~ApacheServer() = default;

// ---------------------------------------------------------------------------
// AbClient
// ---------------------------------------------------------------------------

AbClient::AbClient(PeerHost& peer, std::uint64_t base_flow, int concurrency,
                   ApacheCosts costs)
    : peer_(peer),
      base_flow_(base_flow),
      concurrency_(concurrency),
      costs_(costs) {
  for (int c = 1; c <= concurrency_; ++c) {
    peer.register_flow(base_flow + c,
                       [this](const PacketPtr& p) { on_packet(p); });
  }
}

void AbClient::start() {
  ES2_CHECK(!running_);
  running_ = true;
  for (int c = 1; c <= concurrency_; ++c) {
    rx_progress_[base_flow_ + c] = 0;
    send_request(base_flow_ + c);
  }
}

void AbClient::send_request(std::uint64_t flow) {
  if (!running_) return;
  Packet req;
  req.proto = Proto::kTcp;
  req.flow = flow;
  req.payload = costs_.request_size;
  req.wire_size = costs_.request_size + kTcpUdpHeader;
  peer_.send(make_packet(std::move(req)));
}

void AbClient::on_packet(const PacketPtr& packet) {
  Bytes& got = rx_progress_[packet->flow];
  got += packet->payload;
  resp_bytes_ += packet->payload;
  if (got >= costs_.page_size) {
    got = 0;
    ++completed_;
    send_request(packet->flow);
  }
}

void AbClient::begin_window(SimTime now) {
  completed_base_ = completed_;
  resp_bytes_base_ = resp_bytes_;
  window_start_ = now;
}

double AbClient::requests_per_sec(SimTime now) const {
  const SimDuration w = now - window_start_;
  if (w <= 0) return 0.0;
  return static_cast<double>(completed_ - completed_base_) / to_seconds(w);
}

double AbClient::response_mbps(SimTime now) const {
  return mbps(resp_bytes_ - resp_bytes_base_, now - window_start_);
}

// ---------------------------------------------------------------------------
// HttperfClient
// ---------------------------------------------------------------------------

HttperfClient::HttperfClient(PeerHost& peer, std::uint64_t listen_flow,
                             double rate_per_sec, SimDuration syn_rto,
                             int max_pending)
    : peer_(peer),
      listen_flow_(listen_flow),
      rate_(rate_per_sec),
      syn_rto_(syn_rto),
      max_pending_(max_pending) {
  ES2_CHECK(rate_per_sec > 0);
  ES2_CHECK(max_pending > 0);
  // Flow tables are per host: the guest's listener and this client both
  // key on the listen flow; SYN/ACKs route back here by the same id.
  peer.register_flow(listen_flow,
                     [this](const PacketPtr& p) { on_packet(p); });
}

void HttperfClient::start() {
  ES2_CHECK(!running_);
  running_ = true;
  open_connection();
}

void HttperfClient::open_connection() {
  if (!running_) return;
  const std::uint64_t conn = next_conn_++;
  ++attempted_;
  send_syn(conn, peer_.sim().now());
  const auto interval = static_cast<SimDuration>(1e9 / rate_);
  peer_.sim().after(std::max<SimDuration>(interval, 1),
                    [this] { open_connection(); });
}

void HttperfClient::send_syn(std::uint64_t conn_id, SimTime first_attempt) {
  if (!running_) return;
  if (static_cast<int>(pending_.size()) >= max_pending_) {
    // Client-side socket/port exhaustion: the attempt is abandoned, not
    // tracked forever — the pending table stays bounded by construction.
    ++pending_overflows_;
    return;
  }
  pending_.emplace(conn_id, first_attempt);
  Packet syn;
  syn.proto = Proto::kTcp;
  syn.flow = listen_flow_;
  syn.wire_size = kTcpUdpHeader;
  syn.flags.syn = true;
  syn.probe_id = conn_id;
  peer_.send(make_packet(std::move(syn)));
  // SYN retransmission timer (dropped on establishment).
  peer_.sim().after(syn_rto_, [this, conn_id, first_attempt] {
    if (!running_) return;
    const auto it = pending_.find(conn_id);
    if (it == pending_.end()) return;  // established meanwhile
    pending_.erase(it);
    ++retries_;
    send_syn(conn_id, first_attempt);
  });
}

void HttperfClient::on_packet(const PacketPtr& packet) {
  const auto it = pending_.find(packet->probe_id);
  if (it == pending_.end()) return;  // duplicate SYN/ACK after a retry
  connect_time_.record(peer_.sim().now() - it->second);
  pending_.erase(it);
  ++established_;
}

void ApacheServer::register_metrics(MetricsRegistry& registry) {
  const std::string vm = os_.vm().name();
  MetricLabels labels = {{"vm", vm}};
  registry.probe("app.httpd.accepts", labels, [this] {
    return static_cast<double>(accepts_);
  });
  registry.probe("app.httpd.served", labels, [this] {
    return static_cast<double>(served_);
  });
  registry.probe("drops", {{"cause", "syn_backlog"}, {"vm", vm}}, [this] {
    return static_cast<double>(syn_drops_);
  });
  registry.probe("drops", {{"cause", "accept_queue"}, {"vm", vm}}, [this] {
    return static_cast<double>(accept_queue_drops_);
  });
  registry.probe("drops", {{"cause", "accept_shed"}, {"vm", vm}}, [this] {
    return static_cast<double>(shed_drops_);
  });
}

void ApacheServer::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(listen_flow_);
  w.put_i64(served_);
  w.put_i64(accepts_);
  w.put_i64(syn_drops_);
  w.put_i64(accept_queue_drops_);
  w.put_i64(shed_drops_);
  w.put_u32(static_cast<std::uint32_t>(workers_.size()));
}

void AbClient::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(base_flow_);
  w.put_bool(running_);
  w.put_i64(completed_);
  w.put_i64(resp_bytes_);
  std::vector<std::uint64_t> keys;
  keys.reserve(rx_progress_.size());
  for (const auto& [k, v] : rx_progress_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) {
    w.put_u64(k);
    w.put_i64(rx_progress_.at(k));
  }
}

void HttperfClient::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(listen_flow_);
  w.put_bool(running_);
  w.put_u64(next_conn_);
  w.put_i64(attempted_);
  w.put_i64(established_);
  w.put_i64(retries_);
  w.put_i64(pending_overflows_);
  w.put_i64(connect_time_.count());
  std::vector<std::uint64_t> keys;
  keys.reserve(pending_.size());
  for (const auto& [k, v] : pending_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) {
    w.put_u64(k);
    w.put_i64(pending_.at(k));
  }
}

}  // namespace es2
