#include "apps/netperf.h"

#include <algorithm>

#include "base/assert.h"
#include "base/strings.h"
#include "metrics/metrics.h"

namespace es2 {

namespace {
std::string flow_label(std::uint64_t flow) {
  return format("%llu", static_cast<unsigned long long>(flow));
}
}  // namespace

// ---------------------------------------------------------------------------
// NetperfSender (guest task)
// ---------------------------------------------------------------------------

NetperfSender::NetperfSender(GuestOs& os, VirtioNetFrontend& dev,
                             std::uint64_t flow, Proto proto, Bytes msg_size,
                             int vcpu_affinity)
    : GuestTask(os, format("netperf-send/%llu",
                           static_cast<unsigned long long>(flow)),
                vcpu_affinity),
      dev_(dev),
      flow_(flow),
      proto_(proto),
      msg_size_(msg_size) {
  ES2_CHECK(msg_size_ > 0);
  os.register_flow(flow, *this);  // receives the peer's ACKs
}

Bytes NetperfSender::segment_payload() const {
  return std::min<Bytes>(msg_size_, kMtu - kTcpUdpHeader);
}

bool NetperfSender::window_open() const {
  if (proto_ != Proto::kTcp) return true;
  const Bytes inflight = static_cast<Bytes>(next_seq_ - acked_);
  return inflight + segment_payload() <= os().params().tcp_window;
}

PacketPtr NetperfSender::make_segment(Bytes payload) {
  Packet p;
  p.proto = proto_;
  p.flow = flow_;
  p.payload = payload;
  p.wire_size = payload + kTcpUdpHeader;
  p.seq = next_seq_;
  p.sent_at = 0;
  return make_packet(std::move(p));
}

void NetperfSender::run_unit(Vcpu& vcpu) {
  if (segments_left_ > 0) {
    // Resuming a message interrupted by a closed window or full TX ring.
    emit_segments(vcpu);
    return;
  }
  if (proto_ == Proto::kTcp && !window_open()) {
    block_self();  // the ACK sink wakes us
    os().task_done(vcpu);
    return;
  }
  // Start a new message: the send() syscall + stack traversal cost.
  const GuestParams& p = os().params();
  const Cycles per_msg = proto_ == Proto::kTcp ? p.tcp_send_per_packet
                                               : p.udp_send_per_packet;
  const Cycles cost =
      per_msg + static_cast<Cycles>(p.tx_cycles_per_byte *
                                    static_cast<double>(msg_size_));
  segments_left_ = segments_for(msg_size_);
  cost_charged_ = false;
  vcpu.guest_exec(os().jittered(cost), [this, &vcpu] {
    cost_charged_ = true;
    ++messages_sent_;
    emit_segments(vcpu);
  });
}

void NetperfSender::emit_segments(Vcpu& vcpu) {
  if (segments_left_ <= 0) {
    os().task_done(vcpu);
    return;
  }
  if (proto_ == Proto::kTcp && !window_open()) {
    block_self();
    os().task_done(vcpu);
    return;
  }
  const Bytes remaining_msg =
      msg_size_ - static_cast<Bytes>(segments_for(msg_size_) - segments_left_) *
                      segment_payload();
  const Bytes payload = std::min<Bytes>(segment_payload(), remaining_msg);
  PacketPtr seg = make_segment(std::max<Bytes>(payload, 1));
  dev_.transmit(vcpu, seg, [this, &vcpu, seg](bool sent) {
    if (!sent) {
      // TX ring full: wait for completions to free descriptors.
      dev_.add_tx_waiter(*this);
      block_self();
      os().task_done(vcpu);
      return;
    }
    next_seq_ += static_cast<std::uint64_t>(seg->payload);
    bytes_sent_ += seg->payload;
    ++packets_sent_;
    --segments_left_;
    emit_segments(vcpu);
  });
}

void NetperfSender::on_packet(Vcpu&, const PacketPtr& packet,
                              std::function<void()> done) {
  // Peer ACK: advance the window; wake the sender if it was waiting.
  if (packet->ack_seq > acked_) acked_ = packet->ack_seq;
  if (!runnable()) wake();
  done();
}

// ---------------------------------------------------------------------------
// NetperfReceiver (guest sink)
// ---------------------------------------------------------------------------

NetperfReceiver::NetperfReceiver(GuestOs& os, VirtioNetFrontend& dev,
                                 std::uint64_t flow, Proto proto)
    : os_(os), dev_(dev), flow_(flow), proto_(proto) {
  os.register_flow(flow, *this);
}

void NetperfReceiver::on_packet(Vcpu& vcpu, const PacketPtr& packet,
                                std::function<void()> done) {
  ++packets_received_;
  if (proto_ != Proto::kTcp) {
    bytes_received_ += packet->payload;
    done();
    return;
  }
  if (packet->seq != expected_seq_) {
    // Duplicate from go-back-N: re-ACK so the peer advances, but throttled
    // (one dup-ACK per few duplicates) to avoid ACK storms.
    if (++dup_count_ % 4 != 1) {
      done();
      return;
    }
    Packet ack;
    ack.proto = Proto::kTcp;
    ack.flow = flow_;
    ack.wire_size = kTcpUdpHeader;
    ack.flags.ack = true;
    ack.ack_seq = expected_seq_;
    vcpu.guest_exec(os_.params().ack_send, [this, &vcpu, ack,
                                            done = std::move(done)]() mutable {
      dev_.transmit(vcpu, make_packet(std::move(ack)),
                    [done = std::move(done)](bool) { done(); });
    });
    return;
  }
  expected_seq_ += static_cast<std::uint64_t>(packet->payload);
  bytes_received_ += packet->payload;
  ++segs_since_ack_;
  if (segs_since_ack_ < os_.params().delayed_ack_every) {
    done();
    return;
  }
  segs_since_ack_ = 0;
  Packet ack;
  ack.proto = Proto::kTcp;
  ack.flow = flow_;
  ack.wire_size = kTcpUdpHeader;
  ack.flags.ack = true;
  ack.ack_seq = expected_seq_;
  vcpu.guest_exec(os_.params().ack_send, [this, &vcpu, ack,
                                          done = std::move(done)]() mutable {
    dev_.transmit(vcpu, make_packet(std::move(ack)),
                  [done = std::move(done)](bool) { done(); });
  });
}

// ---------------------------------------------------------------------------
// PeerStreamReceiver
// ---------------------------------------------------------------------------

PeerStreamReceiver::PeerStreamReceiver(PeerHost& peer, std::uint64_t flow,
                                       Proto proto, int ack_every)
    : peer_(peer), flow_(flow), proto_(proto), ack_every_(ack_every) {
  peer.register_flow(flow, [this](const PacketPtr& p) { on_packet(p); });
}

void PeerStreamReceiver::begin_window(SimTime now) {
  window_base_ = bytes_received_;
  window_start_ = now;
}

double PeerStreamReceiver::throughput_mbps(SimTime now) const {
  return mbps(bytes_received_ - window_base_, now - window_start_);
}

void PeerStreamReceiver::on_packet(const PacketPtr& packet) {
  ++packets_received_;
  bytes_received_ += packet->payload;
  if (proto_ != Proto::kTcp) return;
  const std::uint64_t end = packet->seq + static_cast<std::uint64_t>(packet->payload);
  if (end > cum_seq_) cum_seq_ = end;
  if (++segs_since_ack_ < ack_every_) return;
  segs_since_ack_ = 0;
  Packet ack;
  ack.proto = Proto::kTcp;
  ack.flow = flow_;
  ack.wire_size = kTcpUdpHeader;
  ack.flags.ack = true;
  ack.ack_seq = cum_seq_;
  peer_.send(make_packet(std::move(ack)));
}

// ---------------------------------------------------------------------------
// PeerStreamSender
// ---------------------------------------------------------------------------

PeerStreamSender::PeerStreamSender(PeerHost& peer, std::uint64_t flow,
                                   Params params)
    : peer_(peer), flow_(flow), params_(params) {
  peer.register_flow(flow, [this](const PacketPtr& p) { on_packet(p); });
}

Bytes PeerStreamSender::seg_payload() const {
  return std::min<Bytes>(params_.msg_size, kMtu - kTcpUdpHeader);
}

void PeerStreamSender::start() {
  ES2_CHECK(!running_);
  running_ = true;
  if (params_.proto == Proto::kTcp) {
    pump_tcp();
    check_rto();
  } else {
    send_udp_tick();
  }
}

void PeerStreamSender::pump_tcp() {
  // Emit as much as the window allows; further sends are ACK-clocked.
  while (running_ &&
         static_cast<Bytes>(next_seq_ - acked_) + seg_payload() <=
             params_.window) {
    Packet p;
    p.proto = Proto::kTcp;
    p.flow = flow_;
    p.payload = seg_payload();
    p.wire_size = p.payload + kTcpUdpHeader;
    p.seq = next_seq_;
    next_seq_ += static_cast<std::uint64_t>(p.payload);
    ++packets_sent_;
    peer_.send(make_packet(std::move(p)));
  }
}

void PeerStreamSender::send_udp_tick() {
  if (!running_) return;
  const int burst = std::max(params_.udp_burst, 1);
  for (int i = 0; i < burst; ++i) {
    Packet p;
    p.proto = Proto::kUdp;
    p.flow = flow_;
    p.payload = seg_payload();
    p.wire_size = p.payload + kTcpUdpHeader;
    p.seq = next_seq_++;
    ++packets_sent_;
    peer_.send(make_packet(std::move(p)));
  }
  const auto interval =
      static_cast<SimDuration>(burst * 1e9 / params_.udp_rate_pps);
  peer_.sim().after(std::max<SimDuration>(interval, 1),
                    [this] { send_udp_tick(); });
}

void PeerStreamSender::on_packet(const PacketPtr& packet) {
  if (params_.proto != Proto::kTcp) return;
  if (packet->ack_seq > acked_) {
    acked_ = packet->ack_seq;
    dup_acks_ = 0;
  } else if (packet->ack_seq == acked_ && next_seq_ > acked_ &&
             params_.dupack_threshold > 0) {
    // Duplicate ACK with data outstanding: the receiver is seeing
    // past-the-hole segments. Enough of them prove the path is alive and
    // the hole is real — retransmit without waiting out the RTO. Only one
    // fast retransmit per window though (NewReno-style recovery point):
    // the resent window echoes more duplicates for the same hole, and
    // answering those would retransmit the window once per dup ACK.
    if (++dup_acks_ >= params_.dupack_threshold && acked_ >= recover_) {
      dup_acks_ = 0;
      ++fast_retransmits_;
      recover_ = next_seq_;
      next_seq_ = acked_;  // go-back-N from the hole
      rto_backoff_ = 0;
    }
  }
  pump_tcp();
}

void PeerStreamSender::check_rto() {
  if (!running_) return;
  const SimDuration rto = params_.rto << rto_backoff_;
  rto_timer_ = peer_.sim().after(rto, [this] {
    if (!running_) return;
    if (acked_ < next_seq_ && acked_ == acked_at_last_rto_check_) {
      // No progress for a full RTO: go-back-N from the last ACK, with
      // exponential backoff so an overloaded receiver is not buried under
      // duplicate storms.
      ++retransmits_;
      recover_ = next_seq_;
      next_seq_ = acked_;
      if (rto_backoff_ < params_.max_rto_backoff) ++rto_backoff_;
      pump_tcp();
    } else {
      rto_backoff_ = 0;
    }
    acked_at_last_rto_check_ = acked_;
    check_rto();
  });
}

void NetperfSender::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", os().vm().name()},
                         {"flow", flow_label(flow_)}};
  registry.probe("app.netperf.bytes_sent", labels, [this] {
    return static_cast<double>(bytes_sent_);
  });
  registry.probe("app.netperf.packets_sent", labels, [this] {
    return static_cast<double>(packets_sent_);
  });
  registry.probe("app.netperf.messages_sent", labels, [this] {
    return static_cast<double>(messages_sent_);
  });
}

void NetperfReceiver::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", os_.vm().name()},
                         {"flow", flow_label(flow_)}};
  registry.probe("app.netperf.bytes_received", labels, [this] {
    return static_cast<double>(bytes_received_);
  });
  registry.probe("app.netperf.packets_received", labels, [this] {
    return static_cast<double>(packets_received_);
  });
}

void PeerStreamReceiver::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"flow", flow_label(flow_)}};
  registry.probe("peer.stream.bytes_received", labels, [this] {
    return static_cast<double>(bytes_received_);
  });
  registry.probe("peer.stream.packets_received", labels, [this] {
    return static_cast<double>(packets_received_);
  });
}

void PeerStreamSender::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"flow", flow_label(flow_)}};
  registry.probe("peer.stream.packets_sent", labels, [this] {
    return static_cast<double>(packets_sent_);
  });
  registry.probe("tcp.retransmits", labels, [this] {
    return static_cast<double>(retransmits_);
  });
  registry.probe("tcp.fast_retransmits", labels, [this] {
    return static_cast<double>(fast_retransmits_);
  });
}

void NetperfSender::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_u8(static_cast<std::uint8_t>(proto_));
  w.put_i64(msg_size_);
  w.put_u64(next_seq_);
  w.put_u64(acked_);
  w.put_u32(static_cast<std::uint32_t>(segments_left_));
  w.put_bool(cost_charged_);
  w.put_i64(bytes_sent_);
  w.put_i64(packets_sent_);
  w.put_i64(messages_sent_);
  w.put_bool(runnable());
}

void NetperfReceiver::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_u8(static_cast<std::uint8_t>(proto_));
  w.put_u64(expected_seq_);
  w.put_u32(static_cast<std::uint32_t>(segs_since_ack_));
  w.put_i64(dup_count_);
  w.put_i64(bytes_received_);
  w.put_i64(packets_received_);
}

void PeerStreamReceiver::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_u8(static_cast<std::uint8_t>(proto_));
  w.put_u64(cum_seq_);
  w.put_u32(static_cast<std::uint32_t>(segs_since_ack_));
  w.put_i64(bytes_received_);
  w.put_i64(packets_received_);
  w.put_i64(window_base_);
  w.put_i64(window_start_);
}

void PeerStreamSender::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_bool(running_);
  w.put_u64(next_seq_);
  w.put_u64(acked_);
  w.put_u64(acked_at_last_rto_check_);
  w.put_u32(static_cast<std::uint32_t>(rto_backoff_));
  w.put_u32(static_cast<std::uint32_t>(dup_acks_));
  w.put_u64(recover_);
  w.put_i64(packets_sent_);
  w.put_i64(retransmits_);
  w.put_i64(fast_retransmits_);
}

}  // namespace es2
