// Netperf-style stream workloads (paper §VI-B/C/D).
//
// Guest side: `NetperfSender` (TCP_STREAM / UDP_STREAM toward the peer) and
// `NetperfReceiver` (sink for peer->VM streams, generating delayed ACKs for
// TCP). Peer side: `PeerStreamReceiver` (ACK generator) and
// `PeerStreamSender` (windowed TCP / paced UDP source with a simple
// go-back-N retransmit, since ingress drops are possible under overload).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "net/peer.h"
#include "stats/meters.h"

namespace es2 {

class MetricsRegistry;

/// Guest task sending a TCP/UDP stream of `msg_size`-byte messages.
class NetperfSender final : public GuestTask,
                            public FlowSink,
                            public Snapshottable {
 public:
  NetperfSender(GuestOs& os, VirtioNetFrontend& dev, std::uint64_t flow,
                Proto proto, Bytes msg_size, int vcpu_affinity);

  void run_unit(Vcpu& vcpu) override;
  void on_packet(Vcpu& vcpu, const PacketPtr& packet,
                 std::function<void()> done) override;

  Bytes bytes_sent() const { return bytes_sent_; }
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t messages_sent() const { return messages_sent_; }

  /// Payload bytes per wire segment for this message size.
  Bytes segment_payload() const;

  /// Registers sender throughput probes (labels vm=<name>, flow=<id>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes TCP sequence/window state and send counters.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  bool window_open() const;
  void emit_segments(Vcpu& vcpu);
  PacketPtr make_segment(Bytes payload);

  VirtioNetFrontend& dev_;
  std::uint64_t flow_;
  Proto proto_;
  Bytes msg_size_;
  // TCP sequence state (bytes).
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  // Segments of the in-progress message still to emit.
  int segments_left_ = 0;
  bool cost_charged_ = false;
  Bytes bytes_sent_ = 0;
  std::int64_t packets_sent_ = 0;
  std::int64_t messages_sent_ = 0;
};

/// Guest flow sink for peer->VM streams; emits delayed ACKs for TCP.
class NetperfReceiver final : public FlowSink, public Snapshottable {
 public:
  NetperfReceiver(GuestOs& os, VirtioNetFrontend& dev, std::uint64_t flow,
                  Proto proto);

  void on_packet(Vcpu& vcpu, const PacketPtr& packet,
                 std::function<void()> done) override;

  Bytes bytes_received() const { return bytes_received_; }
  std::int64_t packets_received() const { return packets_received_; }

  /// Registers sink probes (labels vm=<name>, flow=<id>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes receive-side TCP state and counters.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  GuestOs& os_;
  VirtioNetFrontend& dev_;
  std::uint64_t flow_;
  Proto proto_;
  std::uint64_t expected_seq_ = 0;
  int segs_since_ack_ = 0;
  std::int64_t dup_count_ = 0;
  Bytes bytes_received_ = 0;
  std::int64_t packets_received_ = 0;
};

/// Peer endpoint for VM->peer streams: counts bytes, ACKs TCP.
class PeerStreamReceiver : public Snapshottable {
 public:
  PeerStreamReceiver(PeerHost& peer, std::uint64_t flow, Proto proto,
                     int ack_every = 2);

  Bytes bytes_received() const { return bytes_received_; }
  std::int64_t packets_received() const { return packets_received_; }

  void begin_window(SimTime now);
  double throughput_mbps(SimTime now) const;

  /// Registers peer-side sink probes (label flow=<id>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes cumulative-ACK state and window bases.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void on_packet(const PacketPtr& packet);

  PeerHost& peer_;
  std::uint64_t flow_;
  Proto proto_;
  int ack_every_;
  std::uint64_t cum_seq_ = 0;
  int segs_since_ack_ = 0;
  Bytes bytes_received_ = 0;
  std::int64_t packets_received_ = 0;
  Bytes window_base_ = 0;
  SimTime window_start_ = 0;
};

/// Peer endpoint for peer->VM streams.
class PeerStreamSender : public Snapshottable {
 public:
  struct Params {
    Proto proto = Proto::kTcp;
    Bytes msg_size = 1024;
    Bytes window = 128 * kKiB;      // receive-window cap toward the VM
    double udp_rate_pps = 150000;   // UDP pacing (average)
    /// UDP packets are emitted in back-to-back bursts of this size (GSO /
    /// sendmmsg batching on the bare-metal sender), which is what gives
    /// the guest's NAPI its interrupt moderation.
    int udp_burst = 16;
    SimDuration rto = msec(10);     // base go-back-N retransmit timeout
    /// Cap on the RTO exponential-backoff shift: consecutive barren RTOs
    /// back off to at most rto << max_rto_backoff.
    int max_rto_backoff = 5;
    /// Fast retransmit after this many duplicate ACKs (TCP's classic 3);
    /// <= 0 disables it, leaving RTO-only go-back-N recovery. Disabled by
    /// default: the guest sink's delayed ACKs repeat the cumulative seq
    /// under plain overload drops, and go-back-N (no SACK) answering every
    /// third repeat thrashes a healthy stream. Lossy-link scenarios, where
    /// holes are real, enable it.
    int dupack_threshold = 0;
  };

  PeerStreamSender(PeerHost& peer, std::uint64_t flow, Params params);

  void start();
  void stop() {
    running_ = false;
    rto_timer_.cancel();
  }

  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t retransmits() const { return retransmits_; }
  std::int64_t fast_retransmits() const { return fast_retransmits_; }

  /// Registers peer-side source probes, including the TCP recovery
  /// signature — tcp.retransmits / tcp.fast_retransmits (label flow=<id>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes the full go-back-N sender state: sequence numbers, RTO
  /// backoff, duplicate-ACK tracking and retransmit counters.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void pump_tcp();
  void send_udp_tick();
  void on_packet(const PacketPtr& packet);  // ACKs from the guest
  void check_rto();
  Bytes seg_payload() const;

  PeerHost& peer_;
  std::uint64_t flow_;
  Params params_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t acked_at_last_rto_check_ = 0;
  int rto_backoff_ = 0;  // exponential backoff shift, capped
  int dup_acks_ = 0;     // consecutive duplicate ACKs at acked_
  /// Highest sequence sent when the last retransmit started; dup ACKs
  /// below this are part of the same recovery, not a new hole.
  std::uint64_t recover_ = 0;
  EventHandle rto_timer_;
  std::int64_t packets_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t fast_retransmits_ = 0;
};

}  // namespace es2
