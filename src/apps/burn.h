// Lowest-priority CPU-burn task (the paper's "CPU burn script", run in
// every tested VM to keep vCPUs busy: it prevents HLT exits in the micro
// benchmarks and forces vCPU scheduling in the oversubscribed ones).
#pragma once

#include "guest/guest_os.h"

namespace es2 {

class CpuBurnTask final : public GuestTask {
 public:
  CpuBurnTask(GuestOs& os, int vcpu_affinity)
      : GuestTask(os, "cpuburn", vcpu_affinity, /*low_priority=*/true) {}

  void run_unit(Vcpu& vcpu) override {
    const SimDuration slice = os().params().burn_slice;
    const double ghz = vcpu.vm().host().costs().cpu_ghz;
    vcpu.guest_exec(static_cast<Cycles>(to_seconds(slice) * ghz * 1e9),
                    [this, &vcpu] { os().task_done(vcpu); });
  }
};

}  // namespace es2
