// Ping RTT workload (paper Fig. 7): the peer pings the tested VM at a
// fixed interval; the guest echoes from softirq context (kernel ICMP).
#pragma once

#include <cstdint>
#include <functional>

#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "net/peer.h"
#include "stats/histogram.h"

namespace es2 {

/// Guest-side ICMP echo responder (runs entirely in NAPI context).
class PingResponder final : public FlowSink, public Snapshottable {
 public:
  PingResponder(GuestOs& os, VirtioNetFrontend& dev, std::uint64_t flow);

  void on_packet(Vcpu& vcpu, const PacketPtr& packet,
                 std::function<void()> done) override;

  std::int64_t echoed() const { return echoed_; }

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  GuestOs& os_;
  VirtioNetFrontend& dev_;
  std::uint64_t flow_;
  std::int64_t echoed_ = 0;
};

/// Peer-side ping client: sends echo requests, records RTTs.
class PingClient : public Snapshottable {
 public:
  PingClient(PeerHost& peer, std::uint64_t flow,
             SimDuration interval = kSecond, Bytes payload = 56);

  void start();
  void stop() { running_ = false; }

  const Histogram& rtt() const { return rtt_; }
  /// Every individual RTT sample in nanoseconds (Fig. 7 is a time series).
  const std::vector<SimDuration>& samples() const { return samples_; }
  std::int64_t lost() const { return sent_ - received_; }

  /// Serializes probe bookkeeping: next id, sent/received counts and the
  /// outstanding-probe set (sorted ids).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void send_echo();
  void on_reply(const PacketPtr& packet);

  PeerHost& peer_;
  std::uint64_t flow_;
  SimDuration interval_;
  Bytes payload_;
  bool running_ = false;
  std::uint64_t next_probe_ = 1;
  std::int64_t sent_ = 0;
  std::int64_t received_ = 0;
  Histogram rtt_;
  std::vector<SimDuration> samples_;
  std::unordered_map<std::uint64_t, SimTime> outstanding_;
};

}  // namespace es2
