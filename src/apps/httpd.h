// Apache HTTP server + ApacheBench + Httperf (paper Fig. 8b / Fig. 9).
//
// Guest: worker tasks serve static pages (request parse + page send as MTU
// segments); a listener task accepts new connections from a bounded SYN
// backlog. Peer: `AbClient` keeps N concurrent requests in flight over
// persistent connections; `HttperfClient` opens fresh connections at a
// fixed rate and measures TCP connect time (SYN -> SYN/ACK), with 1-second
// SYN retransmission on overflow — the "suspending event overflow" that
// makes the baseline's connect time explode past its knee.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "net/peer.h"
#include "stats/histogram.h"

namespace es2 {

struct ApacheCosts {
  Cycles request_parse = 14000;   // parse + dispatch
  Cycles page_lookup = 18000;     // file cache hit + headers
  Bytes page_size = 8 * kKiB;     // paper: 8KB static pages
  Bytes request_size = 150;
  Cycles accept_cost = 260000;    // accept() + socket + worker handoff + logging
  int syn_backlog = 128;
  /// Per-worker accept/request queue depth. Requests past it are dropped
  /// (counted as drops{cause=accept_queue}); the default is high enough
  /// that paper-rate scenarios never trip it, so committed goldens keep
  /// their exact behaviour — storm scenarios tighten it.
  int accept_queue = 65536;
  /// Rung-3 graceful degradation: once the guest's overload ladder reaches
  /// kAcceptShed, the listen path sheds SYNs beyond this tiny backlog
  /// (SYN-cookie-style early drop, before the expensive accept).
  int shed_backlog = 16;
  /// Httperf connections are real HTTP conversations: each accepted
  /// connection also serves one page (request parse + page send), which is
  /// what saturates the server at the paper's knee rates.
  bool serve_page_per_connection = true;
};

class ApacheServer : public Snapshottable {
 public:
  ApacheServer(GuestOs& os, VirtioNetFrontend& dev, std::uint64_t base_flow,
               int client_conns, int workers, ApacheCosts costs = {});
  ~ApacheServer();
  ApacheServer(const ApacheServer&) = delete;
  ApacheServer& operator=(const ApacheServer&) = delete;

  /// Flow id on which SYNs (new connections) arrive.
  std::uint64_t listen_flow() const { return listen_flow_; }

  std::int64_t requests_served() const { return served_; }
  std::int64_t accepts() const { return accepts_; }
  std::int64_t syn_drops() const { return syn_drops_; }
  /// Requests dropped because a worker's accept queue was full.
  std::int64_t accept_queue_drops() const { return accept_queue_drops_; }
  /// SYNs shed by the rung-3 admission ladder (overload mitigation on).
  std::int64_t shed_drops() const { return shed_drops_; }

  /// Registers app-level telemetry: accepts/served plus the canonical
  /// drops{cause=syn_backlog|accept_queue|accept_shed} family.
  void register_metrics(MetricsRegistry& registry);

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  class Worker;
  class RequestSink;
  class ListenerTask;
  class ListenSink;

  GuestOs& os_;
  VirtioNetFrontend& dev_;
  ApacheCosts costs_;
  std::uint64_t listen_flow_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<RequestSink>> sinks_;
  std::unique_ptr<ListenerTask> listener_;
  std::unique_ptr<ListenSink> listen_sink_;
  std::int64_t served_ = 0;
  std::int64_t accepts_ = 0;
  std::int64_t syn_drops_ = 0;
  std::int64_t accept_queue_drops_ = 0;
  std::int64_t shed_drops_ = 0;
};

/// ApacheBench: `concurrency` persistent connections, each repeatedly
/// requesting one page and waiting for the full response.
class AbClient : public Snapshottable {
 public:
  AbClient(PeerHost& peer, std::uint64_t base_flow, int concurrency,
           ApacheCosts costs = {});

  void start();
  void stop() { running_ = false; }

  std::int64_t completed() const { return completed_; }
  void begin_window(SimTime now);
  double requests_per_sec(SimTime now) const;
  double response_mbps(SimTime now) const;

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void send_request(std::uint64_t flow);
  void on_packet(const PacketPtr& packet);

  PeerHost& peer_;
  std::uint64_t base_flow_;
  int concurrency_;
  ApacheCosts costs_;
  bool running_ = false;
  std::int64_t completed_ = 0;
  Bytes resp_bytes_ = 0;
  std::int64_t completed_base_ = 0;
  Bytes resp_bytes_base_ = 0;
  SimTime window_start_ = 0;
  std::unordered_map<std::uint64_t, Bytes> rx_progress_;  // per flow
};

/// Httperf: opens connections at `rate` conn/s; measures the TCP connect
/// time (SYN to SYN/ACK), retransmitting dropped SYNs after 1 second.
class HttperfClient : public Snapshottable {
 public:
  /// `max_pending` bounds the client-side pending-connection table (a real
  /// load generator runs out of sockets/ports eventually); attempts past
  /// it are abandoned and counted, not queued without limit.
  HttperfClient(PeerHost& peer, std::uint64_t listen_flow,
                double rate_per_sec, SimDuration syn_rto = kSecond,
                int max_pending = 1 << 20);

  void start();
  void stop() { running_ = false; }

  const Histogram& connect_time() const { return connect_time_; }
  std::int64_t attempted() const { return attempted_; }
  std::int64_t established() const { return established_; }
  std::int64_t retries() const { return retries_; }
  /// Attempts abandoned because the pending table hit max_pending.
  std::int64_t pending_overflows() const { return pending_overflows_; }

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void open_connection();
  void send_syn(std::uint64_t conn_id, SimTime first_attempt);
  void on_packet(const PacketPtr& packet);  // SYN/ACKs

  PeerHost& peer_;
  std::uint64_t listen_flow_;
  double rate_;
  SimDuration syn_rto_;
  int max_pending_;
  bool running_ = false;
  std::uint64_t next_conn_ = 1;
  std::int64_t attempted_ = 0;
  std::int64_t established_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t pending_overflows_ = 0;
  Histogram connect_time_;
  std::unordered_map<std::uint64_t, SimTime> pending_;  // conn -> first SYN
};

}  // namespace es2
