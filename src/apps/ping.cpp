#include "apps/ping.h"

#include <algorithm>
#include <vector>

namespace es2 {

PingResponder::PingResponder(GuestOs& os, VirtioNetFrontend& dev,
                             std::uint64_t flow)
    : os_(os), dev_(dev), flow_(flow) {
  os.register_flow(flow, *this);
}

void PingResponder::on_packet(Vcpu& vcpu, const PacketPtr& packet,
                              std::function<void()> done) {
  Packet reply;
  reply.proto = Proto::kIcmp;
  reply.flow = flow_;
  reply.payload = packet->payload;
  reply.wire_size = packet->wire_size;
  reply.probe_id = packet->probe_id;
  reply.sent_at = packet->sent_at;  // echo the client timestamp back
  // Kernel ICMP echo is cheap; reuse the ACK-generation cost knob.
  vcpu.guest_exec(os_.params().ack_send, [this, &vcpu, reply,
                                          done = std::move(done)]() mutable {
    ++echoed_;
    dev_.transmit(vcpu, make_packet(std::move(reply)),
                  [done = std::move(done)](bool) { done(); });
  });
}

PingClient::PingClient(PeerHost& peer, std::uint64_t flow,
                       SimDuration interval, Bytes payload)
    : peer_(peer), flow_(flow), interval_(interval), payload_(payload) {
  peer.register_flow(flow, [this](const PacketPtr& p) { on_reply(p); });
}

void PingClient::start() {
  if (running_) return;
  running_ = true;
  send_echo();
}

void PingClient::send_echo() {
  if (!running_) return;
  Packet p;
  p.proto = Proto::kIcmp;
  p.flow = flow_;
  p.payload = payload_;
  p.wire_size = payload_ + kTcpUdpHeader;
  p.probe_id = next_probe_++;
  p.sent_at = peer_.sim().now();
  outstanding_[p.probe_id] = p.sent_at;
  ++sent_;
  peer_.send(make_packet(std::move(p)));
  peer_.sim().after(interval_, [this] { send_echo(); });
}

void PingClient::on_reply(const PacketPtr& packet) {
  const auto it = outstanding_.find(packet->probe_id);
  if (it == outstanding_.end()) return;
  const SimDuration rtt = peer_.sim().now() - it->second;
  outstanding_.erase(it);
  ++received_;
  rtt_.record(rtt);
  samples_.push_back(rtt);
}

void PingResponder::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_i64(echoed_);
}

void PingClient::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(flow_);
  w.put_bool(running_);
  w.put_u64(next_probe_);
  w.put_i64(sent_);
  w.put_i64(received_);
  w.put_i64(rtt_.count());
  std::vector<std::uint64_t> keys;
  keys.reserve(outstanding_.size());
  for (const auto& [k, v] : outstanding_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) {
    w.put_u64(k);
    w.put_i64(outstanding_.at(k));
  }
}

}  // namespace es2
