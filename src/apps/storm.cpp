#include "apps/storm.h"

#include <algorithm>
#include <vector>

#include "base/assert.h"

namespace es2 {

double StormShape::rate_at(SimDuration t) const {
  double r;
  if (t < ramp_up && ramp_up > 0) {
    r = base_rate + (peak_rate - base_rate) * static_cast<double>(t) /
                        static_cast<double>(ramp_up);
  } else if (t < ramp_up + hold) {
    r = peak_rate;
  } else if (t < ramp_up + hold + ramp_down && ramp_down > 0) {
    const SimDuration into = t - ramp_up - hold;
    r = peak_rate - (peak_rate - base_rate) * static_cast<double>(into) /
                        static_cast<double>(ramp_down);
  } else {
    r = base_rate;
  }
  if (burst_period > 0) {
    const auto phase = static_cast<double>(t % burst_period);
    if (phase < burst_duty * static_cast<double>(burst_period)) {
      r *= burst_mult;
    }
  }
  return std::max(r, 1.0);
}

StormClient::StormClient(PeerHost& peer, std::uint64_t listen_flow,
                         StormShape shape, SimDuration syn_rto,
                         int max_retries, int max_pending, Bytes syn_payload)
    : peer_(peer),
      listen_flow_(listen_flow),
      shape_(shape),
      syn_rto_(syn_rto),
      max_retries_(max_retries),
      max_pending_(max_pending),
      syn_payload_(syn_payload) {
  ES2_CHECK(shape.base_rate > 0 && shape.peak_rate >= shape.base_rate);
  ES2_CHECK(syn_rto > 0 && max_retries >= 0 && max_pending > 0);
  peer.register_flow(listen_flow,
                     [this](const PacketPtr& p) { on_packet(p); });
}

void StormClient::start() {
  ES2_CHECK(!running_);
  running_ = true;
  started_at_ = peer_.sim().now();
  window_start_ = started_at_;
  open_connection();
}

void StormClient::open_connection() {
  if (!running_) return;
  const SimTime now = peer_.sim().now();
  const std::uint64_t conn = next_conn_++;
  if (static_cast<int>(pending_.size()) >= max_pending_) {
    ++pending_overflows_;
  } else {
    ++attempted_;
    send_syn(conn, now, 0);
  }
  const double rate = shape_.rate_at(now - started_at_);
  const auto interval = static_cast<SimDuration>(1e9 / rate);
  peer_.sim().after(std::max<SimDuration>(interval, 1),
                    [this] { open_connection(); });
}

void StormClient::send_syn(std::uint64_t conn_id, SimTime first_attempt,
                           int tries) {
  if (!running_) return;
  pending_.emplace(conn_id, first_attempt);
  Packet syn;
  syn.proto = Proto::kTcp;
  syn.flow = listen_flow_;
  // TFO-style: the SYN carries the request, so the guest pays the full
  // TCP-with-payload receive cost for every storm packet.
  syn.payload = syn_payload_;
  syn.wire_size = syn_payload_ + kTcpUdpHeader;
  syn.flags.syn = true;
  syn.probe_id = conn_id;
  peer_.send(make_packet(std::move(syn)));
  peer_.sim().after(syn_rto_, [this, conn_id, first_attempt, tries] {
    if (!running_) return;
    const auto it = pending_.find(conn_id);
    if (it == pending_.end()) return;  // established meanwhile
    pending_.erase(it);
    if (tries + 1 >= max_retries_) {
      // Retry budget exhausted: the user gave up. This is what eventually
      // deflates the retransmit flywheel once the ramp ends.
      ++abandoned_;
      return;
    }
    ++retries_;
    send_syn(conn_id, first_attempt, tries + 1);
  });
}

void StormClient::on_packet(const PacketPtr& packet) {
  if (packet->flags.syn && packet->flags.ack) {
    const auto it = pending_.find(packet->probe_id);
    if (it == pending_.end()) return;  // late SYN/ACK after abandonment
    connect_time_.record(peer_.sim().now() - it->second);
    pending_.erase(it);
    ++established_;
    return;
  }
  // Page data served back on an established connection.
  goodput_bytes_ += packet->payload;
}

void StormClient::begin_window(SimTime now) {
  established_base_ = established_;
  goodput_base_ = goodput_bytes_;
  window_start_ = now;
}

double StormClient::conns_per_sec(SimTime now) const {
  const SimDuration w = now - window_start_;
  if (w <= 0) return 0.0;
  return static_cast<double>(established_ - established_base_) /
         to_seconds(w);
}

double StormClient::goodput_mbps(SimTime now) const {
  return mbps(goodput_bytes_ - goodput_base_, now - window_start_);
}

void StormClient::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(listen_flow_);
  w.put_bool(running_);
  w.put_i64(started_at_);
  w.put_u64(next_conn_);
  w.put_i64(attempted_);
  w.put_i64(established_);
  w.put_i64(retries_);
  w.put_i64(abandoned_);
  w.put_i64(pending_overflows_);
  w.put_i64(goodput_bytes_);
  w.put_i64(connect_time_.count());
  std::vector<std::uint64_t> keys;
  keys.reserve(pending_.size());
  for (const auto& [k, v] : pending_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) {
    w.put_u64(k);
    w.put_i64(pending_.at(k));
  }
}

}  // namespace es2
