// Connection-storm load generator (overload-resilience workloads).
//
// Drives the guest's listen path the way a SYN-flood-shaped flash crowd
// does: the arrival rate ramps from a calm base to a peak, holds, and
// ramps back down, with a deterministic square-wave "diurnal burst"
// multiplier on top. Connections are TFO-style — the SYN carries a small
// request payload, so every arriving packet costs the guest the full TCP
// receive path (a pure header-only SYN is too cheap to outrun the poll
// loop; real storms carry data). Unanswered SYNs retransmit on an
// aggressive RTO from a bounded pending table, which is what sustains the
// offered load once the server stops answering — the livelock flywheel.
//
// Everything is deterministic: no RNG, shaped interarrival times and a
// square-wave burst gate only, so same-seed storm runs are bit-identical.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/peer.h"
#include "stats/histogram.h"

namespace es2 {

/// Arrival-rate envelope: base -> peak ramp, hold, ramp down, then base
/// again (the post-storm recovery phase), with a square-wave burst
/// multiplier (duty fraction of each period runs at rate * burst_mult).
struct StormShape {
  double base_rate = 20000.0;    // conn/s before and after the storm
  double peak_rate = 120000.0;   // conn/s at the top of the ramp
  SimDuration ramp_up = msec(300);
  SimDuration hold = msec(600);
  SimDuration ramp_down = msec(300);
  SimDuration burst_period = msec(100);
  double burst_duty = 0.5;
  double burst_mult = 1.5;

  /// Instantaneous arrival rate `t` after the storm started.
  double rate_at(SimDuration t) const;
};

/// The load generator proper (peer side). Counts establishments (SYN/ACK
/// received), retransmissions, abandoned attempts (retry cap) and goodput
/// bytes (page payload received back on established connections).
class StormClient : public Snapshottable {
 public:
  StormClient(PeerHost& peer, std::uint64_t listen_flow, StormShape shape,
              SimDuration syn_rto = msec(50), int max_retries = 5,
              int max_pending = 65536, Bytes syn_payload = 64);

  void start();
  void stop() { running_ = false; }

  std::int64_t attempted() const { return attempted_; }
  std::int64_t established() const { return established_; }
  std::int64_t retries() const { return retries_; }
  /// Attempts given up after max_retries unanswered SYNs.
  std::int64_t abandoned() const { return abandoned_; }
  /// Attempts never made because the pending table was full (client-side
  /// port exhaustion — the client's own finite-capacity bound).
  std::int64_t pending_overflows() const { return pending_overflows_; }
  Bytes goodput_bytes() const { return goodput_bytes_; }
  const Histogram& connect_time() const { return connect_time_; }

  /// Measurement-window helpers (same pattern as AbClient).
  void begin_window(SimTime now);
  double conns_per_sec(SimTime now) const;
  double goodput_mbps(SimTime now) const;
  std::int64_t established_in_window() const {
    return established_ - established_base_;
  }

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void open_connection();
  void send_syn(std::uint64_t conn_id, SimTime first_attempt, int tries);
  void on_packet(const PacketPtr& packet);

  PeerHost& peer_;
  std::uint64_t listen_flow_;
  StormShape shape_;
  SimDuration syn_rto_;
  int max_retries_;
  int max_pending_;
  Bytes syn_payload_;
  bool running_ = false;
  SimTime started_at_ = 0;
  std::uint64_t next_conn_ = 1;
  std::int64_t attempted_ = 0;
  std::int64_t established_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t abandoned_ = 0;
  std::int64_t pending_overflows_ = 0;
  Bytes goodput_bytes_ = 0;
  std::int64_t established_base_ = 0;
  Bytes goodput_base_ = 0;
  SimTime window_start_ = 0;
  Histogram connect_time_;
  std::unordered_map<std::uint64_t, SimTime> pending_;  // conn -> first SYN
};

}  // namespace es2
