#include "apps/memcached.h"

#include <algorithm>

#include "base/assert.h"
#include "base/strings.h"
#include "metrics/metrics.h"

namespace es2 {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct PendingRequest {
  std::uint64_t flow = 0;
  std::uint64_t probe_id = 0;
  bool is_get = true;
};

class MemcachedServer::Worker final : public GuestTask {
 public:
  Worker(MemcachedServer& server, int index, int vcpu)
      : GuestTask(server.os_, format("memcached/%d", index), vcpu),
        server_(server) {
    block_self();  // idle until the sink queues work
  }

  /// False when the worker queue is at its cap (the request is dropped).
  bool enqueue(PendingRequest req) {
    if (static_cast<int>(queue_.size()) >= server_.costs_.queue_cap) {
      return false;
    }
    queue_.push_back(req);
    server_.max_queue_depth_ =
        std::max(server_.max_queue_depth_, static_cast<int>(queue_.size()));
    wake();
    return true;
  }

  void run_unit(Vcpu& vcpu) override {
    if (queue_.empty()) {
      block_self();
      os().task_done(vcpu);
      return;
    }
    const PendingRequest req = queue_.front();
    queue_.pop_front();
    const MemcachedCosts& c = server_.costs_;
    const Cycles service = req.is_get ? c.get_service : c.set_service;
    const Bytes resp_size = req.is_get ? c.get_response : c.set_response;
    const GuestParams& gp = os().params();
    const Cycles send_cost =
        gp.tcp_send_per_packet +
        static_cast<Cycles>(gp.tx_cycles_per_byte *
                            static_cast<double>(resp_size));
    vcpu.guest_exec(service + send_cost, [this, &vcpu, req, resp_size] {
      Packet resp;
      resp.proto = Proto::kTcp;
      resp.flow = req.flow;
      resp.payload = resp_size;
      resp.wire_size = resp_size + kTcpUdpHeader;
      resp.probe_id = req.probe_id;
      server_.dev_.transmit(
          vcpu, make_packet(std::move(resp)), [this, &vcpu](bool sent) {
            if (sent) {
              ++server_.responses_;
              os().note_app_progress();
            }
            // On a full ring the response is dropped; memaslap's outstanding
            // slot stalls, which is the real failure mode under overload.
            os().task_done(vcpu);
          });
    });
  }

 private:
  MemcachedServer& server_;
  std::deque<PendingRequest> queue_;
};

class MemcachedServer::Sink final : public FlowSink {
 public:
  Sink(MemcachedServer& server, std::uint64_t flow) : server_(server) {
    server.os_.register_flow(flow, *this);
  }

  void on_packet(Vcpu&, const PacketPtr& packet,
                 std::function<void()> done) override {
    PendingRequest req;
    req.flow = packet->flow;
    req.probe_id = packet->probe_id;
    req.is_get = packet->payload <= 128;  // gets carry tiny requests
    const size_t w = packet->flow % server_.workers_.size();
    if (!server_.workers_[w]->enqueue(req)) ++server_.queue_drops_;
    done();
  }

 private:
  MemcachedServer& server_;
};

MemcachedServer::MemcachedServer(GuestOs& os, VirtioNetFrontend& dev,
                                 std::uint64_t base_flow, int client_threads,
                                 int workers, MemcachedCosts costs)
    : os_(os), dev_(dev), costs_(costs) {
  ES2_CHECK(workers > 0 && client_threads > 0);
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(*this, i, i % os.vm().num_vcpus()));
    os.add_task(*workers_.back());
  }
  for (int t = 0; t < client_threads; ++t) {
    sinks_.push_back(std::make_unique<Sink>(*this, base_flow + t));
  }
}

MemcachedServer::~MemcachedServer() = default;

// ---------------------------------------------------------------------------
// memaslap
// ---------------------------------------------------------------------------

MemaslapClient::MemaslapClient(PeerHost& peer, std::uint64_t base_flow,
                               Params params, std::uint64_t seed)
    : peer_(peer),
      base_flow_(base_flow),
      params_(params),
      rng_(Rng::stream(seed, "memaslap")) {
  for (int t = 0; t < params_.threads; ++t) {
    peer.register_flow(base_flow + t,
                       [this](const PacketPtr& p) { on_response(p); });
  }
}

void MemaslapClient::start() {
  ES2_CHECK(!running_);
  running_ = true;
  for (int t = 0; t < params_.threads; ++t) {
    for (int c = 0; c < params_.concurrency_per_thread; ++c) {
      send_request(base_flow_ + t);
    }
  }
}

void MemaslapClient::send_request(std::uint64_t flow) {
  if (!running_) return;
  const bool is_get = rng_.bernoulli(params_.get_ratio);
  Packet req;
  req.proto = Proto::kTcp;
  req.flow = flow;
  req.payload = is_get ? params_.costs.get_request : params_.costs.set_request;
  req.wire_size = req.payload + kTcpUdpHeader;
  req.probe_id = next_req_++;
  outstanding_[req.probe_id] = peer_.sim().now();
  peer_.send(make_packet(std::move(req)));
}

void MemaslapClient::on_response(const PacketPtr& packet) {
  const auto it = outstanding_.find(packet->probe_id);
  if (it != outstanding_.end()) {
    latency_.record(peer_.sim().now() - it->second);
    outstanding_.erase(it);
  }
  ++ops_;
  resp_bytes_ += packet->payload;
  send_request(packet->flow);  // keep the concurrency window full
}

void MemaslapClient::begin_window(SimTime now) {
  ops_base_ = ops_;
  resp_bytes_base_ = resp_bytes_;
  window_start_ = now;
}

double MemaslapClient::ops_per_sec(SimTime now) const {
  const SimDuration w = now - window_start_;
  if (w <= 0) return 0.0;
  return static_cast<double>(ops_ - ops_base_) / to_seconds(w);
}

double MemaslapClient::response_mbps(SimTime now) const {
  return mbps(resp_bytes_ - resp_bytes_base_, now - window_start_);
}

void MemcachedServer::register_metrics(MetricsRegistry& registry) {
  const std::string vm = os_.vm().name();
  registry.probe("app.memcached.responses", {{"vm", vm}}, [this] {
    return static_cast<double>(responses_);
  });
  registry.probe("drops", {{"cause", "worker_queue"}, {"vm", vm}}, [this] {
    return static_cast<double>(queue_drops_);
  });
}

void MemcachedServer::snapshot_state(SnapshotWriter& w) const {
  w.put_i64(responses_);
  w.put_i64(response_bytes_);
  w.put_u32(static_cast<std::uint32_t>(max_queue_depth_));
  w.put_i64(queue_drops_);
  w.put_u32(static_cast<std::uint32_t>(workers_.size()));
}

void MemaslapClient::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_u64(base_flow_);
  w.put_bool(running_);
  w.put_u64(next_req_);
  w.put_i64(ops_);
  w.put_i64(resp_bytes_);
  w.put_i64(latency_.count());
  std::vector<std::uint64_t> keys;
  keys.reserve(outstanding_.size());
  for (const auto& [k, v] : outstanding_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t k : keys) {
    w.put_u64(k);
    w.put_i64(outstanding_.at(k));
  }
}

}  // namespace es2
