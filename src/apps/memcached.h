// Memcached server + memaslap load generator (paper Fig. 8a).
//
// Guest: worker tasks (one per vCPU) service get/set requests from a
// per-worker queue fed by the flow sink; responses go back through the
// paravirtual device. Peer: memaslap keeps `threads x concurrency`
// requests outstanding with a get/set ratio, counting completed ops.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "net/peer.h"
#include "stats/histogram.h"

namespace es2 {

struct MemcachedCosts {
  Cycles get_service = 12000;   // hash lookup + response assembly
  Cycles set_service = 16000;   // allocation + store
  Bytes get_request = 40;
  Bytes get_response = 1076;    // 1 KiB value + framing
  Bytes set_request = 1064;
  Bytes set_response = 8;
  /// Per-worker request queue depth; requests past it are dropped
  /// (drops{cause=worker_queue}). The default never trips at paper rates —
  /// it exists so overload cannot grow the queue without bound.
  int queue_cap = 65536;
};

class MemcachedServer : public Snapshottable {
 public:
  /// Spawns `workers` guest tasks, one per vCPU round-robin. Flows
  /// [base_flow, base_flow + client_threads) route to workers by flow id.
  MemcachedServer(GuestOs& os, VirtioNetFrontend& dev,
                  std::uint64_t base_flow, int client_threads, int workers,
                  MemcachedCosts costs = {});
  ~MemcachedServer();
  MemcachedServer(const MemcachedServer&) = delete;
  MemcachedServer& operator=(const MemcachedServer&) = delete;

  std::int64_t responses() const { return responses_; }
  Bytes response_bytes() const { return response_bytes_; }
  int max_queue_depth() const { return max_queue_depth_; }
  /// Requests dropped because a worker's queue hit MemcachedCosts::queue_cap.
  std::int64_t queue_drops() const { return queue_drops_; }

  /// Registers app-level telemetry: responses plus the canonical
  /// drops{cause=worker_queue} series.
  void register_metrics(MetricsRegistry& registry);

  void snapshot_state(SnapshotWriter& w) const override;

 private:
  class Worker;
  class Sink;

  GuestOs& os_;
  VirtioNetFrontend& dev_;
  MemcachedCosts costs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::int64_t responses_ = 0;
  Bytes response_bytes_ = 0;
  int max_queue_depth_ = 0;
  std::int64_t queue_drops_ = 0;
};

class MemaslapClient : public Snapshottable {
 public:
  struct Params {
    int threads = 16;
    int concurrency_per_thread = 16;  // 16 x 16 = 256 concurrent requests
    double get_ratio = 0.9;
    MemcachedCosts costs;  // request/response sizes must match the server
  };

  MemaslapClient(PeerHost& peer, std::uint64_t base_flow, Params params,
                 std::uint64_t seed);

  void start();
  void stop() { running_ = false; }

  std::int64_t ops() const { return ops_; }
  void begin_window(SimTime now);
  double ops_per_sec(SimTime now) const;
  double response_mbps(SimTime now) const;
  const Histogram& latency() const { return latency_; }

  /// Serializes the load-generator RNG, op counters and the outstanding
  /// request set (sorted ids).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void send_request(std::uint64_t flow);
  void on_response(const PacketPtr& packet);

  PeerHost& peer_;
  std::uint64_t base_flow_;
  Params params_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t next_req_ = 1;
  std::int64_t ops_ = 0;
  Bytes resp_bytes_ = 0;
  std::int64_t ops_base_ = 0;
  Bytes resp_bytes_base_ = 0;
  SimTime window_start_ = 0;
  Histogram latency_;
  std::unordered_map<std::uint64_t, SimTime> outstanding_;
};

}  // namespace es2
