// x86 interrupt-vector space, following the Linux allocation strategy.
//
// ES2's interrupt redirection must only touch *device* interrupts: timer
// and IPI vectors are generated for a specific vCPU and redirecting them
// would crash the guest (paper §V-C). Linux's strict vector allocation
// makes the distinction a simple range test, which is exactly what ES2
// exploits — reproduced here.
#pragma once

#include <cstdint>

namespace es2 {

using Vector = std::uint8_t;

// 0x00–0x1F: architectural exceptions (never delivered as interrupts here).
inline constexpr Vector kFirstExternalVector = 0x20;

// Device (external) interrupt vectors: what MSI/MSI-X interrupts from
// virtio devices are allocated from.
inline constexpr Vector kFirstDeviceVector = 0x30;
inline constexpr Vector kLastDeviceVector = 0xEB;

// Per-vCPU system vectors (must never be redirected).
inline constexpr Vector kLocalTimerVector = 0xEC;
inline constexpr Vector kRescheduleIpiVector = 0xFD;
inline constexpr Vector kCallFunctionIpiVector = 0xFB;

// The special posted-interrupt notification vector (paper Fig. 2 step 2):
// receipt in guest mode triggers PIR->vIRR sync in hardware, no VM exit.
inline constexpr Vector kPostedInterruptVector = 0xF2;
// Posted-interrupt wakeup vector: notifies the hypervisor that a posted
// interrupt targets a vCPU that is not running (KVM's PI wakeup handler).
inline constexpr Vector kPostedInterruptWakeupVector = 0xF1;

/// True for vectors ES2 may redirect (device interrupts only).
constexpr bool is_device_vector(Vector v) {
  return v >= kFirstDeviceVector && v <= kLastDeviceVector;
}

/// Interrupt delivery modes relevant to the redirection validity argument
/// (paper §V-C): lowest-priority interrupts may land on any core, fixed
/// ones only on the programmed destination.
enum class DeliveryMode : std::uint8_t {
  kFixed = 0,
  kLowestPriority = 1,
};

/// A Message Signaled Interrupt as routed by kvm_set_msi_irq: the
/// destination vCPU index comes from the MSI address (guest affinity), the
/// vector from the MSI data.
struct MsiMessage {
  Vector vector = 0;
  int dest_vcpu = 0;  // guest-affinity destination (vCPU index in the VM)
  DeliveryMode mode = DeliveryMode::kLowestPriority;
};

}  // namespace es2
