// Software-emulated per-vCPU Local-APIC (the Baseline configuration).
//
// This is the KVM in-kernel LAPIC emulation as far as the event path is
// concerned: interrupt state lives in host software, so getting an
// interrupt *into* a running guest requires kicking the vCPU out of guest
// mode (EXTERNAL_INTERRUPT exit) and injecting at the next VM entry, and
// every guest EOI write traps (APIC_ACCESS exit). The exit orchestration
// itself lives in vm::Vcpu; this class holds the register state.
#pragma once

#include <cstdint>

#include "apic/irr.h"
#include "apic/vectors.h"

namespace es2 {

class SnapshotWriter;

class EmulatedLapic {
 public:
  /// Records a pending interrupt (hypervisor-side IRR write).
  void post(Vector vector) {
    irr_.set(vector);
    ++posts_;
  }

  bool has_pending() const { return irr_.any(); }

  /// Highest-priority pending vector not masked by one in service, or -1.
  /// The x86 rule: a pending vector is deliverable only if its priority
  /// class exceeds the highest in-service vector's.
  int deliverable() const;

  /// Moves the given pending vector to in-service (interrupt injection).
  void begin_service(Vector vector);

  /// Guest EOI: retires the highest in-service vector.
  /// Returns true if another interrupt became deliverable.
  bool eoi();

  int in_service_count() const { return isr_.count(); }
  int pending_count() const { return irr_.count(); }
  bool in_service(Vector v) const { return isr_.test(v); }

  /// Lifetime totals (metrics probes): interrupts posted to the IRR and
  /// EOI writes serviced. Never reset by reset() — the registry samples
  /// cumulative values.
  std::int64_t posts() const { return posts_; }
  std::int64_t eois() const { return eois_; }

  void reset();

  /// Serializes IRR/ISR words plus lifetime counters (es2-snap-v1 fields).
  void snapshot_state(SnapshotWriter& w) const;

 private:
  IrqBitmap irr_;
  IrqBitmap isr_;
  std::int64_t posts_ = 0;
  std::int64_t eois_ = 0;
};

}  // namespace es2
