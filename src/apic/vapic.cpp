#include "apic/vapic.h"

#include "snapshot/snapshot.h"

namespace es2 {

namespace {
int prio_class(int vector) { return vector >> 4; }
}  // namespace

int VApicPage::deliverable() const {
  const int pending = virr_.highest();
  if (pending < 0) return -1;
  const int in_service = visr_.highest();
  if (in_service >= 0 && prio_class(pending) <= prio_class(in_service)) {
    return -1;
  }
  return pending;
}

Vector VApicPage::deliver() {
  const int v = deliverable();
  ES2_CHECK_MSG(v >= 0, "deliver with no deliverable virtual interrupt");
  virr_.clear(static_cast<Vector>(v));
  visr_.set(static_cast<Vector>(v));
  return static_cast<Vector>(v);
}

bool VApicPage::eoi() {
  if (visr_.any()) visr_.pop_highest();
  ++eois_;
  return deliverable() >= 0;
}

void VApicPage::reset() {
  pi_.reset();
  virr_.reset();
  visr_.reset();
}

void PiDescriptor::snapshot_state(SnapshotWriter& w) const {
  for (int i = 0; i < 4; ++i) w.put_u64(pir_.word(i));
  w.put_bool(outstanding_notification_);
  w.put_i64(posts_);
  w.put_i64(notifications_);
}

void VApicPage::snapshot_state(SnapshotWriter& w) const {
  pi_.snapshot_state(w);
  for (int i = 0; i < 4; ++i) w.put_u64(virr_.word(i));
  for (int i = 0; i < 4; ++i) w.put_u64(visr_.word(i));
  w.put_i64(eois_);
}

}  // namespace es2
