#include "apic/lapic.h"

#include "snapshot/snapshot.h"

namespace es2 {

namespace {
// Priority class of a vector: bits 7..4.
int prio_class(int vector) { return vector >> 4; }
}  // namespace

int EmulatedLapic::deliverable() const {
  const int pending = irr_.highest();
  if (pending < 0) return -1;
  const int in_service = isr_.highest();
  if (in_service >= 0 && prio_class(pending) <= prio_class(in_service)) {
    return -1;
  }
  return pending;
}

void EmulatedLapic::begin_service(Vector vector) {
  ES2_CHECK_MSG(irr_.test(vector), "injecting vector that is not pending");
  irr_.clear(vector);
  isr_.set(vector);
}

bool EmulatedLapic::eoi() {
  if (isr_.any()) isr_.pop_highest();
  ++eois_;
  return deliverable() >= 0;
}

void EmulatedLapic::reset() {
  irr_.reset();
  isr_.reset();
}

void EmulatedLapic::snapshot_state(SnapshotWriter& w) const {
  for (int i = 0; i < 4; ++i) w.put_u64(irr_.word(i));
  for (int i = 0; i < 4; ++i) w.put_u64(isr_.word(i));
  w.put_i64(posts_);
  w.put_i64(eois_);
}

}  // namespace es2
