// 256-bit interrupt request/in-service register bitmap.
#pragma once

#include <cstdint>
#include <bit>

#include "base/assert.h"

namespace es2 {

/// Fixed 256-bit bitmap with highest-set-bit query, modeling the IRR/ISR
/// registers of a Local-APIC (one bit per vector, higher vector = higher
/// priority).
class IrqBitmap {
 public:
  void set(std::uint8_t vector) {
    words_[vector >> 6] |= 1ULL << (vector & 63);
  }

  void clear(std::uint8_t vector) {
    words_[vector >> 6] &= ~(1ULL << (vector & 63));
  }

  bool test(std::uint8_t vector) const {
    return (words_[vector >> 6] >> (vector & 63)) & 1;
  }

  bool any() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }

  /// Highest set vector, or -1 when empty.
  int highest() const {
    for (int w = 3; w >= 0; --w) {
      if (words_[w] != 0) {
        const int bit = 63 - std::countl_zero(words_[w]);
        return w * 64 + bit;
      }
    }
    return -1;
  }

  /// Pops (returns and clears) the highest set vector; bitmap must be
  /// non-empty.
  std::uint8_t pop_highest() {
    const int v = highest();
    ES2_CHECK_MSG(v >= 0, "pop from empty IrqBitmap");
    clear(static_cast<std::uint8_t>(v));
    return static_cast<std::uint8_t>(v);
  }

  int count() const {
    return std::popcount(words_[0]) + std::popcount(words_[1]) +
           std::popcount(words_[2]) + std::popcount(words_[3]);
  }

  void reset() { words_[0] = words_[1] = words_[2] = words_[3] = 0; }

  /// Raw 64-bit word `i` (0..3) of the bitmap, for state serialization.
  std::uint64_t word(int i) const { return words_[i]; }

 private:
  std::uint64_t words_[4] = {0, 0, 0, 0};
};

}  // namespace es2
