// Hardware virtual-APIC page and posted-interrupt descriptor (the PI
// configurations).
//
// Models the Intel APICv structures from the paper's Fig. 2:
//  * `PiDescriptor` — the per-vCPU posted-interrupt descriptor: a 256-bit
//    Posted Interrupt Request (PIR) bitmap plus the Outstanding
//    Notification (ON) bit that suppresses duplicate notification IPIs.
//  * `VApicPage` — the per-vCPU virtual-APIC page holding virtual IRR/ISR.
//    Hardware syncs PIR->vIRR on notification receipt (guest mode) or at
//    VM entry, delivers through the guest IDT without an exit, and handles
//    virtual EOI writes without an exit.
#pragma once

#include <cstdint>

#include "apic/irr.h"
#include "apic/vectors.h"

namespace es2 {

class SnapshotWriter;

class PiDescriptor {
 public:
  /// Posts an interrupt (paper Fig. 2 step 1): sets PIR[vector] and tests
  /// the ON bit. Returns true if a notification IPI must be sent (ON was
  /// clear); duplicate posts while a notification is outstanding are
  /// coalesced by hardware.
  bool post(Vector vector) {
    pir_.set(vector);
    ++posts_;
    if (outstanding_notification_) return false;
    outstanding_notification_ = true;
    ++notifications_;
    return true;
  }

  bool has_posted() const { return pir_.any(); }
  bool outstanding() const { return outstanding_notification_; }

  /// Lifetime totals (metrics probes): PIR posts and notification IPIs
  /// actually sent. posts - notifications = interrupts coalesced by the
  /// ON bit — the paper's exit-less delivery win.
  std::int64_t posts() const { return posts_; }
  std::int64_t notifications() const { return notifications_; }

  /// Hardware PIR->vIRR sync (Fig. 2 step 3 / VM-entry processing):
  /// clears ON, drains PIR into `dest`.
  void sync_into(IrqBitmap& dest) {
    outstanding_notification_ = false;
    while (pir_.any()) dest.set(pir_.pop_highest());
  }

  void reset() {
    pir_.reset();
    outstanding_notification_ = false;
  }

  /// Serializes PIR words, the ON bit and lifetime counters.
  void snapshot_state(SnapshotWriter& w) const;

 private:
  IrqBitmap pir_;
  bool outstanding_notification_ = false;
  std::int64_t posts_ = 0;
  std::int64_t notifications_ = 0;
};

class VApicPage {
 public:
  PiDescriptor& pi() { return pi_; }
  const PiDescriptor& pi() const { return pi_; }

  /// Syncs posted interrupts into the virtual IRR.
  void sync_pir() { pi_.sync_into(virr_); }

  /// Highest deliverable virtual vector respecting in-service priority,
  /// or -1.
  int deliverable() const;

  /// Hardware virtual-interrupt delivery (Fig. 2 step 4): IRR->ISR without
  /// a VM exit. Returns the delivered vector.
  Vector deliver();

  /// Virtual EOI (Fig. 2 step 5), no VM exit. Returns true if another
  /// virtual interrupt became deliverable (hardware re-evaluates).
  bool eoi();

  bool has_pending() const { return virr_.any(); }
  int in_service_count() const { return visr_.count(); }

  /// Lifetime virtual-EOI count (metrics probe) — completions that took
  /// no VM exit.
  std::int64_t eois() const { return eois_; }

  void reset();

  /// Serializes the PI descriptor plus vIRR/vISR words and EOI count.
  void snapshot_state(SnapshotWriter& w) const;

 private:
  PiDescriptor pi_;
  IrqBitmap virr_;
  IrqBitmap visr_;
  std::int64_t eois_ = 0;
};

}  // namespace es2
