// External bare-metal peer host (the paper's traffic-generator server).
//
// The peer is NOT virtualized: it processes packets with a small fixed
// per-packet delay (a tuned bare-metal server on the other end of the
// back-to-back cable) and runs the client/sink side of each benchmark.
// Per-flow handlers are registered by the workload engines in src/apps.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace es2 {

class PeerHost : public Snapshottable {
 public:
  using FlowHandler = std::function<void(const PacketPtr&)>;

  /// `to_vm` carries peer->VM traffic. Peer->self processing delay models
  /// the bare-metal stack (default ~2.5us/packet).
  PeerHost(Simulator& sim, Link& to_vm,
           SimDuration proc_delay = 2500 /*ns*/);

  /// Wires the VM->peer direction into this host.
  void attach_rx(Link& from_vm);

  void register_flow(std::uint64_t flow, FlowHandler handler);
  void unregister_flow(std::uint64_t flow);

  /// Transmits after the bare-metal processing delay.
  void send(PacketPtr packet);
  /// Transmits after an explicit additional delay.
  void send_after(SimDuration delay, PacketPtr packet);

  Simulator& sim() { return sim_; }
  std::int64_t unrouted() const { return unrouted_; }

  /// Serializes the registered flow set (sorted ids — flows_ is an
  /// unordered_map, never walked in hash order) and the unrouted count.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void on_receive(const PacketPtr& packet);

  Simulator& sim_;
  Link& to_vm_;
  SimDuration proc_delay_;
  std::unordered_map<std::uint64_t, FlowHandler> flows_;
  std::int64_t unrouted_ = 0;
};

}  // namespace es2
