// Network packet model.
//
// Packets are metadata-only (no payload bytes are simulated): enough for
// the mini TCP/UDP stacks and the workload generators to reproduce the
// traffic patterns the paper's benchmarks create — streams with ACK
// clocking, request/response exchanges, and connection handshakes.
#pragma once

#include <cstdint>
#include <memory>

#include "base/units.h"
#include "snapshot/snapshot.h"

namespace es2 {

inline constexpr Bytes kMtu = 1500;          // paper: default MTU
inline constexpr Bytes kTcpUdpHeader = 54;   // eth + IP + TCP-ish framing

enum class Proto : std::uint8_t { kTcp, kUdp, kIcmp };

/// TCP-ish control flags; meaningful only when proto == kTcp.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
};

struct Packet {
  Proto proto = Proto::kUdp;
  std::uint64_t flow = 0;       // connection / stream id
  Bytes wire_size = 0;          // bytes on the wire (headers included)
  Bytes payload = 0;            // application payload bytes
  std::uint64_t seq = 0;        // cumulative byte sequence (TCP) or pkt no.
  std::uint64_t ack_seq = 0;    // cumulative ACK (TCP)
  TcpFlags flags;
  SimTime sent_at = 0;          // stamped by the sender for RTT metrics
  std::uint64_t probe_id = 0;   // echo/request correlation (ICMP, RPC)
};

using PacketPtr = std::shared_ptr<const Packet>;

inline PacketPtr make_packet(Packet p) {
  return std::make_shared<const Packet>(std::move(p));
}

/// Serializes one packet's metadata (or a null marker) into a snapshot.
/// Shared by every component that queues PacketPtrs, so all snapshots
/// agree on the encoding.
inline void snapshot_packet(SnapshotWriter& w, const PacketPtr& p) {
  w.put_bool(p != nullptr);
  if (p == nullptr) return;
  w.put_u8(static_cast<std::uint8_t>(p->proto));
  w.put_u64(p->flow);
  w.put_i64(p->wire_size);
  w.put_i64(p->payload);
  w.put_u64(p->seq);
  w.put_u64(p->ack_seq);
  w.put_bool(p->flags.syn);
  w.put_bool(p->flags.ack);
  w.put_bool(p->flags.fin);
  w.put_i64(p->sent_at);
  w.put_u64(p->probe_id);
}

/// RSS flow hash (FNV-1a). The model's flow id already identifies a
/// connection — it stands in for the src/dst address+port of a real
/// 5-tuple; the protocol completes it. Deterministic across runs and
/// platforms, so same-seed steering decisions are reproducible.
inline std::uint32_t rss_hash(Proto proto, std::uint64_t flow) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(proto));
  mix(flow);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/// Number of MTU-sized segments a message of `bytes` payload occupies.
constexpr int segments_for(Bytes bytes) {
  const Bytes per_seg = kMtu - kTcpUdpHeader;
  if (bytes <= 0) return 1;
  return static_cast<int>((bytes + per_seg - 1) / per_seg);
}

}  // namespace es2
