// Point-to-point link model (the back-to-back 40GbE cable of the paper's
// testbed).
//
// The link serializes packets at `bandwidth_bps` and adds a fixed
// propagation + NIC processing delay. The evaluation workloads are event-
// path-bound, not wire-bound, so the link rarely saturates — but modeling
// serialization keeps large-message benches honest.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"
#include "stats/meters.h"

namespace es2 {

class FaultInjector;
class MetricsRegistry;

class Link : public Snapshottable {
 public:
  using Receiver = std::function<void(PacketPtr)>;

  /// A unidirectional link; build two for a full-duplex cable.
  Link(Simulator& sim, double bandwidth_gbps, SimDuration latency);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Attaches a fault injector (loss / reorder / duplication). Null (the
  /// default) keeps the link perfect and draws no random numbers.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Queues a packet for transmission; delivery happens after
  /// serialization + propagation.
  void transmit(PacketPtr packet);

  std::int64_t packets_sent() const { return packets_.value(); }
  Bytes bytes_sent() const { return bytes_.value(); }
  /// Packets lost on the wire (fault injection); a perfect link stays 0.
  std::int64_t packets_dropped() const { return dropped_.value(); }
  /// Packets serialized onto the wire but not yet delivered.
  int in_flight() const { return in_flight_; }

  /// Registers wire telemetry probes (label link=<direction>).
  void register_metrics(MetricsRegistry& registry,
                        const std::string& direction);

  /// Serializes serializer occupancy (line_free_at, in-flight count) and
  /// lifetime wire counters.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  SimDuration serialization_delay(Bytes size) const;

  Simulator& sim_;
  double bandwidth_bps_;
  SimDuration latency_;
  Receiver receiver_;
  FaultInjector* faults_ = nullptr;
  SimTime line_free_at_ = 0;  // when the serializer becomes idle
  int in_flight_ = 0;         // delivery events scheduled, not yet fired
  Counter packets_;
  Counter bytes_;
  Counter dropped_;
};

/// Full-duplex cable: two independent directions.
struct DuplexLink {
  DuplexLink(Simulator& sim, double bandwidth_gbps, SimDuration latency)
      : a_to_b(sim, bandwidth_gbps, latency),
        b_to_a(sim, bandwidth_gbps, latency) {}
  Link a_to_b;
  Link b_to_a;
};

}  // namespace es2
