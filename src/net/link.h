// Point-to-point link model (the back-to-back 40GbE cable of the paper's
// testbed).
//
// The link serializes packets at `bandwidth_bps` and adds a fixed
// propagation + NIC processing delay. The evaluation workloads are event-
// path-bound, not wire-bound, so the link rarely saturates — but modeling
// serialization keeps large-message benches honest.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"
#include "stats/meters.h"

namespace es2 {

class FaultInjector;
class MetricsRegistry;

class Link : public Snapshottable {
 public:
  using Receiver = std::function<void(PacketPtr)>;

  /// A unidirectional link; build two for a full-duplex cable.
  Link(Simulator& sim, double bandwidth_gbps, SimDuration latency);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Attaches a fault injector (loss / reorder / duplication). Null (the
  /// default) keeps the link perfect and draws no random numbers.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Queues a packet for transmission; delivery happens after
  /// serialization + propagation.
  void transmit(PacketPtr packet);

  /// Ethernet-pause-style ingress admission control (the overload ladder's
  /// RX-backpressure rung): while `keep_every` > 1 the link admits one in
  /// `keep_every` packets and sheds the rest at the NIC, before they cost
  /// any wire or backend time. 0/1 disables (the default: a passive link).
  /// Deterministic by construction — a modulo counter, no RNG.
  void set_backpressure(int keep_every) {
    backpressure_keep_ = keep_every;
  }
  int backpressure_keep() const { return backpressure_keep_; }

  std::int64_t packets_sent() const { return packets_.value(); }
  Bytes bytes_sent() const { return bytes_.value(); }
  /// Packets lost on the wire (fault injection); a perfect link stays 0.
  std::int64_t packets_dropped() const { return dropped_.value(); }
  /// Packets shed by ingress backpressure (overload rung 2); 0 unless the
  /// admission ladder escalated to the link.
  std::int64_t packets_shed() const { return shed_.value(); }
  /// Packets serialized onto the wire but not yet delivered.
  int in_flight() const { return in_flight_; }

  /// Registers wire telemetry probes (label link=<direction>).
  void register_metrics(MetricsRegistry& registry,
                        const std::string& direction);

  /// Registers this link's rows of the canonical `drops{cause=...}` family
  /// (wire loss and backpressure shedding), label link=<direction>.
  void register_drop_metrics(MetricsRegistry& registry,
                             const std::string& direction);

  /// Serializes serializer occupancy (line_free_at, in-flight count) and
  /// lifetime wire counters.
  void snapshot_state(SnapshotWriter& w) const override;

  /// Appends the overload-ladder fields (backpressure config/sequence,
  /// shed count) to snapshot_state. Armed by the testbed only when
  /// overload mitigation is on, so every pre-overload world keeps its
  /// exact snapshot byte layout.
  void arm_overload_snapshot() { snapshot_overload_ = true; }

 private:
  SimDuration serialization_delay(Bytes size) const;

  Simulator& sim_;
  double bandwidth_bps_;
  SimDuration latency_;
  Receiver receiver_;
  FaultInjector* faults_ = nullptr;
  SimTime line_free_at_ = 0;  // when the serializer becomes idle
  int in_flight_ = 0;         // delivery events scheduled, not yet fired
  int backpressure_keep_ = 0;       // admit 1-in-N while > 1 (0/1 = off)
  std::uint64_t backpressure_seq_ = 0;
  bool snapshot_overload_ = false;
  Counter packets_;
  Counter bytes_;
  Counter dropped_;
  Counter shed_;
};

/// Full-duplex cable: two independent directions.
struct DuplexLink {
  DuplexLink(Simulator& sim, double bandwidth_gbps, SimDuration latency)
      : a_to_b(sim, bandwidth_gbps, latency),
        b_to_a(sim, bandwidth_gbps, latency) {}
  Link a_to_b;
  Link b_to_a;
};

}  // namespace es2
