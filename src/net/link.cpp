#include "net/link.h"

#include <algorithm>

#include "base/assert.h"
#include "fault/fault.h"
#include "metrics/metrics.h"

namespace es2 {

Link::Link(Simulator& sim, double bandwidth_gbps, SimDuration latency)
    : sim_(sim), bandwidth_bps_(bandwidth_gbps * 1e9), latency_(latency) {
  ES2_CHECK(bandwidth_gbps > 0);
  ES2_CHECK(latency >= 0);
}

SimDuration Link::serialization_delay(Bytes size) const {
  const double ns = static_cast<double>(size) * 8.0 * 1e9 / bandwidth_bps_;
  return std::max<SimDuration>(1, static_cast<SimDuration>(ns));
}

void Link::transmit(PacketPtr packet) {
  ES2_CHECK_MSG(receiver_ != nullptr, "link has no receiver");
  if (backpressure_keep_ > 1 &&
      (backpressure_seq_++ % static_cast<std::uint64_t>(backpressure_keep_)) !=
          0) {
    // Shed at the NIC before serialization: the whole point of pushing
    // backpressure to the link is that a shed packet costs nothing
    // downstream — no wire time, no vhost turn, no guest poll.
    shed_.add(1);
    return;
  }
  const SimTime start = std::max(sim_.now(), line_free_at_);
  const SimTime done = start + serialization_delay(packet->wire_size);
  line_free_at_ = done;
  packets_.add(1);
  bytes_.add(packet->wire_size);
  SimDuration extra = 0;
  if (faults_ != nullptr) {
    // The sender still serializes a lost packet onto the wire; it just
    // never reaches the far NIC.
    if (faults_->drop_packet()) {
      dropped_.add(1);
      return;
    }
    if (faults_->duplicate_packet()) {
      ++in_flight_;
      sim_.at(done + latency_ + 1, [this, packet] {
        --in_flight_;
        receiver_(packet);
      });
    }
    extra = faults_->reorder_extra_delay();
  }
  ++in_flight_;
  sim_.at(done + latency_ + extra, [this, packet = std::move(packet)]() mutable {
    --in_flight_;
    receiver_(std::move(packet));
  });
}

void Link::snapshot_state(SnapshotWriter& w) const {
  w.put_i64(line_free_at_);
  w.put_u32(static_cast<std::uint32_t>(in_flight_));
  w.put_i64(packets_.value());
  w.put_i64(bytes_.value());
  w.put_i64(dropped_.value());
  // Overload-ladder fields append only when armed (overload mitigation
  // on): default worlds keep the pre-overload byte layout.
  if (snapshot_overload_) {
    w.put_u32(static_cast<std::uint32_t>(backpressure_keep_));
    w.put_u64(backpressure_seq_);
    w.put_i64(shed_.value());
  }
}

void Link::register_metrics(MetricsRegistry& registry,
                            const std::string& direction) {
  MetricLabels labels = {{"link", direction}};
  registry.probe("net.link.packets", labels, [this] {
    return static_cast<double>(packets_.value());
  });
  registry.probe("net.link.bytes", labels, [this] {
    return static_cast<double>(bytes_.value());
  });
  registry.probe("net.link.dropped", labels, [this] {
    return static_cast<double>(dropped_.value());
  });
}

void Link::register_drop_metrics(MetricsRegistry& registry,
                                 const std::string& direction) {
  registry.probe("drops", {{"cause", "wire"}, {"link", direction}}, [this] {
    return static_cast<double>(dropped_.value());
  });
  registry.probe("drops", {{"cause", "backpressure"}, {"link", direction}},
                 [this] { return static_cast<double>(shed_.value()); });
}

}  // namespace es2
