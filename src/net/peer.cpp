#include "net/peer.h"

#include <algorithm>
#include <vector>

#include "base/assert.h"

namespace es2 {

PeerHost::PeerHost(Simulator& sim, Link& to_vm, SimDuration proc_delay)
    : sim_(sim), to_vm_(to_vm), proc_delay_(proc_delay) {}

void PeerHost::attach_rx(Link& from_vm) {
  from_vm.set_receiver([this](PacketPtr p) { on_receive(p); });
}

void PeerHost::register_flow(std::uint64_t flow, FlowHandler handler) {
  flows_[flow] = std::move(handler);
}

void PeerHost::unregister_flow(std::uint64_t flow) { flows_.erase(flow); }

void PeerHost::send(PacketPtr packet) {
  send_after(proc_delay_, std::move(packet));
}

void PeerHost::send_after(SimDuration delay, PacketPtr packet) {
  ES2_CHECK(delay >= 0);
  sim_.after(delay, [this, packet = std::move(packet)]() mutable {
    to_vm_.transmit(std::move(packet));
  });
}

void PeerHost::on_receive(const PacketPtr& packet) {
  const auto it = flows_.find(packet->flow);
  if (it == flows_.end()) {
    ++unrouted_;
    return;
  }
  it->second(packet);
}

void PeerHost::snapshot_state(SnapshotWriter& w) const {
  w.put_i64(proc_delay_);
  w.put_i64(unrouted_);
  std::vector<std::uint64_t> flow_ids;
  flow_ids.reserve(flows_.size());
  for (const auto& [flow, handler] : flows_) flow_ids.push_back(flow);
  std::sort(flow_ids.begin(), flow_ids.end());
  w.put_u32(static_cast<std::uint32_t>(flow_ids.size()));
  for (std::uint64_t f : flow_ids) w.put_u64(f);
}

}  // namespace es2
