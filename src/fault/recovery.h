// Lifecycle-fault instance ledger and MTTR accounting.
//
// Every injected lifecycle fault (ring corruption, torn avail-idx, wedged
// handler, crashed worker) opens a FaultInstance here; the first forward
// progress on the faulted scope after injection closes it. Because each
// fault mode stops progress on its scope by construction, time-to-first-
// progress IS the mean-time-to-recovery, measured in sim time with no
// extra events and no RNG draws (the ledger is passive: progress hooks do
// integer bookkeeping only).
//
// The recovery ladder reports which rung it pulled via note_action, so a
// closed instance records both its MTTR and the mechanism that cleared it.
// Instances still open at scenario end are the "silent wedge" signal: the
// harness turns them into structured WATCHDOG-style reports with the
// instance's trace correlation id — zero silent wedges means this list is
// empty or every entry is reported.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/units.h"
#include "snapshot/snapshot.h"
#include "virtio/device_status.h"

namespace es2 {

class MetricsRegistry;
class Histogram;

/// Fault scopes: a single queue, or the whole worker/device. Worker-scope
/// instances are closed by progress on either queue (the worker serving
/// anything proves it restarted); queue-scope instances only by progress
/// on their own queue. App scope covers receive livelock: packets flow the
/// whole time, so only application-level progress (an accept, a served
/// request) may close the instance — queue/worker progress never does.
inline constexpr int kScopeTx = 0;
inline constexpr int kScopeRx = 1;
inline constexpr int kScopeWorker = 2;
inline constexpr int kScopeApp = 3;

struct FaultInstance {
  std::int64_t id = 0;
  LifecycleFault mode = LifecycleFault::kDescCorrupt;
  int scope = kScopeTx;
  SimTime injected_at = 0;
  SimTime recovered_at = -1;
  RecoveryRung rung = RecoveryRung::kGuestWatchdog;
  bool rung_known = false;
  std::uint64_t corr = 0;  // trace correlation id (instance id if untraced)

  bool recovered() const { return recovered_at >= 0; }
  SimDuration mttr() const {
    return recovered() ? recovered_at - injected_at : -1;
  }
};

class RecoveryLog : public Snapshottable {
 public:
  /// Opens an instance; returns its id. `corr` of 0 substitutes the id so
  /// reports always carry a correlation handle.
  std::int64_t open(LifecycleFault mode, int scope, SimTime now,
                    std::uint64_t corr);

  /// Records a recovery action (ladder rung) against every open instance
  /// whose scope overlaps `scope`.
  void note_action(RecoveryRung rung, int scope);

  /// First matching progress after injection closes the instance and
  /// records its MTTR; returns how many instances closed. O(1) when
  /// nothing is open (the hot-path case: called per completed descriptor).
  int note_progress(int scope, SimTime now);

  const std::vector<FaultInstance>& instances() const { return instances_; }
  int open_count() const { return open_; }
  std::int64_t injected(LifecycleFault mode) const;
  std::int64_t recovered(LifecycleFault mode) const;

  /// MTTR distribution over recovered instances, all modes merged
  /// (sim-ns); per-mode histograms live in the registry when attached.
  const std::vector<SimDuration>& mttrs() const { return mttrs_; }

  /// Per-rung action counts (index = RecoveryRung).
  std::int64_t actions(RecoveryRung rung) const {
    return actions_[static_cast<std::size_t>(rung)];
  }

  /// Registers injected/recovered/open probes plus per-mode
  /// recovery.mttr_ns histograms (recorded at close time).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes the full ledger (Snapshottable shape; registered by the
  /// testbed only when lifecycle faults are armed, so faults-off worlds
  /// keep their exact section layout).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  static bool scopes_overlap(int a, int b) {
    // App scope is deliberately narrow: during a livelock the dataplane
    // scopes make constant progress, so only app progress may match.
    if (a == kScopeApp || b == kScopeApp) return a == b;
    return a == b || a == kScopeWorker || b == kScopeWorker;
  }

  std::vector<FaultInstance> instances_;
  std::vector<SimDuration> mttrs_;
  int open_ = 0;
  std::array<std::int64_t, static_cast<std::size_t>(RecoveryRung::kCount)>
      actions_ = {};
  std::array<Histogram*, static_cast<std::size_t>(LifecycleFault::kCount)>
      mttr_hist_ = {};
};

}  // namespace es2
