#include "fault/fault.h"

#include <algorithm>

#include "base/assert.h"
#include "metrics/metrics.h"

namespace es2 {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim),
      plan_(plan),
      rng_(sim.make_rng("fault")),
      warn_limit_(msec(10), 4) {
  ES2_CHECK(plan_.link_loss >= 0 && plan_.link_loss <= 1);
  ES2_CHECK(plan_.kick_loss >= 0 && plan_.kick_loss <= 1);
  ES2_CHECK(plan_.msi_loss >= 0 && plan_.msi_loss <= 1);
}

bool FaultInjector::drop_packet() {
  double p = plan_.link_loss;
  if (plan_.link_burst.enabled()) {
    // Advance the two-state chain once per packet, then add the state's
    // loss probability on top of the i.i.d. floor.
    const GilbertElliott& ge = plan_.link_burst;
    if (burst_bad_) {
      if (rng_.bernoulli(ge.p_bad_to_good)) burst_bad_ = false;
    } else {
      if (rng_.bernoulli(ge.p_good_to_bad)) burst_bad_ = true;
    }
    p = std::min(1.0, p + (burst_bad_ ? ge.loss_bad : ge.loss_good));
  }
  if (p <= 0 || !rng_.bernoulli(p)) return false;
  ++stats_.link_dropped;
  ES2_WARN_RL(warn_limit_, sim_.now(), "fault: link dropped packet #%lld",
              static_cast<long long>(stats_.link_dropped));
  return true;
}

bool FaultInjector::duplicate_packet() {
  if (plan_.link_duplicate <= 0 || !rng_.bernoulli(plan_.link_duplicate)) {
    return false;
  }
  ++stats_.link_duplicated;
  return true;
}

SimDuration FaultInjector::reorder_extra_delay() {
  if (plan_.link_reorder <= 0 || !rng_.bernoulli(plan_.link_reorder)) {
    return 0;
  }
  ++stats_.link_reordered;
  return std::max<SimDuration>(
      1, rng_.uniform(plan_.link_reorder_delay / 2,
                      plan_.link_reorder_delay * 3 / 2));
}

FaultInjector::KickFate FaultInjector::kick_fate() {
  if (plan_.kick_loss > 0 && rng_.bernoulli(plan_.kick_loss)) {
    ++stats_.kicks_dropped;
    ES2_WARN_RL(warn_limit_, sim_.now(), "fault: eventfd kick swallowed (#%lld)",
                static_cast<long long>(stats_.kicks_dropped));
    return KickFate::kDrop;
  }
  if (plan_.kick_delay_prob > 0 && rng_.bernoulli(plan_.kick_delay_prob)) {
    ++stats_.kicks_delayed;
    return KickFate::kDelay;
  }
  return KickFate::kDeliver;
}

bool FaultInjector::drop_msi() {
  if (plan_.msi_loss <= 0 || !rng_.bernoulli(plan_.msi_loss)) return false;
  ++stats_.msis_dropped;
  ES2_WARN_RL(warn_limit_, sim_.now(), "fault: MSI dropped (#%lld)",
              static_cast<long long>(stats_.msis_dropped));
  return true;
}

SimDuration FaultInjector::worker_stall() {
  if (plan_.worker_stall_prob <= 0 ||
      !rng_.bernoulli(plan_.worker_stall_prob)) {
    return 0;
  }
  ++stats_.worker_stalls;
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(
             rng_.exponential(static_cast<double>(plan_.worker_stall))));
}

void FaultInjector::start_spurious(std::function<void()> fire) {
  ES2_CHECK(plan_.spurious_irq_period > 0);
  spurious_timer_ = std::make_unique<PeriodicTimer>(
      sim_, plan_.spurious_irq_period,
      [this, fire = std::move(fire)] {
        ++stats_.spurious_irqs;
        fire();
      });
  spurious_timer_->start();
}

void FaultInjector::stop_spurious() {
  if (spurious_timer_) spurious_timer_->stop();
}

void FaultInjector::start_lifecycle(LifecycleHooks hooks) {
  ES2_CHECK(plan_.lifecycle_enabled());
  auto arm = [this](SimDuration period, std::int64_t FaultStats::*counter,
                    std::function<void()> fire) {
    if (period <= 0 || !fire) return;
    lifecycle_timers_.push_back(std::make_unique<PeriodicTimer>(
        sim_, period, [this, counter, fire = std::move(fire)] {
          ++(stats_.*counter);
          fire();
        }));
    lifecycle_timers_.back()->start();
  };
  arm(plan_.desc_corrupt_period, &FaultStats::desc_corruptions,
      std::move(hooks.corrupt_ring));
  arm(plan_.avail_tear_period, &FaultStats::avail_tears,
      std::move(hooks.tear_avail));
  arm(plan_.handler_wedge_period, &FaultStats::handler_wedges,
      std::move(hooks.wedge_handler));
  arm(plan_.worker_crash_period, &FaultStats::worker_crashes,
      std::move(hooks.crash_worker));
}

void FaultInjector::stop_lifecycle() {
  for (auto& t : lifecycle_timers_) t->stop();
}

void FaultInjector::register_metrics(MetricsRegistry& registry) {
  registry.probe("fault.link.dropped", {}, [this] {
    return static_cast<double>(stats_.link_dropped);
  });
  registry.probe("fault.link.reordered", {}, [this] {
    return static_cast<double>(stats_.link_reordered);
  });
  registry.probe("fault.link.duplicated", {}, [this] {
    return static_cast<double>(stats_.link_duplicated);
  });
  registry.probe("fault.kicks.dropped", {}, [this] {
    return static_cast<double>(stats_.kicks_dropped);
  });
  registry.probe("fault.kicks.delayed", {}, [this] {
    return static_cast<double>(stats_.kicks_delayed);
  });
  registry.probe("fault.msis.dropped", {}, [this] {
    return static_cast<double>(stats_.msis_dropped);
  });
  registry.probe("fault.worker.stalls", {}, [this] {
    return static_cast<double>(stats_.worker_stalls);
  });
  registry.probe("fault.spurious_irqs", {}, [this] {
    return static_cast<double>(stats_.spurious_irqs);
  });
  registry.probe("fault.desc_corruptions", {}, [this] {
    return static_cast<double>(stats_.desc_corruptions);
  });
  registry.probe("fault.avail_tears", {}, [this] {
    return static_cast<double>(stats_.avail_tears);
  });
  registry.probe("fault.handler_wedges", {}, [this] {
    return static_cast<double>(stats_.handler_wedges);
  });
  registry.probe("fault.worker_crashes", {}, [this] {
    return static_cast<double>(stats_.worker_crashes);
  });
  registry.probe("log.suppressed", {{"source", "fault"}}, [this] {
    return static_cast<double>(warn_limit_.total_suppressed());
  });
}

void FaultInjector::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_bool(burst_bad_);
  w.put_i64(stats_.link_dropped);
  w.put_i64(stats_.link_reordered);
  w.put_i64(stats_.link_duplicated);
  w.put_i64(stats_.kicks_dropped);
  w.put_i64(stats_.kicks_delayed);
  w.put_i64(stats_.msis_dropped);
  w.put_i64(stats_.worker_stalls);
  w.put_i64(stats_.spurious_irqs);
  w.put_i64(stats_.desc_corruptions);
  w.put_i64(stats_.avail_tears);
  w.put_i64(stats_.handler_wedges);
  w.put_i64(stats_.worker_crashes);
}

}  // namespace es2
