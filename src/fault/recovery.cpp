#include "fault/recovery.h"

#include "metrics/metrics.h"
#include "stats/histogram.h"

namespace es2 {

std::int64_t RecoveryLog::open(LifecycleFault mode, int scope, SimTime now,
                               std::uint64_t corr) {
  FaultInstance inst;
  inst.id = static_cast<std::int64_t>(instances_.size()) + 1;
  inst.mode = mode;
  inst.scope = scope;
  inst.injected_at = now;
  inst.corr = corr != 0 ? corr : static_cast<std::uint64_t>(inst.id);
  instances_.push_back(inst);
  ++open_;
  return inst.id;
}

void RecoveryLog::note_action(RecoveryRung rung, int scope) {
  ++actions_[static_cast<std::size_t>(rung)];
  if (open_ == 0) return;
  for (FaultInstance& inst : instances_) {
    if (inst.recovered() || !scopes_overlap(inst.scope, scope)) continue;
    // Record the highest rung pulled while this instance was open: the
    // ladder escalates monotonically, so the max is what cleared it.
    if (!inst.rung_known || rung > inst.rung) inst.rung = rung;
    inst.rung_known = true;
  }
}

int RecoveryLog::note_progress(int scope, SimTime now) {
  if (open_ == 0) return 0;
  int closed = 0;
  for (FaultInstance& inst : instances_) {
    if (inst.recovered() || !scopes_overlap(inst.scope, scope)) continue;
    inst.recovered_at = now;
    --open_;
    ++closed;
    mttrs_.push_back(inst.mttr());
    Histogram* hist = mttr_hist_[static_cast<std::size_t>(inst.mode)];
    if (hist != nullptr) hist->record(inst.mttr());
  }
  return closed;
}

std::int64_t RecoveryLog::injected(LifecycleFault mode) const {
  std::int64_t n = 0;
  for (const FaultInstance& inst : instances_) {
    if (inst.mode == mode) ++n;
  }
  return n;
}

std::int64_t RecoveryLog::recovered(LifecycleFault mode) const {
  std::int64_t n = 0;
  for (const FaultInstance& inst : instances_) {
    if (inst.mode == mode && inst.recovered()) ++n;
  }
  return n;
}

void RecoveryLog::register_metrics(MetricsRegistry& registry) {
  for (int m = 0; m < static_cast<int>(LifecycleFault::kCount); ++m) {
    const LifecycleFault mode = static_cast<LifecycleFault>(m);
    MetricLabels labels = {{"mode", lifecycle_fault_name(mode)}};
    registry.probe("recovery.injected", labels,
                   [this, mode] { return static_cast<double>(injected(mode)); });
    registry.probe("recovery.recovered", labels, [this, mode] {
      return static_cast<double>(recovered(mode));
    });
    mttr_hist_[static_cast<std::size_t>(mode)] =
        &registry.histogram("recovery.mttr_ns", labels);
  }
  registry.probe("recovery.open",
                 [this] { return static_cast<double>(open_); });
  for (int r = 0; r < static_cast<int>(RecoveryRung::kCount); ++r) {
    const RecoveryRung rung = static_cast<RecoveryRung>(r);
    registry.probe("recovery.actions", {{"rung", recovery_rung_name(rung)}},
                   [this, rung] { return static_cast<double>(actions(rung)); });
  }
}

void RecoveryLog::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(instances_.size()));
  for (const FaultInstance& inst : instances_) {
    w.put_i64(inst.id);
    w.put_u8(static_cast<std::uint8_t>(inst.mode));
    w.put_u8(static_cast<std::uint8_t>(inst.scope));
    w.put_i64(inst.injected_at);
    w.put_i64(inst.recovered_at);
    w.put_u8(static_cast<std::uint8_t>(inst.rung));
    w.put_bool(inst.rung_known);
    w.put_u64(inst.corr);
  }
  for (const std::int64_t a : actions_) w.put_i64(a);
}

}  // namespace es2
