// Seeded fault injection for the virtual I/O event path.
//
// Everything the paper measures assumes the plumbing works; this layer lets
// scenarios break it on purpose — lossy cables, swallowed eventfd kicks,
// dropped MSIs, a stalling vhost worker, spurious interrupts — while
// staying deterministic. The injector draws from its own named RNG stream
// (`fault`), so two runs with the same seed and the same `FaultPlan`
// misbehave identically, and a run whose plan is all-off constructs no
// injector at all: components hold a null `FaultInjector*`, consume no
// random numbers and schedule no events, leaving golden outputs
// bit-identical.
//
// Injection points live in the components (net::Link, VhostNetBackend,
// VhostWorker); this file only decides *whether* and *how hard* each fault
// fires. Recovery from the injected faults is the modeled stack's problem:
// the guest TX watchdog, the peer's TCP retransmit machinery, and the vhost
// RX re-poll are exercised, not bypassed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "apic/vectors.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/units.h"
#include "sim/simulator.h"

namespace es2 {

class MetricsRegistry;

/// Gilbert–Elliott two-state burst-loss model: the link flips between a
/// `good` and a `bad` state per packet; each state has its own loss
/// probability. Captures correlated loss (a flaky transceiver, a congested
/// switch port) that i.i.d. loss cannot.
struct GilbertElliott {
  double p_good_to_bad = 0;  // per-packet transition probability
  double p_bad_to_good = 0.2;
  double loss_good = 0;      // loss probability while good
  double loss_bad = 0.5;     // loss probability while bad

  bool enabled() const { return p_good_to_bad > 0; }
};

/// Per-scenario fault configuration. Default-constructed == all off.
struct FaultPlan {
  // --- wire faults (apply per unidirectional net::Link) -------------------
  double link_loss = 0;        // i.i.d. drop probability per packet
  GilbertElliott link_burst;   // burst loss, composed with link_loss
  double link_reorder = 0;     // probability a packet is held back
  SimDuration link_reorder_delay = usec(50);  // mean extra delay when held
  double link_duplicate = 0;   // probability a packet is delivered twice

  // --- event-path faults ---------------------------------------------------
  double kick_loss = 0;        // eventfd kick swallowed (never reaches vhost)
  double kick_delay_prob = 0;  // kick arrives late instead of immediately
  SimDuration kick_delay = usec(25);
  double msi_loss = 0;         // device MSI dropped before the IRQ router
  double worker_stall_prob = 0;  // vhost worker preempted mid-loop
  SimDuration worker_stall = usec(200);  // mean stall (exponential)
  /// > 0: a spurious (unowned) device-range interrupt is delivered to the
  /// tested VM with this period.
  SimDuration spurious_irq_period = 0;

  // --- virtio lifecycle faults ---------------------------------------------
  // Period-based (not probabilistic): each armed mode fires on its own
  // deterministic PeriodicTimer and draws no RNG, so fault-instance counts
  // are exact for MTTR accounting and arming a new mode never shifts the
  // shared `fault` stream the probabilistic modes consume.
  /// > 0: corrupt ring state with this period, rotating deterministically
  /// through descriptor-out-of-range, duplicate in-flight head and
  /// used-ring overrun, alternating TX/RX.
  SimDuration desc_corrupt_period = 0;
  /// > 0: torn avail-idx write (index jumps beyond the ring size).
  SimDuration avail_tear_period = 0;
  /// > 0: wedge a backend handler — it keeps eating activations without
  /// making progress until a queue/device reset clears it.
  SimDuration handler_wedge_period = 0;
  /// > 0: crash the vhost worker (queued activations lost), restarting it
  /// after `worker_restart_delay`.
  SimDuration worker_crash_period = 0;
  SimDuration worker_restart_delay = usec(500);

  bool lifecycle_enabled() const {
    return desc_corrupt_period > 0 || avail_tear_period > 0 ||
           handler_wedge_period > 0 || worker_crash_period > 0;
  }

  bool enabled() const {
    return link_loss > 0 || link_burst.enabled() || link_reorder > 0 ||
           link_duplicate > 0 || kick_loss > 0 || kick_delay_prob > 0 ||
           msi_loss > 0 || worker_stall_prob > 0 || spurious_irq_period > 0 ||
           lifecycle_enabled();
  }
};

/// Counts of faults actually fired (not configured rates).
struct FaultStats {
  std::int64_t link_dropped = 0;
  std::int64_t link_reordered = 0;
  std::int64_t link_duplicated = 0;
  std::int64_t kicks_dropped = 0;
  std::int64_t kicks_delayed = 0;
  std::int64_t msis_dropped = 0;
  std::int64_t worker_stalls = 0;
  std::int64_t spurious_irqs = 0;
  std::int64_t desc_corruptions = 0;
  std::int64_t avail_tears = 0;
  std::int64_t handler_wedges = 0;
  std::int64_t worker_crashes = 0;
};

/// Injection entry points for the lifecycle fault modes, provided by the
/// harness (the injector cannot depend on the virtio layer). Each fires
/// one fault instance; target rotation lives behind the callback.
struct LifecycleHooks {
  std::function<void()> corrupt_ring;   // desc_corrupt_period
  std::function<void()> tear_avail;     // avail_tear_period
  std::function<void()> wedge_handler;  // handler_wedge_period
  std::function<void()> crash_worker;   // worker_crash_period
};

/// The vector used for injected spurious interrupts: top of the device
/// range, unclaimed by any modeled device driver.
inline constexpr Vector kSpuriousFaultVector = 0xEB;

class FaultInjector : public Snapshottable {
 public:
  enum class KickFate { kDeliver, kDrop, kDelay };

  FaultInjector(Simulator& sim, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // --- wire (net::Link) ----------------------------------------------------
  /// Decides the fate of one packet about to be transmitted; advances the
  /// Gilbert–Elliott chain.
  bool drop_packet();
  bool duplicate_packet();
  /// Extra delivery delay for reordering; 0 means deliver in order.
  SimDuration reorder_extra_delay();

  // --- event path ----------------------------------------------------------
  KickFate kick_fate();
  SimDuration kick_delay() const { return plan_.kick_delay; }
  bool drop_msi();
  /// Extra time the vhost worker loses on this dispatch; 0 = no stall.
  SimDuration worker_stall();

  /// Arms the periodic spurious-interrupt source; `fire` delivers
  /// kSpuriousFaultVector into the victim VM.
  void start_spurious(std::function<void()> fire);
  void stop_spurious();

  /// Arms one PeriodicTimer per enabled lifecycle mode. The periods are
  /// plan-configured and RNG-free, so same-seed runs inject identically
  /// and modes compose without perturbing each other.
  void start_lifecycle(LifecycleHooks hooks);
  void stop_lifecycle();

  /// Registers fired-fault counters plus the injector's suppressed-log
  /// count as probes.
  void register_metrics(MetricsRegistry& registry);

  /// Serializes the fault RNG, the Gilbert–Elliott chain state and every
  /// fired-fault counter.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  Simulator& sim_;
  FaultPlan plan_;
  FaultStats stats_;
  Rng rng_;
  bool burst_bad_ = false;  // Gilbert–Elliott state
  LogRateLimiter warn_limit_;
  std::unique_ptr<PeriodicTimer> spurious_timer_;
  std::vector<std::unique_ptr<PeriodicTimer>> lifecycle_timers_;
};

}  // namespace es2
