// Deterministic in-sim time-series sampling of a MetricsRegistry.
//
// The sampler is a PeriodicTimer that, every `period` of *simulated* time,
// reads every registered instrument into a preallocated ring of frames.
// Because the cadence is simulated time (not wall clock) the series is a
// pure function of the seed: two same-seed runs produce byte-identical
// exports.
//
// Passivity: the sample callback draws no RNG values, mutates no model
// state, and schedules nothing beyond its own next tick. The tick events
// shift the global event sequence numbers of later model events uniformly,
// which preserves their relative order — so a metrics-on run is
// bit-identical to metrics-off on every committed golden. (Guest timers
// already run perpetually, so the sampler introduces no new
// run_to_completion hazard.)
//
// Zero steady-state allocation: start() freezes the instrument count and
// preallocates `capacity` frames; each tick writes in place. Instruments
// registered after start() are not sampled (they still appear in final
// snapshots).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/units.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"

namespace es2 {

struct SamplerOptions {
  SimDuration period = msec(2);
  std::size_t ring_capacity = 512;  // frames retained (oldest evicted)
};

/// Harness-level switch for the registry + sampler pair. Instruments are
/// always registered (probes are free until read); `enabled` controls
/// whether a sampler runs and records time series.
struct MetricsOptions {
  bool enabled = true;
  SimDuration sample_period = msec(2);
  std::size_t ring_capacity = 512;
};

class MetricsSampler : public Snapshottable {
 public:
  MetricsSampler(Simulator& sim, const MetricsRegistry& registry,
                 SamplerOptions options = {});

  /// Freezes the instrument set, preallocates the ring and starts the
  /// periodic tick. Idempotent.
  void start();
  void stop();
  bool running() const { return timer_.running(); }

  SimDuration period() const { return options_.period; }

  /// Number of instruments frozen at start() (0 before).
  std::size_t instruments() const { return frozen_; }

  /// Frames currently retained (<= ring_capacity), oldest first.
  std::size_t frames() const;
  /// Total ticks taken since start(), including evicted ones.
  std::uint64_t total_samples() const { return total_samples_; }

  /// Sim time of retained frame `f` (f in [0, frames()), oldest first).
  SimTime frame_time(std::size_t f) const;
  /// Value of instrument `i` in retained frame `f`.
  double frame_value(std::size_t f, std::size_t i) const;

  /// Serializes ring position and tick count (sampler resume position).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void tick();
  std::size_t raw_index(std::size_t f) const;

  Simulator& sim_;
  const MetricsRegistry& registry_;
  SamplerOptions options_;
  PeriodicTimer timer_;
  std::size_t frozen_ = 0;
  std::uint64_t total_samples_ = 0;
  std::size_t head_ = 0;  // next slot to write
  std::vector<SimTime> times_;    // ring_capacity entries
  std::vector<double> values_;    // ring_capacity * frozen_ entries
};

}  // namespace es2
