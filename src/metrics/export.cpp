#include "metrics/export.h"

#include <algorithm>
#include <cmath>

#include "base/json.h"
#include "base/strings.h"

namespace es2 {

std::vector<MetricSample> snapshot(const MetricsRegistry& registry) {
  std::vector<MetricSample> out;
  out.reserve(registry.size());
  for (std::size_t i : registry.sorted_indices()) {
    const auto& inst = registry.instrument(i);
    MetricSample s;
    s.name = inst.name;
    s.labels = inst.labels;
    s.kind = inst.kind;
    s.value = registry.value(i);
    if (inst.kind == MetricKind::kHistogram && inst.histogram->count() > 0) {
      const Histogram& h = *inst.histogram;
      s.hist_min = static_cast<double>(h.min());
      s.hist_max = static_cast<double>(h.max());
      s.hist_mean = h.mean();
      s.hist_p50 = static_cast<double>(h.p50());
      s.hist_p90 = static_cast<double>(h.p90());
      s.hist_p99 = static_cast<double>(h.p99());
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "es2_";
  for (char c : name) out.push_back(c == '.' || c == '-' ? '_' : c);
  return out;
}

std::string prometheus_labels(const MetricLabels& labels,
                              const std::string& extra_key = "",
                              const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string to_prometheus_text(const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    const std::string family = prometheus_name(s.name);
    if (family != last_family) {
      last_family = family;
      out += "# TYPE ";
      out += family;
      out += s.kind == MetricKind::kCounter ? " counter\n" : " gauge\n";
    }
    if (s.kind == MetricKind::kHistogram) {
      const std::string labels = prometheus_labels(s.labels);
      out += family + "_count" + labels + " " + json_number(s.value) + "\n";
      out += family + "_min" + labels + " " + json_number(s.hist_min) + "\n";
      out += family + "_max" + labels + " " + json_number(s.hist_max) + "\n";
      out += family + "_mean" + labels + " " + json_number(s.hist_mean) + "\n";
      out += family + prometheus_labels(s.labels, "quantile", "0.5") + " " +
             json_number(s.hist_p50) + "\n";
      out += family + prometheus_labels(s.labels, "quantile", "0.9") + " " +
             json_number(s.hist_p90) + "\n";
      out += family + prometheus_labels(s.labels, "quantile", "0.99") + " " +
             json_number(s.hist_p99) + "\n";
    } else {
      out += family + prometheus_labels(s.labels) + " " + json_number(s.value) +
             "\n";
    }
  }
  return out;
}

namespace {

constexpr const char* kSnapshotSchema = "es2-metrics-v1";
constexpr const char* kSeriesSchema = "es2-series-v1";

MetricKind kind_from_name(const std::string& name) {
  if (name == "counter") return MetricKind::kCounter;
  if (name == "time_weighted") return MetricKind::kTimeWeighted;
  if (name == "histogram") return MetricKind::kHistogram;
  if (name == "probe") return MetricKind::kProbe;
  return MetricKind::kGauge;
}

}  // namespace

std::string to_json(const std::vector<MetricSample>& samples) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kSnapshotSchema));
  Json arr = Json::array();
  for (const MetricSample& s : samples) {
    Json m = Json::object();
    m.set("name", Json::string(s.name));
    if (!s.labels.empty()) {
      Json labels = Json::object();
      for (const auto& [k, v] : s.labels) labels.set(k, Json::string(v));
      m.set("labels", std::move(labels));
    }
    m.set("kind", Json::string(metric_kind_name(s.kind)));
    m.set("value", Json::number(s.value));
    if (s.kind == MetricKind::kHistogram) {
      Json h = Json::object();
      h.set("min", Json::number(s.hist_min));
      h.set("max", Json::number(s.hist_max));
      h.set("mean", Json::number(s.hist_mean));
      h.set("p50", Json::number(s.hist_p50));
      h.set("p90", Json::number(s.hist_p90));
      h.set("p99", Json::number(s.hist_p99));
      m.set("histogram", std::move(h));
    }
    arr.push_back(std::move(m));
  }
  doc.set("metrics", std::move(arr));
  return doc.dump(2);
}

bool from_json(const std::string& text, std::vector<MetricSample>* out,
               std::string* error) {
  out->clear();
  Json doc;
  if (!Json::parse(text, &doc, error)) return false;
  if (doc.string_or("schema", "") != kSnapshotSchema) {
    if (error) *error = "metrics: unexpected schema";
    return false;
  }
  const Json* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_array()) {
    if (error) *error = "metrics: missing metrics array";
    return false;
  }
  for (std::size_t i = 0; i < metrics->size(); ++i) {
    const Json& m = metrics->at(i);
    MetricSample s;
    s.name = m.string_or("name", "");
    if (s.name.empty()) {
      if (error) *error = "metrics: entry without name";
      return false;
    }
    if (const Json* labels = m.find("labels")) {
      for (const auto& [k, v] : labels->members()) {
        s.labels.emplace_back(k, v.as_string());
      }
      std::sort(s.labels.begin(), s.labels.end());
    }
    s.kind = kind_from_name(m.string_or("kind", "gauge"));
    s.value = m.number_or("value", 0.0);
    if (const Json* h = m.find("histogram")) {
      s.hist_min = h->number_or("min", 0.0);
      s.hist_max = h->number_or("max", 0.0);
      s.hist_mean = h->number_or("mean", 0.0);
      s.hist_p50 = h->number_or("p50", 0.0);
      s.hist_p90 = h->number_or("p90", 0.0);
      s.hist_p99 = h->number_or("p99", 0.0);
    }
    out->push_back(std::move(s));
  }
  return true;
}

std::string series_to_json(const MetricsRegistry& registry,
                           const MetricsSampler& sampler) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kSeriesSchema));
  doc.set("period_ns", Json::number(static_cast<double>(sampler.period())));
  doc.set("total_samples",
          Json::number(static_cast<double>(sampler.total_samples())));
  Json times = Json::array();
  for (std::size_t f = 0; f < sampler.frames(); ++f) {
    times.push_back(Json::number(static_cast<double>(sampler.frame_time(f))));
  }
  doc.set("times", std::move(times));
  Json series = Json::object();
  for (std::size_t i : registry.sorted_indices()) {
    if (i >= sampler.instruments()) continue;  // registered after start()
    Json values = Json::array();
    for (std::size_t f = 0; f < sampler.frames(); ++f) {
      values.push_back(Json::number(sampler.frame_value(f, i)));
    }
    series.set(registry.instrument(i).key, std::move(values));
  }
  doc.set("series", std::move(series));
  return doc.dump(2);
}

std::string series_to_csv(const MetricsRegistry& registry,
                          const MetricsSampler& sampler) {
  std::vector<std::size_t> cols;
  for (std::size_t i : registry.sorted_indices()) {
    if (i < sampler.instruments()) cols.push_back(i);
  }
  std::string out = "time_ns";
  for (std::size_t i : cols) {
    out.push_back(',');
    out += registry.instrument(i).key;
  }
  out.push_back('\n');
  for (std::size_t f = 0; f < sampler.frames(); ++f) {
    out += json_number(static_cast<double>(sampler.frame_time(f)));
    for (std::size_t i : cols) {
      out.push_back(',');
      out += json_number(sampler.frame_value(f, i));
    }
    out.push_back('\n');
  }
  return out;
}

std::string top_metric_deltas(const MetricsRegistry& registry,
                              const MetricsSampler& sampler, std::size_t n) {
  struct Entry {
    std::size_t slot;
    double delta;
    double per_second;
  };
  std::vector<Entry> entries;
  const std::size_t frames = sampler.frames();
  if (frames >= 2) {
    const SimTime t0 = sampler.frame_time(0);
    const SimTime t1 = sampler.frame_time(frames - 1);
    const double span_s = to_seconds(t1 - t0);
    for (std::size_t i = 0; i < sampler.instruments(); ++i) {
      const double delta =
          sampler.frame_value(frames - 1, i) - sampler.frame_value(0, i);
      if (delta == 0.0) continue;
      entries.push_back({i, delta, span_s > 0 ? delta / span_s : 0.0});
    }
  } else {
    for (std::size_t i = 0; i < registry.size(); ++i) {
      const double v = registry.value(i);
      if (v == 0.0) continue;
      entries.push_back({i, v, 0.0});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return std::fabs(a.delta) > std::fabs(b.delta);
                   });
  if (entries.size() > n) entries.resize(n);
  std::string out;
  for (const Entry& e : entries) {
    if (!out.empty()) out += "; ";
    out += registry.instrument(e.slot).key;
    out += e.delta >= 0 ? " +" : " ";
    out += json_number(e.delta);
    if (e.per_second != 0.0) {
      out += " (" + rate_str(std::fabs(e.per_second)) + ")";
    }
  }
  return out;
}

}  // namespace es2
