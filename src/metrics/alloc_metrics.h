// Registers the allocation-hook counters as registry probes.
//
// Header-only on purpose: es2::test::allocation_count() is defined by the
// `es2_alloc_hook` library, which only test and bench binaries link (the
// core libraries never do — see src/base/CMakeLists.txt). Including this
// header therefore creates a link-time dependency on the hook, so it must
// only be included from binaries that link es2_alloc_hook.
#pragma once

#include "base/alloc_hook.h"
#include "metrics/metrics.h"

namespace es2 {

/// Exposes process-wide heap traffic as `process.allocs` /
/// `process.alloc_bytes` probes. Cumulative since process start, so a flat
/// sampled series over a region proves the region allocates nothing.
inline void register_alloc_metrics(MetricsRegistry& registry) {
  registry.probe("process.allocs", [] {
    return static_cast<double>(test::allocation_count());
  });
  registry.probe("process.alloc_bytes", [] {
    return static_cast<double>(test::allocation_bytes());
  });
}

}  // namespace es2
