#include "metrics/sampler.h"

#include "base/assert.h"

namespace es2 {

MetricsSampler::MetricsSampler(Simulator& sim, const MetricsRegistry& registry,
                               SamplerOptions options)
    : sim_(sim),
      registry_(registry),
      options_(options),
      timer_(sim, options.period, [this] { tick(); }) {
  ES2_CHECK_MSG(options_.period > 0, "sampler period must be positive");
  ES2_CHECK_MSG(options_.ring_capacity > 0, "sampler ring must hold a frame");
}

void MetricsSampler::start() {
  if (timer_.running()) return;
  frozen_ = registry_.size();
  times_.assign(options_.ring_capacity, 0);
  values_.assign(options_.ring_capacity * frozen_, 0.0);
  total_samples_ = 0;
  head_ = 0;
  timer_.start();
}

void MetricsSampler::stop() { timer_.stop(); }

void MetricsSampler::tick() {
  const std::size_t slot = head_;
  times_[slot] = sim_.now();
  double* row = values_.data() + slot * frozen_;
  for (std::size_t i = 0; i < frozen_; ++i) row[i] = registry_.value(i);
  head_ = (head_ + 1) % options_.ring_capacity;
  ++total_samples_;
}

std::size_t MetricsSampler::frames() const {
  return total_samples_ < options_.ring_capacity
             ? static_cast<std::size_t>(total_samples_)
             : options_.ring_capacity;
}

std::size_t MetricsSampler::raw_index(std::size_t f) const {
  ES2_DCHECK(f < frames());
  if (total_samples_ < options_.ring_capacity) return f;
  return (head_ + f) % options_.ring_capacity;
}

SimTime MetricsSampler::frame_time(std::size_t f) const {
  return times_[raw_index(f)];
}

double MetricsSampler::frame_value(std::size_t f, std::size_t i) const {
  ES2_DCHECK(i < frozen_);
  return values_[raw_index(f) * frozen_ + i];
}

void MetricsSampler::snapshot_state(SnapshotWriter& w) const {
  w.put_u64(static_cast<std::uint64_t>(frozen_));
  w.put_u64(total_samples_);
  w.put_u64(static_cast<std::uint64_t>(head_));
  w.put_bool(timer_.running());
}

}  // namespace es2
