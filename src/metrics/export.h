// Metrics exporters: Prometheus text, JSON snapshots/time-series, CSV.
//
// All exporters render from a `snapshot()` — a sorted, self-contained copy
// of the registry's current values — so they share one canonical order
// (sorted metric keys) and one number formatter (json_number), making
// same-seed exports byte-identical across formats and runs. The JSON
// snapshot round-trips through `from_json`, which the regression tests use
// to prove the Prometheus rendering is a pure function of the data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"

namespace es2 {

/// One instrument's exported state. For histograms the scalar `value` is
/// the sample count and the distribution detail rides in `hist_*`.
struct MetricSample {
  std::string name;
  MetricLabels labels;  // canonical (key-sorted)
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;
  double hist_min = 0.0;
  double hist_max = 0.0;
  double hist_mean = 0.0;
  double hist_p50 = 0.0;
  double hist_p90 = 0.0;
  double hist_p99 = 0.0;
};

/// Reads every instrument, sorted by canonical key.
std::vector<MetricSample> snapshot(const MetricsRegistry& registry);

/// Prometheus text exposition: names prefixed `es2_` with dots mangled to
/// underscores, labels in canonical order, one HELP/TYPE pair per family.
/// Histograms expand to `_count/_min/_max/_mean` plus quantile-labelled
/// lines. Probes and time-weighted values export as gauges.
std::string to_prometheus_text(const std::vector<MetricSample>& samples);

/// `{"schema":"es2-metrics-v1","metrics":[...]}`, insertion order = sorted
/// key order.
std::string to_json(const std::vector<MetricSample>& samples);

/// Parses `to_json` output back into samples. Returns false with a
/// diagnostic in `error` on schema mismatch or malformed input.
bool from_json(const std::string& text, std::vector<MetricSample>* out,
               std::string* error);

/// Time-series export of everything the sampler retained:
/// `{"schema":"es2-series-v1","period_ns":...,"times":[...],
///   "series":{"<key>":[...],...}}` with keys sorted.
std::string series_to_json(const MetricsRegistry& registry,
                           const MetricsSampler& sampler);

/// CSV with a `time_ns` column then one column per metric key (sorted).
std::string series_to_csv(const MetricsRegistry& registry,
                          const MetricsSampler& sampler);

/// One human-readable line per top-|delta| metric over the sampler's
/// retained window (newest frame minus oldest), e.g.
/// `vm.exits{cause=msr_access} +1204 (841.2/s)`. Falls back to the largest
/// current values when fewer than two frames exist. Empty registry -> "".
/// Used by ScenarioWatchdog / InvariantAuditor failure reports.
std::string top_metric_deltas(const MetricsRegistry& registry,
                              const MetricsSampler& sampler, std::size_t n);

}  // namespace es2
