#include "metrics/metrics.h"

#include <algorithm>

#include "base/assert.h"

namespace es2 {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kTimeWeighted: return "time_weighted";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kProbe: return "probe";
  }
  return "?";
}

std::string metric_key(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key.push_back('{');
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricsRegistry::Instrument& MetricsRegistry::intern(const std::string& name,
                                                     MetricLabels labels,
                                                     MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  std::string key = metric_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Instrument& existing = *instruments_[it->second];
    ES2_CHECK_MSG(existing.kind == kind,
                  "metric re-registered with a different kind");
    return existing;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = std::move(labels);
  inst->key = key;
  inst->kind = kind;
  if (kind == MetricKind::kHistogram) {
    inst->histogram = std::make_unique<Histogram>();
  }
  index_.emplace(std::move(key), instruments_.size());
  instruments_.push_back(std::move(inst));
  return *instruments_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, MetricLabels labels) {
  return intern(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
  return intern(name, std::move(labels), MetricKind::kGauge).gauge;
}

TimeWeighted& MetricsRegistry::time_weighted(const std::string& name,
                                             MetricLabels labels) {
  return intern(name, std::move(labels), MetricKind::kTimeWeighted)
      .time_weighted;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      MetricLabels labels) {
  return *intern(name, std::move(labels), MetricKind::kHistogram).histogram;
}

void MetricsRegistry::probe(const std::string& name, MetricLabels labels,
                            Probe fn) {
  intern(name, std::move(labels), MetricKind::kProbe).probe = std::move(fn);
}

double MetricsRegistry::value(std::size_t i) const {
  const Instrument& inst = *instruments_[i];
  switch (inst.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(inst.counter.value());
    case MetricKind::kGauge:
      return inst.gauge.value();
    case MetricKind::kTimeWeighted:
      return inst.time_weighted.current();
    case MetricKind::kHistogram:
      return static_cast<double>(inst.histogram->count());
    case MetricKind::kProbe:
      return inst.probe ? inst.probe() : 0.0;
  }
  return 0.0;
}

const MetricsRegistry::Instrument* MetricsRegistry::find(
    const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : instruments_[it->second].get();
}

std::vector<std::size_t> MetricsRegistry::sorted_indices() const {
  std::vector<std::size_t> out;
  out.reserve(index_.size());
  for (const auto& [key, slot] : index_) out.push_back(slot);
  return out;
}

}  // namespace es2
