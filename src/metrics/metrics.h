// Unified metrics registry: named, labelled instruments for every layer.
//
// The paper's evaluation is built from aggregate telemetry — VM exits by
// cause, notifications suppressed, interrupts posted, TIG — and before this
// registry each subsystem hand-rolled `Counter`/`RateMeter` members that
// only surfaced as final scalars in experiment rows. The registry gives
// those signals one namespace (`vm.exits{cause=ept_violation}`,
// `vhost.worker.turns`, `cfs.preemptions{core=0}`, `tcp.retransmits`),
// one snapshot path, and one export story (Prometheus / JSON / CSV).
//
// Two rules keep it out of the hot path:
//
//  * **Probes over counters.** Layers already count everything the paper
//    needs; a registry instrument is usually a `Probe` — a read-only
//    closure over an existing accessor — so registration adds zero work
//    per model event. New plain counters are added to a layer only where
//    no signal existed.
//  * **Passivity.** Reading any instrument draws no RNG values, writes no
//    model state, and schedules nothing. A metrics-on run is bit-identical
//    to a metrics-off run on every committed golden (the sampler's timer
//    shifts event sequence numbers uniformly, which preserves order).
//
// Registration happens at testbed construction (allocation is fine there);
// after `MetricsSampler::start()` the steady state allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/units.h"
#include "stats/histogram.h"
#include "stats/meters.h"

namespace es2 {

enum class MetricKind : std::uint8_t {
  kCounter,       // monotone event count
  kGauge,         // instantaneous level, set by the owner
  kTimeWeighted,  // piecewise-constant level integrated over sim time
  kHistogram,     // log-bucketed distribution
  kProbe,         // read-only closure over an existing layer accessor
};

const char* metric_kind_name(MetricKind kind);

/// Label set, canonicalised to key-sorted order on registration.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Instantaneous level instrument (queue depth, window size, mode flag).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Canonical metric key: `name` when unlabelled, else `name{k=v,...}` with
/// keys sorted. This is the registry's identity and every exporter's sort
/// order, so same-seed exports are byte-identical by construction.
std::string metric_key(const std::string& name, const MetricLabels& labels);

class MetricsRegistry {
 public:
  using Probe = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Each getter registers on first use and returns the existing instrument
  /// on re-registration with the same name+labels. Registering the same key
  /// with a different kind is a programming error (ES2_CHECK).
  Counter& counter(const std::string& name, MetricLabels labels = {});
  Gauge& gauge(const std::string& name, MetricLabels labels = {});
  TimeWeighted& time_weighted(const std::string& name, MetricLabels labels = {});
  Histogram& histogram(const std::string& name, MetricLabels labels = {});

  /// Registers a read-only closure evaluated at sample/snapshot time.
  /// Re-registering an existing probe key replaces the closure (layers may
  /// be torn down and rebuilt between experiment phases).
  void probe(const std::string& name, MetricLabels labels, Probe fn);
  void probe(const std::string& name, Probe fn) {
    probe(name, MetricLabels{}, std::move(fn));
  }

  std::size_t size() const { return instruments_.size(); }

  struct Instrument {
    std::string name;
    MetricLabels labels;
    std::string key;  // canonical, see metric_key()
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    TimeWeighted time_weighted;
    std::unique_ptr<Histogram> histogram;  // only for kHistogram
    Probe probe;
  };

  /// Instruments in registration order; indices are stable for the lifetime
  /// of the registry (deque storage, nothing is ever removed).
  const Instrument& instrument(std::size_t i) const { return *instruments_[i]; }

  /// Scalar value of instrument `i` right now: counter/gauge read their
  /// value, time-weighted reads the current level, histograms report their
  /// sample count (distribution detail lives in the exporters), probes are
  /// invoked. Read-only — never mutates model or registry state.
  double value(std::size_t i) const;

  /// Looks up by canonical key; nullptr when absent.
  const Instrument* find(const std::string& key) const;

  /// Indices of all instruments sorted by canonical key — the export order.
  std::vector<std::size_t> sorted_indices() const;

 private:
  Instrument& intern(const std::string& name, MetricLabels labels,
                     MetricKind kind);

  // unique_ptr elements keep Instrument addresses stable across growth and
  // keep the (moderately large) struct off the vector's reallocation path.
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::map<std::string, std::size_t> index_;  // canonical key -> slot
};

}  // namespace es2
