// The shared `BENCH_<name>.json` schema ("es2-bench-v1") and the regression
// gate that diffs a run against committed baselines.
//
// Every bench binary reduces its run to named scalar metrics, each with a
// relative tolerance and a gate flag:
//
//  * `gate: true`  — deterministic sim-derived quantities (throughput in
//    simulated Mbps, exits per packet, retransmit counts). The gate fails
//    when |current/baseline - 1| exceeds `tol`.
//  * `gate: false` — machine-dependent wall-clock quantities (events/sec,
//    ns/event). Reported in the markdown diff, never failed on.
//
// Baselines live in `bench/baseline/BENCH_<name>.json`, generated with
// `--fast --seed=1`; `bench_report --check` refuses to compare runs whose
// fast/seed stamps differ from the baseline's (an incomparable pair is a
// gate failure, not a silent pass).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/json.h"

namespace es2 {

struct BenchMetric {
  double value = 0.0;
  double tol = 0.05;  // relative tolerance vs baseline
  bool gate = true;
};

class BenchReport {
 public:
  BenchReport() = default;
  BenchReport(std::string bench, bool fast, std::uint64_t seed)
      : bench_(std::move(bench)), fast_(fast), seed_(seed) {}

  const std::string& bench() const { return bench_; }
  bool fast() const { return fast_; }
  std::uint64_t seed() const { return seed_; }

  /// Adds (or overwrites) a gated metric.
  void add(const std::string& name, double value, double tol = 0.05) {
    upsert(name, {value, tol, true});
  }
  /// Adds an informational metric — reported, never gated (wall-clock).
  void add_info(const std::string& name, double value) {
    upsert(name, {value, 0.0, false});
  }
  /// Adds a sampled series (plotted as a sparkline in the markdown diff).
  void add_series(const std::string& name, std::vector<double> values);

  const std::vector<std::pair<std::string, BenchMetric>>& metrics() const {
    return metrics_;
  }
  const std::vector<std::pair<std::string, std::vector<double>>>& series()
      const {
    return series_;
  }
  const BenchMetric* find(const std::string& name) const;
  const std::vector<double>* find_series(const std::string& name) const;

  Json to_json() const;
  static bool from_json(const Json& doc, BenchReport* out, std::string* error);

  /// Writes `to_json().dump(2)` to `path`. Returns false on I/O failure.
  bool write_file(const std::string& path) const;
  static bool read_file(const std::string& path, BenchReport* out,
                        std::string* error);

 private:
  void upsert(const std::string& name, BenchMetric m);

  std::string bench_;
  bool fast_ = false;
  std::uint64_t seed_ = 1;
  std::vector<std::pair<std::string, BenchMetric>> metrics_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

/// One metric's baseline-vs-current comparison.
struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double rel = 0.0;  // current/baseline - 1 (0 when baseline == 0 == current)
  double tol = 0.0;
  bool gate = false;
  bool fail = false;  // gate && |rel| > tol
};

/// Whole-bench comparison result.
struct BenchDiff {
  std::string bench;
  bool comparable = true;         // fast/seed stamps match
  std::string incomparable_why;   // set when !comparable
  std::vector<MetricDelta> deltas;
  std::vector<std::string> missing;  // gated in baseline, absent from run
  std::vector<std::string> extra;    // in run, absent from baseline

  bool ok() const;
  /// Names of failing gated metrics (plus missing ones), for error output.
  std::vector<std::string> failures() const;
};

BenchDiff diff_bench(const BenchReport& baseline, const BenchReport& current);

/// Unicode sparkline (▁▂▃▄▅▆▇█) of `values`, downsampled to `width` cells.
/// Flat or empty series render as a row of middle blocks / "".
std::string sparkline(const std::vector<double>& values, std::size_t width = 24);

/// Markdown regression report over a set of bench diffs: status table,
/// per-metric deltas with sparklines (baseline series vs current series
/// when present), and a failure summary.
std::string render_markdown(const std::vector<BenchDiff>& diffs,
                            const std::vector<const BenchReport*>& baselines,
                            const std::vector<const BenchReport*>& currents);

}  // namespace es2
