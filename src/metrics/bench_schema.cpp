#include "metrics/bench_schema.h"

#include <algorithm>
#include <cmath>

#include "base/strings.h"
#include "trace/export.h"  // write_file / read_file

namespace es2 {

namespace {
constexpr const char* kBenchSchema = "es2-bench-v1";
}

void BenchReport::upsert(const std::string& name, BenchMetric m) {
  for (auto& [k, existing] : metrics_) {
    if (k == name) {
      existing = m;
      return;
    }
  }
  metrics_.emplace_back(name, m);
}

void BenchReport::add_series(const std::string& name,
                             std::vector<double> values) {
  for (auto& [k, existing] : series_) {
    if (k == name) {
      existing = std::move(values);
      return;
    }
  }
  series_.emplace_back(name, std::move(values));
}

const BenchMetric* BenchReport::find(const std::string& name) const {
  for (const auto& [k, m] : metrics_) {
    if (k == name) return &m;
  }
  return nullptr;
}

const std::vector<double>* BenchReport::find_series(
    const std::string& name) const {
  for (const auto& [k, v] : series_) {
    if (k == name) return &v;
  }
  return nullptr;
}

Json BenchReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kBenchSchema));
  doc.set("bench", Json::string(bench_));
  doc.set("fast", Json::boolean(fast_));
  doc.set("seed", Json::number(static_cast<double>(seed_)));
  Json metrics = Json::object();
  for (const auto& [name, m] : metrics_) {
    Json entry = Json::object();
    entry.set("value", Json::number(m.value));
    entry.set("tol", Json::number(m.tol));
    entry.set("gate", Json::boolean(m.gate));
    metrics.set(name, std::move(entry));
  }
  doc.set("metrics", std::move(metrics));
  if (!series_.empty()) {
    Json series = Json::object();
    for (const auto& [name, values] : series_) {
      Json arr = Json::array();
      for (double v : values) arr.push_back(Json::number(v));
      series.set(name, std::move(arr));
    }
    doc.set("series", std::move(series));
  }
  return doc;
}

bool BenchReport::from_json(const Json& doc, BenchReport* out,
                            std::string* error) {
  *out = BenchReport();
  if (doc.string_or("schema", "") != kBenchSchema) {
    if (error) *error = "bench: unexpected schema (want es2-bench-v1)";
    return false;
  }
  out->bench_ = doc.string_or("bench", "");
  if (out->bench_.empty()) {
    if (error) *error = "bench: missing bench name";
    return false;
  }
  out->fast_ = doc.bool_or("fast", false);
  out->seed_ = static_cast<std::uint64_t>(doc.number_or("seed", 1));
  const Json* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object()) {
    if (error) *error = "bench: missing metrics object";
    return false;
  }
  for (const auto& [name, entry] : metrics->members()) {
    BenchMetric m;
    m.value = entry.number_or("value", 0.0);
    m.tol = entry.number_or("tol", 0.05);
    m.gate = entry.bool_or("gate", true);
    out->metrics_.emplace_back(name, m);
  }
  if (const Json* series = doc.find("series")) {
    for (const auto& [name, arr] : series->members()) {
      std::vector<double> values;
      values.reserve(arr.size());
      for (std::size_t i = 0; i < arr.size(); ++i) {
        values.push_back(arr.at(i).as_number());
      }
      out->series_.emplace_back(name, std::move(values));
    }
  }
  return true;
}

bool BenchReport::write_file(const std::string& path) const {
  return es2::write_file(path, to_json().dump(2));
}

bool BenchReport::read_file(const std::string& path, BenchReport* out,
                            std::string* error) {
  std::string text;
  if (!es2::read_file(path, &text)) {
    if (error) *error = "bench: cannot read " + path;
    return false;
  }
  Json doc;
  if (!Json::parse(text, &doc, error)) return false;
  return from_json(doc, out, error);
}

bool BenchDiff::ok() const {
  if (!comparable) return false;
  if (!missing.empty()) return false;
  for (const MetricDelta& d : deltas) {
    if (d.fail) return false;
  }
  return true;
}

std::vector<std::string> BenchDiff::failures() const {
  std::vector<std::string> out;
  if (!comparable) out.push_back(bench + ": " + incomparable_why);
  for (const MetricDelta& d : deltas) {
    if (d.fail) {
      out.push_back(bench + "/" + d.metric + ": " +
                    format("%+.2f%% vs baseline (tol %.1f%%)", d.rel * 100.0,
                           d.tol * 100.0));
    }
  }
  for (const std::string& m : missing) {
    out.push_back(bench + "/" + m + ": gated metric missing from run");
  }
  return out;
}

BenchDiff diff_bench(const BenchReport& baseline, const BenchReport& current) {
  BenchDiff diff;
  diff.bench = baseline.bench();
  if (baseline.bench() != current.bench()) {
    diff.comparable = false;
    diff.incomparable_why = "bench name mismatch (" + baseline.bench() +
                            " vs " + current.bench() + ")";
    return diff;
  }
  if (baseline.fast() != current.fast() || baseline.seed() != current.seed()) {
    diff.comparable = false;
    diff.incomparable_why =
        format("run stamp mismatch: baseline fast=%d seed=%llu, run fast=%d "
               "seed=%llu",
               baseline.fast() ? 1 : 0,
               static_cast<unsigned long long>(baseline.seed()),
               current.fast() ? 1 : 0,
               static_cast<unsigned long long>(current.seed()));
    return diff;
  }
  for (const auto& [name, base] : baseline.metrics()) {
    const BenchMetric* cur = current.find(name);
    if (!cur) {
      if (base.gate) diff.missing.push_back(name);
      continue;
    }
    MetricDelta d;
    d.metric = name;
    d.baseline = base.value;
    d.current = cur->value;
    d.tol = base.tol;
    d.gate = base.gate;
    if (base.value != 0.0) {
      d.rel = cur->value / base.value - 1.0;
    } else {
      d.rel = cur->value == 0.0 ? 0.0 : INFINITY;
    }
    d.fail = d.gate && std::fabs(d.rel) > d.tol;
    diff.deltas.push_back(std::move(d));
  }
  for (const auto& [name, m] : current.metrics()) {
    (void)m;
    if (!baseline.find(name)) diff.extra.push_back(name);
  }
  return diff;
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty() || width == 0) return "";
  // Downsample by averaging evenly-split chunks so long series still fit.
  std::vector<double> cells;
  const std::size_t n = values.size();
  const std::size_t w = std::min(width, n);
  cells.reserve(w);
  for (std::size_t c = 0; c < w; ++c) {
    const std::size_t lo = c * n / w;
    const std::size_t hi = std::max(lo + 1, (c + 1) * n / w);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    cells.push_back(sum / static_cast<double>(hi - lo));
  }
  const auto [mn_it, mx_it] = std::minmax_element(cells.begin(), cells.end());
  const double mn = *mn_it, mx = *mx_it;
  std::string out;
  for (double v : cells) {
    int level = 3;  // flat series renders as a middle row
    if (mx > mn) {
      level = static_cast<int>((v - mn) / (mx - mn) * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

namespace {

std::string human(double v) {
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) return format("%.3g", v);
  if (v == std::floor(v) && a < 1e15) return format("%.0f", v);
  return format("%.3f", v);
}

}  // namespace

std::string render_markdown(const std::vector<BenchDiff>& diffs,
                            const std::vector<const BenchReport*>& baselines,
                            const std::vector<const BenchReport*>& currents) {
  std::string out = "# Bench regression report\n\n";
  std::size_t failing = 0;
  for (const BenchDiff& d : diffs) {
    if (!d.ok()) ++failing;
  }
  out += format("%zu bench(es), %zu failing.\n\n", diffs.size(), failing);

  out += "| bench | status | gated | worst gated delta |\n";
  out += "|---|---|---:|---|\n";
  for (const BenchDiff& d : diffs) {
    std::size_t gated = 0;
    const MetricDelta* worst = nullptr;
    for (const MetricDelta& m : d.deltas) {
      if (!m.gate) continue;
      ++gated;
      if (!worst || std::fabs(m.rel) > std::fabs(worst->rel)) worst = &m;
    }
    out += "| " + d.bench + " | " + (d.ok() ? "ok" : "**FAIL**") + " | " +
           format("%zu", gated) + " | " +
           (worst ? worst->metric + " " + format("%+.2f%%", worst->rel * 100.0)
                  : "—") +
           " |\n";
  }
  out += "\n";

  for (std::size_t bi = 0; bi < diffs.size(); ++bi) {
    const BenchDiff& d = diffs[bi];
    const BenchReport* base = bi < baselines.size() ? baselines[bi] : nullptr;
    const BenchReport* cur = bi < currents.size() ? currents[bi] : nullptr;
    out += "## " + d.bench + (d.ok() ? "" : " — FAIL") + "\n\n";
    if (!d.comparable) {
      out += d.incomparable_why + "\n\n";
      continue;
    }
    out += "| metric | baseline | current | delta | tol | trend |\n";
    out += "|---|---:|---:|---:|---:|---|\n";
    for (const MetricDelta& m : d.deltas) {
      // Per-metric trend: the run's sampled series when the bench exported
      // one, else the two-point baseline->current pair.
      std::string trend;
      const std::vector<double>* series =
          cur ? cur->find_series(m.metric) : nullptr;
      if (series && !series->empty()) {
        trend = sparkline(*series);
      } else {
        trend = sparkline({m.baseline, m.current}, 2);
      }
      std::string delta = std::isinf(m.rel)
                              ? "new-nonzero"
                              : format("%+.2f%%", m.rel * 100.0);
      if (m.fail) delta = "**" + delta + "**";
      out += "| " + m.metric + (m.gate ? "" : " *(info)*") + " | " +
             human(m.baseline) + " | " + human(m.current) + " | " + delta +
             " | " + (m.gate ? format("%.1f%%", m.tol * 100.0) : "—") + " | " +
             trend + " |\n";
    }
    for (const std::string& name : d.missing) {
      out += "| " + name + " | " +
             (base && base->find(name) ? human(base->find(name)->value) : "?") +
             " | *missing* | **missing** | — | |\n";
    }
    for (const std::string& name : d.extra) {
      out += "| " + name + " *(new)* | — | " +
             (cur && cur->find(name) ? human(cur->find(name)->value) : "?") +
             " | — | — | |\n";
    }
    out += "\n";
  }

  std::vector<std::string> all_failures;
  for (const BenchDiff& d : diffs) {
    auto f = d.failures();
    all_failures.insert(all_failures.end(), f.begin(), f.end());
  }
  if (!all_failures.empty()) {
    out += "## Failures\n\n";
    for (const std::string& f : all_failures) out += "- " + f + "\n";
  }
  return out;
}

}  // namespace es2
