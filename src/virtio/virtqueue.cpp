#include "virtio/virtqueue.h"

#include "base/assert.h"
#include "metrics/metrics.h"

namespace es2 {

namespace {
/// vring_need_event() from the virtio spec: fire iff `new_idx` crosses
/// `event + 1`, given the previous index `old_idx`.
bool need_event(std::int64_t event, std::int64_t new_idx, std::int64_t old_idx) {
  return (new_idx - event - 1) < (new_idx - old_idx) && (new_idx - old_idx) > 0;
}
}  // namespace

Virtqueue::Virtqueue(std::string name, int capacity, RingLayout layout)
    : name_(std::move(name)), capacity_(capacity), layout_(layout) {
  ES2_CHECK_MSG(capacity_ > 0, "virtqueue capacity must be positive");
}

bool Virtqueue::add_avail(Entry entry) {
  if (free_slots() <= 0) return false;
  avail_.push_back(std::move(entry));
  ++avail_idx_;
  if (avail_idx_ % capacity_ == 0) driver_wrap_ = !driver_wrap_;
  return true;
}

bool Virtqueue::kick_needed() const {
  if (!notifications_enabled_) return false;
  if (layout_ == RingLayout::kPacked) {
    // Packed event suppression (virtio 1.1 §2.7.14): the device's driver
    // event struct names one descriptor position; the driver kicks when
    // the descriptor it just made available sits at that position. The
    // device re-arms at its current read position (enable_notifications
    // sets avail_event_ = avail_idx_), so this fires exactly when the
    // split event-idx protocol would.
    return packed_pos(avail_idx_ - 1) == packed_pos(avail_event_);
  }
  return need_event(avail_event_, avail_idx_, avail_idx_ - 1);
}

std::optional<Virtqueue::Entry> Virtqueue::pop_avail() {
  if (avail_.empty()) return std::nullopt;
  Entry entry = std::move(avail_.front());
  avail_.pop_front();
  ++in_flight_;
  return entry;
}

void Virtqueue::push_used(Entry entry) {
  ES2_CHECK_MSG(in_flight_ > 0, "push_used without a popped descriptor");
  --in_flight_;
  used_.push_back(std::move(entry));
  ++used_idx_;
  if (used_idx_ % capacity_ == 0) device_wrap_ = !device_wrap_;
}

bool Virtqueue::interrupt_needed() const {
  if (!interrupts_enabled_) return false;
  if (layout_ == RingLayout::kPacked) {
    // Symmetric to kick_needed: the driver's device event struct names the
    // used position it wants an interrupt for.
    return packed_pos(used_idx_ - 1) == packed_pos(used_event_);
  }
  return need_event(used_event_, used_idx_, used_idx_ - 1);
}

std::optional<Virtqueue::Entry> Virtqueue::pop_used() {
  if (used_.empty()) return std::nullopt;
  Entry entry = std::move(used_.front());
  used_.pop_front();
  return entry;
}

void Virtqueue::reset() {
  avail_.clear();
  used_.clear();
  in_flight_ = 0;
  notifications_enabled_ = true;
  avail_idx_ = 0;
  avail_event_ = 0;
  interrupts_enabled_ = true;
  used_idx_ = 0;
  used_event_ = 0;
  driver_wrap_ = true;
  device_wrap_ = true;
  injected_fault_ = RingFault::kNone;
  pending_fault_ = RingFault::kNone;
  ++reset_epoch_;
}

RingFault Virtqueue::check_integrity() const {
  if (injected_fault_ != RingFault::kNone) return injected_fault_;
  const std::int64_t slack =
      avail_idx_ - used_idx_ - in_flight_ - avail_count();
  if (slack > 0) return RingFault::kAvailIdxTorn;
  if (slack < 0) return RingFault::kUsedOverrun;
  if (layout_ == RingLayout::kPacked) {
    // The wrap counters are redundant with the positions when healthy; a
    // disagreement means a descriptor was published under the wrong phase
    // (the packed-ring equivalent of a torn index write). Checked after
    // the slack audit so index tears report as tears, not wrap faults.
    if (driver_wrap_ != (((avail_idx_ / capacity_) % 2) == 0) ||
        device_wrap_ != (((used_idx_ / capacity_) % 2) == 0)) {
      return RingFault::kBadWrapCounter;
    }
  }
  return RingFault::kNone;
}

bool Virtqueue::enable_notifications() {
  notifications_enabled_ = true;
  avail_event_ = avail_idx_;
  ++notify_enables_;
  // vhost re-check: work may have been added between the last empty poll
  // and the re-enable.
  return has_avail();
}

void Virtqueue::register_metrics(MetricsRegistry& registry,
                                 const std::string& vm_name) {
  MetricLabels labels = {{"vm", vm_name}, {"vq", name_}};
  registry.probe("virtio.vq.added", labels, [this] {
    return static_cast<double>(avail_idx_);
  });
  registry.probe("virtio.vq.used", labels, [this] {
    return static_cast<double>(used_idx_);
  });
  registry.probe("virtio.vq.in_flight", labels, [this] {
    return static_cast<double>(in_flight_);
  });
  registry.probe("virtio.vq.notify_enables", labels, [this] {
    return static_cast<double>(notify_enables_);
  });
  registry.probe("virtio.vq.irq_enables", labels, [this] {
    return static_cast<double>(irq_enables_);
  });
}

void Virtqueue::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(capacity_));
  w.put_u32(static_cast<std::uint32_t>(avail_.size()));
  for (const Entry& e : avail_) {
    snapshot_packet(w, e.packet);
    w.put_i64(e.len);
  }
  w.put_u32(static_cast<std::uint32_t>(used_.size()));
  for (const Entry& e : used_) {
    snapshot_packet(w, e.packet);
    w.put_i64(e.len);
  }
  w.put_u32(static_cast<std::uint32_t>(in_flight_));
  w.put_bool(notifications_enabled_);
  w.put_i64(avail_idx_);
  w.put_i64(avail_event_);
  w.put_bool(interrupts_enabled_);
  w.put_i64(used_idx_);
  w.put_i64(used_event_);
  w.put_i64(notify_enables_);
  w.put_i64(irq_enables_);
  if (layout_ == RingLayout::kPacked) {
    // Packed-only fields are appended so split rings keep their exact
    // es2-snap-v1 byte layout (BENCH_snapshot gates section sizes at
    // tolerance zero).
    w.put_bool(driver_wrap_);
    w.put_bool(device_wrap_);
  }
}

void Virtqueue::snapshot_lifecycle_state(SnapshotWriter& w) const {
  w.put_bool(enabled_);
  w.put_i64(reset_epoch_);
  w.put_u8(static_cast<std::uint8_t>(injected_fault_));
  w.put_u8(static_cast<std::uint8_t>(pending_fault_));
}

}  // namespace es2
