// vhost-net back-end: I/O worker thread, per-virtqueue handlers, device.
//
// Mirrors the structure the paper patches (§V-A): one in-kernel I/O thread
// (`VhostWorker`) schedules per-virtqueue handlers. A handler is normally
// asleep in *notification mode* — the guest's kick (an IO_INSTRUCTION VM
// exit) activates it. The handler services its queue in turns; the
// `quota` parameter implements the paper's Algorithm 1:
//
//   * an activated handler disables guest notifications and polls;
//   * if it drains `quota` requests before the queue empties, the load is
//     high: it re-queues itself *with notifications still disabled* —
//     this is the non-exit polling mode;
//   * if the queue empties first, the load is low: it re-enables
//     notifications (with the standard vhost re-check race handling) and
//     goes back to sleep — notification mode.
//
// Standard vhost behaviour is the degenerate case quota = vhost weight
// (large): turns practically always end by draining the queue, so the
// handler sleeps and every fresh request kicks. The ES2 Hybrid I/O
// Handling component (src/es2) simply installs a small quota.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "base/rng.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "virtio/virtqueue.h"
#include "vm/cost_model.h"
#include "vm/vm.h"

namespace es2 {

class FaultInjector;
class MetricsRegistry;
class VhostWorker;

/// One schedulable unit of back-end work (a virtqueue handler).
class VqHandler {
 public:
  explicit VqHandler(std::string name) : name_(std::move(name)) {}
  virtual ~VqHandler() = default;

  /// Runs one turn on the worker thread; must invoke `done(requeue)`
  /// exactly once (possibly after several exec segments).
  virtual void service(VhostWorker& worker,
                       std::function<void(bool requeue)> done) = 0;

  const std::string& name() const { return name_; }

 private:
  friend class VhostWorker;
  std::string name_;
  bool queued_ = false;
  SimTime ready_at_ = 0;  // earliest re-service time after a quota yield
};

/// The vhost I/O thread: round-robins activated handlers.
class VhostWorker : public Snapshottable {
 public:
  /// Cycles consumed by the worker loop per handler dispatch (dequeue,
  /// bookkeeping, switching between handlers).
  static constexpr Cycles kLoopOverhead = 900;

  /// `requeue_delay` is the latency until a handler that yielded at its
  /// quota gets its next turn (Algorithm 1 line 16: "descheduled and waits
  /// for its next turn"): cond_resched + worker round-robin + re-reads.
  /// While waiting with no other work the worker spins (polling burns its
  /// core — exactly the cost the paper's quota bounds). This latency is
  /// what lets a small quota keep pace with the guest — arrivals during
  /// the wait refill the queue — i.e. what makes polling mode sticky
  /// under high load.
  ///
  /// Waking the sleeping worker from a guest kick (eventfd signal ->
  /// scheduler -> cache-cold dispatch) is usually fast
  /// (`wakeup_latency_fast`), but host scheduling noise — softirqs, timer
  /// ticks, runqueue contention — occasionally stretches it to tens of
  /// microseconds (`wakeup_latency_slow`, probability `slow_wakeup_prob`).
  /// The backlog that builds during a slow wakeup is what gives
  /// Algorithm 1 a chance to reach its quota on the first turn and
  /// bootstrap into polling mode; once bootstrapped, ring backpressure
  /// keeps the queue non-empty and polling persists.
  VhostWorker(KvmHost& host, std::string name, int pinned_core,
              SimDuration requeue_delay = usec(20),
              SimDuration wakeup_latency_fast = usec(2),
              SimDuration wakeup_latency_slow = usec(40),
              double slow_wakeup_prob = 0.06);
  VhostWorker(const VhostWorker&) = delete;
  VhostWorker& operator=(const VhostWorker&) = delete;

  /// Queues a handler for service (idempotent) and wakes the thread.
  void activate(VqHandler& handler);

  /// Runs `cycles` of host work on the worker thread, then `done`
  /// (handler helper).
  void exec(Cycles cycles, std::function<void()> done);

  KvmHost& host() { return host_; }
  SimThread& thread() { return thread_; }
  std::uint64_t turns() const { return turns_; }
  /// Sleep->run transitions (eventfd wakeups); turns without a wakeup ran
  /// in polling mode.
  std::uint64_t wakeups() const { return wakeups_; }
  SimDuration requeue_delay() const { return requeue_delay_; }

  /// Registers worker telemetry probes (label worker=<thread name>).
  void register_metrics(MetricsRegistry& registry);

  /// Attaches a fault injector (random dispatch stalls). Null (the
  /// default) keeps the worker stall-free.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Serializes the worker RNG, the active-handler queue (names in
  /// round-robin order) and the thread's scheduling state.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void main_loop();

  KvmHost& host_;
  FaultInjector* faults_ = nullptr;
  SimThread thread_;
  SimDuration requeue_delay_;
  SimDuration wakeup_fast_;
  SimDuration wakeup_slow_;
  double slow_wakeup_prob_;
  Rng rng_;
  bool was_sleeping_ = true;
  std::deque<VqHandler*> active_;
  std::uint64_t turns_ = 0;
  std::uint64_t wakeups_ = 0;
};

/// Per-packet back-end cost knobs (host-side processing).
struct VhostNetParams {
  int vq_capacity = 256;
  /// TX: tap sendmsg through the host bridge + NIC driver.
  Cycles tx_per_packet = 6400;
  /// RX: copy from the socket into guest receive buffers.
  Cycles rx_per_packet = 6500;
  /// Copy cost per payload byte (both directions).
  double cycles_per_byte = 0.75;
  /// Multiplicative per-packet cost jitter (uniform +/- fraction).
  double cost_jitter = 0.08;
  /// Max entries one TX/RX turn may process in notification mode — the
  /// vhost weight; Algorithm 1's quota replaces it when smaller.
  int weight = 256;
  /// Host-side socket buffer (packets) for ingress traffic.
  int sock_buffer = 4096;
  /// When a fault injector is attached: how often the RX path re-checks
  /// for guest buffers after going to sleep waiting on a refill kick that
  /// may have been swallowed. Irrelevant (and never armed) without faults.
  SimDuration rx_repoll_period = usec(100);
};

/// vhost-net device instance for one VM: TX + RX virtqueues, their
/// handlers, the MSI identities, and the wire hookup.
class VhostNetBackend : public Snapshottable {
 public:
  VhostNetBackend(Vm& vm, VhostWorker& worker, Link& tx_link,
                  VhostNetParams params = {});
  ~VhostNetBackend();  // out of line: handler types are private/incomplete
  VhostNetBackend(const VhostNetBackend&) = delete;
  VhostNetBackend& operator=(const VhostNetBackend&) = delete;

  Vm& vm() { return vm_; }
  Virtqueue& tx_vq() { return tx_vq_; }
  Virtqueue& rx_vq() { return rx_vq_; }
  const VhostNetParams& params() const { return params_; }

  /// The paper's poll_quota module parameter: turns the TX/RX handlers
  /// into Algorithm 1 hybrid handlers. Values <= 0 restore standard vhost
  /// (quota = weight).
  void set_poll_quota(int quota);
  int poll_quota() const { return poll_quota_; }

  /// MSI messages the device raises (guest affinity encoded in dest).
  void set_tx_msi(MsiMessage msi) { tx_msi_ = msi; }
  void set_rx_msi(MsiMessage msi) { rx_msi_ = msi; }
  const MsiMessage& tx_msi() const { return tx_msi_; }
  const MsiMessage& rx_msi() const { return rx_msi_; }

  /// Optional MSI interception for related-work baselines (interrupt
  /// coalescing): return false to swallow the interrupt — the filter
  /// becomes responsible for raising it later via `raise_msi_now`.
  using MsiFilter = std::function<bool(const MsiMessage&)>;
  void set_msi_filter(MsiFilter filter) { msi_filter_ = std::move(filter); }

  /// Raises an MSI immediately, bypassing the filter (used by coalescers
  /// when their batch/timeout fires).
  void raise_msi_now(const MsiMessage& msi);

  /// Attaches a fault injector (kick loss/delay, MSI drops). Null (the
  /// default) keeps the event path perfect.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // --- guest-facing (ioeventfd side of the kick) -------------------------
  void notify_tx();
  void notify_rx();

  // --- wire-facing --------------------------------------------------------
  void receive_from_wire(PacketPtr packet);

  std::int64_t rx_dropped() const { return rx_dropped_; }
  /// Times the RX re-poll safety net recovered from a (presumed lost)
  /// refill kick; stays 0 without a fault injector.
  std::int64_t rx_repolls() const { return rx_repolls_; }
  std::int64_t tx_packets() const { return tx_packets_; }
  std::int64_t rx_packets() const { return rx_packets_; }
  std::int64_t tx_irqs() const { return tx_irqs_; }
  std::int64_t rx_irqs() const { return rx_irqs_; }
  /// Turns that ended by re-entering notification mode (queue drained
  /// before the quota filled) vs. by hitting the quota (stay polling).
  std::int64_t tx_mode_reverts() const { return tx_reverts_; }
  std::int64_t tx_quota_hits() const { return tx_quota_hits_; }

  /// Registers backend telemetry — per-direction packet/IRQ counts, mode
  /// transitions, drops — plus both virtqueues' probes (label vm=<name>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes both virtqueues, the host socket buffer contents, the
  /// cost-jitter RNG and every lifetime counter.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  class TxHandler;
  class RxHandler;
  friend class TxHandler;
  friend class RxHandler;

  Cycles tx_cost(const Virtqueue::Entry& e);
  Cycles rx_cost(const PacketPtr& p);
  Cycles jittered(Cycles c);
  void raise_msi(const MsiMessage& msi);
  /// Schedules the RX missed-kick re-poll (only with faults attached).
  void arm_rx_repoll();
  int effective_quota() const {
    return poll_quota_ > 0 ? poll_quota_ : params_.weight;
  }

  Vm& vm_;
  VhostWorker& worker_;
  Link& tx_link_;
  VhostNetParams params_;
  FaultInjector* faults_ = nullptr;
  EventHandle rx_repoll_;
  int poll_quota_ = 0;
  Virtqueue tx_vq_;
  Virtqueue rx_vq_;
  std::unique_ptr<TxHandler> tx_handler_;
  std::unique_ptr<RxHandler> rx_handler_;
  std::deque<PacketPtr> sock_buf_;
  MsiMessage tx_msi_;
  MsiMessage rx_msi_;
  MsiFilter msi_filter_;
  Rng rng_;
  std::int64_t rx_dropped_ = 0;
  std::int64_t rx_repolls_ = 0;
  std::int64_t tx_packets_ = 0;
  std::int64_t rx_packets_ = 0;
  std::int64_t tx_irqs_ = 0;
  std::int64_t rx_irqs_ = 0;
  std::int64_t tx_reverts_ = 0;
  std::int64_t tx_quota_hits_ = 0;
  // Trace correlation registers: the journey id of the latest TX kick /
  // RX wire arrival, carried into worker turns and MSI raises. Written
  // only by the (compile-time gated) trace hooks; inert otherwise.
  std::uint64_t tx_kick_corr_ = 0;
  std::uint64_t rx_kick_corr_ = 0;
};

}  // namespace es2
