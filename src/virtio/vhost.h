// vhost-net back-end: I/O worker thread, per-virtqueue handlers, device.
//
// Mirrors the structure the paper patches (§V-A): one in-kernel I/O thread
// (`VhostWorker`) schedules per-virtqueue handlers. A handler is normally
// asleep in *notification mode* — the guest's kick (an IO_INSTRUCTION VM
// exit) activates it. The handler services its queue in turns; the
// `quota` parameter implements the paper's Algorithm 1:
//
//   * an activated handler disables guest notifications and polls;
//   * if it drains `quota` requests before the queue empties, the load is
//     high: it re-queues itself *with notifications still disabled* —
//     this is the non-exit polling mode;
//   * if the queue empties first, the load is low: it re-enables
//     notifications (with the standard vhost re-check race handling) and
//     goes back to sleep — notification mode.
//
// Standard vhost behaviour is the degenerate case quota = vhost weight
// (large): turns practically always end by draining the queue, so the
// handler sleeps and every fresh request kicks. The ES2 Hybrid I/O
// Handling component (src/es2) simply installs a small quota.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "virtio/virtqueue.h"
#include "vm/cost_model.h"
#include "vm/vm.h"

namespace es2 {

class FaultInjector;
class MetricsRegistry;
class RecoveryLog;
class VhostWorker;

/// One schedulable unit of back-end work (a virtqueue handler).
class VqHandler {
 public:
  explicit VqHandler(std::string name) : name_(std::move(name)) {}
  virtual ~VqHandler() = default;

  /// Runs one turn on the worker thread; must invoke `done(requeue)`
  /// exactly once (possibly after several exec segments).
  virtual void service(VhostWorker& worker,
                       std::function<void(bool requeue)> done) = 0;

  const std::string& name() const { return name_; }
  /// True while queued (or running) on the worker; the backend lifecycle
  /// self-check uses it to tell "parked" from "scheduled".
  bool queued() const { return queued_; }
  /// Flat queue index for profiler/blame labels (2*pair for TX handlers,
  /// 2*pair+1 for RX); -1 when the handler is not a net queue.
  int profile_queue() const { return profile_queue_; }

 protected:
  int profile_queue_ = -1;

 private:
  friend class VhostWorker;
  std::string name_;
  bool queued_ = false;
  SimTime ready_at_ = 0;  // earliest re-service time after a quota yield
};

/// The vhost I/O thread: round-robins activated handlers.
class VhostWorker : public Snapshottable {
 public:
  /// Cycles consumed by the worker loop per handler dispatch (dequeue,
  /// bookkeeping, switching between handlers).
  static constexpr Cycles kLoopOverhead = 900;

  /// A busy-poll work source (one per attached device). `check` scans the
  /// device's avail rings and activates handlers with pending work,
  /// returning true if it activated anything. `rearm` re-enables guest
  /// notifications before the adaptive worker goes to sleep, returning
  /// true if work raced in during the re-enable (the standard vhost
  /// re-check, hoisted to the worker's sleep edge).
  struct PollSource {
    std::function<bool()> check;
    std::function<bool()> rearm;
  };

  /// `requeue_delay` is the latency until a handler that yielded at its
  /// quota gets its next turn (Algorithm 1 line 16: "descheduled and waits
  /// for its next turn"): cond_resched + worker round-robin + re-reads.
  /// While waiting with no other work the worker spins (polling burns its
  /// core — exactly the cost the paper's quota bounds). This latency is
  /// what lets a small quota keep pace with the guest — arrivals during
  /// the wait refill the queue — i.e. what makes polling mode sticky
  /// under high load.
  ///
  /// Waking the sleeping worker from a guest kick (eventfd signal ->
  /// scheduler -> cache-cold dispatch) is usually fast
  /// (`wakeup_latency_fast`), but host scheduling noise — softirqs, timer
  /// ticks, runqueue contention — occasionally stretches it to tens of
  /// microseconds (`wakeup_latency_slow`, probability `slow_wakeup_prob`).
  /// The backlog that builds during a slow wakeup is what gives
  /// Algorithm 1 a chance to reach its quota on the first turn and
  /// bootstrap into polling mode; once bootstrapped, ring backpressure
  /// keeps the queue non-empty and polling persists.
  VhostWorker(KvmHost& host, std::string name, int pinned_core,
              SimDuration requeue_delay = usec(20),
              SimDuration wakeup_latency_fast = usec(2),
              SimDuration wakeup_latency_slow = usec(40),
              double slow_wakeup_prob = 0.06);
  VhostWorker(const VhostWorker&) = delete;
  VhostWorker& operator=(const VhostWorker&) = delete;

  /// Queues a handler for service (idempotent) and wakes the thread.
  void activate(VqHandler& handler);

  /// Switches the worker's idle discipline (default kNotify: sleep on
  /// kicks). kAlwaysPoll spins on the registered poll sources forever —
  /// the exit-less SPDK-style backend; kAdaptive spins for
  /// `adaptive_budget` after the last dispatched work, then re-arms
  /// notifications and sleeps. `poll_interval` is the simulated cost of
  /// one fruitless scan of every source (ring reads + relax pause).
  void set_poll_mode(PollMode mode, SimDuration poll_interval,
                     SimDuration adaptive_budget);
  PollMode poll_mode() const { return poll_mode_; }
  void add_poll_source(PollSource source) {
    poll_sources_.push_back(std::move(source));
  }

  /// Fruitless spin iterations / spins that found and activated work.
  std::int64_t poll_spins() const { return poll_spins_; }
  std::int64_t poll_harvests() const { return poll_harvests_; }

  /// Poll-mode-only telemetry; registered by the harness only when a poll
  /// mode is active (keeps the frozen instrument set — and the sampler's
  /// snapshot bytes — unchanged for every notify-mode scenario).
  void register_poll_metrics(MetricsRegistry& registry);

  /// Runs `cycles` of host work on the worker thread, then `done`
  /// (handler helper).
  void exec(Cycles cycles, std::function<void()> done);

  KvmHost& host() { return host_; }
  SimThread& thread() { return thread_; }
  std::uint64_t turns() const { return turns_; }
  /// High-water mark of the activation queue. `activate` is idempotent
  /// (guarded by VqHandler::queued_), so the work list is bounded by the
  /// number of distinct handlers ever attached — this figure makes that
  /// bound observable, and the overload tests assert it stays small under
  /// a connection storm.
  std::size_t active_high_water() const { return active_high_water_; }
  /// Sleep->run transitions (eventfd wakeups); turns without a wakeup ran
  /// in polling mode.
  std::uint64_t wakeups() const { return wakeups_; }
  SimDuration requeue_delay() const { return requeue_delay_; }

  /// Fault injection: the worker dies (its activation queue is lost and
  /// kicks fall on deaf ears) and comes back after `restart_delay`. The
  /// crash takes effect at the next dispatch boundary — an in-flight
  /// handler turn finishes its current descriptor first, which keeps the
  /// model deterministic without mid-exec teardown. Recovery of the
  /// orphaned queues is the backend self-check's job (it re-activates
  /// handlers once the worker is back).
  void crash_and_restart(SimDuration restart_delay);
  bool crashed() const { return crashed_; }
  std::int64_t crashes() const { return crashes_; }
  std::int64_t restarts() const { return restarts_; }

  /// Lifecycle-only telemetry, registered by the harness when lifecycle
  /// faults are armed (keeps the frozen instrument set — and with it the
  /// sampler's snapshot bytes — unchanged for every existing scenario).
  void register_lifecycle_metrics(MetricsRegistry& registry);

  /// Serializes crash/restart state. Separate from snapshot_state so the
  /// faults-off es2-snap-v1 layout stays bit-identical; the harness
  /// registers it as its own section when lifecycle faults are armed.
  void snapshot_lifecycle_state(SnapshotWriter& w) const;

  /// Registers worker telemetry probes (label worker=<thread name>).
  void register_metrics(MetricsRegistry& registry);

  /// Attaches a fault injector (random dispatch stalls). Null (the
  /// default) keeps the worker stall-free.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Serializes the worker RNG, the active-handler queue (names in
  /// round-robin order) and the thread's scheduling state.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  void main_loop();

  KvmHost& host_;
  FaultInjector* faults_ = nullptr;
  SimThread thread_;
  SimDuration requeue_delay_;
  SimDuration wakeup_fast_;
  SimDuration wakeup_slow_;
  double slow_wakeup_prob_;
  Rng rng_;
  bool was_sleeping_ = true;
  std::deque<VqHandler*> active_;
  std::size_t active_high_water_ = 0;
  std::uint64_t turns_ = 0;
  std::uint64_t wakeups_ = 0;
  // Busy-poll state (inert in the default kNotify mode; snapshot fields
  // are appended only when a poll mode is active so notify-mode images
  // keep their exact es2-snap-v1 layout).
  PollMode poll_mode_ = PollMode::kNotify;
  SimDuration poll_interval_ = 0;
  SimDuration adaptive_budget_ = 0;
  std::vector<PollSource> poll_sources_;
  SimTime last_work_ = 0;
  std::int64_t poll_spins_ = 0;
  std::int64_t poll_harvests_ = 0;
  // Lifecycle state (snapshot via snapshot_lifecycle_state only).
  bool crashed_ = false;
  std::int64_t crashes_ = 0;
  std::int64_t restarts_ = 0;
  EventHandle restart_;
};

/// Per-packet back-end cost knobs (host-side processing).
struct VhostNetParams {
  int vq_capacity = 256;
  /// TX: tap sendmsg through the host bridge + NIC driver.
  Cycles tx_per_packet = 6400;
  /// RX: copy from the socket into guest receive buffers.
  Cycles rx_per_packet = 6500;
  /// Copy cost per payload byte (both directions).
  double cycles_per_byte = 0.75;
  /// Multiplicative per-packet cost jitter (uniform +/- fraction).
  double cost_jitter = 0.08;
  /// Max entries one TX/RX turn may process in notification mode — the
  /// vhost weight; Algorithm 1's quota replaces it when smaller.
  int weight = 256;
  /// Host-side socket buffer (packets) for ingress traffic.
  int sock_buffer = 4096;
  /// RX-backpressure shedding ratio when the guest's overload ladder
  /// reaches rung 2: the ingress link keeps 1 in `backpressure_keep`
  /// packets and sheds the rest before serialization. Inert until
  /// set_rx_backpressure(true), which needs set_rx_link first.
  int backpressure_keep = 4;
  /// When a fault injector is attached: how often the RX path re-checks
  /// for guest buffers after going to sleep waiting on a refill kick that
  /// may have been swallowed. Irrelevant (and never armed) without faults.
  SimDuration rx_repoll_period = usec(100);
  /// Lifecycle self-check cadence (host-side watchdog): a queue with
  /// pending work, an idle handler and no progress for one period gets a
  /// re-activation (the vhost re-poll rung); a second fruitless period
  /// declares the handler wedged and flags DEVICE_NEEDS_RESET. Armed only
  /// via arm_lifecycle_selfcheck (lifecycle fault scenarios).
  SimDuration lifecycle_selfcheck_period = usec(250);
  /// virtio-net queue pairs (VIRTIO_NET_F_MQ when > 1). Ingress flows are
  /// RSS-steered to a pair by 5-tuple hash; each pair has its own TX/RX
  /// rings, handlers, socket buffer and MSI vectors.
  int num_queue_pairs = 1;
  /// Virtqueue memory layout for every queue (VIRTIO_F_RING_PACKED when
  /// packed). Observable transfer semantics are layout-independent — the
  /// ring-conformance suite enforces that.
  RingLayout ring_layout = RingLayout::kSplit;
};

/// vhost-net device instance for one VM: TX + RX virtqueues, their
/// handlers, the MSI identities, and the wire hookup.
class VhostNetBackend : public Snapshottable {
 public:
  VhostNetBackend(Vm& vm, VhostWorker& worker, Link& tx_link,
                  VhostNetParams params = {});
  ~VhostNetBackend();  // out of line: handler types are private/incomplete
  VhostNetBackend(const VhostNetBackend&) = delete;
  VhostNetBackend& operator=(const VhostNetBackend&) = delete;

  Vm& vm() { return vm_; }
  Virtqueue& tx_vq() { return tx_vq_; }
  Virtqueue& rx_vq() { return rx_vq_; }
  const VhostNetParams& params() const { return params_; }

  // --- multi-queue (VIRTIO_NET_F_MQ) ---------------------------------------
  // Queue pair 0 is the classic TX/RX pair every existing scenario uses;
  // pairs 1..N-1 exist only when params.num_queue_pairs > 1. Flat queue
  // indices interleave pairs: q = 2*pair + direction (0 = TX, 1 = RX), so
  // q 0/1 keep their historical meaning.

  int num_queue_pairs() const { return params_.num_queue_pairs; }
  int num_queues() const { return 2 * params_.num_queue_pairs; }
  Virtqueue& tx_vq(int pair);
  Virtqueue& rx_vq(int pair);
  /// Steers an ingress flow to a queue pair (RSS by 5-tuple hash).
  int steer_pair(Proto proto, std::uint64_t flow) const;

  /// The paper's poll_quota module parameter: turns the TX/RX handlers
  /// into Algorithm 1 hybrid handlers. Values <= 0 restore standard vhost
  /// (quota = weight).
  void set_poll_quota(int quota);
  int poll_quota() const { return poll_quota_; }

  /// MSI messages the device raises (guest affinity encoded in dest).
  /// The no-arg forms address queue pair 0.
  void set_tx_msi(MsiMessage msi) { tx_msi_ = msi; }
  void set_rx_msi(MsiMessage msi) { rx_msi_ = msi; }
  const MsiMessage& tx_msi() const { return tx_msi_; }
  const MsiMessage& rx_msi() const { return rx_msi_; }
  const MsiMessage& tx_msi(int pair) const;
  const MsiMessage& rx_msi(int pair) const;

  /// Optional MSI interception for related-work baselines (interrupt
  /// coalescing): return false to swallow the interrupt — the filter
  /// becomes responsible for raising it later via `raise_msi_now`.
  using MsiFilter = std::function<bool(const MsiMessage&)>;
  void set_msi_filter(MsiFilter filter) { msi_filter_ = std::move(filter); }

  /// Raises an MSI immediately, bypassing the filter (used by coalescers
  /// when their batch/timeout fires).
  void raise_msi_now(const MsiMessage& msi);

  /// Attaches a fault injector (kick loss/delay, MSI drops). Null (the
  /// default) keeps the event path perfect.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // --- device lifecycle (virtio 1.1 status register) -----------------------
  // The backend boots pre-negotiated (status DRIVER_OK, all offered
  // features acked) so directly-constructed test rings keep working; the
  // frontend's constructor immediately performs the real negotiation
  // sequence through write_status/ack_features.

  /// Installs this device as a poll source on its worker and, for
  /// kAlwaysPoll, permanently disables guest notifications on every queue
  /// (the exit-less dataplane: the guest never executes a kick). Call
  /// after VhostWorker::set_poll_mode; kNotify is a no-op.
  void set_poll_mode(PollMode mode);
  PollMode poll_mode() const { return poll_mode_; }

  std::uint8_t device_status() const { return status_; }
  /// Guest status-register write. 0 performs a full device reset: both
  /// rings reset, queues disabled, wedges and quarantines cleared,
  /// negotiated features dropped. Setting DRIVER_OK completes (re-)
  /// negotiation. MSI identities and the ES2 poll quota survive (host
  /// module state the driver re-programs identically).
  void write_status(std::uint8_t status);
  std::uint64_t features_offered() const {
    std::uint64_t f = kFeatureMrgRxBuf | kFeatureEventIdx | kFeatureVersion1;
    if (params_.ring_layout == RingLayout::kPacked) f |= kFeatureRingPacked;
    if (params_.num_queue_pairs > 1) f |= kFeatureMq;
    return f;
  }
  /// Driver feature ack before FEATURES_OK; false if not a subset of the
  /// offer (the write is ignored).
  bool ack_features(std::uint64_t features);
  std::uint64_t features_acked() const { return features_acked_; }
  bool driver_ok() const { return (status_ & kStatusDriverOk) != 0; }
  bool needs_reset() const {
    return (status_ & kStatusDeviceNeedsReset) != 0;
  }

  /// Queues by flat index (2*pair + direction; 0 = TX0, 1 = RX0) and
  /// per-queue enable.
  Virtqueue& queue(int q) { return q % 2 == 0 ? tx_vq(q / 2) : rx_vq(q / 2); }
  void enable_queue(int q, bool on) { queue(q).set_enabled(on); }

  /// Device-side single-queue reset: drains/clears the ring (stale
  /// in-flight completions are dropped by the reset-epoch guard), clears
  /// the queue's wedge and quarantine, recomputes DEVICE_NEEDS_RESET, and
  /// leaves the queue enabled again.
  void reset_queue(int q);

  /// Arms the host-side lifecycle watchdog (see
  /// VhostNetParams::lifecycle_selfcheck_period). Called by the harness
  /// only when lifecycle faults are armed: healthy worlds schedule no
  /// extra events and stay bit-identical.
  void arm_lifecycle_selfcheck();

  /// Recovery ledger (owned by the harness); null keeps every hook inert.
  void set_recovery_log(RecoveryLog* log) { recovery_log_ = log; }
  RecoveryLog* recovery_log() { return recovery_log_; }

  /// Invoked after every full device reset (write_status(0)) — the ES2
  /// redirector re-primes its per-VM steering state here.
  void set_reset_listener(std::function<void()> listener) {
    reset_listener_ = std::move(listener);
  }

  // --- lifecycle fault injection (FaultInjector hooks) ---------------------
  /// Ring corruption, rotating deterministically through out-of-range /
  /// duplicate-head / used-overrun and alternating TX/RX.
  void inject_ring_corruption();
  /// Torn avail-idx write, alternating TX/RX.
  void inject_avail_tear();
  /// Wedges a handler (alternating TX/RX): it keeps consuming activations
  /// without servicing until a queue/device reset clears it.
  void inject_handler_wedge();
  /// Crashes the worker (restarting after `restart_delay`) and opens a
  /// worker-scope fault instance.
  void inject_worker_crash(SimDuration restart_delay);

  std::int64_t ring_faults_detected() const { return ring_faults_detected_; }
  std::int64_t kicks_ignored() const { return kicks_ignored_; }
  /// Lifecycle self-check re-activations (the vhost re-poll rung).
  std::int64_t selfcheck_repolls() const { return selfcheck_repolls_; }
  std::int64_t queue_resets() const { return queue_resets_; }
  std::int64_t device_resets() const { return device_resets_; }
  std::int64_t renegotiations() const { return renegotiations_; }

  /// Lifecycle-only telemetry; registered by the harness when lifecycle
  /// faults are armed (keeps the frozen instrument set unchanged
  /// elsewhere).
  void register_lifecycle_metrics(MetricsRegistry& registry);

  /// Serializes device status, negotiated features, wedges, injection
  /// rotation state and both queues' lifecycle state. Separate section
  /// from snapshot_state so faults-off images keep their exact layout.
  void snapshot_lifecycle_state(SnapshotWriter& w) const;

  // --- guest-facing (ioeventfd side of the kick) -------------------------
  void notify_tx() { notify_tx(0); }
  void notify_rx() { notify_rx(0); }
  void notify_tx(int pair);
  void notify_rx(int pair);

  // --- wire-facing --------------------------------------------------------
  void receive_from_wire(PacketPtr packet);

  /// Binds the ingress link feeding receive_from_wire so the guest's
  /// overload ladder (rung 2) can push backpressure all the way to the
  /// NIC. Null (the default) makes set_rx_backpressure a no-op.
  void set_rx_link(Link* link) { rx_link_ = link; }
  /// Engages/releases deterministic 1-in-N admission at the ingress link
  /// (N = VhostNetParams::backpressure_keep).
  void set_rx_backpressure(bool on);
  bool rx_backpressure() const { return rx_backpressure_; }

  std::int64_t rx_dropped() const { return rx_dropped_; }
  /// Times the RX re-poll safety net recovered from a (presumed lost)
  /// refill kick; stays 0 without a fault injector.
  std::int64_t rx_repolls() const { return rx_repolls_; }
  std::int64_t tx_packets() const { return tx_packets_; }
  std::int64_t rx_packets() const { return rx_packets_; }
  std::int64_t tx_irqs() const { return tx_irqs_; }
  std::int64_t rx_irqs() const { return rx_irqs_; }
  /// Turns that ended by re-entering notification mode (queue drained
  /// before the quota filled) vs. by hitting the quota (stay polling).
  std::int64_t tx_mode_reverts() const { return tx_reverts_; }
  std::int64_t tx_quota_hits() const { return tx_quota_hits_; }

  /// Registers backend telemetry — per-direction packet/IRQ counts, mode
  /// transitions, drops — plus both virtqueues' probes (label vm=<name>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes both virtqueues, the host socket buffer contents, the
  /// cost-jitter RNG and every lifetime counter.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  class TxHandler;
  class RxHandler;
  friend class TxHandler;
  friend class RxHandler;

  /// Rings, handlers, socket buffer and MSI identities for one queue pair
  /// beyond pair 0 (which lives in the legacy members so single-queue
  /// scenarios keep their exact construction order and snapshot bytes).
  struct ExtraPair;

  Cycles tx_cost(const Virtqueue::Entry& e);
  Cycles rx_cost(const PacketPtr& p);
  Cycles jittered(Cycles c);
  void raise_msi(const MsiMessage& msi);
  /// Schedules the RX missed-kick re-poll (only with faults attached).
  void arm_rx_repoll();
  int effective_quota() const {
    return poll_quota_ > 0 ? poll_quota_ : params_.weight;
  }
  std::deque<PacketPtr>& sock_buf(int pair);
  TxHandler& tx_handler(int pair);
  RxHandler& rx_handler(int pair);
  /// Handler turn gate: false parks the turn (wedged / disabled /
  /// quarantined queue), running the integrity check on the way in and
  /// quarantining on a fresh fault.
  bool pre_service(int q);
  /// Quarantines queue `q` with fault `f` and flags DEVICE_NEEDS_RESET.
  void on_ring_fault(int q, RingFault f);
  /// Opens a recovery-ledger instance (+ fault_inject trace journey) for
  /// one injected lifecycle fault.
  void open_fault(LifecycleFault mode, int scope);
  /// Completion-side recovery-ledger hook (closes matching instances).
  void note_progress(int scope);
  /// Device operational for queue `q`: driver ready, queue enabled, not
  /// quarantined. The kick path and the busy-poll scan share it.
  bool queue_operational(int q);
  /// True if a kick/activation for queue `q` should be swallowed because
  /// the device is not operational for it.
  bool kick_blocked(int q);
  void lifecycle_selfcheck_tick();
  VqHandler& handler_of(int q);
  std::int64_t progress_counter(int q) const {
    return q % 2 == 0 ? pair_tx_packets_[static_cast<std::size_t>(q / 2)]
                      : pair_rx_packets_[static_cast<std::size_t>(q / 2)];
  }
  /// Busy-poll scan: activates every handler with pending work.
  bool poll_check();
  /// Adaptive sleep edge: re-arm notifications, report races.
  bool poll_rearm();

  Vm& vm_;
  VhostWorker& worker_;
  Link& tx_link_;
  Link* rx_link_ = nullptr;
  bool rx_backpressure_ = false;
  VhostNetParams params_;
  FaultInjector* faults_ = nullptr;
  EventHandle rx_repoll_;
  int poll_quota_ = 0;
  PollMode poll_mode_ = PollMode::kNotify;
  Virtqueue tx_vq_;
  Virtqueue rx_vq_;
  std::unique_ptr<TxHandler> tx_handler_;
  std::unique_ptr<RxHandler> rx_handler_;
  std::vector<std::unique_ptr<ExtraPair>> extra_pairs_;
  std::deque<PacketPtr> sock_buf_;
  MsiMessage tx_msi_;
  MsiMessage rx_msi_;
  MsiFilter msi_filter_;
  Rng rng_;
  std::int64_t rx_dropped_ = 0;
  std::int64_t rx_repolls_ = 0;
  std::int64_t tx_packets_ = 0;
  std::int64_t rx_packets_ = 0;
  std::int64_t tx_irqs_ = 0;
  std::int64_t rx_irqs_ = 0;
  std::int64_t tx_reverts_ = 0;
  std::int64_t tx_quota_hits_ = 0;
  // Per-pair progress counters (the lifecycle self-check needs per-queue
  // progress; the aggregate counters above remain the frozen telemetry).
  // For pair 0 they move in lockstep with tx_packets_/rx_packets_.
  std::vector<std::int64_t> pair_tx_packets_;
  std::vector<std::int64_t> pair_rx_packets_;
  // Trace correlation registers: the journey id of the latest TX kick /
  // RX wire arrival, carried into worker turns and MSI raises. Written
  // only by the (compile-time gated) trace hooks; inert otherwise.
  std::uint64_t tx_kick_corr_ = 0;
  std::uint64_t rx_kick_corr_ = 0;

  // Lifecycle state (snapshot via snapshot_lifecycle_state only). Boots
  // pre-negotiated for directly-constructed test rings; the frontend
  // renegotiates from scratch in its constructor.
  std::uint8_t status_ = kStatusAcknowledge | kStatusDriver |
                         kStatusFeaturesOk | kStatusDriverOk;
  std::uint64_t features_acked_ = kFeatureMrgRxBuf | kFeatureEventIdx |
                                  kFeatureVersion1;
  std::vector<bool> wedged_;  // one per flat queue index
  RecoveryLog* recovery_log_ = nullptr;
  std::function<void()> reset_listener_;
  EventHandle selfcheck_;
  bool selfcheck_armed_ = false;
  std::vector<int> selfcheck_strikes_;
  std::vector<std::int64_t> selfcheck_last_progress_;
  int corrupt_seq_ = 0;
  int tear_seq_ = 0;
  int wedge_seq_ = 0;
  std::int64_t ring_faults_detected_ = 0;
  std::int64_t kicks_ignored_ = 0;
  std::int64_t selfcheck_repolls_ = 0;
  std::int64_t queue_resets_ = 0;
  std::int64_t device_resets_ = 0;
  std::int64_t renegotiations_ = 0;
  // Correlation id of the open lifecycle fault per scope (tx/rx/worker);
  // reset/renegotiate spans reuse it so one journey covers inject ->
  // detect -> reset -> recover.
  std::uint64_t fault_corr_[3] = {0, 0, 0};
};

}  // namespace es2
