#include "virtio/vhost.h"

#include "base/assert.h"
#include "base/strings.h"
#include "fault/fault.h"
#include "metrics/metrics.h"
#include "trace/hooks.h"

namespace es2 {

#if ES2_TRACE_ENABLED
namespace {
int worker_core(VhostWorker& worker) {
  return worker.thread().core() != nullptr ? worker.thread().core()->id() : -1;
}
}  // namespace
#endif

// ---------------------------------------------------------------------------
// VhostWorker
// ---------------------------------------------------------------------------

VhostWorker::VhostWorker(KvmHost& host, std::string name, int pinned_core,
                         SimDuration requeue_delay,
                         SimDuration wakeup_latency_fast,
                         SimDuration wakeup_latency_slow,
                         double slow_wakeup_prob)
    : host_(host),
      thread_(host.sim(), std::move(name)),
      requeue_delay_(requeue_delay),
      wakeup_fast_(wakeup_latency_fast),
      wakeup_slow_(wakeup_latency_slow),
      slow_wakeup_prob_(slow_wakeup_prob),
      rng_(host.sim().make_rng("vhost-worker/" + thread_.name())) {
  thread_.set_main([this] { main_loop(); });
  host_.sched().add(thread_, pinned_core);
}

void VhostWorker::activate(VqHandler& handler) {
  if (handler.queued_) return;
  handler.queued_ = true;
  active_.push_back(&handler);
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(host_.sim())) {
    tr->emit(host_.sim().now(), TraceKind::kWorkerWake, -1, -1,
             worker_core(*this));
  }
#endif
  thread_.wake();
}

void VhostWorker::exec(Cycles cycles, std::function<void()> done) {
  thread_.exec(host_.costs().ns(cycles), std::move(done));
}

void VhostWorker::main_loop() {
  if (active_.empty()) {
    was_sleeping_ = true;
    thread_.block();
    return;
  }
  // Service the first handler that is already eligible; handlers sitting
  // out their quota-yield delay must not block others (the RX handler has
  // to keep draining ingress while the TX handler polls).
  const SimTime now = host_.sim().now();
  size_t pick = 0;
  bool found_ready = false;
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->ready_at_ <= now) {
      pick = i;
      found_ready = true;
      break;
    }
  }
  if (!found_ready) {
    // All waiting: take the one ready soonest.
    for (size_t i = 1; i < active_.size(); ++i) {
      if (active_[i]->ready_at_ < active_[pick]->ready_at_) pick = i;
    }
  }
  VqHandler* handler = active_[pick];
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(pick));
  handler->queued_ = false;
  ++turns_;
  // A handler that yielded at its quota is not eligible again until its
  // round-robin turn comes back; with no other work the worker spins until
  // then (busy polling consumes the core).
  SimDuration wait = handler->ready_at_ > now ? handler->ready_at_ - now : 0;
  if (was_sleeping_) {
    was_sleeping_ = false;
    ++wakeups_;
    if (rng_.bernoulli(slow_wakeup_prob_)) {
      // Slow path: the worker lost the scheduling race (host softirq,
      // timer tick, cache-cold migration). Exponential tail: rare wakeups
      // stretch to several times the mean.
      wait += static_cast<SimDuration>(
          rng_.exponential(static_cast<double>(wakeup_slow_)));
    } else {
      wait += static_cast<SimDuration>(
          rng_.uniform(wakeup_fast_ / 2, wakeup_fast_ * 3 / 2));
    }
  }
  if (faults_ != nullptr) {
    // Injected dispatch stall: the worker got preempted / hit a softirq
    // storm before reaching this handler.
    wait += faults_->worker_stall();
  }
  thread_.exec(wait + host_.costs().ns(kLoopOverhead), [this, handler] {
    handler->service(*this, [this, handler](bool requeue) {
      if (requeue) {
        handler->ready_at_ = host_.sim().now() + requeue_delay_;
        activate(*handler);
      }
      main_loop();
    });
  });
}

// ---------------------------------------------------------------------------
// TX handler — Algorithm 1 (quota = weight reproduces standard vhost)
// ---------------------------------------------------------------------------

class VhostNetBackend::TxHandler final : public VqHandler {
 public:
  explicit TxHandler(VhostNetBackend& backend)
      : VqHandler(backend.vm().name() + "/tx"), backend_(backend) {}

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
    }
#endif
    // Algorithm 1 line 8-10: entering a turn disables guest notifications.
    if (backend_.tx_vq().notifications_enabled()) {
      backend_.tx_vq().disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.tx_vq();
    if (workload_ >= backend_.effective_quota()) {
      // High load: stay in polling mode, wait for the next turn
      // (Algorithm 1 line 15-17).
      ++backend_.tx_quota_hits_;
      done(true);
      return;
    }
    auto entry = vq.pop_avail();
    if (!entry) {
      // Queue empty before the quota filled: the I/O load is low. Return
      // to notification mode (Algorithm 1 line 19-20), handling the
      // standard re-enable race.
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
      ++backend_.tx_reverts_;
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
      }
#endif
      done(false);
      return;
    }
    const Cycles cost = backend_.tx_cost(*entry);
    worker.exec(cost, [this, &worker, entry = std::move(*entry),
                       done = std::move(done)]() mutable {
      backend_.tx_link_.transmit(entry.packet);
      ++backend_.tx_packets_;
      Virtqueue& vq = backend_.tx_vq();
      vq.push_used(Virtqueue::Entry{nullptr, 0});
      if (vq.interrupt_needed()) {
        ++backend_.tx_irqs_;
        backend_.raise_msi(backend_.tx_msi_);
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), /*arg=*/0,
                   backend_.tx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// RX handler
// ---------------------------------------------------------------------------

class VhostNetBackend::RxHandler final : public VqHandler {
 public:
  explicit RxHandler(VhostNetBackend& backend)
      : VqHandler(backend.vm().name() + "/rx"), backend_(backend) {}

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
    }
#endif
    if (backend_.rx_vq().notifications_enabled()) {
      backend_.rx_vq().disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.rx_vq();
    // Ingress draining is bounded by the vhost weight, NOT the ES2 quota:
    // Algorithm 1 throttles guest *notifications*; wire traffic is not a
    // guest I/O request.
    if (workload_ >= backend_.params().weight) {
      done(true);
      return;
    }
    if (backend_.sock_buf_.empty()) {
      // No more ingress traffic. Refill notifications stay disabled — the
      // handler reactivates on wire arrivals, not guest kicks.
      done(false);
      return;
    }
    if (!vq.has_avail()) {
      // Out of guest receive buffers: arm the refill notification so the
      // guest's next buffer post kicks us awake (with the re-check race).
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
      }
#endif
      // Under fault injection the refill kick itself may be swallowed:
      // schedule a re-poll so a lost kick degrades to latency, not a wedge.
      backend_.arm_rx_repoll();
      done(false);
      return;
    }
    PacketPtr packet = backend_.sock_buf_.front();
    backend_.sock_buf_.pop_front();
    const Cycles cost = backend_.rx_cost(packet);
    worker.exec(cost, [this, &worker, packet = std::move(packet),
                       done = std::move(done)]() mutable {
      Virtqueue& vq = backend_.rx_vq();
      auto buffer = vq.pop_avail();
      ES2_CHECK(buffer.has_value());
      ++backend_.rx_packets_;
      vq.push_used(Virtqueue::Entry{packet, packet->wire_size});
      if (vq.interrupt_needed()) {
        ++backend_.rx_irqs_;
        backend_.raise_msi(backend_.rx_msi_);
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), /*arg=*/1,
                   backend_.rx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// VhostNetBackend
// ---------------------------------------------------------------------------

VhostNetBackend::VhostNetBackend(Vm& vm, VhostWorker& worker, Link& tx_link,
                                 VhostNetParams params)
    : vm_(vm),
      worker_(worker),
      tx_link_(tx_link),
      params_(params),
      tx_vq_(vm.name() + "/txq", params.vq_capacity),
      rx_vq_(vm.name() + "/rxq", params.vq_capacity),
      rng_(vm.host().sim().make_rng("vhost/" + vm.name())) {
  tx_handler_ = std::make_unique<TxHandler>(*this);
  rx_handler_ = std::make_unique<RxHandler>(*this);
  // Default MSI identities: virtio-net queue vectors, guest affinity on
  // vCPU 0, lowest-priority delivery (Linux apic_flat default).
  tx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 1), 0,
                       DeliveryMode::kLowestPriority};
  rx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 2), 0,
                       DeliveryMode::kLowestPriority};
}

VhostNetBackend::~VhostNetBackend() = default;

void VhostNetBackend::set_poll_quota(int quota) { poll_quota_ = quota; }

Cycles VhostNetBackend::jittered(Cycles c) {
  if (params_.cost_jitter <= 0) return c;
  const double f =
      1.0 + params_.cost_jitter * (2.0 * rng_.next_double() - 1.0);
  return static_cast<Cycles>(static_cast<double>(c) * f);
}

Cycles VhostNetBackend::tx_cost(const Virtqueue::Entry& e) {
  const Bytes size = e.packet ? e.packet->wire_size : 0;
  return jittered(params_.tx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(size)));
}

Cycles VhostNetBackend::rx_cost(const PacketPtr& p) {
  return jittered(params_.rx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(p->wire_size)));
}

void VhostNetBackend::raise_msi(const MsiMessage& msi) {
  if (msi_filter_ && !msi_filter_(msi)) return;  // coalesced
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    std::uint64_t corr =
        msi.vector == tx_msi_.vector ? tx_kick_corr_ : rx_kick_corr_;
    if (corr == 0) corr = tr->begin_journey();
    if (faults_ != nullptr && faults_->drop_msi()) {
      tr->emit(vm_.host().sim().now(), TraceKind::kMsiDrop, vm_.id(), -1,
               worker_core(worker_), msi.vector, corr);
      return;
    }
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    // Hand the journey across the synchronous router -> vcpu delivery.
    tr->set_inflight(corr);
    vm_.host().router().deliver_msi(vm_, msi);
    return;
  }
#endif
  if (faults_ != nullptr && faults_->drop_msi()) return;
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::raise_msi_now(const MsiMessage& msi) {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    const std::uint64_t corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    tr->set_inflight(corr);
  }
#endif
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::notify_tx() {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A TX kick opens a fresh journey: everything the handler does on its
    // next turn is on this kick's behalf.
    tx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             /*arg=*/0, tx_kick_corr_);
  }
#endif
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, /*arg=*/0, tx_kick_corr_);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(),
                               [this] { worker_.activate(*tx_handler_); });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(*tx_handler_);
}

void VhostNetBackend::notify_rx() {
#if ES2_TRACE_ENABLED
  std::uint64_t refill_corr = 0;
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A refill kick is bookkeeping, not an I/O request: give it its own id
    // but leave rx_kick_corr_ (the data-path journey) alone.
    refill_corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             /*arg=*/1, refill_corr);
  }
#endif
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, /*arg=*/1, refill_corr);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(),
                               [this] { worker_.activate(*rx_handler_); });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(*rx_handler_);
}

void VhostNetBackend::arm_rx_repoll() {
  if (faults_ == nullptr || params_.rx_repoll_period <= 0) return;
  if (rx_repoll_.pending()) return;
  rx_repoll_ = vm_.host().sim().after(params_.rx_repoll_period, [this] {
    if (sock_buf_.empty()) return;  // drained meanwhile, nothing to recover
    if (rx_vq_.has_avail()) {
      // Buffers appeared but the handler is still asleep: the refill kick
      // was lost. Re-poll in its place.
      ++rx_repolls_;
      worker_.activate(*rx_handler_);
      return;
    }
    arm_rx_repoll();  // still waiting on guest buffers
  });
}

void VhostNetBackend::receive_from_wire(PacketPtr packet) {
  if (static_cast<int>(sock_buf_.size()) >= params_.sock_buffer) {
    ++rx_dropped_;
    return;
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // The RX data path has no guest kick; the wire arrival is the
    // journey's origin (latest arrival wins the batch's id).
    rx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kWireRx, vm_.id(), -1, -1,
             /*arg=*/0, rx_kick_corr_);
  }
#endif
  sock_buf_.push_back(std::move(packet));
  worker_.activate(*rx_handler_);
}

void VhostWorker::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.turns", labels, [this] {
    return static_cast<double>(turns_);
  });
  registry.probe("vhost.worker.wakeups", labels, [this] {
    return static_cast<double>(wakeups_);
  });
  registry.probe("vhost.worker.active_handlers", labels, [this] {
    return static_cast<double>(active_.size());
  });
}

void VhostNetBackend::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", vm_.name()}};
  registry.probe("vhost.tx.packets", labels, [this] {
    return static_cast<double>(tx_packets_);
  });
  registry.probe("vhost.rx.packets", labels, [this] {
    return static_cast<double>(rx_packets_);
  });
  registry.probe("vhost.tx.irqs", labels, [this] {
    return static_cast<double>(tx_irqs_);
  });
  registry.probe("vhost.rx.irqs", labels, [this] {
    return static_cast<double>(rx_irqs_);
  });
  registry.probe("vhost.tx.mode_reverts", labels, [this] {
    return static_cast<double>(tx_reverts_);
  });
  registry.probe("vhost.tx.quota_hits", labels, [this] {
    return static_cast<double>(tx_quota_hits_);
  });
  registry.probe("vhost.rx.dropped", labels, [this] {
    return static_cast<double>(rx_dropped_);
  });
  registry.probe("vhost.rx.repolls", labels, [this] {
    return static_cast<double>(rx_repolls_);
  });
  registry.probe("vhost.rx.sock_backlog", labels, [this] {
    return static_cast<double>(sock_buf_.size());
  });
  tx_vq_.register_metrics(registry, vm_.name());
  rx_vq_.register_metrics(registry, vm_.name());
}

void VhostWorker::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_bool(was_sleeping_);
  w.put_u32(static_cast<std::uint32_t>(active_.size()));
  for (const VqHandler* h : active_) {
    w.put_string(h->name_);
    w.put_bool(h->queued_);
    w.put_i64(h->ready_at_);
  }
  w.put_u64(turns_);
  w.put_u64(wakeups_);
  thread_.snapshot_state(w);
}

void VhostNetBackend::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(poll_quota_));
  tx_vq_.snapshot_state(w);
  rx_vq_.snapshot_state(w);
  w.put_u32(static_cast<std::uint32_t>(sock_buf_.size()));
  for (const PacketPtr& p : sock_buf_) snapshot_packet(w, p);
  snapshot_rng(w, rng_);
  w.put_i64(rx_dropped_);
  w.put_i64(rx_repolls_);
  w.put_i64(tx_packets_);
  w.put_i64(rx_packets_);
  w.put_i64(tx_irqs_);
  w.put_i64(rx_irqs_);
  w.put_i64(tx_reverts_);
  w.put_i64(tx_quota_hits_);
}

}  // namespace es2
