#include "virtio/vhost.h"

#include "base/assert.h"
#include "base/strings.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "metrics/metrics.h"
#include "trace/hooks.h"

namespace es2 {

#if ES2_TRACE_ENABLED
namespace {
int worker_core(VhostWorker& worker) {
  return worker.thread().core() != nullptr ? worker.thread().core()->id() : -1;
}
}  // namespace
#endif

// ---------------------------------------------------------------------------
// VhostWorker
// ---------------------------------------------------------------------------

VhostWorker::VhostWorker(KvmHost& host, std::string name, int pinned_core,
                         SimDuration requeue_delay,
                         SimDuration wakeup_latency_fast,
                         SimDuration wakeup_latency_slow,
                         double slow_wakeup_prob)
    : host_(host),
      thread_(host.sim(), std::move(name)),
      requeue_delay_(requeue_delay),
      wakeup_fast_(wakeup_latency_fast),
      wakeup_slow_(wakeup_latency_slow),
      slow_wakeup_prob_(slow_wakeup_prob),
      rng_(host.sim().make_rng("vhost-worker/" + thread_.name())) {
  thread_.set_main([this] { main_loop(); });
  host_.sched().add(thread_, pinned_core);
}

void VhostWorker::activate(VqHandler& handler) {
  if (crashed_) return;  // a dead worker's eventfd wakes nobody
  if (handler.queued_) return;
  handler.queued_ = true;
  active_.push_back(&handler);
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(host_.sim())) {
    tr->emit(host_.sim().now(), TraceKind::kWorkerWake, -1, -1,
             worker_core(*this));
  }
#endif
  thread_.wake();
}

void VhostWorker::exec(Cycles cycles, std::function<void()> done) {
  thread_.exec(host_.costs().ns(cycles), std::move(done));
}

void VhostWorker::crash_and_restart(SimDuration restart_delay) {
  if (crashed_) return;
  ++crashes_;
  crashed_ = true;
  // The activation queue dies with the worker process; in-flight exec
  // segments finish their current descriptor first (crash takes effect at
  // the next dispatch boundary).
  for (VqHandler* h : active_) h->queued_ = false;
  active_.clear();
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(host_.sim())) {
    tr->emit(host_.sim().now(), TraceKind::kWorkerCrash, -1, -1,
             worker_core(*this),
             static_cast<std::uint32_t>(restart_delay));
  }
#endif
  restart_ = host_.sim().after(restart_delay, [this] {
    crashed_ = false;
    ++restarts_;
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(host_.sim())) {
      tr->emit(host_.sim().now(), TraceKind::kWorkerRestart, -1, -1,
               worker_core(*this));
    }
#endif
  });
}

void VhostWorker::register_lifecycle_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.crashes", labels, [this] {
    return static_cast<double>(crashes_);
  });
  registry.probe("vhost.worker.restarts", labels, [this] {
    return static_cast<double>(restarts_);
  });
}

void VhostWorker::snapshot_lifecycle_state(SnapshotWriter& w) const {
  w.put_bool(crashed_);
  w.put_i64(crashes_);
  w.put_i64(restarts_);
}

void VhostWorker::main_loop() {
  if (active_.empty()) {
    was_sleeping_ = true;
    thread_.block();
    return;
  }
  // Service the first handler that is already eligible; handlers sitting
  // out their quota-yield delay must not block others (the RX handler has
  // to keep draining ingress while the TX handler polls).
  const SimTime now = host_.sim().now();
  size_t pick = 0;
  bool found_ready = false;
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->ready_at_ <= now) {
      pick = i;
      found_ready = true;
      break;
    }
  }
  if (!found_ready) {
    // All waiting: take the one ready soonest.
    for (size_t i = 1; i < active_.size(); ++i) {
      if (active_[i]->ready_at_ < active_[pick]->ready_at_) pick = i;
    }
  }
  VqHandler* handler = active_[pick];
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(pick));
  handler->queued_ = false;
  ++turns_;
  // A handler that yielded at its quota is not eligible again until its
  // round-robin turn comes back; with no other work the worker spins until
  // then (busy polling consumes the core).
  SimDuration wait = handler->ready_at_ > now ? handler->ready_at_ - now : 0;
  if (was_sleeping_) {
    was_sleeping_ = false;
    ++wakeups_;
    if (rng_.bernoulli(slow_wakeup_prob_)) {
      // Slow path: the worker lost the scheduling race (host softirq,
      // timer tick, cache-cold migration). Exponential tail: rare wakeups
      // stretch to several times the mean.
      wait += static_cast<SimDuration>(
          rng_.exponential(static_cast<double>(wakeup_slow_)));
    } else {
      wait += static_cast<SimDuration>(
          rng_.uniform(wakeup_fast_ / 2, wakeup_fast_ * 3 / 2));
    }
  }
  if (faults_ != nullptr) {
    // Injected dispatch stall: the worker got preempted / hit a softirq
    // storm before reaching this handler.
    wait += faults_->worker_stall();
  }
  thread_.exec(wait + host_.costs().ns(kLoopOverhead), [this, handler] {
    handler->service(*this, [this, handler](bool requeue) {
      if (requeue) {
        handler->ready_at_ = host_.sim().now() + requeue_delay_;
        activate(*handler);
      }
      main_loop();
    });
  });
}

// ---------------------------------------------------------------------------
// TX handler — Algorithm 1 (quota = weight reproduces standard vhost)
// ---------------------------------------------------------------------------

class VhostNetBackend::TxHandler final : public VqHandler {
 public:
  explicit TxHandler(VhostNetBackend& backend)
      : VqHandler(backend.vm().name() + "/tx"), backend_(backend) {}

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
    }
#endif
    // Lifecycle gate: a wedged/quarantined/disabled queue parks the turn
    // (and runs the ring-integrity check on the way in).
    if (!backend_.pre_service(0)) {
      done(false);
      return;
    }
    // Algorithm 1 line 8-10: entering a turn disables guest notifications.
    if (backend_.tx_vq().notifications_enabled()) {
      backend_.tx_vq().disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.tx_vq();
    if (workload_ >= backend_.effective_quota()) {
      // High load: stay in polling mode, wait for the next turn
      // (Algorithm 1 line 15-17).
      ++backend_.tx_quota_hits_;
      done(true);
      return;
    }
    auto entry = vq.pop_avail();
    if (!entry) {
      // Queue empty before the quota filled: the I/O load is low. Return
      // to notification mode (Algorithm 1 line 19-20), handling the
      // standard re-enable race.
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
      ++backend_.tx_reverts_;
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), /*arg=*/0, backend_.tx_kick_corr_);
      }
#endif
      done(false);
      return;
    }
    const Cycles cost = backend_.tx_cost(*entry);
    const std::int64_t epoch = vq.reset_epoch();
    worker.exec(cost, [this, &worker, epoch, entry = std::move(*entry),
                       done = std::move(done)]() mutable {
      Virtqueue& vq = backend_.tx_vq();
      if (vq.reset_epoch() != epoch) {
        // The queue was reset mid-flight: this turn's view of the ring is
        // stale and the descriptor is gone. The packet is dropped (the
        // peer's TCP retransmit recovers it).
        done(false);
        return;
      }
      backend_.tx_link_.transmit(entry.packet);
      ++backend_.tx_packets_;
      vq.push_used(Virtqueue::Entry{nullptr, 0});
      backend_.note_progress(kScopeTx);
      if (vq.interrupt_needed()) {
        ++backend_.tx_irqs_;
        backend_.raise_msi(backend_.tx_msi_);
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), /*arg=*/0,
                   backend_.tx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// RX handler
// ---------------------------------------------------------------------------

class VhostNetBackend::RxHandler final : public VqHandler {
 public:
  explicit RxHandler(VhostNetBackend& backend)
      : VqHandler(backend.vm().name() + "/rx"), backend_(backend) {}

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
    }
#endif
    if (!backend_.pre_service(1)) {
      done(false);
      return;
    }
    if (backend_.rx_vq().notifications_enabled()) {
      backend_.rx_vq().disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.rx_vq();
    // Ingress draining is bounded by the vhost weight, NOT the ES2 quota:
    // Algorithm 1 throttles guest *notifications*; wire traffic is not a
    // guest I/O request.
    if (workload_ >= backend_.params().weight) {
      done(true);
      return;
    }
    if (backend_.sock_buf_.empty()) {
      // No more ingress traffic. Refill notifications stay disabled — the
      // handler reactivates on wire arrivals, not guest kicks.
      done(false);
      return;
    }
    if (!vq.has_avail()) {
      // Out of guest receive buffers: arm the refill notification so the
      // guest's next buffer post kicks us awake (with the re-check race).
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), /*arg=*/1, backend_.rx_kick_corr_);
      }
#endif
      // Under fault injection the refill kick itself may be swallowed:
      // schedule a re-poll so a lost kick degrades to latency, not a wedge.
      backend_.arm_rx_repoll();
      done(false);
      return;
    }
    PacketPtr packet = backend_.sock_buf_.front();
    backend_.sock_buf_.pop_front();
    const Cycles cost = backend_.rx_cost(packet);
    const std::int64_t epoch = vq.reset_epoch();
    worker.exec(cost, [this, &worker, epoch, packet = std::move(packet),
                       done = std::move(done)]() mutable {
      Virtqueue& vq = backend_.rx_vq();
      if (vq.reset_epoch() != epoch) {
        // Reset raced the copy: the buffer this packet was headed for no
        // longer exists. Drop it; the sender retransmits.
        done(false);
        return;
      }
      auto buffer = vq.pop_avail();
      ES2_CHECK(buffer.has_value());
      ++backend_.rx_packets_;
      vq.push_used(Virtqueue::Entry{packet, packet->wire_size});
      backend_.note_progress(kScopeRx);
      if (vq.interrupt_needed()) {
        ++backend_.rx_irqs_;
        backend_.raise_msi(backend_.rx_msi_);
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), /*arg=*/1,
                   backend_.rx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// VhostNetBackend
// ---------------------------------------------------------------------------

VhostNetBackend::VhostNetBackend(Vm& vm, VhostWorker& worker, Link& tx_link,
                                 VhostNetParams params)
    : vm_(vm),
      worker_(worker),
      tx_link_(tx_link),
      params_(params),
      tx_vq_(vm.name() + "/txq", params.vq_capacity),
      rx_vq_(vm.name() + "/rxq", params.vq_capacity),
      rng_(vm.host().sim().make_rng("vhost/" + vm.name())) {
  tx_handler_ = std::make_unique<TxHandler>(*this);
  rx_handler_ = std::make_unique<RxHandler>(*this);
  // Default MSI identities: virtio-net queue vectors, guest affinity on
  // vCPU 0, lowest-priority delivery (Linux apic_flat default).
  tx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 1), 0,
                       DeliveryMode::kLowestPriority};
  rx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 2), 0,
                       DeliveryMode::kLowestPriority};
}

VhostNetBackend::~VhostNetBackend() = default;

void VhostNetBackend::set_poll_quota(int quota) { poll_quota_ = quota; }

Cycles VhostNetBackend::jittered(Cycles c) {
  if (params_.cost_jitter <= 0) return c;
  const double f =
      1.0 + params_.cost_jitter * (2.0 * rng_.next_double() - 1.0);
  return static_cast<Cycles>(static_cast<double>(c) * f);
}

Cycles VhostNetBackend::tx_cost(const Virtqueue::Entry& e) {
  const Bytes size = e.packet ? e.packet->wire_size : 0;
  return jittered(params_.tx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(size)));
}

Cycles VhostNetBackend::rx_cost(const PacketPtr& p) {
  return jittered(params_.rx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(p->wire_size)));
}

void VhostNetBackend::raise_msi(const MsiMessage& msi) {
  if (msi_filter_ && !msi_filter_(msi)) return;  // coalesced
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    std::uint64_t corr =
        msi.vector == tx_msi_.vector ? tx_kick_corr_ : rx_kick_corr_;
    if (corr == 0) corr = tr->begin_journey();
    if (faults_ != nullptr && faults_->drop_msi()) {
      tr->emit(vm_.host().sim().now(), TraceKind::kMsiDrop, vm_.id(), -1,
               worker_core(worker_), msi.vector, corr);
      return;
    }
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    // Hand the journey across the synchronous router -> vcpu delivery.
    tr->set_inflight(corr);
    vm_.host().router().deliver_msi(vm_, msi);
    return;
  }
#endif
  if (faults_ != nullptr && faults_->drop_msi()) return;
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::raise_msi_now(const MsiMessage& msi) {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    const std::uint64_t corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    tr->set_inflight(corr);
  }
#endif
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::notify_tx() {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A TX kick opens a fresh journey: everything the handler does on its
    // next turn is on this kick's behalf.
    tx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             /*arg=*/0, tx_kick_corr_);
  }
#endif
  if (kick_blocked(0)) return;
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, /*arg=*/0, tx_kick_corr_);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(),
                               [this] { worker_.activate(*tx_handler_); });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(*tx_handler_);
}

void VhostNetBackend::notify_rx() {
#if ES2_TRACE_ENABLED
  std::uint64_t refill_corr = 0;
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A refill kick is bookkeeping, not an I/O request: give it its own id
    // but leave rx_kick_corr_ (the data-path journey) alone.
    refill_corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             /*arg=*/1, refill_corr);
  }
#endif
  if (kick_blocked(1)) return;
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, /*arg=*/1, refill_corr);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(),
                               [this] { worker_.activate(*rx_handler_); });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(*rx_handler_);
}

// ---------------------------------------------------------------------------
// Device lifecycle
// ---------------------------------------------------------------------------

void VhostNetBackend::write_status(std::uint8_t status) {
  if (status == 0) {
    // Full device reset (virtio 1.1 §2.4.2): quiesce both queues, drop
    // quarantines and wedges, forget the negotiated features. Stale
    // in-flight completions are dropped by the reset-epoch guard; MSI
    // identities and the ES2 poll quota survive (host module state the
    // driver re-programs identically).
    tx_vq_.reset();
    rx_vq_.reset();
    tx_vq_.set_enabled(false);
    rx_vq_.set_enabled(false);
    wedged_[0] = wedged_[1] = false;
    selfcheck_strikes_[0] = selfcheck_strikes_[1] = 0;
    status_ = 0;
    features_acked_ = 0;
    ++device_resets_;
    if (recovery_log_ != nullptr) {
      recovery_log_->note_action(RecoveryRung::kDeviceReset, kScopeWorker);
    }
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      std::uint64_t corr = fault_corr_[kScopeWorker];
      if (corr == 0) corr = fault_corr_[kScopeTx];
      if (corr == 0) corr = fault_corr_[kScopeRx];
      tr->emit(vm_.host().sim().now(), TraceKind::kDeviceReset, vm_.id(), -1,
               worker_core(worker_), /*arg=*/0, corr);
    }
#endif
    if (reset_listener_) reset_listener_();
    return;
  }
  // DEVICE_NEEDS_RESET is device-owned: guest writes can neither set nor
  // clear it short of a full reset.
  const bool was_driver_ok = driver_ok();
  status_ = static_cast<std::uint8_t>(
      (status & ~kStatusDeviceNeedsReset) |
      (status_ & kStatusDeviceNeedsReset));
  if (!was_driver_ok && driver_ok()) {
    ++renegotiations_;
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      tr->emit(vm_.host().sim().now(), TraceKind::kRenegotiate, vm_.id(), -1,
               worker_core(worker_),
               static_cast<std::uint32_t>(features_acked_ & 0xffffffffu),
               fault_corr_[kScopeWorker]);
    }
#endif
  }
}

bool VhostNetBackend::ack_features(std::uint64_t features) {
  if ((features & ~features_offered()) != 0) return false;
  features_acked_ = features;
  return true;
}

void VhostNetBackend::reset_queue(int q) {
  Virtqueue& vq = queue(q);
  vq.reset();
  vq.set_enabled(true);
  wedged_[q] = false;
  selfcheck_strikes_[q] = 0;
  ++queue_resets_;
  if (recovery_log_ != nullptr) {
    recovery_log_->note_action(RecoveryRung::kQueueReset, q);
  }
  if (tx_vq_.pending_fault() == RingFault::kNone &&
      rx_vq_.pending_fault() == RingFault::kNone) {
    status_ &= static_cast<std::uint8_t>(~kStatusDeviceNeedsReset);
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    tr->emit(vm_.host().sim().now(), TraceKind::kQueueReset, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(q),
             fault_corr_[q]);
  }
#endif
}

bool VhostNetBackend::pre_service(int q) {
  Virtqueue& vq = queue(q);
  if (wedged_[q]) return false;  // eats the activation, does no work
  if (!driver_ok() || !vq.enabled()) return false;
  if (vq.pending_fault() != RingFault::kNone) return false;  // quarantined
  const RingFault f = vq.check_integrity();
  if (f != RingFault::kNone) {
    on_ring_fault(q, f);
    return false;
  }
  return true;
}

void VhostNetBackend::on_ring_fault(int q, RingFault f) {
  queue(q).flag_fault(f);
  status_ |= kStatusDeviceNeedsReset;
  ++ring_faults_detected_;
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    tr->emit(vm_.host().sim().now(), TraceKind::kRingFault, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(f),
             fault_corr_[q]);
  }
#endif
}

void VhostNetBackend::note_progress(int scope) {
  if (recovery_log_ == nullptr) return;
  const int closed =
      recovery_log_->note_progress(scope, vm_.host().sim().now());
  if (closed > 0) {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      tr->emit(vm_.host().sim().now(), TraceKind::kRecovered, vm_.id(), -1,
               worker_core(worker_), static_cast<std::uint32_t>(closed),
               fault_corr_[scope]);
    }
#endif
    fault_corr_[scope] = 0;
    // Progress on any queue also closes worker-scope instances.
    fault_corr_[kScopeWorker] = 0;
  }
}

bool VhostNetBackend::kick_blocked(int q) {
  // A wedged handler still *receives* kicks (it eats the turns); only a
  // non-operational device swallows them at the ioeventfd.
  if (driver_ok() && queue(q).enabled() &&
      queue(q).pending_fault() == RingFault::kNone) {
    return false;
  }
  ++kicks_ignored_;
  return true;
}

void VhostNetBackend::open_fault(LifecycleFault mode, int scope) {
  std::uint64_t corr = 0;
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kFaultInject, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(mode), corr);
  }
#endif
  fault_corr_[scope] = corr;
  if (recovery_log_ != nullptr) {
    recovery_log_->open(mode, scope, vm_.host().sim().now(), corr);
  }
}

void VhostNetBackend::inject_ring_corruption() {
  const int q = corrupt_seq_ & 1;
  const int kind = (corrupt_seq_ >> 1) % 3;
  ++corrupt_seq_;
  Virtqueue& vq = queue(q);
  if (vq.pending_fault() != RingFault::kNone) return;  // already quarantined
  switch (kind) {
    case 0:
      vq.inject_desc_out_of_range();
      break;
    case 1:
      vq.inject_duplicate_head();
      break;
    default:
      vq.inject_used_overrun();
      break;
  }
  open_fault(LifecycleFault::kDescCorrupt, q);
}

void VhostNetBackend::inject_avail_tear() {
  const int q = tear_seq_ & 1;
  ++tear_seq_;
  Virtqueue& vq = queue(q);
  if (vq.pending_fault() != RingFault::kNone) return;
  vq.inject_avail_tear();
  open_fault(LifecycleFault::kAvailTear, q);
}

void VhostNetBackend::inject_handler_wedge() {
  const int q = wedge_seq_ & 1;
  ++wedge_seq_;
  if (wedged_[q]) return;
  wedged_[q] = true;
  open_fault(LifecycleFault::kHandlerWedge, q);
}

void VhostNetBackend::inject_worker_crash(SimDuration restart_delay) {
  if (worker_.crashed()) return;
  open_fault(LifecycleFault::kWorkerCrash, kScopeWorker);
  worker_.crash_and_restart(restart_delay);
}

VqHandler& VhostNetBackend::handler_of(int q) {
  return q == 0 ? static_cast<VqHandler&>(*tx_handler_)
                : static_cast<VqHandler&>(*rx_handler_);
}

void VhostNetBackend::arm_lifecycle_selfcheck() {
  if (selfcheck_armed_ || params_.lifecycle_selfcheck_period <= 0) return;
  selfcheck_armed_ = true;
  selfcheck_last_progress_[0] = tx_packets_;
  selfcheck_last_progress_[1] = rx_packets_;
  selfcheck_ = vm_.host().sim().after(params_.lifecycle_selfcheck_period,
                                      [this] { lifecycle_selfcheck_tick(); });
}

void VhostNetBackend::lifecycle_selfcheck_tick() {
  for (int q = 0; q < 2; ++q) {
    Virtqueue& vq = queue(q);
    const std::int64_t progress = progress_counter(q);
    const bool progressed = progress != selfcheck_last_progress_[q];
    selfcheck_last_progress_[q] = progress;
    // Strikes freeze while the worker is down: re-activating a dead worker
    // is pointless, and the first post-restart tick should escalate from
    // where the stall left off.
    if (worker_.crashed()) continue;
    const bool work =
        q == 0 ? vq.has_avail() : (!sock_buf_.empty() && vq.has_avail());
    VqHandler& h = handler_of(q);
    if (!work || progressed || h.queued() || !vq.enabled() ||
        vq.pending_fault() != RingFault::kNone || !driver_ok()) {
      selfcheck_strikes_[q] = 0;
      continue;
    }
    ++selfcheck_strikes_[q];
    if (selfcheck_strikes_[q] == 1) {
      // First strike: assume a lost activation (swallowed kick, worker
      // crash) and re-poll in its place — the vhost re-poll rung.
      ++selfcheck_repolls_;
      if (recovery_log_ != nullptr) {
        recovery_log_->note_action(RecoveryRung::kVhostRepoll, q);
      }
      worker_.activate(h);
    } else {
      // Re-polling didn't help: the handler is eating turns without
      // making progress. Declare it wedged and quarantine the queue; the
      // guest ladder takes it from here.
      selfcheck_strikes_[q] = 0;
      on_ring_fault(q, RingFault::kHandlerWedge);
    }
  }
  selfcheck_ = vm_.host().sim().after(params_.lifecycle_selfcheck_period,
                                      [this] { lifecycle_selfcheck_tick(); });
}

void VhostNetBackend::register_lifecycle_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", vm_.name()}};
  registry.probe("vhost.lifecycle.status", labels, [this] {
    return static_cast<double>(status_);
  });
  registry.probe("vhost.lifecycle.ring_faults", labels, [this] {
    return static_cast<double>(ring_faults_detected_);
  });
  registry.probe("vhost.lifecycle.kicks_ignored", labels, [this] {
    return static_cast<double>(kicks_ignored_);
  });
  registry.probe("vhost.lifecycle.selfcheck_repolls", labels, [this] {
    return static_cast<double>(selfcheck_repolls_);
  });
  registry.probe("vhost.lifecycle.queue_resets", labels, [this] {
    return static_cast<double>(queue_resets_);
  });
  registry.probe("vhost.lifecycle.device_resets", labels, [this] {
    return static_cast<double>(device_resets_);
  });
  registry.probe("vhost.lifecycle.renegotiations", labels, [this] {
    return static_cast<double>(renegotiations_);
  });
  // Uniform per-cause watchdog-recovery reporting (the guest frontend
  // registers the tx_rekick / napi_poll causes): host-side re-polls from
  // both the PR-2 RX safety net and the lifecycle self-check.
  registry.probe("recovery.watchdog",
                 {{"vm", vm_.name()}, {"cause", "vhost_repoll"}}, [this] {
                   return static_cast<double>(rx_repolls_ +
                                              selfcheck_repolls_);
                 });
}

void VhostNetBackend::snapshot_lifecycle_state(SnapshotWriter& w) const {
  w.put_u8(status_);
  w.put_u64(features_acked_);
  w.put_bool(wedged_[0]);
  w.put_bool(wedged_[1]);
  w.put_u32(static_cast<std::uint32_t>(selfcheck_strikes_[0]));
  w.put_u32(static_cast<std::uint32_t>(selfcheck_strikes_[1]));
  w.put_i64(selfcheck_last_progress_[0]);
  w.put_i64(selfcheck_last_progress_[1]);
  w.put_u32(static_cast<std::uint32_t>(corrupt_seq_));
  w.put_u32(static_cast<std::uint32_t>(tear_seq_));
  w.put_u32(static_cast<std::uint32_t>(wedge_seq_));
  w.put_i64(ring_faults_detected_);
  w.put_i64(kicks_ignored_);
  w.put_i64(selfcheck_repolls_);
  w.put_i64(queue_resets_);
  w.put_i64(device_resets_);
  w.put_i64(renegotiations_);
  tx_vq_.snapshot_lifecycle_state(w);
  rx_vq_.snapshot_lifecycle_state(w);
}

void VhostNetBackend::arm_rx_repoll() {
  if (faults_ == nullptr || params_.rx_repoll_period <= 0) return;
  if (rx_repoll_.pending()) return;
  rx_repoll_ = vm_.host().sim().after(params_.rx_repoll_period, [this] {
    if (sock_buf_.empty()) return;  // drained meanwhile, nothing to recover
    if (rx_vq_.has_avail()) {
      // Buffers appeared but the handler is still asleep: the refill kick
      // was lost. Re-poll in its place.
      ++rx_repolls_;
      worker_.activate(*rx_handler_);
      return;
    }
    arm_rx_repoll();  // still waiting on guest buffers
  });
}

void VhostNetBackend::receive_from_wire(PacketPtr packet) {
  if (static_cast<int>(sock_buf_.size()) >= params_.sock_buffer) {
    ++rx_dropped_;
    return;
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // The RX data path has no guest kick; the wire arrival is the
    // journey's origin (latest arrival wins the batch's id).
    rx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kWireRx, vm_.id(), -1, -1,
             /*arg=*/0, rx_kick_corr_);
  }
#endif
  sock_buf_.push_back(std::move(packet));
  worker_.activate(*rx_handler_);
}

void VhostWorker::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.turns", labels, [this] {
    return static_cast<double>(turns_);
  });
  registry.probe("vhost.worker.wakeups", labels, [this] {
    return static_cast<double>(wakeups_);
  });
  registry.probe("vhost.worker.active_handlers", labels, [this] {
    return static_cast<double>(active_.size());
  });
}

void VhostNetBackend::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", vm_.name()}};
  registry.probe("vhost.tx.packets", labels, [this] {
    return static_cast<double>(tx_packets_);
  });
  registry.probe("vhost.rx.packets", labels, [this] {
    return static_cast<double>(rx_packets_);
  });
  registry.probe("vhost.tx.irqs", labels, [this] {
    return static_cast<double>(tx_irqs_);
  });
  registry.probe("vhost.rx.irqs", labels, [this] {
    return static_cast<double>(rx_irqs_);
  });
  registry.probe("vhost.tx.mode_reverts", labels, [this] {
    return static_cast<double>(tx_reverts_);
  });
  registry.probe("vhost.tx.quota_hits", labels, [this] {
    return static_cast<double>(tx_quota_hits_);
  });
  registry.probe("vhost.rx.dropped", labels, [this] {
    return static_cast<double>(rx_dropped_);
  });
  registry.probe("vhost.rx.repolls", labels, [this] {
    return static_cast<double>(rx_repolls_);
  });
  registry.probe("vhost.rx.sock_backlog", labels, [this] {
    return static_cast<double>(sock_buf_.size());
  });
  tx_vq_.register_metrics(registry, vm_.name());
  rx_vq_.register_metrics(registry, vm_.name());
}

void VhostWorker::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_bool(was_sleeping_);
  w.put_u32(static_cast<std::uint32_t>(active_.size()));
  for (const VqHandler* h : active_) {
    w.put_string(h->name_);
    w.put_bool(h->queued_);
    w.put_i64(h->ready_at_);
  }
  w.put_u64(turns_);
  w.put_u64(wakeups_);
  thread_.snapshot_state(w);
}

void VhostNetBackend::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(poll_quota_));
  tx_vq_.snapshot_state(w);
  rx_vq_.snapshot_state(w);
  w.put_u32(static_cast<std::uint32_t>(sock_buf_.size()));
  for (const PacketPtr& p : sock_buf_) snapshot_packet(w, p);
  snapshot_rng(w, rng_);
  w.put_i64(rx_dropped_);
  w.put_i64(rx_repolls_);
  w.put_i64(tx_packets_);
  w.put_i64(rx_packets_);
  w.put_i64(tx_irqs_);
  w.put_i64(rx_irqs_);
  w.put_i64(tx_reverts_);
  w.put_i64(tx_quota_hits_);
}

}  // namespace es2
