#include "virtio/vhost.h"

#include <algorithm>

#include "base/assert.h"
#include "base/strings.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "metrics/metrics.h"
#include "profile/hooks.h"
#include "trace/hooks.h"

namespace es2 {

#if ES2_TRACE_ENABLED
namespace {
int worker_core(VhostWorker& worker) {
  return worker.thread().core() != nullptr ? worker.thread().core()->id() : -1;
}
}  // namespace
#endif

#if ES2_PROFILE_ENABLED
namespace {
ProfComp turn_comp(const VqHandler& h) {
  const int q = h.profile_queue();
  return q >= 0 && q % 2 != 0 ? ProfComp::kVhostTurnRx
                              : ProfComp::kVhostTurnTx;
}
unsigned turn_key(const VqHandler& h) {
  const int q = h.profile_queue();
  return q >= 0 ? static_cast<unsigned>(q) : 0u;
}
}  // namespace
#endif

// ---------------------------------------------------------------------------
// VhostWorker
// ---------------------------------------------------------------------------

VhostWorker::VhostWorker(KvmHost& host, std::string name, int pinned_core,
                         SimDuration requeue_delay,
                         SimDuration wakeup_latency_fast,
                         SimDuration wakeup_latency_slow,
                         double slow_wakeup_prob)
    : host_(host),
      thread_(host.sim(), std::move(name)),
      requeue_delay_(requeue_delay),
      wakeup_fast_(wakeup_latency_fast),
      wakeup_slow_(wakeup_latency_slow),
      slow_wakeup_prob_(slow_wakeup_prob),
      rng_(host.sim().make_rng("vhost-worker/" + thread_.name())) {
  thread_.set_main([this] { main_loop(); });
  host_.sched().add(thread_, pinned_core);
}

void VhostWorker::activate(VqHandler& handler) {
  if (crashed_) return;  // a dead worker's eventfd wakes nobody
  if (handler.queued_) return;
  handler.queued_ = true;
  active_.push_back(&handler);
  active_high_water_ = std::max(active_high_water_, active_.size());
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(host_.sim())) {
    tr->emit(host_.sim().now(), TraceKind::kWorkerWake, -1, -1,
             worker_core(*this));
  }
#endif
  thread_.wake();
}

void VhostWorker::exec(Cycles cycles, std::function<void()> done) {
  thread_.exec(host_.costs().ns(cycles), std::move(done));
}

void VhostWorker::crash_and_restart(SimDuration restart_delay) {
  if (crashed_) return;
  ++crashes_;
  crashed_ = true;
  // The activation queue dies with the worker process; in-flight exec
  // segments finish their current descriptor first (crash takes effect at
  // the next dispatch boundary).
  for (VqHandler* h : active_) h->queued_ = false;
  active_.clear();
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(host_.sim())) {
    tr->emit(host_.sim().now(), TraceKind::kWorkerCrash, -1, -1,
             worker_core(*this),
             static_cast<std::uint32_t>(restart_delay));
  }
#endif
  restart_ = host_.sim().after(restart_delay, [this] {
    crashed_ = false;
    ++restarts_;
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(host_.sim())) {
      tr->emit(host_.sim().now(), TraceKind::kWorkerRestart, -1, -1,
               worker_core(*this));
    }
#endif
    // A notify-mode worker is re-woken by the next kick; a polling worker
    // has no kicks coming (notifications are disabled) and must resume
    // its spin loop itself.
    if (poll_mode_ != PollMode::kNotify) thread_.wake();
  });
}

void VhostWorker::set_poll_mode(PollMode mode, SimDuration poll_interval,
                                SimDuration adaptive_budget) {
  poll_mode_ = mode;
  poll_interval_ = poll_interval;
  adaptive_budget_ = adaptive_budget;
  // A polling worker cannot rely on a first kick to start its spin loop
  // (notifications may already be suppressed); enter it at t=0.
  if (mode != PollMode::kNotify) thread_.wake();
}

void VhostWorker::register_poll_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.poll_spins", labels, [this] {
    return static_cast<double>(poll_spins_);
  });
  registry.probe("vhost.worker.poll_harvests", labels, [this] {
    return static_cast<double>(poll_harvests_);
  });
}

void VhostWorker::register_lifecycle_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.crashes", labels, [this] {
    return static_cast<double>(crashes_);
  });
  registry.probe("vhost.worker.restarts", labels, [this] {
    return static_cast<double>(restarts_);
  });
}

void VhostWorker::snapshot_lifecycle_state(SnapshotWriter& w) const {
  w.put_bool(crashed_);
  w.put_i64(crashes_);
  w.put_i64(restarts_);
}

void VhostWorker::main_loop() {
  if (active_.empty()) {
    if (poll_mode_ != PollMode::kNotify && !crashed_ &&
        !poll_sources_.empty()) {
      // Busy-poll idle path: scan the avail rings instead of sleeping.
      bool found = false;
      for (PollSource& s : poll_sources_) {
        if (s.check && s.check()) found = true;
      }
      if (found) {
        ++poll_harvests_;
        main_loop();  // dispatch what the scan activated
        return;
      }
      const SimTime now = host_.sim().now();
      if (poll_mode_ == PollMode::kAlwaysPoll ||
          now - last_work_ <= adaptive_budget_) {
        ++poll_spins_;
        thread_.exec(poll_interval_, [this] { main_loop(); });
        return;
      }
      // Adaptive budget exhausted: re-arm guest notifications (the sleep
      // edge owns the standard vhost re-check race) and go to sleep.
      bool raced = false;
      for (PollSource& s : poll_sources_) {
        if (s.rearm && s.rearm()) raced = true;
      }
      if (raced) {
        main_loop();
        return;
      }
    }
    was_sleeping_ = true;
    thread_.block();
    return;
  }
  // Service the first handler that is already eligible; handlers sitting
  // out their quota-yield delay must not block others (the RX handler has
  // to keep draining ingress while the TX handler polls).
  const SimTime now = host_.sim().now();
  size_t pick = 0;
  bool found_ready = false;
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->ready_at_ <= now) {
      pick = i;
      found_ready = true;
      break;
    }
  }
  if (!found_ready) {
    // All waiting: take the one ready soonest.
    for (size_t i = 1; i < active_.size(); ++i) {
      if (active_[i]->ready_at_ < active_[pick]->ready_at_) pick = i;
    }
  }
  VqHandler* handler = active_[pick];
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(pick));
  handler->queued_ = false;
  ++turns_;
  last_work_ = now;  // adaptive poll budget restarts at every dispatch
  // A handler that yielded at its quota is not eligible again until its
  // round-robin turn comes back; with no other work the worker spins until
  // then (busy polling consumes the core).
  SimDuration wait = handler->ready_at_ > now ? handler->ready_at_ - now : 0;
  if (was_sleeping_) {
    was_sleeping_ = false;
    ++wakeups_;
    if (rng_.bernoulli(slow_wakeup_prob_)) {
      // Slow path: the worker lost the scheduling race (host softirq,
      // timer tick, cache-cold migration). Exponential tail: rare wakeups
      // stretch to several times the mean.
      wait += static_cast<SimDuration>(
          rng_.exponential(static_cast<double>(wakeup_slow_)));
    } else {
      wait += static_cast<SimDuration>(
          rng_.uniform(wakeup_fast_ / 2, wakeup_fast_ * 3 / 2));
    }
  }
  if (faults_ != nullptr) {
    // Injected dispatch stall: the worker got preempted / hit a softirq
    // storm before reaching this handler.
    wait += faults_->worker_stall();
  }
#if ES2_PROFILE_ENABLED
  // One turn = dispatch wait + wakeup latency + the handler's service,
  // closed by the continuation below. The span slot is keyed by the flat
  // queue index, so per-queue turn residency falls out of the export.
  if (Profiler* pf = active_profiler(host_.sim())) {
    pf->span_begin(turn_comp(*handler), turn_key(*handler), now);
  }
#endif
  thread_.exec(wait + host_.costs().ns(kLoopOverhead), [this, handler] {
    handler->service(*this, [this, handler](bool requeue) {
#if ES2_PROFILE_ENABLED
      if (Profiler* pf = active_profiler(host_.sim())) {
        pf->span_end(turn_comp(*handler), turn_key(*handler),
                     host_.sim().now());
      }
#endif
      if (requeue) {
        handler->ready_at_ = host_.sim().now() + requeue_delay_;
        activate(*handler);
      }
      main_loop();
    });
  });
}

// ---------------------------------------------------------------------------
// TX handler — Algorithm 1 (quota = weight reproduces standard vhost)
// ---------------------------------------------------------------------------

class VhostNetBackend::TxHandler final : public VqHandler {
 public:
  TxHandler(VhostNetBackend& backend, int pair)
      : VqHandler(pair == 0
                      ? backend.vm().name() + "/tx"
                      : backend.vm().name() + format("/tx%d", pair)),
        backend_(backend),
        pair_(pair),
        q_(2 * pair) {
    profile_queue_ = q_;
  }

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), static_cast<std::uint32_t>(q_),
               backend_.tx_kick_corr_);
    }
#endif
    // Lifecycle gate: a wedged/quarantined/disabled queue parks the turn
    // (and runs the ring-integrity check on the way in).
    if (!backend_.pre_service(q_)) {
      done(false);
      return;
    }
    // Algorithm 1 line 8-10: entering a turn disables guest notifications.
    if (backend_.tx_vq(pair_).notifications_enabled()) {
      backend_.tx_vq(pair_).disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), static_cast<std::uint32_t>(q_),
                 backend_.tx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.tx_vq(pair_);
    if (workload_ >= backend_.effective_quota()) {
      // High load: stay in polling mode, wait for the next turn
      // (Algorithm 1 line 15-17).
      ++backend_.tx_quota_hits_;
      done(true);
      return;
    }
    auto entry = vq.pop_avail();
    if (!entry) {
      if (backend_.poll_mode() != PollMode::kNotify) {
        // Busy-poll backend: notifications never come back on; the
        // worker's poll scan re-activates this handler when work appears.
        done(false);
        return;
      }
      // Queue empty before the quota filled: the I/O load is low. Return
      // to notification mode (Algorithm 1 line 19-20), handling the
      // standard re-enable race.
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
      ++backend_.tx_reverts_;
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), static_cast<std::uint32_t>(q_),
                 backend_.tx_kick_corr_);
      }
#endif
      done(false);
      return;
    }
    const Cycles cost = backend_.tx_cost(*entry);
    const std::int64_t epoch = vq.reset_epoch();
    worker.exec(cost, [this, &worker, epoch, entry = std::move(*entry),
                       done = std::move(done)]() mutable {
      Virtqueue& vq = backend_.tx_vq(pair_);
      if (vq.reset_epoch() != epoch) {
        // The queue was reset mid-flight: this turn's view of the ring is
        // stale and the descriptor is gone. The packet is dropped (the
        // peer's TCP retransmit recovers it).
        done(false);
        return;
      }
      backend_.tx_link_.transmit(entry.packet);
      ++backend_.tx_packets_;
      ++backend_.pair_tx_packets_[static_cast<std::size_t>(pair_)];
      vq.push_used(Virtqueue::Entry{nullptr, 0});
      backend_.note_progress(kScopeTx);
      if (vq.interrupt_needed()) {
        ++backend_.tx_irqs_;
        backend_.raise_msi(backend_.tx_msi(pair_));
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), static_cast<std::uint32_t>(q_),
                   backend_.tx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  const int pair_;
  const int q_;  // flat queue index (2 * pair_)
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// RX handler
// ---------------------------------------------------------------------------

class VhostNetBackend::RxHandler final : public VqHandler {
 public:
  RxHandler(VhostNetBackend& backend, int pair)
      : VqHandler(pair == 0
                      ? backend.vm().name() + "/rx"
                      : backend.vm().name() + format("/rx%d", pair)),
        backend_(backend),
        pair_(pair),
        q_(2 * pair + 1) {
    profile_queue_ = q_;
  }

  void service(VhostWorker& worker,
               std::function<void(bool)> done) override {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(worker.host().sim())) {
      tr->emit(worker.host().sim().now(), TraceKind::kWorkerTurn, -1, -1,
               worker_core(worker), static_cast<std::uint32_t>(q_),
               backend_.rx_kick_corr_);
    }
#endif
    if (!backend_.pre_service(q_)) {
      done(false);
      return;
    }
    if (backend_.rx_vq(pair_).notifications_enabled()) {
      backend_.rx_vq(pair_).disable_notifications();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyDisable, -1, -1,
                 worker_core(worker), static_cast<std::uint32_t>(q_),
                 backend_.rx_kick_corr_);
      }
#endif
    }
    workload_ = 0;
    poll(worker, std::move(done));
  }

 private:
  void poll(VhostWorker& worker, std::function<void(bool)> done) {
    Virtqueue& vq = backend_.rx_vq(pair_);
    // Ingress draining is bounded by the vhost weight, NOT the ES2 quota:
    // Algorithm 1 throttles guest *notifications*; wire traffic is not a
    // guest I/O request.
    if (workload_ >= backend_.params().weight) {
      done(true);
      return;
    }
    std::deque<PacketPtr>& sock_buf = backend_.sock_buf(pair_);
    if (sock_buf.empty()) {
      // No more ingress traffic. Refill notifications stay disabled — the
      // handler reactivates on wire arrivals, not guest kicks.
      done(false);
      return;
    }
    if (!vq.has_avail()) {
      if (backend_.poll_mode() != PollMode::kNotify) {
        // Busy-poll backend: the poll scan notices when the guest posts
        // fresh receive buffers; no refill notification needed.
        done(false);
        return;
      }
      // Out of guest receive buffers: arm the refill notification so the
      // guest's next buffer post kicks us awake (with the re-check race).
      if (vq.enable_notifications()) {
        vq.disable_notifications();
        poll(worker, std::move(done));
        return;
      }
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(worker.host().sim())) {
        tr->emit(worker.host().sim().now(), TraceKind::kNotifyEnable, -1, -1,
                 worker_core(worker), static_cast<std::uint32_t>(q_),
                 backend_.rx_kick_corr_);
      }
#endif
      // Under fault injection the refill kick itself may be swallowed:
      // schedule a re-poll so a lost kick degrades to latency, not a wedge.
      backend_.arm_rx_repoll();
      done(false);
      return;
    }
    PacketPtr packet = sock_buf.front();
    sock_buf.pop_front();
    const Cycles cost = backend_.rx_cost(packet);
    const std::int64_t epoch = vq.reset_epoch();
    worker.exec(cost, [this, &worker, epoch, packet = std::move(packet),
                       done = std::move(done)]() mutable {
      Virtqueue& vq = backend_.rx_vq(pair_);
      if (vq.reset_epoch() != epoch) {
        // Reset raced the copy: the buffer this packet was headed for no
        // longer exists. Drop it; the sender retransmits.
        done(false);
        return;
      }
      auto buffer = vq.pop_avail();
      ES2_CHECK(buffer.has_value());
      ++backend_.rx_packets_;
      ++backend_.pair_rx_packets_[static_cast<std::size_t>(pair_)];
      vq.push_used(Virtqueue::Entry{packet, packet->wire_size});
      backend_.note_progress(kScopeRx);
      if (vq.interrupt_needed()) {
        ++backend_.rx_irqs_;
        backend_.raise_msi(backend_.rx_msi(pair_));
      } else {
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(worker.host().sim())) {
          tr->emit(worker.host().sim().now(), TraceKind::kIrqSuppressed, -1,
                   -1, worker_core(worker), static_cast<std::uint32_t>(q_),
                   backend_.rx_kick_corr_);
        }
#endif
      }
      ++workload_;
      poll(worker, std::move(done));
    });
  }

  VhostNetBackend& backend_;
  const int pair_;
  const int q_;  // flat queue index (2 * pair_ + 1)
  int workload_ = 0;
};

// ---------------------------------------------------------------------------
// ExtraPair — rings/handlers/buffers for queue pairs beyond pair 0
// ---------------------------------------------------------------------------

struct VhostNetBackend::ExtraPair {
  Virtqueue tx;
  Virtqueue rx;
  std::unique_ptr<TxHandler> tx_handler;
  std::unique_ptr<RxHandler> rx_handler;
  std::deque<PacketPtr> sock_buf;
  MsiMessage tx_msi;
  MsiMessage rx_msi;

  ExtraPair(VhostNetBackend& backend, int pair)
      : tx(backend.vm().name() + format("/txq%d", pair),
           backend.params().vq_capacity, backend.params().ring_layout),
        rx(backend.vm().name() + format("/rxq%d", pair),
           backend.params().vq_capacity, backend.params().ring_layout),
        tx_handler(std::make_unique<TxHandler>(backend, pair)),
        rx_handler(std::make_unique<RxHandler>(backend, pair)) {
    // Each pair gets its own MSI vectors (continuing pair 0's layout of
    // kFirstDeviceVector+1/+2) with guest affinity spread across vCPUs —
    // the standard irqbalance-style queue->vCPU mapping.
    const int vcpus = backend.vm().num_vcpus();
    tx_msi = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 1 + 2 * pair),
                        pair % vcpus, DeliveryMode::kLowestPriority};
    rx_msi = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 2 + 2 * pair),
                        pair % vcpus, DeliveryMode::kLowestPriority};
  }
};

// ---------------------------------------------------------------------------
// VhostNetBackend
// ---------------------------------------------------------------------------

VhostNetBackend::VhostNetBackend(Vm& vm, VhostWorker& worker, Link& tx_link,
                                 VhostNetParams params)
    : vm_(vm),
      worker_(worker),
      tx_link_(tx_link),
      params_(params),
      tx_vq_(vm.name() + "/txq", params.vq_capacity, params.ring_layout),
      rx_vq_(vm.name() + "/rxq", params.vq_capacity, params.ring_layout),
      rng_(vm.host().sim().make_rng("vhost/" + vm.name())) {
  ES2_CHECK_MSG(params_.num_queue_pairs >= 1,
                "vhost-net needs at least one queue pair");
  tx_handler_ = std::make_unique<TxHandler>(*this, 0);
  rx_handler_ = std::make_unique<RxHandler>(*this, 0);
  // Default MSI identities: virtio-net queue vectors, guest affinity on
  // vCPU 0, lowest-priority delivery (Linux apic_flat default).
  tx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 1), 0,
                       DeliveryMode::kLowestPriority};
  rx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 2), 0,
                       DeliveryMode::kLowestPriority};
  for (int p = 1; p < params_.num_queue_pairs; ++p) {
    extra_pairs_.push_back(std::make_unique<ExtraPair>(*this, p));
  }
  const std::size_t nq = static_cast<std::size_t>(num_queues());
  wedged_.assign(nq, false);
  selfcheck_strikes_.assign(nq, 0);
  selfcheck_last_progress_.assign(nq, 0);
  const std::size_t np = static_cast<std::size_t>(num_queue_pairs());
  pair_tx_packets_.assign(np, 0);
  pair_rx_packets_.assign(np, 0);
  // Boot pre-negotiated with everything on offer acked (packed/MQ bits
  // included when configured); the frontend renegotiates from scratch.
  features_acked_ = features_offered();
}

VhostNetBackend::~VhostNetBackend() = default;

void VhostNetBackend::set_poll_quota(int quota) { poll_quota_ = quota; }

Virtqueue& VhostNetBackend::tx_vq(int pair) {
  return pair == 0 ? tx_vq_
                   : extra_pairs_[static_cast<std::size_t>(pair - 1)]->tx;
}

Virtqueue& VhostNetBackend::rx_vq(int pair) {
  return pair == 0 ? rx_vq_
                   : extra_pairs_[static_cast<std::size_t>(pair - 1)]->rx;
}

std::deque<PacketPtr>& VhostNetBackend::sock_buf(int pair) {
  return pair == 0 ? sock_buf_
                   : extra_pairs_[static_cast<std::size_t>(pair - 1)]->sock_buf;
}

VhostNetBackend::TxHandler& VhostNetBackend::tx_handler(int pair) {
  return pair == 0
             ? *tx_handler_
             : *extra_pairs_[static_cast<std::size_t>(pair - 1)]->tx_handler;
}

VhostNetBackend::RxHandler& VhostNetBackend::rx_handler(int pair) {
  return pair == 0
             ? *rx_handler_
             : *extra_pairs_[static_cast<std::size_t>(pair - 1)]->rx_handler;
}

const MsiMessage& VhostNetBackend::tx_msi(int pair) const {
  return pair == 0 ? tx_msi_
                   : extra_pairs_[static_cast<std::size_t>(pair - 1)]->tx_msi;
}

const MsiMessage& VhostNetBackend::rx_msi(int pair) const {
  return pair == 0 ? rx_msi_
                   : extra_pairs_[static_cast<std::size_t>(pair - 1)]->rx_msi;
}

int VhostNetBackend::steer_pair(Proto proto, std::uint64_t flow) const {
  if (params_.num_queue_pairs <= 1) return 0;
  return static_cast<int>(
      rss_hash(proto, flow) %
      static_cast<std::uint32_t>(params_.num_queue_pairs));
}

void VhostNetBackend::set_poll_mode(PollMode mode) {
  poll_mode_ = mode;
  if (mode == PollMode::kNotify) return;
  VhostWorker::PollSource source;
  source.check = [this] { return poll_check(); };
  source.rearm = [this] { return poll_rearm(); };
  worker_.add_poll_source(std::move(source));
  if (mode == PollMode::kAlwaysPoll) {
    // Exit-less dataplane: the guest never finds notifications enabled,
    // so kick_needed() is permanently false and no I/O exits happen.
    for (int q = 0; q < num_queues(); ++q) queue(q).disable_notifications();
  }
}

bool VhostNetBackend::poll_check() {
  bool any = false;
  for (int p = 0; p < num_queue_pairs(); ++p) {
    const int txq = 2 * p;
    const int rxq = 2 * p + 1;
    if (queue_operational(txq) && !wedged_[static_cast<std::size_t>(txq)] &&
        tx_vq(p).has_avail() && !tx_handler(p).queued()) {
      worker_.activate(tx_handler(p));
      any = true;
    }
    if (queue_operational(rxq) && !wedged_[static_cast<std::size_t>(rxq)] &&
        !sock_buf(p).empty() && rx_vq(p).has_avail() &&
        !rx_handler(p).queued()) {
      worker_.activate(rx_handler(p));
      any = true;
    }
  }
  return any;
}

bool VhostNetBackend::poll_rearm() {
  bool raced = false;
  for (int p = 0; p < num_queue_pairs(); ++p) {
    if (!queue_operational(2 * p) && !queue_operational(2 * p + 1)) continue;
    Virtqueue& tx = tx_vq(p);
    if (tx.enable_notifications()) {
      tx.disable_notifications();
      worker_.activate(tx_handler(p));
      raced = true;
    }
    // The RX handler is woken by wire arrivals, not guest kicks; the only
    // kick it ever needs is the buffer-refill one, and only while ingress
    // is actually stuck waiting on guest buffers.
    Virtqueue& rx = rx_vq(p);
    if (!sock_buf(p).empty()) {
      if (rx.has_avail() || rx.enable_notifications()) {
        rx.disable_notifications();
        worker_.activate(rx_handler(p));
        raced = true;
      }
    }
  }
  return raced;
}

Cycles VhostNetBackend::jittered(Cycles c) {
  if (params_.cost_jitter <= 0) return c;
  const double f =
      1.0 + params_.cost_jitter * (2.0 * rng_.next_double() - 1.0);
  return static_cast<Cycles>(static_cast<double>(c) * f);
}

Cycles VhostNetBackend::tx_cost(const Virtqueue::Entry& e) {
  const Bytes size = e.packet ? e.packet->wire_size : 0;
  return jittered(params_.tx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(size)));
}

Cycles VhostNetBackend::rx_cost(const PacketPtr& p) {
  return jittered(params_.rx_per_packet +
                  static_cast<Cycles>(params_.cycles_per_byte *
                                      static_cast<double>(p->wire_size)));
}

void VhostNetBackend::raise_msi(const MsiMessage& msi) {
  if (msi_filter_ && !msi_filter_(msi)) return;  // coalesced
#if ES2_PROFILE_ENABLED
  // The raise -> router -> vcpu delivery chain is synchronous, so a sync
  // scope captures its full host cost.
  Profiler::Scope prof_scope(active_profiler(vm_.host().sim()),
                             ProfComp::kVhostMsi);
#endif
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    std::uint64_t corr =
        msi.vector == tx_msi_.vector ? tx_kick_corr_ : rx_kick_corr_;
    if (corr == 0) corr = tr->begin_journey();
    if (faults_ != nullptr && faults_->drop_msi()) {
      tr->emit(vm_.host().sim().now(), TraceKind::kMsiDrop, vm_.id(), -1,
               worker_core(worker_), msi.vector, corr);
      return;
    }
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    // Hand the journey across the synchronous router -> vcpu delivery.
    tr->set_inflight(corr);
    vm_.host().router().deliver_msi(vm_, msi);
    return;
  }
#endif
  if (faults_ != nullptr && faults_->drop_msi()) return;
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::raise_msi_now(const MsiMessage& msi) {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    const std::uint64_t corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kMsiRaise, vm_.id(), -1,
             worker_core(worker_), msi.vector, corr);
    tr->set_inflight(corr);
  }
#endif
  vm_.host().router().deliver_msi(vm_, msi);
}

void VhostNetBackend::notify_tx(int pair) {
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A TX kick opens a fresh journey: everything the handler does on its
    // next turn is on this kick's behalf.
    tx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             static_cast<std::uint32_t>(2 * pair), tx_kick_corr_);
  }
#endif
  if (kick_blocked(2 * pair)) return;
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, static_cast<std::uint32_t>(2 * pair), tx_kick_corr_);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(), [this, pair] {
          worker_.activate(tx_handler(pair));
        });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(tx_handler(pair));
}

void VhostNetBackend::notify_rx(int pair) {
#if ES2_TRACE_ENABLED
  std::uint64_t refill_corr = 0;
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // A refill kick is bookkeeping, not an I/O request: give it its own id
    // but leave rx_kick_corr_ (the data-path journey) alone.
    refill_corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kKick, vm_.id(), -1, -1,
             static_cast<std::uint32_t>(2 * pair + 1), refill_corr);
  }
#endif
  if (kick_blocked(2 * pair + 1)) return;
  if (faults_ != nullptr) {
    switch (faults_->kick_fate()) {
      case FaultInjector::KickFate::kDrop:
#if ES2_TRACE_ENABLED
        if (Tracer* tr = active_tracer(vm_.host().sim())) {
          tr->emit(vm_.host().sim().now(), TraceKind::kKickDrop, vm_.id(), -1,
                   -1, static_cast<std::uint32_t>(2 * pair + 1), refill_corr);
        }
#endif
        return;
      case FaultInjector::KickFate::kDelay:
        vm_.host().sim().after(faults_->kick_delay(), [this, pair] {
          worker_.activate(rx_handler(pair));
        });
        return;
      case FaultInjector::KickFate::kDeliver:
        break;
    }
  }
  worker_.activate(rx_handler(pair));
}

// ---------------------------------------------------------------------------
// Device lifecycle
// ---------------------------------------------------------------------------

void VhostNetBackend::write_status(std::uint8_t status) {
  if (status == 0) {
    // Full device reset (virtio 1.1 §2.4.2): quiesce every queue, drop
    // quarantines and wedges, forget the negotiated features. Stale
    // in-flight completions are dropped by the reset-epoch guard; MSI
    // identities and the ES2 poll quota survive (host module state the
    // driver re-programs identically).
    for (int q = 0; q < num_queues(); ++q) {
      Virtqueue& vq = queue(q);
      vq.reset();
      vq.set_enabled(false);
      // reset() re-enables notifications; an exit-less backend keeps them
      // off across resets (the poll scan is the only wakeup path).
      if (poll_mode_ == PollMode::kAlwaysPoll) vq.disable_notifications();
    }
    std::fill(wedged_.begin(), wedged_.end(), false);
    std::fill(selfcheck_strikes_.begin(), selfcheck_strikes_.end(), 0);
    status_ = 0;
    features_acked_ = 0;
    ++device_resets_;
    if (recovery_log_ != nullptr) {
      recovery_log_->note_action(RecoveryRung::kDeviceReset, kScopeWorker);
    }
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      std::uint64_t corr = fault_corr_[kScopeWorker];
      if (corr == 0) corr = fault_corr_[kScopeTx];
      if (corr == 0) corr = fault_corr_[kScopeRx];
      tr->emit(vm_.host().sim().now(), TraceKind::kDeviceReset, vm_.id(), -1,
               worker_core(worker_), /*arg=*/0, corr);
    }
#endif
    if (reset_listener_) reset_listener_();
    return;
  }
  // DEVICE_NEEDS_RESET is device-owned: guest writes can neither set nor
  // clear it short of a full reset.
  const bool was_driver_ok = driver_ok();
  status_ = static_cast<std::uint8_t>(
      (status & ~kStatusDeviceNeedsReset) |
      (status_ & kStatusDeviceNeedsReset));
  if (!was_driver_ok && driver_ok()) {
    ++renegotiations_;
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      tr->emit(vm_.host().sim().now(), TraceKind::kRenegotiate, vm_.id(), -1,
               worker_core(worker_),
               static_cast<std::uint32_t>(features_acked_ & 0xffffffffu),
               fault_corr_[kScopeWorker]);
    }
#endif
  }
}

bool VhostNetBackend::ack_features(std::uint64_t features) {
  if ((features & ~features_offered()) != 0) return false;
  features_acked_ = features;
  return true;
}

void VhostNetBackend::reset_queue(int q) {
  Virtqueue& vq = queue(q);
  vq.reset();
  vq.set_enabled(true);
  if (poll_mode_ == PollMode::kAlwaysPoll) vq.disable_notifications();
  wedged_[static_cast<std::size_t>(q)] = false;
  selfcheck_strikes_[static_cast<std::size_t>(q)] = 0;
  ++queue_resets_;
  if (recovery_log_ != nullptr) {
    recovery_log_->note_action(RecoveryRung::kQueueReset, q % 2);
  }
  bool any_quarantined = false;
  for (int i = 0; i < num_queues(); ++i) {
    if (queue(i).pending_fault() != RingFault::kNone) any_quarantined = true;
  }
  if (!any_quarantined) {
    status_ &= static_cast<std::uint8_t>(~kStatusDeviceNeedsReset);
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    tr->emit(vm_.host().sim().now(), TraceKind::kQueueReset, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(q),
             fault_corr_[q % 2]);
  }
#endif
}

bool VhostNetBackend::pre_service(int q) {
  Virtqueue& vq = queue(q);
  if (wedged_[static_cast<std::size_t>(q)]) {
    return false;  // eats the activation, does no work
  }
  if (!driver_ok() || !vq.enabled()) return false;
  if (vq.pending_fault() != RingFault::kNone) return false;  // quarantined
  const RingFault f = vq.check_integrity();
  if (f != RingFault::kNone) {
    on_ring_fault(q, f);
    return false;
  }
  return true;
}

void VhostNetBackend::on_ring_fault(int q, RingFault f) {
  queue(q).flag_fault(f);
  status_ |= kStatusDeviceNeedsReset;
  ++ring_faults_detected_;
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    tr->emit(vm_.host().sim().now(), TraceKind::kRingFault, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(f),
             fault_corr_[q % 2]);
  }
#endif
}

void VhostNetBackend::note_progress(int scope) {
  if (recovery_log_ == nullptr) return;
  const int closed =
      recovery_log_->note_progress(scope, vm_.host().sim().now());
  if (closed > 0) {
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vm_.host().sim())) {
      tr->emit(vm_.host().sim().now(), TraceKind::kRecovered, vm_.id(), -1,
               worker_core(worker_), static_cast<std::uint32_t>(closed),
               fault_corr_[scope]);
    }
#endif
    fault_corr_[scope] = 0;
    // Progress on any queue also closes worker-scope instances.
    fault_corr_[kScopeWorker] = 0;
  }
}

bool VhostNetBackend::queue_operational(int q) {
  return driver_ok() && queue(q).enabled() &&
         queue(q).pending_fault() == RingFault::kNone;
}

bool VhostNetBackend::kick_blocked(int q) {
  // A wedged handler still *receives* kicks (it eats the turns); only a
  // non-operational device swallows them at the ioeventfd.
  if (queue_operational(q)) return false;
  ++kicks_ignored_;
  return true;
}

void VhostNetBackend::open_fault(LifecycleFault mode, int scope) {
  std::uint64_t corr = 0;
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    corr = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kFaultInject, vm_.id(), -1,
             worker_core(worker_), static_cast<std::uint32_t>(mode), corr);
  }
#endif
  fault_corr_[scope] = corr;
  if (recovery_log_ != nullptr) {
    recovery_log_->open(mode, scope, vm_.host().sim().now(), corr);
  }
}

void VhostNetBackend::inject_ring_corruption() {
  const int q = corrupt_seq_ & 1;
  const int kind = (corrupt_seq_ >> 1) % 3;
  ++corrupt_seq_;
  Virtqueue& vq = queue(q);
  if (vq.pending_fault() != RingFault::kNone) return;  // already quarantined
  switch (kind) {
    case 0:
      vq.inject_desc_out_of_range();
      break;
    case 1:
      vq.inject_duplicate_head();
      break;
    default:
      vq.inject_used_overrun();
      break;
  }
  open_fault(LifecycleFault::kDescCorrupt, q);
}

void VhostNetBackend::inject_avail_tear() {
  const int q = tear_seq_ & 1;
  ++tear_seq_;
  Virtqueue& vq = queue(q);
  if (vq.pending_fault() != RingFault::kNone) return;
  if (vq.layout() == RingLayout::kPacked) {
    // The packed analogue of a torn index write: the wrap counter no
    // longer matches the published descriptor position.
    vq.inject_wrap_tear();
  } else {
    vq.inject_avail_tear();
  }
  open_fault(LifecycleFault::kAvailTear, q);
}

void VhostNetBackend::inject_handler_wedge() {
  const int q = wedge_seq_ & 1;
  ++wedge_seq_;
  if (wedged_[static_cast<std::size_t>(q)]) return;
  wedged_[static_cast<std::size_t>(q)] = true;
  open_fault(LifecycleFault::kHandlerWedge, q);
}

void VhostNetBackend::inject_worker_crash(SimDuration restart_delay) {
  if (worker_.crashed()) return;
  open_fault(LifecycleFault::kWorkerCrash, kScopeWorker);
  worker_.crash_and_restart(restart_delay);
}

VqHandler& VhostNetBackend::handler_of(int q) {
  return q % 2 == 0 ? static_cast<VqHandler&>(tx_handler(q / 2))
                    : static_cast<VqHandler&>(rx_handler(q / 2));
}

void VhostNetBackend::arm_lifecycle_selfcheck() {
  if (selfcheck_armed_ || params_.lifecycle_selfcheck_period <= 0) return;
  selfcheck_armed_ = true;
  for (int q = 0; q < num_queues(); ++q) {
    selfcheck_last_progress_[static_cast<std::size_t>(q)] =
        progress_counter(q);
  }
  selfcheck_ = vm_.host().sim().after(params_.lifecycle_selfcheck_period,
                                      [this] { lifecycle_selfcheck_tick(); });
}

void VhostNetBackend::lifecycle_selfcheck_tick() {
  for (int q = 0; q < num_queues(); ++q) {
    const std::size_t qi = static_cast<std::size_t>(q);
    Virtqueue& vq = queue(q);
    const std::int64_t progress = progress_counter(q);
    const bool progressed = progress != selfcheck_last_progress_[qi];
    selfcheck_last_progress_[qi] = progress;
    // Strikes freeze while the worker is down: re-activating a dead worker
    // is pointless, and the first post-restart tick should escalate from
    // where the stall left off.
    if (worker_.crashed()) continue;
    const bool work = q % 2 == 0
                          ? vq.has_avail()
                          : (!sock_buf(q / 2).empty() && vq.has_avail());
    VqHandler& h = handler_of(q);
    if (!work || progressed || h.queued() || !vq.enabled() ||
        vq.pending_fault() != RingFault::kNone || !driver_ok()) {
      selfcheck_strikes_[qi] = 0;
      continue;
    }
    ++selfcheck_strikes_[qi];
    if (selfcheck_strikes_[qi] == 1) {
      // First strike: assume a lost activation (swallowed kick, worker
      // crash) and re-poll in its place — the vhost re-poll rung.
      ++selfcheck_repolls_;
      if (recovery_log_ != nullptr) {
        recovery_log_->note_action(RecoveryRung::kVhostRepoll, q % 2);
      }
      worker_.activate(h);
    } else {
      // Re-polling didn't help: the handler is eating turns without
      // making progress. Declare it wedged and quarantine the queue; the
      // guest ladder takes it from here.
      selfcheck_strikes_[qi] = 0;
      on_ring_fault(q, RingFault::kHandlerWedge);
    }
  }
  selfcheck_ = vm_.host().sim().after(params_.lifecycle_selfcheck_period,
                                      [this] { lifecycle_selfcheck_tick(); });
}

void VhostNetBackend::register_lifecycle_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", vm_.name()}};
  registry.probe("vhost.lifecycle.status", labels, [this] {
    return static_cast<double>(status_);
  });
  registry.probe("vhost.lifecycle.ring_faults", labels, [this] {
    return static_cast<double>(ring_faults_detected_);
  });
  registry.probe("vhost.lifecycle.kicks_ignored", labels, [this] {
    return static_cast<double>(kicks_ignored_);
  });
  registry.probe("vhost.lifecycle.selfcheck_repolls", labels, [this] {
    return static_cast<double>(selfcheck_repolls_);
  });
  registry.probe("vhost.lifecycle.queue_resets", labels, [this] {
    return static_cast<double>(queue_resets_);
  });
  registry.probe("vhost.lifecycle.device_resets", labels, [this] {
    return static_cast<double>(device_resets_);
  });
  registry.probe("vhost.lifecycle.renegotiations", labels, [this] {
    return static_cast<double>(renegotiations_);
  });
  // Uniform per-cause watchdog-recovery reporting (the guest frontend
  // registers the tx_rekick / napi_poll causes): host-side re-polls from
  // both the PR-2 RX safety net and the lifecycle self-check.
  registry.probe("recovery.watchdog",
                 {{"vm", vm_.name()}, {"cause", "vhost_repoll"}}, [this] {
                   return static_cast<double>(rx_repolls_ +
                                              selfcheck_repolls_);
                 });
}

void VhostNetBackend::snapshot_lifecycle_state(SnapshotWriter& w) const {
  w.put_u8(status_);
  w.put_u64(features_acked_);
  for (bool wedged : wedged_) w.put_bool(wedged);
  for (int strikes : selfcheck_strikes_) {
    w.put_u32(static_cast<std::uint32_t>(strikes));
  }
  for (std::int64_t progress : selfcheck_last_progress_) {
    w.put_i64(progress);
  }
  w.put_u32(static_cast<std::uint32_t>(corrupt_seq_));
  w.put_u32(static_cast<std::uint32_t>(tear_seq_));
  w.put_u32(static_cast<std::uint32_t>(wedge_seq_));
  w.put_i64(ring_faults_detected_);
  w.put_i64(kicks_ignored_);
  w.put_i64(selfcheck_repolls_);
  w.put_i64(queue_resets_);
  w.put_i64(device_resets_);
  w.put_i64(renegotiations_);
  tx_vq_.snapshot_lifecycle_state(w);
  rx_vq_.snapshot_lifecycle_state(w);
  for (const auto& pair : extra_pairs_) {
    pair->tx.snapshot_lifecycle_state(w);
    pair->rx.snapshot_lifecycle_state(w);
  }
}

void VhostNetBackend::arm_rx_repoll() {
  if (faults_ == nullptr || params_.rx_repoll_period <= 0) return;
  if (rx_repoll_.pending()) return;
  rx_repoll_ = vm_.host().sim().after(params_.rx_repoll_period, [this] {
    bool still_waiting = false;
    for (int p = 0; p < num_queue_pairs(); ++p) {
      if (sock_buf(p).empty()) continue;  // drained, nothing to recover
      if (rx_vq(p).has_avail()) {
        // Buffers appeared but the handler is still asleep: the refill
        // kick was lost. Re-poll in its place.
        ++rx_repolls_;
        worker_.activate(rx_handler(p));
      } else {
        still_waiting = true;  // still waiting on guest buffers
      }
    }
    if (still_waiting) arm_rx_repoll();
  });
}

void VhostNetBackend::receive_from_wire(PacketPtr packet) {
#if ES2_PROFILE_ENABLED
  Profiler::Scope prof_scope(active_profiler(vm_.host().sim()),
                             ProfComp::kVhostWireRx);
#endif
  const int pair = steer_pair(packet->proto, packet->flow);
  std::deque<PacketPtr>& buf = sock_buf(pair);
  if (static_cast<int>(buf.size()) >= params_.sock_buffer) {
    ++rx_dropped_;
    return;
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vm_.host().sim())) {
    // The RX data path has no guest kick; the wire arrival is the
    // journey's origin (latest arrival wins the batch's id).
    rx_kick_corr_ = tr->begin_journey();
    tr->emit(vm_.host().sim().now(), TraceKind::kWireRx, vm_.id(), -1, -1,
             static_cast<std::uint32_t>(pair), rx_kick_corr_);
  }
#endif
  buf.push_back(std::move(packet));
  worker_.activate(rx_handler(pair));
}

void VhostNetBackend::set_rx_backpressure(bool on) {
  rx_backpressure_ = on;
  if (rx_link_ == nullptr) return;
  rx_link_->set_backpressure(on ? params_.backpressure_keep : 0);
}

void VhostWorker::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"worker", thread_.name()}};
  registry.probe("vhost.worker.turns", labels, [this] {
    return static_cast<double>(turns_);
  });
  registry.probe("vhost.worker.active_high_water", labels, [this] {
    return static_cast<double>(active_high_water_);
  });
  registry.probe("vhost.worker.wakeups", labels, [this] {
    return static_cast<double>(wakeups_);
  });
  registry.probe("vhost.worker.active_handlers", labels, [this] {
    return static_cast<double>(active_.size());
  });
}

void VhostNetBackend::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", vm_.name()}};
  registry.probe("vhost.tx.packets", labels, [this] {
    return static_cast<double>(tx_packets_);
  });
  registry.probe("vhost.rx.packets", labels, [this] {
    return static_cast<double>(rx_packets_);
  });
  registry.probe("vhost.tx.irqs", labels, [this] {
    return static_cast<double>(tx_irqs_);
  });
  registry.probe("vhost.rx.irqs", labels, [this] {
    return static_cast<double>(rx_irqs_);
  });
  registry.probe("vhost.tx.mode_reverts", labels, [this] {
    return static_cast<double>(tx_reverts_);
  });
  registry.probe("vhost.tx.quota_hits", labels, [this] {
    return static_cast<double>(tx_quota_hits_);
  });
  registry.probe("vhost.rx.dropped", labels, [this] {
    return static_cast<double>(rx_dropped_);
  });
  // Canonical drop family: every layer that can lose a packet exports a
  // drops{cause=...} series so experiment rows can break collapse down by
  // cause without knowing each layer's private counter name.
  registry.probe("drops", {{"cause", "sock_backlog"}, {"vm", vm_.name()}},
                 [this] { return static_cast<double>(rx_dropped_); });
  registry.probe("vhost.rx.repolls", labels, [this] {
    return static_cast<double>(rx_repolls_);
  });
  registry.probe("vhost.rx.sock_backlog", labels, [this] {
    std::size_t total = sock_buf_.size();
    for (const auto& pair : extra_pairs_) total += pair->sock_buf.size();
    return static_cast<double>(total);
  });
  tx_vq_.register_metrics(registry, vm_.name());
  rx_vq_.register_metrics(registry, vm_.name());
  for (const auto& pair : extra_pairs_) {
    pair->tx.register_metrics(registry, vm_.name());
    pair->rx.register_metrics(registry, vm_.name());
  }
}

void VhostWorker::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_bool(was_sleeping_);
  w.put_u32(static_cast<std::uint32_t>(active_.size()));
  for (const VqHandler* h : active_) {
    w.put_string(h->name_);
    w.put_bool(h->queued_);
    w.put_i64(h->ready_at_);
  }
  w.put_u64(turns_);
  w.put_u64(wakeups_);
  thread_.snapshot_state(w);
  if (poll_mode_ != PollMode::kNotify) {
    // Poll-mode fields are appended so notify-mode images keep their
    // exact es2-snap-v1 byte layout.
    w.put_u8(static_cast<std::uint8_t>(poll_mode_));
    w.put_i64(last_work_);
    w.put_i64(poll_spins_);
    w.put_i64(poll_harvests_);
  }
}

void VhostNetBackend::snapshot_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(poll_quota_));
  tx_vq_.snapshot_state(w);
  rx_vq_.snapshot_state(w);
  w.put_u32(static_cast<std::uint32_t>(sock_buf_.size()));
  for (const PacketPtr& p : sock_buf_) snapshot_packet(w, p);
  // Extra queue pairs append after pair 0 so single-queue devices keep
  // their exact es2-snap-v1 byte layout.
  for (const auto& pair : extra_pairs_) {
    pair->tx.snapshot_state(w);
    pair->rx.snapshot_state(w);
    w.put_u32(static_cast<std::uint32_t>(pair->sock_buf.size()));
    for (const PacketPtr& p : pair->sock_buf) snapshot_packet(w, p);
  }
  snapshot_rng(w, rng_);
  w.put_i64(rx_dropped_);
  w.put_i64(rx_repolls_);
  w.put_i64(tx_packets_);
  w.put_i64(rx_packets_);
  w.put_i64(tx_irqs_);
  w.put_i64(rx_irqs_);
  w.put_i64(tx_reverts_);
  w.put_i64(tx_quota_hits_);
  if (params_.num_queue_pairs > 1) {
    for (std::int64_t v : pair_tx_packets_) w.put_i64(v);
    for (std::int64_t v : pair_rx_packets_) w.put_i64(v);
  }
}

}  // namespace es2
