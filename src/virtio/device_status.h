// Virtio device-status lifecycle (virtio 1.1 §2.1) and ring-fault taxonomy.
//
// The reproduction models the *negotiated* device lifecycle explicitly so
// that reset/renegotiation is a first-class, traceable operation rather
// than an implicit "the device always works" assumption: the guest driver
// walks ACKNOWLEDGE -> DRIVER -> (feature negotiation) -> FEATURES_OK ->
// (queue setup + per-queue enable) -> DRIVER_OK, and the device flags
// DEVICE_NEEDS_RESET when ring-integrity checking finds corrupted shared
// state instead of asserting or silently wedging. The recovery ladder
// (guest watchdog -> vhost re-poll -> single-queue reset -> full device
// reset-and-renegotiate) keys off these bits.
#pragma once

#include <cstdint>

namespace es2 {

// Device-status register bits, guest-written except kDeviceNeedsReset.
inline constexpr std::uint8_t kStatusAcknowledge = 0x01;
inline constexpr std::uint8_t kStatusDriver = 0x02;
inline constexpr std::uint8_t kStatusDriverOk = 0x04;
inline constexpr std::uint8_t kStatusFeaturesOk = 0x08;
inline constexpr std::uint8_t kStatusDeviceNeedsReset = 0x40;
inline constexpr std::uint8_t kStatusFailed = 0x80;

// Feature bits the model negotiates. EVENT_IDX is the one with modeled
// semantics (the suppression protocol in Virtqueue); the others exist so
// negotiation has a real subset computation to get wrong/renegotiate.
inline constexpr std::uint64_t kFeatureMrgRxBuf = 1ull << 15;
inline constexpr std::uint64_t kFeatureMq = 1ull << 22;  // VIRTIO_NET_F_MQ
inline constexpr std::uint64_t kFeatureEventIdx = 1ull << 29;  // RING_F_EVENT_IDX
inline constexpr std::uint64_t kFeatureVersion1 = 1ull << 32;
inline constexpr std::uint64_t kFeatureRingPacked = 1ull << 34;  // VIRTIO_F_RING_PACKED

/// Virtqueue memory layout (virtio 1.0 split vs. virtio 1.1 packed). The
/// layout is a per-device negotiation outcome (VIRTIO_F_RING_PACKED); both
/// present identical transfer semantics — the ring-conformance suite holds
/// the two implementations to that contract.
enum class RingLayout : std::uint8_t {
  kSplit = 0,   // avail/used rings + free-running EVENT_IDX counters
  kPacked = 1,  // single descriptor ring + avail/used wrap counters
};

inline const char* ring_layout_name(RingLayout l) {
  switch (l) {
    case RingLayout::kSplit: return "split";
    case RingLayout::kPacked: return "packed";
  }
  return "?";
}

/// What ring-integrity checking found in a shared ring. Detection flags
/// DEVICE_NEEDS_RESET; it never asserts, because at production scale a
/// corrupted queue must be recoverable, not fatal.
enum class RingFault : std::uint8_t {
  kNone = 0,
  kDescOutOfRange,   // descriptor index beyond ring capacity
  kAvailIdxTorn,     // avail-idx jumped further than the ring allows
  kUsedOverrun,      // used index overtook the posted descriptors
  kDuplicateHead,    // a head handed out while still in flight
  kHandlerWedge,     // backend handler eating activations without progress
  kWorkerCrash,      // vhost worker died; queue orphaned until restart
  kBadWrapCounter,   // packed ring: wrap counter disagrees with the indices
};

inline const char* ring_fault_name(RingFault f) {
  switch (f) {
    case RingFault::kNone: return "none";
    case RingFault::kDescOutOfRange: return "desc_out_of_range";
    case RingFault::kAvailIdxTorn: return "avail_idx_torn";
    case RingFault::kUsedOverrun: return "used_overrun";
    case RingFault::kDuplicateHead: return "duplicate_head";
    case RingFault::kHandlerWedge: return "handler_wedge";
    case RingFault::kWorkerCrash: return "worker_crash";
    case RingFault::kBadWrapCounter: return "bad_wrap_counter";
  }
  return "?";
}

/// vhost worker service disciplines. kNotify is the classic kick-driven
/// worker (and the substrate ES2's Algorithm 1 modulates); the poll modes
/// model exit-less busy-poll backends (SPDK-style): kAlwaysPoll spins on
/// the avail rings forever, kAdaptive spins for a poll budget after the
/// last completed work and then re-arms notifications and sleeps.
enum class PollMode : std::uint8_t {
  kNotify = 0,
  kAlwaysPoll = 1,
  kAdaptive = 2,
};

inline const char* poll_mode_name(PollMode m) {
  switch (m) {
    case PollMode::kNotify: return "notify";
    case PollMode::kAlwaysPoll: return "always_poll";
    case PollMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// The injectable lifecycle fault modes (FaultPlan knobs). Descriptor
/// corruption deterministically rotates through the three ring-corruption
/// shapes so one knob exercises every detection path.
enum class LifecycleFault : std::uint8_t {
  kDescCorrupt = 0,
  kAvailTear,
  kHandlerWedge,
  kWorkerCrash,
  kRxLivelock,  // overload-detected receive livelock (not injected: observed)
  kCount,
};

inline const char* lifecycle_fault_name(LifecycleFault m) {
  switch (m) {
    case LifecycleFault::kDescCorrupt: return "desc_corrupt";
    case LifecycleFault::kAvailTear: return "avail_tear";
    case LifecycleFault::kHandlerWedge: return "handler_wedge";
    case LifecycleFault::kWorkerCrash: return "worker_crash";
    case LifecycleFault::kRxLivelock: return "rx_livelock";
    case LifecycleFault::kCount: break;
  }
  return "?";
}

/// Recovery-ladder rungs, in escalation order. Rungs 0/1 are the PR 2
/// watchdogs (now metered per cause); rungs 2/3 are the lifecycle resets.
/// The last three are the overload admission-control ladder: they degrade
/// service deliberately (clamp, shed) rather than repairing shared state.
enum class RecoveryRung : std::uint8_t {
  kGuestWatchdog = 0,  // TX re-kick / NAPI missed-interrupt poll
  kVhostRepoll,        // backend self-check re-poll / re-activate
  kQueueReset,         // single-queue quiesce + reset + re-enable
  kDeviceReset,        // full reset + renegotiate + re-post rings
  kNapiClamp,          // overload rung 1: NAPI budget clamp -> ksoftirqd
  kRxBackpressure,     // overload rung 2: backend sheds at the RX link
  kAcceptShed,         // overload rung 3: SYN-cookie-style accept shedding
  kCount,
};

inline const char* recovery_rung_name(RecoveryRung r) {
  switch (r) {
    case RecoveryRung::kGuestWatchdog: return "guest_watchdog";
    case RecoveryRung::kVhostRepoll: return "vhost_repoll";
    case RecoveryRung::kQueueReset: return "queue_reset";
    case RecoveryRung::kDeviceReset: return "device_reset";
    case RecoveryRung::kNapiClamp: return "napi_clamp";
    case RecoveryRung::kRxBackpressure: return "rx_backpressure";
    case RecoveryRung::kAcceptShed: return "accept_shed";
    case RecoveryRung::kCount: break;
  }
  return "?";
}

}  // namespace es2
