// Virtqueue with VIRTIO_RING_F_EVENT_IDX notification suppression, in
// either the virtio 1.0 split layout or the virtio 1.1 packed layout.
//
// The shared-memory channel between the guest's virtio-net front-end and
// the host's vhost-net back-end (paper §V-A). What matters for the event
// path is the *notification protocol*, which is modeled faithfully:
//
//  * guest->host kicks are suppressed via the avail_event index / flags:
//    the guest only executes the (trapping) kick instruction when its new
//    avail index crosses the host's advertised event index — this is the
//    field ES2 manipulates to "permanently disable the notification
//    mechanism in the polling mode";
//  * host->guest interrupts are symmetrically suppressed via used_event,
//    which is how the guest's NAPI disables device interrupts while
//    polling.
//
// The packed layout replaces the free-running indices with a single
// descriptor ring plus driver/device wrap counters; suppression decisions
// compare (ring offset, wrap) pairs from the driver/device event structs
// instead of monotonic indices. Because at most `capacity` descriptors are
// outstanding, the two formulations are observably equivalent — the
// differential ring-conformance suite pins that equivalence.
//
// Descriptor accounting is real: a fixed ring capacity is shared between
// guest-posted (avail), host-owned (in flight) and completed (used)
// entries, so backpressure — a full TX ring stalling the guest — emerges
// naturally, which the hybrid polling results depend on.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "base/units.h"
#include "net/packet.h"
#include "stats/meters.h"
#include "virtio/device_status.h"

namespace es2 {

class MetricsRegistry;

class Virtqueue {
 public:
  struct Entry {
    PacketPtr packet;  // null for empty (receive) buffers
    Bytes len = 0;
  };

  Virtqueue(std::string name, int capacity,
            RingLayout layout = RingLayout::kSplit);

  const std::string& name() const { return name_; }
  int capacity() const { return capacity_; }
  RingLayout layout() const { return layout_; }

  // --- guest-side API ----------------------------------------------------

  /// Free descriptor slots available to the guest.
  int free_slots() const {
    return capacity_ - avail_count() - in_flight_ - used_count();
  }

  /// Posts a buffer; returns false if the ring is full.
  bool add_avail(Entry entry);

  /// Must be called right after a successful add_avail: true if the guest
  /// must notify the host (event-idx crossing semantics).
  bool kick_needed() const;

  /// Completed entries ready for the guest.
  int used_count() const { return static_cast<int>(used_.size()); }
  std::optional<Entry> pop_used();

  /// Guest-side interrupt (call) suppression, used by NAPI.
  void enable_interrupts() {
    interrupts_enabled_ = true;
    used_event_ = used_idx_;
    ++irq_enables_;
  }
  void disable_interrupts() { interrupts_enabled_ = false; }
  bool interrupts_enabled() const { return interrupts_enabled_; }

  // --- host-side API -----------------------------------------------------

  int avail_count() const { return static_cast<int>(avail_.size()); }
  bool has_avail() const { return !avail_.empty(); }

  /// Takes one guest-posted buffer for processing.
  std::optional<Entry> pop_avail();

  /// Completes an entry back to the guest.
  void push_used(Entry entry);

  /// Must be called right after push_used: true if the host must raise the
  /// guest interrupt (event-idx crossing semantics).
  bool interrupt_needed() const;

  /// Host-side kick suppression. `enable_notifications` returns true if
  /// new work raced in and the host must re-check the queue (the standard
  /// vhost re-check after re-enable).
  bool enable_notifications();
  void disable_notifications() { notifications_enabled_ = false; }
  bool notifications_enabled() const { return notifications_enabled_; }

  // --- lifecycle ----------------------------------------------------------

  /// Per-queue enable bit (virtio 1.1 queue_enable). Queues start enabled
  /// for compatibility with directly-constructed test rings; the device
  /// lifecycle disables them across reset/renegotiation.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Returns the ring to its just-constructed state: rings emptied,
  /// indices and EVENT_IDX suppression state zeroed, any injected or
  /// detected fault cleared. Cumulative suppression telemetry
  /// (notify_enables/irq_enables) survives, same as the LAPIC's post/EOI
  /// counters: the registry samples them as lifetime values.
  void reset();

  /// Bumped by every reset(). Async completions capture the epoch at
  /// pop_avail time and drop themselves if a reset intervened, so a
  /// quiesce can never complete a descriptor into the wrong ring
  /// generation (push_used on a fresh ring would trip the in-flight
  /// invariant).
  std::int64_t reset_epoch() const { return reset_epoch_; }

  /// O(1) accounting audit of the shared ring. The healthy invariant is
  /// avail_idx == avail_count + in_flight + used_idx; a torn avail-idx
  /// write breaks it upward, a used-ring overrun downward. Injected
  /// descriptor-table faults (out-of-range head, duplicated in-flight
  /// head) are reported directly. Never asserts.
  RingFault check_integrity() const;

  /// Detection result, sticky until reset(): the backend quarantines a
  /// queue by recording what it found, and the guest's recovery ladder
  /// reads it back to pick a rung.
  RingFault pending_fault() const { return pending_fault_; }
  void flag_fault(RingFault f) { pending_fault_ = f; }

  /// Fault injection (FaultInjector only): corrupt the shared state the
  /// way a buggy or malicious guest would. Tears/overruns mutate the real
  /// indices so detection derives them from accounting; descriptor-table
  /// faults set a marker (the model has no real descriptor table).
  void inject_desc_out_of_range() { injected_fault_ = RingFault::kDescOutOfRange; }
  void inject_duplicate_head() { injected_fault_ = RingFault::kDuplicateHead; }
  void inject_avail_tear() { avail_idx_ += capacity_ + 3; }
  void inject_used_overrun() { used_idx_ += capacity_ + 1; }
  /// Packed-layout analogue of a torn avail write: the driver wrap counter
  /// no longer agrees with the descriptor position it published.
  void inject_wrap_tear() { driver_wrap_ = !driver_wrap_; }

  /// Serializes the lifecycle/integrity state (enable bit, reset epoch,
  /// fault markers). Kept out of snapshot_state so faults-off worlds keep
  /// their exact es2-snap-v1 byte layout; the owning device embeds this
  /// in its fault-gated lifecycle section.
  void snapshot_lifecycle_state(SnapshotWriter& w) const;

  // --- statistics ---------------------------------------------------------

  std::int64_t total_added() const { return avail_idx_; }
  std::int64_t total_used() const { return used_idx_; }
  int in_flight() const { return in_flight_; }

  /// Suppression-protocol activity: times the host re-armed guest kicks
  /// (leaving polling mode) and times the guest re-armed interrupts
  /// (leaving NAPI poll). Low enable counts under load mean suppression
  /// is sticking — the paper's polling-mode signature.
  std::int64_t notify_enables() const { return notify_enables_; }
  std::int64_t irq_enables() const { return irq_enables_; }

  /// Registers this queue's occupancy and suppression telemetry as probes
  /// (labels vm=<vm_name>, vq=<name>).
  void register_metrics(MetricsRegistry& registry,
                        const std::string& vm_name);

  /// Serializes ring occupancy (every avail/used entry's packet metadata)
  /// and the full EVENT_IDX suppression state. Embedded in the owning
  /// device's snapshot section.
  void snapshot_state(SnapshotWriter& w) const;

 private:
  /// Maps a monotonic descriptor id to its packed-ring position: the slot
  /// offset plus the wrap-counter phase the driver/device had when writing
  /// it. Within the ≤ capacity-deep outstanding window, position equality
  /// is exactly id equality — the property the packed suppression and
  /// integrity checks rely on.
  struct PackedPos {
    int offset;
    bool wrap;
    bool operator==(const PackedPos& o) const {
      return offset == o.offset && wrap == o.wrap;
    }
  };
  PackedPos packed_pos(std::int64_t id) const {
    return {static_cast<int>(id % capacity_), ((id / capacity_) % 2) == 0};
  }

  std::string name_;
  int capacity_;
  RingLayout layout_ = RingLayout::kSplit;
  std::deque<Entry> avail_;
  std::deque<Entry> used_;
  int in_flight_ = 0;

  // Packed-layout wrap counters (virtio 1.1 §2.7.1): flipped every time
  // the driver/device position wraps past the end of the descriptor ring.
  // Redundant with avail_idx_/used_idx_ when healthy — check_integrity
  // cross-checks them, which is how a wrap tear is detected.
  bool driver_wrap_ = true;
  bool device_wrap_ = true;

  // Guest->host notification state (host-written, guest-read).
  bool notifications_enabled_ = true;
  std::int64_t avail_idx_ = 0;    // total entries the guest has posted
  std::int64_t avail_event_ = 0;  // host: "kick me when you cross this"

  // Host->guest interrupt state (guest-written, host-read).
  bool interrupts_enabled_ = true;
  std::int64_t used_idx_ = 0;     // total entries the host has completed
  std::int64_t used_event_ = 0;

  std::int64_t notify_enables_ = 0;
  std::int64_t irq_enables_ = 0;

  // Lifecycle state (snapshot via snapshot_lifecycle_state only).
  bool enabled_ = true;
  std::int64_t reset_epoch_ = 0;
  RingFault injected_fault_ = RingFault::kNone;
  RingFault pending_fault_ = RingFault::kNone;
};

}  // namespace es2
