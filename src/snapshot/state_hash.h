// Epoch state-hashing: per-component FNV digests on a fixed sim-time
// cadence, the determinism oracle behind the divergence bisector.
//
// A `WorldSnapshotter` is an ordered registry of every Snapshottable in
// one world (the Testbed fills it at construction; workloads append
// themselves when they attach). Walking it produces either a full
// es2-snap-v1 image or — via a reusable scratch writer — a per-component
// hash vector. `EpochHashLog` records those vectors each epoch; the
// es2-hash-v1 JSON export of two same-seed runs feeds
// `tools/divergence_bisect`, which finds the first divergent epoch and
// names the component whose digest split.
//
// Recording is passive: hashing draws no RNG values and mutates nothing,
// so a hashed run's model trajectory is bit-identical to an unhashed one
// (the epoch timer shifts event sequence numbers uniformly, exactly like
// the metrics sampler).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.h"
#include "snapshot/snapshot.h"

namespace es2 {

class Json;

/// Harness-level epoch-hashing switch (off by default: zero events, zero
/// overhead, goldens bit-identical).
struct SnapshotOptions {
  bool hash_epochs = false;
  SimDuration epoch = msec(10);
  /// Entries retained (a sweep cell records a few hundred at most).
  std::size_t max_epochs = 65536;
};

class WorldSnapshotter {
 public:
  WorldSnapshotter() = default;
  WorldSnapshotter(const WorldSnapshotter&) = delete;
  WorldSnapshotter& operator=(const WorldSnapshotter&) = delete;

  /// Registers a component under a stable name. Order is the snapshot
  /// section order and the hash-vector index order; register in a
  /// deterministic construction order. Names must be unique.
  void add(std::string name, const Snapshottable& component);

  std::size_t size() const { return components_.size(); }
  std::vector<std::string> names() const;

  /// Writes one named section per component into `w`.
  void write(SnapshotWriter& w) const;

  /// Serialized es2-snap-v1 image of the whole world.
  std::string serialize() const;

  /// Digest of the whole world right now.
  std::uint64_t world_hash() const;

  /// Per-component digests, in registration order.
  std::vector<std::uint64_t> component_hashes() const;

 private:
  struct Entry {
    std::string name;
    const Snapshottable* component;
  };
  std::vector<Entry> components_;
  mutable SnapshotWriter scratch_;  // reused across hash calls
};

/// One recorded epoch: the world digest plus each component's digest.
struct EpochHash {
  SimTime t = 0;
  std::uint64_t world = 0;
  std::vector<std::uint64_t> components;
};

/// Self-contained hash series harvested from one run (outlives the world).
struct HashSeries {
  std::uint64_t seed = 0;
  SimDuration epoch = 0;
  std::vector<std::string> component_names;
  std::vector<EpochHash> entries;

  /// es2-hash-v1 JSON document.
  Json to_json() const;
  std::string to_json_text() const;
  static bool from_json(const Json& doc, HashSeries* out, std::string* error);
  static bool parse(const std::string& text, HashSeries* out,
                    std::string* error);
};

/// Where two hash series split. `epoch == -1`: no divergence.
struct Divergence {
  std::int64_t epoch = -1;     // index into entries
  SimTime t = 0;               // sim time of the divergent epoch
  std::vector<std::string> components;  // names whose digests differ there
  std::string detail;          // human-readable summary
};

/// Finds the first epoch where the two series' world hashes differ and
/// names the components responsible. Requires comparable series (same
/// epoch period and component set); returns epoch == -2 with a detail
/// message when they are not.
Divergence find_divergence(const HashSeries& a, const HashSeries& b);

/// Passive per-epoch recorder. The owner drives the cadence (Testbed arms
/// a PeriodicTimer that calls record()), which keeps this library free of
/// simulator dependencies.
class EpochHashLog {
 public:
  EpochHashLog(const WorldSnapshotter& world, SnapshotOptions options,
               std::uint64_t seed);

  /// Hashes every component now and appends an entry (dropped once
  /// max_epochs is reached — the bisector needs the prefix, not a ring).
  void record(SimTime now);

  std::size_t epochs() const { return series_.entries.size(); }
  const HashSeries& series() const { return series_; }
  /// Most recent world digest (0 before the first record()).
  std::uint64_t last_world_hash() const;

 private:
  const WorldSnapshotter& world_;
  SnapshotOptions options_;
  HashSeries series_;
};

}  // namespace es2
