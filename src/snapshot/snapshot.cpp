#include "snapshot/snapshot.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/strings.h"

namespace es2 {

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

void SnapshotWriter::begin_section(std::string_view name) {
  close_section();
  Section s;
  s.name.assign(name.data(), name.size());
  s.offset = buf_.size();
  sections_.push_back(std::move(s));
  section_open_ = true;
}

void SnapshotWriter::close_section() {
  if (!section_open_) return;
  sections_.back().size = buf_.size() - sections_.back().offset;
  section_open_ = false;
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void SnapshotWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint64_t SnapshotWriter::section_hash(std::size_t i) const {
  const Section& s = sections_[i];
  const std::size_t end =
      (section_open_ && i + 1 == sections_.size()) ? buf_.size()
                                                   : s.offset + s.size;
  return fnv1a(buf_.data() + s.offset, end - s.offset);
}

std::uint64_t SnapshotWriter::world_hash() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    h = fnv1a(s.name.data(), s.name.size(), h);
    const std::uint64_t sh = section_hash(i);
    h = fnv1a(&sh, sizeof(sh), h);
  }
  return h;
}

std::string SnapshotWriter::serialize() const {
  // Close the trailing section size without mutating state: compute it.
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  auto append_u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
  };
  auto append_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
  };
  append_u32(kVersion);
  append_u32(static_cast<std::uint32_t>(sections_.size()));
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    const std::size_t end =
        (section_open_ && i + 1 == sections_.size()) ? buf_.size()
                                                     : s.offset + s.size;
    append_u32(static_cast<std::uint32_t>(s.name.size()));
    out.append(s.name);
    append_u64(end - s.offset);
    out.append(reinterpret_cast<const char*>(buf_.data()) + s.offset,
               end - s.offset);
  }
  append_u64(fnv1a(out.data(), out.size()));
  return out;
}

bool SnapshotWriter::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string bytes = serialize();
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

void SnapshotWriter::clear() {
  buf_.clear();
  sections_.clear();
  section_open_ = false;
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

namespace {

bool read_u32_at(const std::string& b, std::size_t* pos, std::uint32_t* out) {
  if (*pos + 4 > b.size()) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[*pos + static_cast<std::size_t>(i)])) << (8 * i);
  *pos += 4;
  *out = v;
  return true;
}

bool read_u64_at(const std::string& b, std::size_t* pos, std::uint64_t* out) {
  if (*pos + 8 > b.size()) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[*pos + static_cast<std::size_t>(i)])) << (8 * i);
  *pos += 8;
  *out = v;
  return true;
}

}  // namespace

bool SnapshotReader::load(std::string bytes, std::string* error) {
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  bytes_ = std::move(bytes);
  sections_.clear();
  ok_ = false;
  if (bytes_.size() < sizeof(SnapshotWriter::kMagic) + 4 + 4 + 8)
    return fail("truncated: shorter than header + checksum");
  if (std::memcmp(bytes_.data(), SnapshotWriter::kMagic,
                  sizeof(SnapshotWriter::kMagic)) != 0)
    return fail("bad magic: not an es2-snap file");
  // Trailing checksum covers everything before it.
  const std::size_t body = bytes_.size() - 8;
  std::size_t cpos = body;
  std::uint64_t stored = 0;
  read_u64_at(bytes_, &cpos, &stored);
  if (stored != fnv1a(bytes_.data(), body))
    return fail("checksum mismatch: snapshot corrupted");
  std::size_t pos = sizeof(SnapshotWriter::kMagic);
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  if (!read_u32_at(bytes_, &pos, &version)) return fail("truncated header");
  if (version != SnapshotWriter::kVersion) return fail("unsupported version");
  if (!read_u32_at(bytes_, &pos, &count)) return fail("truncated header");
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    if (!read_u32_at(bytes_, &pos, &name_len)) return fail("truncated section");
    if (pos + name_len > body) return fail("truncated section name");
    Section s;
    s.name.assign(bytes_.data() + pos, name_len);
    pos += name_len;
    std::uint64_t size = 0;
    if (!read_u64_at(bytes_, &pos, &size)) return fail("truncated section");
    if (pos + size > body) return fail("truncated section payload");
    s.offset = pos;
    s.size = static_cast<std::size_t>(size);
    pos += s.size;
    sections_.push_back(std::move(s));
  }
  if (pos != body) return fail("trailing garbage after sections");
  ok_ = true;
  cursor_ = 0;
  section_end_ = 0;
  return true;
}

bool SnapshotReader::load_file(const std::string& path, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return load(std::move(bytes), error);
}

std::uint64_t SnapshotReader::section_hash(std::size_t i) const {
  const Section& s = sections_[i];
  return fnv1a(bytes_.data() + s.offset, s.size);
}

std::uint64_t SnapshotReader::world_hash() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    h = fnv1a(s.name.data(), s.name.size(), h);
    const std::uint64_t sh = section_hash(i);
    h = fnv1a(&sh, sizeof(sh), h);
  }
  return h;
}

bool SnapshotReader::seek(std::string_view name) {
  for (const Section& s : sections_) {
    if (s.name == name) {
      cursor_ = s.offset;
      section_end_ = s.offset + s.size;
      return true;
    }
  }
  return false;
}

bool SnapshotReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || cursor_ + n > section_end_) {
    ok_ = false;
    return false;
  }
  *out = reinterpret_cast<const std::uint8_t*>(bytes_.data()) + cursor_;
  cursor_ += n;
  return true;
}

std::uint8_t SnapshotReader::get_u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint32_t SnapshotReader::get_u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t SnapshotReader::get_u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double SnapshotReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::get_string() {
  const std::uint32_t len = get_u32();
  const std::uint8_t* p = nullptr;
  if (!take(len, &p)) return std::string();
  return std::string(reinterpret_cast<const char*>(p), len);
}

}  // namespace es2
