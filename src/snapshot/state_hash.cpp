#include "snapshot/state_hash.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "base/json.h"

namespace es2 {

namespace {

// 64-bit digests exceed double precision, so JSON carries them as
// fixed-width hex strings.
std::string hash_to_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

bool hex_to_hash(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorldSnapshotter
// ---------------------------------------------------------------------------

void WorldSnapshotter::add(std::string name, const Snapshottable& component) {
#ifndef NDEBUG
  for (const Entry& e : components_) assert(e.name != name);
#endif
  components_.push_back(Entry{std::move(name), &component});
}

std::vector<std::string> WorldSnapshotter::names() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const Entry& e : components_) out.push_back(e.name);
  return out;
}

void WorldSnapshotter::write(SnapshotWriter& w) const {
  for (const Entry& e : components_) {
    w.begin_section(e.name);
    e.component->snapshot_state(w);
  }
}

std::string WorldSnapshotter::serialize() const {
  scratch_.clear();
  write(scratch_);
  std::string bytes = scratch_.serialize();
  scratch_.clear();
  return bytes;
}

std::uint64_t WorldSnapshotter::world_hash() const {
  scratch_.clear();
  write(scratch_);
  const std::uint64_t h = scratch_.world_hash();
  scratch_.clear();
  return h;
}

std::vector<std::uint64_t> WorldSnapshotter::component_hashes() const {
  scratch_.clear();
  write(scratch_);
  std::vector<std::uint64_t> out;
  out.reserve(components_.size());
  for (std::size_t i = 0; i < scratch_.sections().size(); ++i)
    out.push_back(scratch_.section_hash(i));
  scratch_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// HashSeries <-> es2-hash-v1 JSON
// ---------------------------------------------------------------------------

Json HashSeries::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json::string("es2-hash-v1"));
  doc.set("seed", Json::number(static_cast<double>(seed)));
  doc.set("epoch_ns", Json::number(static_cast<double>(epoch)));
  Json comps = Json::array();
  for (const std::string& name : component_names)
    comps.push_back(Json::string(name));
  doc.set("components", std::move(comps));
  Json epochs = Json::array();
  for (const EpochHash& e : entries) {
    Json row = Json::object();
    row.set("t", Json::number(static_cast<double>(e.t)));
    row.set("world", Json::string(hash_to_hex(e.world)));
    Json comp = Json::array();
    for (std::uint64_t h : e.components)
      comp.push_back(Json::string(hash_to_hex(h)));
    row.set("comp", std::move(comp));
    epochs.push_back(std::move(row));
  }
  doc.set("epochs", std::move(epochs));
  return doc;
}

std::string HashSeries::to_json_text() const { return to_json().dump(2); }

bool HashSeries::from_json(const Json& doc, HashSeries* out,
                           std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!doc.is_object()) return fail("not a JSON object");
  if (doc.string_or("schema", "") != "es2-hash-v1")
    return fail("unsupported schema: expected es2-hash-v1");
  out->seed = static_cast<std::uint64_t>(doc.number_or("seed", 0));
  out->epoch = static_cast<SimDuration>(doc.number_or("epoch_ns", 0));
  out->component_names.clear();
  out->entries.clear();
  const Json* comps = doc.find("components");
  if (comps == nullptr || !comps->is_array())
    return fail("missing components array");
  for (std::size_t i = 0; i < comps->size(); ++i) {
    if (!comps->at(i).is_string()) return fail("non-string component name");
    out->component_names.push_back(comps->at(i).as_string());
  }
  const Json* epochs = doc.find("epochs");
  if (epochs == nullptr || !epochs->is_array())
    return fail("missing epochs array");
  for (std::size_t i = 0; i < epochs->size(); ++i) {
    const Json& row = epochs->at(i);
    if (!row.is_object()) return fail("epoch entry is not an object");
    EpochHash e;
    e.t = static_cast<SimTime>(row.number_or("t", 0));
    if (!hex_to_hash(row.string_or("world", ""), &e.world))
      return fail("bad world hash in epoch entry");
    const Json* comp = row.find("comp");
    if (comp == nullptr || !comp->is_array())
      return fail("missing comp array in epoch entry");
    if (comp->size() != out->component_names.size())
      return fail("comp array length does not match components");
    for (std::size_t j = 0; j < comp->size(); ++j) {
      std::uint64_t h = 0;
      if (!comp->at(j).is_string() || !hex_to_hash(comp->at(j).as_string(), &h))
        return fail("bad component hash in epoch entry");
      e.components.push_back(h);
    }
    out->entries.push_back(std::move(e));
  }
  return true;
}

bool HashSeries::parse(const std::string& text, HashSeries* out,
                       std::string* error) {
  Json doc;
  if (!Json::parse(text, &doc, error)) return false;
  return from_json(doc, out, error);
}

// ---------------------------------------------------------------------------
// Divergence
// ---------------------------------------------------------------------------

Divergence find_divergence(const HashSeries& a, const HashSeries& b) {
  Divergence d;
  if (a.epoch != b.epoch) {
    d.epoch = -2;
    d.detail = "series not comparable: epoch periods differ (" +
               std::to_string(a.epoch) + "ns vs " + std::to_string(b.epoch) +
               "ns)";
    return d;
  }
  if (a.component_names != b.component_names) {
    d.epoch = -2;
    d.detail = "series not comparable: component sets differ";
    return d;
  }
  if (a.seed != b.seed) {
    // Different seeds diverge by construction; still useful, but flag it.
    d.detail = "note: seeds differ (" + std::to_string(a.seed) + " vs " +
               std::to_string(b.seed) + "); ";
  }
  const std::size_t n = std::min(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < n; ++i) {
    const EpochHash& ea = a.entries[i];
    const EpochHash& eb = b.entries[i];
    if (ea.world == eb.world) continue;
    d.epoch = static_cast<std::int64_t>(i);
    d.t = ea.t;
    for (std::size_t j = 0; j < ea.components.size(); ++j) {
      if (ea.components[j] != eb.components[j])
        d.components.push_back(a.component_names[j]);
    }
    d.detail += "first divergence at epoch " + std::to_string(i) + " (t=" +
                std::to_string(ea.t) + "ns)";
    if (!d.components.empty()) {
      d.detail += ", components: ";
      for (std::size_t j = 0; j < d.components.size(); ++j) {
        if (j > 0) d.detail += ", ";
        d.detail += d.components[j];
      }
    } else {
      d.detail += " (world hash differs but no component digest does; "
                  "component set changed mid-run?)";
    }
    return d;
  }
  if (a.entries.size() != b.entries.size()) {
    d.epoch = static_cast<std::int64_t>(n);
    d.t = n < a.entries.size() ? a.entries[n].t : b.entries[n].t;
    d.detail += "runs agree for " + std::to_string(n) +
                " epochs, then one run ends early (" +
                std::to_string(a.entries.size()) + " vs " +
                std::to_string(b.entries.size()) + " epochs)";
    return d;
  }
  d.detail += "no divergence across " + std::to_string(n) + " epochs";
  return d;
}

// ---------------------------------------------------------------------------
// EpochHashLog
// ---------------------------------------------------------------------------

EpochHashLog::EpochHashLog(const WorldSnapshotter& world,
                           SnapshotOptions options, std::uint64_t seed)
    : world_(world), options_(options) {
  series_.seed = seed;
  series_.epoch = options_.epoch;
  series_.component_names = world_.names();
}

void EpochHashLog::record(SimTime now) {
  if (series_.entries.size() >= options_.max_epochs) return;
  EpochHash e;
  e.t = now;
  e.components = world_.component_hashes();
  // World digest folded from (name, digest) pairs — identical to
  // SnapshotWriter::world_hash over the same sections.
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < e.components.size(); ++i) {
    const std::string& name = series_.component_names[i];
    h = fnv1a(name.data(), name.size(), h);
    h = fnv1a(&e.components[i], sizeof(e.components[i]), h);
  }
  e.world = h;
  series_.entries.push_back(std::move(e));
}

std::uint64_t EpochHashLog::last_world_hash() const {
  if (series_.entries.empty()) return 0;
  return series_.entries.back().world;
}

}  // namespace es2
