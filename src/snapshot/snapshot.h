// Versioned, byte-stable state serialization (es2-snap-v1).
//
// The snapshot layer is the substrate for three robustness features:
// epoch state-hashing (a per-epoch digest of every stateful component,
// recorded as a metrics series), crash-safe sweep resumption (completed
// cells are checkpointed; a resumed sweep skips them), and the divergence
// bisector (two same-seed runs whose epoch hashes differ are localized to
// the first divergent epoch and the guilty component).
//
// Format rules that make snapshots *byte*-stable, not merely
// value-stable:
//
//  * every field is fixed-width little-endian (doubles as IEEE-754 bit
//    patterns), written in a fixed order with no padding;
//  * container fields always write their element count first;
//  * iteration orders are deterministic (never an unordered_map walk);
//  * the file is framed into named sections — one per component — so a
//    reader can skip unknown sections and a hasher can digest each
//    component independently.
//
// Pending simulator events are NOT serialized: callbacks capture arbitrary
// closures. Restore instead re-executes deterministically — a world
// rebuilt from the same options and driven to the same sim time passes
// through bit-identical state (the scenario construction is the replayable
// intent log), which the recorded section hashes verify. See DESIGN.md
// §4f.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"

namespace es2 {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a 64 over a byte range.
inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

class SnapshotWriter;

/// Implemented by every stateful component. `snapshot_state` must be a
/// pure read: no RNG draws, no scheduled events, no model mutation — the
/// epoch hasher calls it mid-run and a hashed run must stay bit-identical
/// to an unhashed one.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void snapshot_state(SnapshotWriter& w) const = 0;
};

/// Adapts a serialization closure to the Snapshottable interface — used
/// for optional side-sections (e.g. device-lifecycle state) that are
/// registered only in the scenarios that arm them, so the base section
/// layout of every existing world stays byte-identical.
class FnSnapshottable : public Snapshottable {
 public:
  using Fn = std::function<void(SnapshotWriter&)>;
  explicit FnSnapshottable(Fn fn) : fn_(std::move(fn)) {}
  void snapshot_state(SnapshotWriter& w) const override { fn_(w); }

 private:
  Fn fn_;
};

/// Accumulates named sections of fixed-width little-endian fields.
class SnapshotWriter {
 public:
  static constexpr char kMagic[8] = {'e', 's', '2', 's', 'n', 'a', 'p', '1'};
  static constexpr std::uint32_t kVersion = 1;

  struct Section {
    std::string name;
    std::size_t offset = 0;  // payload start in buf_
    std::size_t size = 0;    // payload length
  };

  /// Opens a named section; fields written until the next begin_section
  /// (or serialize) belong to it.
  void begin_section(std::string_view name);

  // --- typed fields (all little-endian, no padding) -----------------------
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern: exact, not a decimal round-trip.
  void put_f64(double v);
  /// Length-prefixed UTF-8 bytes.
  void put_string(std::string_view s);

  const std::vector<Section>& sections() const { return sections_; }

  /// FNV-1a digest of section `i`'s payload bytes.
  std::uint64_t section_hash(std::size_t i) const;

  /// Digest over all sections: H(name, payload) folded in order. Two
  /// worlds with identical component states produce identical hashes.
  std::uint64_t world_hash() const;

  /// Full es2-snap-v1 file image: magic, version, section table + payloads,
  /// trailing FNV-1a checksum of everything before it.
  std::string serialize() const;

  bool write_file(const std::string& path) const;

  /// Resets to empty (reusable scratch writer for hashing).
  void clear();

  std::size_t byte_size() const { return buf_.size(); }

 private:
  void close_section();

  std::vector<std::uint8_t> buf_;
  std::vector<Section> sections_;
  bool section_open_ = false;
};

/// Reads an es2-snap-v1 image produced by SnapshotWriter::serialize().
/// Fields must be read back in the order they were written; any
/// out-of-bounds read or type underflow poisons the reader (`ok()` goes
/// false and further reads return zeros) instead of crashing.
class SnapshotReader {
 public:
  /// Parses and checksums `bytes`. On failure returns false and, when
  /// `error` is non-null, explains why (bad magic, version, truncation,
  /// checksum mismatch).
  bool load(std::string bytes, std::string* error = nullptr);
  bool load_file(const std::string& path, std::string* error = nullptr);

  std::size_t section_count() const { return sections_.size(); }
  const std::string& section_name(std::size_t i) const {
    return sections_[i].name;
  }
  std::uint64_t section_hash(std::size_t i) const;
  std::uint64_t world_hash() const;

  /// Positions the field cursor at the start of the named section.
  /// Returns false (without poisoning) when the section is absent.
  bool seek(std::string_view name);

  // --- typed fields (mirror the writer) ------------------------------------
  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_string();

  /// True while every read so far stayed inside the current section.
  bool ok() const { return ok_; }

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  bool take(std::size_t n, const std::uint8_t** out);

  std::string bytes_;
  std::vector<Section> sections_;
  std::size_t cursor_ = 0;      // absolute offset into bytes_
  std::size_t section_end_ = 0;  // absolute end of the seeked section
  bool ok_ = false;
};

/// Writes an Rng stream's four raw xoshiro256++ state words.
inline void snapshot_rng(SnapshotWriter& w, const Rng& rng) {
  const Rng::State st = rng.state();
  for (int i = 0; i < 4; ++i) w.put_u64(st.s[i]);
}

}  // namespace es2
