// Experiment testbed builder (paper §VI-A).
//
// Reconstructs the paper's setup: two x86 servers back-to-back over 40GbE;
// the VM server has 8 cores (HT off) running KVM. Two canonical
// topologies:
//
//  * micro  — one 1-vCPU VM on a dedicated core, its vhost worker on
//    another core (quota selection, exit-rate experiments);
//  * macro  — four 4-vCPU VMs time-sharing cores 0..3 (vCPU j of every VM
//    pinned to core j, forcing vCPU stacking), a four-thread CPU-burn in
//    every VM, the tested VM's vhost worker on core 4.
//
// The testbed owns the whole object graph; experiments add workload tasks.
#pragma once

#include <memory>
#include <vector>

#include "apps/burn.h"
#include "es2/es2.h"
#include "fault/fault.h"
#include "fault/recovery.h"
#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "net/link.h"
#include "net/peer.h"
#include "profile/profiler.h"
#include "sim/invariant_auditor.h"
#include "snapshot/state_hash.h"
#include "trace/trace.h"
#include "virtio/vhost.h"
#include "vm/vm.h"

namespace es2 {

struct TestbedOptions {
  Es2Config config;
  std::uint64_t seed = 1;
  int host_cores = 8;
  int num_vms = 1;
  int vcpus_per_vm = 1;
  /// true: vCPU j of every VM pins to core j (macro oversubscription);
  /// false: VM v's vCPU j pins to core v*vcpus+j (dedicated cores).
  bool stack_vms = false;
  /// Core for the tested VM's vhost worker.
  int vhost_core = 4;
  /// Add one lowest-priority burn task per vCPU in every VM.
  bool cpu_burn = true;
  double link_gbps = 40.0;
  SimDuration link_latency = 1500;  // ns: cable + NIC + host stack entry
  CostModel costs;
  GuestParams guest_params;
  VhostNetParams vhost_params;
  /// Vhost worker service discipline. kNotify is the stock kick/sleep
  /// path; kAlwaysPoll spins on the rings exit-lessly (SPDK-style);
  /// kAdaptive polls for `adaptive_poll_budget` after the last completed
  /// work, then re-arms notifications and sleeps.
  PollMode poll_mode = PollMode::kNotify;
  /// Spin re-check cadence while the rings are empty in a polling mode.
  SimDuration poll_interval = usec(2);
  /// kAdaptive only: how long past the last work the worker keeps spinning.
  SimDuration adaptive_poll_budget = usec(50);
  int guest_timer_hz = 250;
  /// Seeded fault plan. All-zero (the default) builds no injector at all,
  /// so healthy runs draw zero fault RNG numbers and stay bit-identical.
  FaultPlan faults;
  /// Run the invariant auditor over the tested VM's event path.
  bool audit = false;
  SimDuration audit_period = msec(1);
  /// Event-path tracing. `trace.enabled` builds a Tracer and attaches it
  /// to the simulator; hooks only emit when the build also compiled them
  /// in (-DES2_TRACE=ON). Off by default: zero records, zero overhead.
  TraceOptions trace;
  /// Scoped profiling. `profile.enabled` builds a Profiler and attaches
  /// it to the simulator; scopes only record when the build also compiled
  /// the call sites in (-DES2_PROFILE=ON). Passive either way: profiled
  /// runs leave golden outputs bit-identical.
  ProfileOptions profile;
  /// Unified telemetry. Instruments register across every layer either
  /// way; `metrics.enabled` additionally runs a MetricsSampler on a
  /// deterministic in-sim cadence. Sampling is passive: on-vs-off leaves
  /// golden outputs bit-identical.
  MetricsOptions metrics;
  /// Epoch state-hashing. `snapshot.hash_epochs` arms a periodic FNV
  /// digest of every registered component (the determinism oracle behind
  /// `tools/divergence_bisect`). Hashing is passive: on-vs-off leaves
  /// golden outputs bit-identical.
  SnapshotOptions snapshot;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  Simulator& sim() { return *sim_; }
  KvmHost& host() { return *host_; }
  Es2System& es2() { return *es2_; }
  const TestbedOptions& options() const { return options_; }

  /// The tested VM is always VM 0 (the only one with a network device).
  Vm& tested_vm() { return host_->vm(0); }
  GuestOs& guest(int vm = 0) { return *guests_[static_cast<size_t>(vm)]; }
  VhostNetBackend& backend() { return *backend_; }
  VirtioNetFrontend& frontend() { return *frontend_; }
  PeerHost& peer() { return *peer_; }
  VhostWorker& vhost_worker() { return *worker_; }
  Link& vm_to_peer() { return link_->a_to_b; }
  Link& peer_to_vm() { return link_->b_to_a; }

  /// Null when the fault plan is empty / auditing is off.
  FaultInjector* faults() { return faults_.get(); }
  InvariantAuditor* auditor() { return auditor_.get(); }
  /// Recovery ledger (lifecycle fault drills and overload-mitigation
  /// livelock episodes both report here); null unless the fault plan arms
  /// a lifecycle mode or guest_params.overload_mitigation is set.
  RecoveryLog* recovery_log() { return recovery_log_.get(); }
  /// Null unless options.trace.enabled.
  Tracer* tracer() { return tracer_.get(); }
  /// Null unless options.profile.enabled.
  Profiler* profiler() { return profiler_.get(); }

  /// The unified registry; every layer's instruments live here.
  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  /// Null unless options.metrics.enabled; started by start().
  MetricsSampler* sampler() { return sampler_.get(); }

  /// The world snapshot registry: every stateful component under a stable
  /// name, in construction order. Workloads append themselves when they
  /// attach (before start(), so epoch hashes and snapshots cover them).
  WorldSnapshotter& snapshotter() { return snapshotter_; }
  const WorldSnapshotter& snapshotter() const { return snapshotter_; }
  /// Null unless options.snapshot.hash_epochs; created by start() (after
  /// workloads have registered, so the component set is complete).
  EpochHashLog* hash_log() { return hash_log_.get(); }

  /// Starts every VM (vCPUs + guest timers).
  void start();

  /// Runs warmup, opens measurement windows, runs the measured span, and
  /// returns the window length.
  SimDuration run_measured(SimDuration warmup, SimDuration measure);

 private:
  void register_all_metrics();

  TestbedOptions options_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<KvmHost> host_;
  std::unique_ptr<Es2System> es2_;
  std::vector<std::unique_ptr<GuestOs>> guests_;
  std::unique_ptr<DuplexLink> link_;
  std::unique_ptr<PeerHost> peer_;
  std::unique_ptr<VhostWorker> worker_;
  std::unique_ptr<VhostNetBackend> backend_;
  std::unique_ptr<VirtioNetFrontend> frontend_;
  std::vector<std::unique_ptr<CpuBurnTask>> burn_tasks_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<RecoveryLog> recovery_log_;
  // Adapters exposing mode-gated state (lifecycle drill state, overload
  // ladder state) as their own snapshot sections — registered only when
  // the mode is armed, keeping the base section layout byte-identical.
  std::vector<std::unique_ptr<FnSnapshottable>> lifecycle_sections_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Profiler> profiler_;
  WorldSnapshotter snapshotter_;
  std::unique_ptr<EpochHashLog> hash_log_;
  std::unique_ptr<PeriodicTimer> hash_timer_;
  // Last: the sampler references both the registry and the simulator, so
  // it must be torn down first.
  MetricsRegistry registry_;
  std::unique_ptr<MetricsSampler> sampler_;
};

}  // namespace es2
