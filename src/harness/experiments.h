// Canned experiment runners — one per paper workload family.
//
// Each runner builds a fresh deterministic `Testbed`, installs the
// workload, warms up, measures, and returns the metrics the corresponding
// table/figure reports. Bench binaries, integration tests and examples all
// share these.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/storm.h"
#include "es2/config.h"
#include "harness/runner.h"
#include "harness/testbed.h"
#include "metrics/export.h"
#include "profile/blame.h"
#include "profile/profiler.h"
#include "stats/histogram.h"
#include "trace/span.h"
#include "trace/trace.h"

namespace es2 {

// ---------------------------------------------------------------------------
// Event-path traces (shared by every runner)
// ---------------------------------------------------------------------------

/// Raw harvest from one traced run: the record snapshot plus the stitched
/// per-I/O journeys and their stage-latency breakdown.
struct TraceData {
  std::vector<TraceRecord> records;
  std::vector<JourneySpan> spans;
  SpanBreakdown breakdown;
};

/// Flattened stage-latency summary (ns) for experiment rows / CSV columns.
struct TraceStages {
  std::int64_t journeys = 0;
  std::int64_t complete = 0;
  std::int64_t kick_to_backend_p50 = 0;
  std::int64_t kick_to_backend_p99 = 0;
  std::int64_t backend_to_msi_p50 = 0;
  std::int64_t backend_to_msi_p99 = 0;
  std::int64_t msi_to_dispatch_p50 = 0;
  std::int64_t msi_to_dispatch_p99 = 0;
  std::int64_t dispatch_to_eoi_p50 = 0;
  std::int64_t dispatch_to_eoi_p99 = 0;
  std::int64_t end_to_end_p50 = 0;
  std::int64_t end_to_end_p99 = 0;
};

/// Snapshots a testbed's tracer and stitches journeys. Null when the run
/// was not traced. Call after the measured span, before teardown.
std::shared_ptr<TraceData> harvest_trace(Testbed& tb);

// ---------------------------------------------------------------------------
// Telemetry (shared by every runner)
// ---------------------------------------------------------------------------

/// Final registry snapshot from one run, attached to result rows next to
/// TraceStages. Self-contained: outlives the testbed.
struct MetricsData {
  std::vector<MetricSample> samples;  // sorted by canonical key
  std::uint64_t sampler_frames = 0;   // time-series frames retained
  std::uint64_t sampler_total = 0;    // ticks taken (incl. evicted)
  std::string top_deltas;             // top-5 moving metrics, one line

  /// Scalar value of a metric by canonical key, or `fallback`.
  double value(const std::string& key, double fallback = 0) const;
};

/// Reads the testbed's registry (and sampler, if any) into a MetricsData.
/// Call after the measured span, before teardown. Never null.
std::shared_ptr<MetricsData> harvest_metrics(Testbed& tb);

/// Copies the testbed's epoch-hash series (the divergence-bisector input).
/// Null unless the run set `snapshot.hash_epochs`. Call before teardown.
std::shared_ptr<HashSeries> harvest_hashes(Testbed& tb);

/// Stage summary of a harvested trace (all zeros for null / empty data).
TraceStages trace_stages(const TraceData* data);

/// Snapshots a testbed's profiler (span aggregates, scope tree, slice
/// ring). Null when the run was not profiled. Call before teardown.
std::shared_ptr<ProfileData> harvest_profile(Testbed& tb);

/// Critical-path blame over a harvested trace (empty breakdown for null
/// or untraced data). The analyzer is offline; call it on result rows,
/// never inside the run.
BlameBreakdown blame_of(const TraceData* data,
                        const BlameOptions& options = {});

/// Paper-style exit breakdown (Table I / Fig. 5 rows).
struct ExitBreakdown {
  double interrupt_delivery = 0;  // external_interrupt exits/s
  double interrupt_completion = 0;  // apic_access exits/s
  double io_instruction = 0;      // guest I/O request exits/s
  double others = 0;
  double total = 0;
  double tig_percent = 0;
};

ExitBreakdown exit_breakdown(const ExitStats& stats, SimTime now);

/// The canonical drops{cause=...} family, harvested as one row per cause.
/// Every intentionally finite queue on the event path reports here; a
/// packet that vanishes without landing in one of these is a bug.
struct DropCounts {
  std::int64_t wire = 0;          // link loss (fault-injected)
  std::int64_t backpressure = 0;  // rung-2 ingress shedding (1-in-N keep)
  std::int64_t sock_backlog = 0;  // vhost RX ring overflow
  std::int64_t syn_backlog = 0;   // guest listen backlog overflow
  std::int64_t accept_queue = 0;  // per-worker accept/request queue full
  std::int64_t accept_shed = 0;   // rung-3 SYN-cookie-style early drop
  std::int64_t worker_queue = 0;  // app worker queue full (memcached)

  std::int64_t total() const {
    return wire + backpressure + sock_backlog + syn_backlog + accept_queue +
           accept_shed + worker_queue;
  }
};

// ---------------------------------------------------------------------------
// Netperf streams (Table I, Fig. 4, Fig. 5, Fig. 6)
// ---------------------------------------------------------------------------

struct StreamOptions {
  Es2Config config;
  Proto proto = Proto::kTcp;
  Bytes msg_size = 1024;
  bool vm_sends = true;
  /// false: micro topology (1 vCPU, dedicated core);
  /// true:  macro topology (4 VMs x 4 vCPUs stacked on 4 cores).
  bool macro = false;
  /// Number of concurrent netperf threads in the tested VM.
  int threads = 1;
  /// Explicit Algorithm 1 quota (Fig. 4 sweeps); <= 0 uses config default.
  int quota_override = 0;
  /// Offered load for peer->VM UDP streams.
  double udp_offered_pps = 220000;
  /// Dup-ACK fast-retransmit threshold for the peer's TCP sender
  /// (peer->VM streams only); <= 0 keeps RTO-only recovery.
  int dupack_threshold = 0;
  /// Dataplane shape: virtio-net queue pairs (RSS-steered when > 1) and
  /// the ring layout both sides negotiate.
  int num_queue_pairs = 1;
  RingLayout ring_layout = RingLayout::kSplit;
  /// Vhost worker service discipline (see TestbedOptions::poll_mode).
  PollMode poll_mode = PollMode::kNotify;
  SimDuration poll_interval = usec(2);
  SimDuration adaptive_poll_budget = usec(50);
  std::uint64_t seed = 1;
  SimDuration warmup = msec(200);
  SimDuration measure = msec(800);
  /// Event-path tracing for this run (off by default).
  TraceOptions trace;
  /// Scoped profiling for this run (off by default; passive when on).
  ProfileOptions profile;
  /// Registry sampling cadence (on by default; passive either way).
  MetricsOptions metrics;
  /// Epoch state-hashing (off by default; passive when on).
  SnapshotOptions snapshot;
};

struct StreamResult {
  ExitBreakdown exits;
  double throughput_mbps = 0;
  double packets_per_sec = 0;
  double kicks_per_sec = 0;       // guest kick instructions executed
  double guest_irqs_per_sec = 0;  // interrupts taken through the guest IDT
  std::int64_t rx_dropped = 0;    // vhost RX ring overflow drops
  std::int64_t link_dropped = 0;  // wire drops, both directions
  /// Same drops broken out by canonical cause (rx_dropped ==
  /// drops.sock_backlog, link_dropped == drops.wire; kept as flat fields
  /// too so existing consumers read unchanged).
  DropCounts drops;
  /// Null unless the run was traced.
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  /// Null unless the run was profiled.
  std::shared_ptr<ProfileData> profile;
  /// Final registry snapshot (never null after a run).
  std::shared_ptr<MetricsData> metrics;
  /// Null unless the run hashed epochs.
  std::shared_ptr<HashSeries> hashes;
};

StreamResult run_stream(const StreamOptions& opts);

// ---------------------------------------------------------------------------
// Chaos streams: netperf under seeded faults, with auditing + watchdog
// ---------------------------------------------------------------------------

struct ChaosStreamOptions {
  StreamOptions stream;
  FaultPlan faults;
  /// Chaos runs face real holes, so fast retransmit defaults on here
  /// (applied over stream.dupack_threshold when that is unset).
  int dupack_threshold = 3;
  /// Disable to demonstrate an unrecovered wedge (100% kick loss with no
  /// guest TX watchdog must be caught by the scenario watchdog instead).
  bool tx_watchdog = true;
  bool audit = true;
  SimDuration audit_period = msec(1);
  ScenarioBudget budget;
};

struct ChaosStreamResult {
  StreamResult stream;
  FaultStats faults;
  // Recovery-path activity.
  std::int64_t fast_retransmits = 0;  // peer TCP dup-ACK retransmits
  std::int64_t rto_retransmits = 0;   // peer TCP timeout retransmits
  std::int64_t tx_watchdog_kicks = 0;  // guest dev_watchdog re-kicks
  std::int64_t rx_watchdog_polls = 0;  // guest missed-RX-irq NAPI recoveries
  std::int64_t rx_repolls = 0;         // vhost missed-kick re-polls
  // Auditor outcome.
  std::uint64_t audit_sweeps = 0;
  std::int64_t audit_violations = 0;
  // Watchdog verdict for this scenario (status == kOk on a healthy run).
  ScenarioReport report;
};

/// run_stream under a fault plan: same topology and workload, but the run
/// is supervised by a ScenarioWatchdog (progress = packets delivered
/// end-to-end) and instrumented with the invariant auditor. Never hangs:
/// a wedged world comes back with report.status != kOk and partial stats.
ChaosStreamResult run_chaos_stream(const ChaosStreamOptions& opts,
                                   const std::string& name = "chaos");

// ---------------------------------------------------------------------------
// Recovery streams: lifecycle faults, the recovery ladder, MTTR accounting
// ---------------------------------------------------------------------------

/// Per-fault-mode recovery outcome (the bench_recovery rows).
struct RecoveryModeStats {
  LifecycleFault mode = LifecycleFault::kDescCorrupt;
  std::int64_t injected = 0;
  std::int64_t recovered = 0;
  SimDuration mttr_p50 = 0;  // sim-ns over recovered instances
  SimDuration mttr_p99 = 0;
};

/// Structured escalation of a fault instance still open at scenario end —
/// the "silent wedge" made loud. Carries the trace correlation id so the
/// stuck journey can be pulled straight out of a Perfetto export.
struct WedgeReport {
  std::int64_t instance = 0;
  LifecycleFault mode = LifecycleFault::kDescCorrupt;
  int scope = kScopeTx;
  SimTime injected_at = 0;
  SimDuration open_for = 0;
  std::uint64_t corr = 0;
  /// One WATCHDOG-style line (mode, scope, correlation id, how long open).
  std::string detail;
};

struct RecoveryStreamOptions {
  /// The chaos substrate: topology, workload, fault plan (lifecycle
  /// periods live in chaos.faults), watchdog budget, auditing.
  ChaosStreamOptions chaos;
  /// Arm the guest recovery ladder. Defaults on here — this runner exists
  /// to measure it — while chaos baselines keep the ladder off.
  bool recovery_ladder = true;
  /// After the measured span, stop injecting and give still-open
  /// instances this long to finish climbing the ladder before the ledger
  /// is read. Separates end-of-run truncation from a genuine wedge.
  SimDuration drain = msec(50);
};

struct RecoveryStreamResult {
  ChaosStreamResult chaos;
  // Ledger totals (every lifecycle fault instance ever opened).
  std::int64_t injected = 0;
  std::int64_t recovered = 0;
  std::int64_t unrecovered = 0;
  SimDuration mttr_p50 = 0;  // over recovered instances, all modes
  SimDuration mttr_p99 = 0;
  std::vector<RecoveryModeStats> modes;  // one entry per injected mode
  // Ladder activity by rung (RecoveryLog action counts).
  std::int64_t rung_watchdog = 0;
  std::int64_t rung_vhost_repoll = 0;
  std::int64_t rung_queue_reset = 0;
  std::int64_t rung_device_reset = 0;
  // Device-lifecycle counters. Resets/renegotiations include the boot
  // negotiation (+1 each); the ladder_* pair counts recovery-driven ones.
  std::int64_t ring_faults_detected = 0;
  std::int64_t queue_resets = 0;
  std::int64_t device_resets = 0;
  std::int64_t renegotiations = 0;
  std::int64_t ladder_queue_resets = 0;
  std::int64_t ladder_device_resets = 0;
  std::int64_t worker_crashes = 0;
  std::int64_t worker_restarts = 0;
  /// Structured reports for every unrecovered instance; empty == zero
  /// silent wedges.
  std::vector<WedgeReport> wedges;

  /// The soak verdict: every injected fault either recovered in bounded
  /// sim time or is loudly reported, and the scenario watchdog stayed
  /// happy throughout.
  bool clean() const { return wedges.empty() && chaos.report.ok(); }
};

/// run_chaos_stream plus the recovery machinery: lifecycle faults from
/// the plan, the guest recovery ladder, and MTTR accounting harvested
/// from the RecoveryLog before teardown. Injection stops after the
/// measured span so the drain window races only the ladder.
RecoveryStreamResult run_recovery_stream(const RecoveryStreamOptions& opts,
                                         const std::string& name = "recovery");

// ---------------------------------------------------------------------------
// Ping RTT (Fig. 7)
// ---------------------------------------------------------------------------

struct PingOptions {
  Es2Config config;
  int samples = 120;
  SimDuration interval = msec(250);
  std::uint64_t seed = 1;
  TraceOptions trace;
  ProfileOptions profile;
  MetricsOptions metrics;
  SnapshotOptions snapshot;
};

struct PingResult {
  Histogram rtt;                       // ns
  std::vector<SimDuration> samples;    // Fig. 7 is a time series
  std::int64_t lost = 0;
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  std::shared_ptr<ProfileData> profile;
  std::shared_ptr<MetricsData> metrics;
  std::shared_ptr<HashSeries> hashes;
};

PingResult run_ping(const PingOptions& opts);

// ---------------------------------------------------------------------------
// Memcached (Fig. 8a)
// ---------------------------------------------------------------------------

struct MemcachedOptions {
  Es2Config config;
  int client_threads = 16;
  int concurrency_per_thread = 16;  // 256 concurrent requests total
  double get_ratio = 0.9;
  int workers = 4;
  std::uint64_t seed = 1;
  SimDuration warmup = msec(300);
  SimDuration measure = sec(1);
  TraceOptions trace;
  ProfileOptions profile;
  MetricsOptions metrics;
  SnapshotOptions snapshot;
};

struct MemcachedResult {
  double ops_per_sec = 0;
  double throughput_mbps = 0;  // response bytes
  Histogram latency;           // ns per op
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  std::shared_ptr<ProfileData> profile;
  std::shared_ptr<MetricsData> metrics;
  std::shared_ptr<HashSeries> hashes;
};

MemcachedResult run_memcached(const MemcachedOptions& opts);

// ---------------------------------------------------------------------------
// Apache (Fig. 8b) and Httperf (Fig. 9)
// ---------------------------------------------------------------------------

struct ApacheOptions {
  Es2Config config;
  int concurrency = 16;
  int workers = 8;
  std::uint64_t seed = 1;
  SimDuration warmup = msec(300);
  SimDuration measure = sec(1);
  TraceOptions trace;
  ProfileOptions profile;
  MetricsOptions metrics;
  SnapshotOptions snapshot;
};

struct ApacheResult {
  double requests_per_sec = 0;
  double throughput_mbps = 0;
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  std::shared_ptr<ProfileData> profile;
  std::shared_ptr<MetricsData> metrics;
  std::shared_ptr<HashSeries> hashes;
};

ApacheResult run_apache(const ApacheOptions& opts);

struct HttperfOptions {
  Es2Config config;
  double rate_per_sec = 1000;
  SimDuration duration = sec(3);
  std::uint64_t seed = 1;
  TraceOptions trace;
  ProfileOptions profile;
  MetricsOptions metrics;
  SnapshotOptions snapshot;
};

struct HttperfResult {
  double avg_connect_ms = 0;
  double p99_connect_ms = 0;
  std::int64_t established = 0;
  std::int64_t retries = 0;
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  std::shared_ptr<ProfileData> profile;
  std::shared_ptr<MetricsData> metrics;
  std::shared_ptr<HashSeries> hashes;
};

HttperfResult run_httperf(const HttperfOptions& opts);

// ---------------------------------------------------------------------------
// Connection storms: overload, receive livelock, graceful degradation
// ---------------------------------------------------------------------------

struct StormOptions {
  Es2Config config;
  /// Arrival-rate envelope (ramp / hold / ramp-down / diurnal bursts).
  StormShape shape;
  /// Arm the guest's overload ladder (livelock detector + ksoftirqd +
  /// backpressure + accept shedding). Off reproduces the classic receive
  /// livelock; on is the graceful-degradation arm of the same cell.
  bool mitigation = false;
  /// Server sizing. The storm defaults tighten the accept queue well below
  /// its paper-rate default so overload actually overflows something.
  int workers = 4;
  int syn_backlog = 128;
  int accept_queue = 512;
  /// Client impatience: aggressive SYN RTO sustains the retransmit
  /// flywheel; the retry cap is what eventually deflates it.
  SimDuration syn_rto = msec(50);
  int max_retries = 5;
  /// TFO request payload per SYN: the data-bearing SYN takes the full TCP
  /// receive path (rx_tcp_per_packet, ~8.5k cycles) instead of the cheap
  /// ACK path. Payload size itself barely moves the per-packet cost
  /// (rx_cycles_per_byte is fractional) — peak_rate is the overload knob.
  Bytes syn_payload = 64;
  std::uint64_t seed = 1;
  /// No-load settle before the generator starts.
  SimDuration warmup = msec(100);
  /// Post-storm observation span (recovery back to base-rate service).
  SimDuration cooldown = msec(300);
  /// A mitigations-off cell at a collapsing ramp is SUPPOSED to trip the
  /// scenario watchdog with kLivelock; set this so the runner finishes the
  /// full storm span unsupervised after the (expected) verdict, keeping
  /// the measured span identical across both arms of the comparison.
  bool expect_livelock = false;
  /// Watchdog budget. stall_tolerance defaults to 8 progress units per
  /// 50 ms window (160 conn/s): a livelocked listener still trickles a few
  /// accepts per window when the timer tick briefly interrupts the poll
  /// chain, while healthy storm cells clear hundreds per window — receive
  /// livelock is collapse to near-zero, not bit-exact zero.
  ScenarioBudget budget = [] {
    ScenarioBudget b;
    b.stall_tolerance = 8;
    return b;
  }();
  TraceOptions trace;
  ProfileOptions profile;
  MetricsOptions metrics;
  SnapshotOptions snapshot;
};

struct StormResult {
  // Client-side connection accounting (whole storm span).
  std::int64_t attempted = 0;
  std::int64_t established = 0;
  std::int64_t retries = 0;
  std::int64_t abandoned = 0;
  std::int64_t client_pending_overflows = 0;
  // Server-side service.
  std::int64_t accepts = 0;
  std::int64_t served = 0;
  double goodput_mbps = 0;     // page bytes delivered back to the client
  double conns_per_sec = 0;    // established rate over the storm span
  double connect_p50_ms = 0;   // SYN -> SYN/ACK
  double connect_p99_ms = 0;
  /// Every drop on the path, by canonical cause. Under overload these are
  /// the design working as intended — the blame table of where load shed.
  DropCounts drops;
  // Overload-ladder activity (zeros when mitigation is off).
  int overload_max_rung = 0;
  std::int64_t livelock_detections = 0;
  std::int64_t ksoftirqd_defers = 0;
  std::int64_t ksoftirqd_polls = 0;
  // Livelock episodes in the recovery ledger (MTTR = detect -> first app
  // progress after mitigation).
  std::int64_t episodes = 0;
  std::int64_t episodes_recovered = 0;
  SimDuration mttr_p50 = 0;
  SimDuration mttr_p99 = 0;
  // Bounded-container audit signal.
  std::size_t worker_active_high_water = 0;
  /// Watchdog verdict. kLivelock with expect_livelock set is the cell
  /// demonstrating the failure mode on purpose — see acceptable().
  ScenarioReport report;
  bool livelocked = false;        // report.status == kLivelock
  bool livelock_expected = false; // copied from options
  std::shared_ptr<TraceData> trace;
  TraceStages stages;
  std::shared_ptr<ProfileData> profile;
  std::shared_ptr<MetricsData> metrics;
  std::shared_ptr<HashSeries> hashes;

  /// The cell verdict: clean, or livelocked exactly when that was the
  /// point of the cell.
  bool acceptable() const {
    return report.ok() || (livelock_expected && livelocked);
  }
};

/// Connection-storm runner (micro topology): an ApacheServer with tight
/// finite queues under a StormClient flash crowd, supervised by a
/// ScenarioWatchdog whose activity probe (NAPI polls + backend deliveries)
/// separates a livelocked world from a wedged one. With mitigation armed
/// the run also carries the livelock MTTR ledger.
StormResult run_storm(const StormOptions& opts,
                      const std::string& name = "storm");

}  // namespace es2
