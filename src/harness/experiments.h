// Canned experiment runners — one per paper workload family.
//
// Each runner builds a fresh deterministic `Testbed`, installs the
// workload, warms up, measures, and returns the metrics the corresponding
// table/figure reports. Bench binaries, integration tests and examples all
// share these.
#pragma once

#include <vector>

#include "es2/config.h"
#include "harness/testbed.h"
#include "stats/histogram.h"

namespace es2 {

/// Paper-style exit breakdown (Table I / Fig. 5 rows).
struct ExitBreakdown {
  double interrupt_delivery = 0;  // external_interrupt exits/s
  double interrupt_completion = 0;  // apic_access exits/s
  double io_instruction = 0;      // guest I/O request exits/s
  double others = 0;
  double total = 0;
  double tig_percent = 0;
};

ExitBreakdown exit_breakdown(const ExitStats& stats, SimTime now);

// ---------------------------------------------------------------------------
// Netperf streams (Table I, Fig. 4, Fig. 5, Fig. 6)
// ---------------------------------------------------------------------------

struct StreamOptions {
  Es2Config config;
  Proto proto = Proto::kTcp;
  Bytes msg_size = 1024;
  bool vm_sends = true;
  /// false: micro topology (1 vCPU, dedicated core);
  /// true:  macro topology (4 VMs x 4 vCPUs stacked on 4 cores).
  bool macro = false;
  /// Number of concurrent netperf threads in the tested VM.
  int threads = 1;
  /// Explicit Algorithm 1 quota (Fig. 4 sweeps); <= 0 uses config default.
  int quota_override = 0;
  /// Offered load for peer->VM UDP streams.
  double udp_offered_pps = 220000;
  std::uint64_t seed = 1;
  SimDuration warmup = msec(200);
  SimDuration measure = msec(800);
};

struct StreamResult {
  ExitBreakdown exits;
  double throughput_mbps = 0;
  double packets_per_sec = 0;
  double kicks_per_sec = 0;       // guest kick instructions executed
  double guest_irqs_per_sec = 0;  // interrupts taken through the guest IDT
  std::int64_t rx_dropped = 0;
};

StreamResult run_stream(const StreamOptions& opts);

// ---------------------------------------------------------------------------
// Ping RTT (Fig. 7)
// ---------------------------------------------------------------------------

struct PingOptions {
  Es2Config config;
  int samples = 120;
  SimDuration interval = msec(250);
  std::uint64_t seed = 1;
};

struct PingResult {
  Histogram rtt;                       // ns
  std::vector<SimDuration> samples;    // Fig. 7 is a time series
  std::int64_t lost = 0;
};

PingResult run_ping(const PingOptions& opts);

// ---------------------------------------------------------------------------
// Memcached (Fig. 8a)
// ---------------------------------------------------------------------------

struct MemcachedOptions {
  Es2Config config;
  int client_threads = 16;
  int concurrency_per_thread = 16;  // 256 concurrent requests total
  double get_ratio = 0.9;
  int workers = 4;
  std::uint64_t seed = 1;
  SimDuration warmup = msec(300);
  SimDuration measure = sec(1);
};

struct MemcachedResult {
  double ops_per_sec = 0;
  double throughput_mbps = 0;  // response bytes
  Histogram latency;           // ns per op
};

MemcachedResult run_memcached(const MemcachedOptions& opts);

// ---------------------------------------------------------------------------
// Apache (Fig. 8b) and Httperf (Fig. 9)
// ---------------------------------------------------------------------------

struct ApacheOptions {
  Es2Config config;
  int concurrency = 16;
  int workers = 8;
  std::uint64_t seed = 1;
  SimDuration warmup = msec(300);
  SimDuration measure = sec(1);
};

struct ApacheResult {
  double requests_per_sec = 0;
  double throughput_mbps = 0;
};

ApacheResult run_apache(const ApacheOptions& opts);

struct HttperfOptions {
  Es2Config config;
  double rate_per_sec = 1000;
  SimDuration duration = sec(3);
  std::uint64_t seed = 1;
};

struct HttperfResult {
  double avg_connect_ms = 0;
  double p99_connect_ms = 0;
  std::int64_t established = 0;
  std::int64_t retries = 0;
};

HttperfResult run_httperf(const HttperfOptions& opts);

}  // namespace es2
