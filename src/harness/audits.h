// Concrete invariant checks for sim::InvariantAuditor.
//
// The auditor framework lives in sim/ and is domain-blind; the checks that
// actually understand virtqueues, APICs and runqueues are built here, in
// the one library that links every model layer. Each factory returns a
// self-contained closure (holding any last-seen state it needs for
// monotonicity checks) that the caller registers under a name.
#pragma once

#include "cpu/cfs.h"
#include "sim/invariant_auditor.h"
#include "virtio/vhost.h"
#include "virtio/virtqueue.h"
#include "vm/vcpu.h"
#include "vm/vm.h"

namespace es2::audits {

/// Virtqueue accounting: avail/used indices monotone, used never overtakes
/// avail, in-flight non-negative, and total occupancy within capacity.
/// Lifecycle-aware: a reset resyncs the monotonicity baselines, and a
/// quarantined (or injected-but-undetected) ring fault is skipped — the
/// integrity checker owns that report.
InvariantAuditor::Check virtqueue_check(const Virtqueue& vq);

/// Silent-wedge detector: the device may flag DEVICE_NEEDS_RESET, but a
/// recovery rung must then act on it. If the status bit persists this many
/// consecutive audit sweeps with no queue/device reset occurring, the run
/// is wedged-but-quiet — exactly the failure mode the recovery ladder
/// exists to rule out — and the auditor reports it structurally.
inline constexpr int kNeedsResetStuckSweeps = 64;
InvariantAuditor::Check device_lifecycle_check(const VhostNetBackend& backend);

/// Emulated-LAPIC consistency: with nothing in service, any pending vector
/// must be deliverable (priority masking can only come from the ISR).
InvariantAuditor::Check lapic_check(Vcpu& vcpu);

/// Posted-interrupt descriptor: an outstanding notification (ON set)
/// implies at least one posted vector in the PIR.
InvariantAuditor::Check posted_interrupt_check(Vcpu& vcpu);

/// CFS core accounting: min_vruntime monotone and the running thread (if
/// any) actually in the kRunning state.
InvariantAuditor::Check cfs_core_check(const Core& core);

/// Registers the full standard battery for one scenario: both virtqueues
/// of `backend`, LAPIC + PI state of every vCPU in `vm`, and every core of
/// `sched`.
void register_standard_checks(InvariantAuditor& auditor, Vm& vm,
                              VhostNetBackend& backend, CfsScheduler& sched);

}  // namespace es2::audits
