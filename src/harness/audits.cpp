#include "harness/audits.h"

#include "base/strings.h"

namespace es2::audits {

InvariantAuditor::Check virtqueue_check(const Virtqueue& vq) {
  return [&vq, prev_added = std::int64_t{0}, prev_used = std::int64_t{0},
          prev_epoch = std::int64_t{0}]() mutable
             -> std::optional<std::string> {
    const std::int64_t added = vq.total_added();
    const std::int64_t used = vq.total_used();
    // A queue/device reset legitimately rewinds both indices to zero;
    // resync the monotonicity baselines and skip this sweep.
    if (vq.reset_epoch() != prev_epoch) {
      prev_epoch = vq.reset_epoch();
      prev_added = added;
      prev_used = used;
      return std::nullopt;
    }
    // An injected (or already-quarantined) ring fault violates the
    // accounting invariants by construction — that is the integrity
    // checker's jurisdiction, and double-reporting it here would turn
    // every recovery drill into an audit failure. Keep the baselines
    // moving so the post-reset sweep doesn't see a phantom rewind.
    if (vq.pending_fault() != RingFault::kNone ||
        vq.check_integrity() != RingFault::kNone) {
      prev_added = added;
      prev_used = used;
      return std::nullopt;
    }
    std::optional<std::string> result;
    if (added < prev_added) {
      result = format("%s: avail index moved backwards (%lld -> %lld)",
                      vq.name().c_str(), static_cast<long long>(prev_added),
                      static_cast<long long>(added));
    } else if (used < prev_used) {
      result = format("%s: used index moved backwards (%lld -> %lld)",
                      vq.name().c_str(), static_cast<long long>(prev_used),
                      static_cast<long long>(used));
    } else if (used > added) {
      result = format("%s: used index %lld overtook avail index %lld",
                      vq.name().c_str(), static_cast<long long>(used),
                      static_cast<long long>(added));
    } else if (vq.in_flight() < 0) {
      result = format("%s: negative in-flight count %d", vq.name().c_str(),
                      vq.in_flight());
    } else if (vq.avail_count() + vq.used_count() + vq.in_flight() >
               vq.capacity()) {
      result = format("%s: occupancy %d exceeds ring capacity %d",
                      vq.name().c_str(),
                      vq.avail_count() + vq.used_count() + vq.in_flight(),
                      vq.capacity());
    }
    prev_added = added;
    prev_used = used;
    return result;
  };
}

InvariantAuditor::Check device_lifecycle_check(const VhostNetBackend& backend) {
  return [&backend, stuck_sweeps = 0,
          prev_resets = std::int64_t{0}]() mutable
             -> std::optional<std::string> {
    const std::int64_t resets =
        backend.queue_resets() + backend.device_resets();
    const bool progressing = resets != prev_resets;
    prev_resets = resets;
    if (!backend.needs_reset() || progressing) {
      stuck_sweeps = 0;
      return std::nullopt;
    }
    if (++stuck_sweeps < kNeedsResetStuckSweeps) return std::nullopt;
    return format(
        "device stuck in DEVICE_NEEDS_RESET for %d audit sweeps "
        "(status 0x%02x, %lld ring fault(s) detected, no reset forthcoming)",
        stuck_sweeps, backend.device_status(),
        static_cast<long long>(backend.ring_faults_detected()));
  };
}

InvariantAuditor::Check lapic_check(Vcpu& vcpu) {
  return [&vcpu]() -> std::optional<std::string> {
    const EmulatedLapic& lapic = vcpu.lapic();
    // With an empty ISR nothing can mask a pending vector, so any pending
    // interrupt must be deliverable; a stuck IRR here means lost wakeups.
    if (lapic.has_pending() && lapic.in_service_count() == 0 &&
        lapic.deliverable() < 0) {
      return format("vcpu%d: %d pending vector(s) but none deliverable "
                    "with an empty ISR",
                    vcpu.index(), lapic.pending_count());
    }
    return std::nullopt;
  };
}

InvariantAuditor::Check posted_interrupt_check(Vcpu& vcpu) {
  return [&vcpu]() -> std::optional<std::string> {
    const PiDescriptor& pi = vcpu.vapic().pi();
    if (pi.outstanding() && !pi.has_posted()) {
      return format("vcpu%d: PI notification outstanding (ON set) with an "
                    "empty PIR",
                    vcpu.index());
    }
    return std::nullopt;
  };
}

InvariantAuditor::Check cfs_core_check(const Core& core) {
  return [&core, prev_min = -1.0]() mutable -> std::optional<std::string> {
    const double min_vr = core.min_vruntime();
    std::optional<std::string> result;
    if (min_vr < prev_min) {
      result = format("core%d: min_vruntime moved backwards (%f -> %f)",
                      core.id(), prev_min, min_vr);
    } else if (core.current() != nullptr &&
               core.current()->state() != SimThread::State::kRunning) {
      result = format("core%d: current thread '%s' is not in kRunning",
                      core.id(), core.current()->name().c_str());
    } else if (core.nr_running() < (core.current() != nullptr ? 1 : 0)) {
      result = format("core%d: nr_running %d below running-thread floor",
                      core.id(), core.nr_running());
    }
    prev_min = min_vr;
    return result;
  };
}

void register_standard_checks(InvariantAuditor& auditor, Vm& vm,
                              VhostNetBackend& backend, CfsScheduler& sched) {
  for (int pair = 0; pair < backend.num_queue_pairs(); ++pair) {
    auditor.add_check("vq/" + backend.tx_vq(pair).name(),
                      virtqueue_check(backend.tx_vq(pair)));
    auditor.add_check("vq/" + backend.rx_vq(pair).name(),
                      virtqueue_check(backend.rx_vq(pair)));
  }
  auditor.add_check("lifecycle/" + vm.name(), device_lifecycle_check(backend));
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    auditor.add_check(format("lapic/vcpu%d", i), lapic_check(vm.vcpu(i)));
    auditor.add_check(format("pi/vcpu%d", i),
                      posted_interrupt_check(vm.vcpu(i)));
  }
  for (int c = 0; c < sched.num_cores(); ++c) {
    auditor.add_check(format("cfs/core%d", c), cfs_core_check(sched.core(c)));
  }
}

}  // namespace es2::audits
