#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "base/assert.h"

namespace es2 {

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::run(std::vector<std::function<void()>> tasks) const {
  if (tasks.empty()) return;
  const int workers =
      std::min<int>(threads_, static_cast<int>(tasks.size()));
  if (workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&tasks, &next] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        tasks[i]();
      }
    });
  }
  for (auto& t : pool) t.join();
}

void parallel_for(int n, const std::function<void(int)>& fn, int threads) {
  ES2_CHECK(n >= 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    tasks.push_back([i, &fn] { fn(i); });
  }
  ParallelRunner(threads).run(std::move(tasks));
}

}  // namespace es2
