#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "base/assert.h"

namespace es2 {

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::run(std::vector<std::function<void()>> tasks) const {
  if (tasks.empty()) return;
  const int workers =
      std::min<int>(threads_, static_cast<int>(tasks.size()));
  if (workers <= 1) {
    std::exception_ptr first;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  // Shared work index: every worker pulls the next unclaimed task, so
  // skewed task durations balance automatically (no pre-partitioning).
  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  size_t error_index = tasks.size();
  std::exception_ptr error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) return;
        try {
          tasks[i]();
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for(int n, const std::function<void(int)>& fn, int threads) {
  ES2_CHECK(n >= 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    tasks.push_back([i, &fn] { fn(i); });
  }
  ParallelRunner(threads).run(std::move(tasks));
}

}  // namespace es2
