#include "harness/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "base/json.h"
#include "base/strings.h"
#include "snapshot/snapshot.h"

namespace es2 {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSchema = "es2-ckpt-v1";

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file_atomic(const std::string& path, const std::string& text,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open " + tmp;
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  // rename(2) is atomic within a filesystem: readers see the old cell or
  // the new one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string CellCheckpoint::to_json_text() const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kSchema));
  doc.set("name", Json::string(report.name));
  doc.set("status", Json::string(to_string(report.status)));
  doc.set("sim_now", Json::number(static_cast<double>(report.sim_now)));
  doc.set("events", Json::number(static_cast<double>(report.events)));
  doc.set("detail", Json::string(report.detail));
  doc.set("telemetry", Json::string(report.telemetry));
  doc.set("attempts", Json::number(report.attempts));
  doc.set("artifact", Json::string(report.artifact));
  return doc.dump(2) + "\n";
}

bool CellCheckpoint::parse(const std::string& text, CellCheckpoint* out,
                           std::string* error) {
  Json doc;
  if (!Json::parse(text, &doc, error)) return false;
  if (!doc.is_object() || doc.string_or("schema", "") != kSchema) {
    *error = "not an es2-ckpt-v1 document";
    return false;
  }
  ScenarioReport& r = out->report;
  r.name = doc.string_or("name", "");
  if (r.name.empty()) {
    *error = "cell has no name";
    return false;
  }
  r.status = scenario_status_from_string(doc.string_or("status", ""));
  r.sim_now = static_cast<SimTime>(doc.number_or("sim_now", 0));
  r.events = static_cast<std::uint64_t>(doc.number_or("events", 0));
  r.detail = doc.string_or("detail", "");
  r.telemetry = doc.string_or("telemetry", "");
  r.attempts = static_cast<int>(doc.number_or("attempts", 1));
  r.artifact = doc.string_or("artifact", "");
  r.resumed = false;
  return true;
}

CheckpointDir::CheckpointDir(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointDir::sanitize(const std::string& name) {
  std::string stem;
  stem.reserve(name.size());
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    stem += safe ? c : '_';
  }
  // Sanitizing can collide ("a/b" and "a+b" both become "a_b"); a digest
  // of the original name keeps stems unique.
  const std::uint64_t h = fnv1a(name.data(), name.size());
  return stem + format("-%08x", static_cast<unsigned>(h & 0xFFFFFFFFu));
}

std::size_t CheckpointDir::load() {
  cells_.clear();
  if (!enabled()) return 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return 0;  // missing directory: nothing to resume
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".json") continue;
    std::string text;
    if (!read_file(entry.path().string(), &text)) continue;
    CellCheckpoint cell;
    std::string error;
    if (!CellCheckpoint::parse(text, &cell, &error)) continue;
    cells_[cell.report.name] = std::move(cell);
  }
  return cells_.size();
}

const CellCheckpoint* CheckpointDir::find(const std::string& name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

bool CheckpointDir::store(const CellCheckpoint& cell, std::string* error) {
  if (!enabled()) return true;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    *error = "cannot create " + dir_;
    return false;
  }
  const std::string path =
      dir_ + "/" + sanitize(cell.report.name) + ".json";
  return write_file_atomic(path, cell.to_json_text(), error);
}

}  // namespace es2
