// Sweep checkpoints: crash-safe per-cell records for ExperimentRunner.
//
// A long chaos sweep that dies at cell 37 of 48 — OOM-killed, machine
// reboot, ^C — should not have to redo 36 finished cells. The runner
// writes one `es2-ckpt-v1` JSON file per completed cell into a checkpoint
// directory (atomically: tmp file + rename), and `--resume=<dir>` replays
// the finished cells from disk instead of re-running them. Each record
// carries the cell's ScenarioReport plus an opaque bench-defined
// `artifact` payload, so a resumed sweep reconstructs byte-identical CSV
// and report output.
//
// Failed cells (watchdog trips, exceptions) are checkpointed too — that is
// the crash *record* — but a resume re-runs them: resumption is
// self-healing, not fatalistic. Only cells that finished OK are skipped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace es2 {

/// One checkpointed sweep cell (es2-ckpt-v1).
struct CellCheckpoint {
  ScenarioReport report;  // includes artifact / attempts / resumed

  std::string to_json_text() const;
  static bool parse(const std::string& text, CellCheckpoint* out,
                    std::string* error);
};

/// A directory of per-cell checkpoint files, keyed by scenario name.
class CheckpointDir {
 public:
  /// `dir` empty disables everything (load no-ops, store succeeds trivially).
  explicit CheckpointDir(std::string dir);

  const std::string& dir() const { return dir_; }
  bool enabled() const { return !dir_.empty(); }

  /// Scenario name -> filesystem-safe stem ([A-Za-z0-9._-], rest mapped
  /// to '_', plus a short FNV suffix so sanitized collisions stay unique).
  static std::string sanitize(const std::string& name);

  /// Scans `dir` for *.json cells; ignores unparseable files (a torn
  /// write that never got renamed cannot exist, but foreign files can).
  /// Returns the number of cells loaded. No-op when disabled.
  std::size_t load();

  /// Loaded cell for `name`, or nullptr.
  const CellCheckpoint* find(const std::string& name) const;

  /// Atomically writes one cell file (tmp + rename). Creates the
  /// directory on first use. Returns false (with `error`) on I/O failure.
  bool store(const CellCheckpoint& cell, std::string* error);

  std::size_t size() const { return cells_.size(); }

 private:
  std::string dir_;
  std::map<std::string, CellCheckpoint> cells_;
};

}  // namespace es2
