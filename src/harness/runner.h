// Scenario budgets, the no-progress watchdog, and the sweep runner.
//
// A chaos sweep intentionally runs scenarios that may wedge: 100% kick
// loss with the guest watchdog off is *supposed* to stall forever. Without
// supervision one such scenario hangs the whole bench process. The
// watchdog runs each scenario in bounded slices (sim-time budget, event
// budget, progress probes) and converts a hang or livelock into a
// structured `ScenarioReport`; `ExperimentRunner` keeps the rest of the
// sweep going and turns any failure into a non-zero process exit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace es2 {

struct ScenarioBudget {
  /// Hard ceiling on total simulated time across all run_for spans.
  SimDuration max_sim_time = sec(30);
  /// Hard ceiling on events executed under the watchdog (catches
  /// same-timestamp livelocks that never advance the clock).
  std::uint64_t max_events = 500'000'000;
  /// Slice length between budget/progress checks.
  SimDuration progress_window = msec(50);
  /// Consecutive event-churning windows without progress before the
  /// scenario is declared stalled.
  int stall_windows = 8;
  /// Per-window progress allowance that still counts as "stalled". The
  /// default 0 keeps the strict rule (any movement resets the stall
  /// counter); overload scenarios raise it because a livelocked server
  /// still trickles a handful of accepts per window — receive livelock is
  /// throughput collapse to near-zero, not bit-exact zero (Mogul &
  /// Ramakrishnan). A window counts as stalled when progress advanced by
  /// at most this many units.
  std::int64_t stall_tolerance = 0;
};

enum class ScenarioStatus {
  kOk,
  kSimTimeBudget,  // exceeded max_sim_time
  kEventBudget,    // exceeded max_events (livelock signature)
  kNoProgress,     // events churn but the progress probe is flat
  kLivelock,       // progress flat while the activity probe kept climbing
  kException,      // the scenario body threw
};

const char* to_string(ScenarioStatus status);
/// Inverse of to_string (checkpoint replay); unknown text -> kException.
ScenarioStatus scenario_status_from_string(const std::string& s);

struct ScenarioReport {
  std::string name;
  ScenarioStatus status = ScenarioStatus::kOk;
  SimTime sim_now = 0;
  std::uint64_t events = 0;
  std::string detail;
  /// Top metric deltas over the run's sampled window (empty without a
  /// metrics sampler); appended to failure lines so a tripped scenario
  /// reports what was — or wasn't — moving.
  std::string telemetry;
  /// Opaque bench-defined payload (usually a JSON row) carried through
  /// checkpoints so a resumed sweep rebuilds byte-identical output.
  std::string artifact;
  /// Attempts this cell consumed (retries = attempts - 1).
  int attempts = 1;
  /// True when the report was replayed from a checkpoint, not run.
  bool resumed = false;

  bool ok() const { return status == ScenarioStatus::kOk; }
  /// One-line structured form, grep-able as "WATCHDOG <name>: ...".
  std::string to_line() const;
};

/// Supervises one Simulator: run in slices, checking budgets and an
/// application-supplied progress probe between slices. Once tripped the
/// status is sticky and further run_for calls return immediately.
class ScenarioWatchdog {
 public:
  /// `progress` returns a monotonically non-decreasing figure of merit
  /// (packets delivered, requests completed); flat progress across
  /// `stall_windows` event-churning windows means livelock/wedge.
  using ProgressProbe = std::function<std::int64_t()>;

  ScenarioWatchdog(Simulator& sim, ScenarioBudget budget);

  /// Optional second probe that distinguishes a livelocked world from a
  /// merely wedged one: a monotonic measure of low-level work (interrupt
  /// deliveries, NAPI polls, backend packets). When a no-progress trip
  /// fires and this figure advanced in every flat window, the status is
  /// kLivelock — the machine was demonstrably busy, the application just
  /// never got the CPU — instead of the generic kNoProgress.
  void set_activity_probe(ProgressProbe probe) {
    activity_ = std::move(probe);
  }

  /// Runs the simulation for `span` (or until a budget trips). Returns
  /// true if the span completed with budgets intact.
  bool run_for(SimDuration span, const ProgressProbe& progress);

  ScenarioStatus status() const { return status_; }
  bool ok() const { return status_ == ScenarioStatus::kOk; }
  ScenarioReport report(std::string name) const;

 private:
  void trip(ScenarioStatus status, std::string detail);

  Simulator& sim_;
  ScenarioBudget budget_;
  SimTime start_;
  std::uint64_t events_start_;
  ScenarioStatus status_ = ScenarioStatus::kOk;
  std::string detail_;
  std::int64_t last_progress_ = -1;
  int flat_windows_ = 0;
  ProgressProbe activity_;
  std::int64_t last_activity_ = 0;
  bool activity_in_every_flat_window_ = false;
};

class MetricsRegistry;

struct RunnerOptions {
  /// <= 0 uses hardware concurrency.
  int threads = 0;
  /// Non-empty: write one es2-ckpt-v1 file per completed cell here.
  std::string checkpoint_dir;
  /// Load checkpoint_dir first and replay cells that finished OK instead
  /// of re-running them (failed cells always re-run: self-healing resume).
  bool resume = false;
  /// Bounded retries: a cell that fails is re-run until it passes or
  /// `max_attempts` is exhausted, then its last report (WATCHDOG row)
  /// stands. Deterministic scenarios fail deterministically, so the
  /// default is 1; chaos sweeps with wall-clock-sensitive budgets set 2-3.
  int max_attempts = 1;
  /// When set, total retries land in its `runner.retries` counter.
  MetricsRegistry* registry = nullptr;
  /// Test hook for crash-safety: _Exit(kDieExitCode) after this many
  /// cells have been checkpointed this run (0 = never). Requires a
  /// checkpoint_dir; lets tests kill a sweep mid-flight at a cell
  /// boundary and resume it.
  int die_after_cells = 0;
};

/// Runs a set of named scenarios (in parallel — each must own its world),
/// collecting a report per scenario. Failures never abort the sweep; they
/// make exit_code() non-zero. With a checkpoint directory the sweep is
/// crash-safe: finished cells are persisted atomically and a resumed run
/// replays them byte-identically.
class ExperimentRunner {
 public:
  using ScenarioFn = std::function<ScenarioReport(const std::string& name)>;

  /// Process exit code used by the die_after_cells crash hook.
  static constexpr int kDieExitCode = 17;

  /// `threads` <= 0 uses hardware concurrency.
  explicit ExperimentRunner(int threads = 0) { options_.threads = threads; }
  explicit ExperimentRunner(RunnerOptions options)
      : options_(std::move(options)) {}

  void add(std::string name, ScenarioFn fn);

  /// Runs every added scenario; exceptions become kException reports.
  void run_all();

  const std::vector<ScenarioReport>& reports() const { return reports_; }
  bool all_ok() const;
  int exit_code() const { return all_ok() ? 0 : 1; }

  /// Total retries consumed across the sweep (sum of attempts - 1,
  /// replayed cells excluded). Also mirrored into options.registry's
  /// `runner.retries` counter when one was supplied.
  std::int64_t retries() const { return retries_; }
  /// Cells replayed from checkpoints instead of run.
  std::int64_t resumed_cells() const { return resumed_; }

  /// Prints one structured line per failed scenario (nothing when clean).
  void print_failures(std::FILE* out) const;

 private:
  struct Entry {
    std::string name;
    ScenarioFn fn;
  };

  RunnerOptions options_;
  std::vector<Entry> entries_;
  std::vector<ScenarioReport> reports_;
  std::int64_t retries_ = 0;
  std::int64_t resumed_ = 0;
};

}  // namespace es2
