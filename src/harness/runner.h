// Scenario budgets, the no-progress watchdog, and the sweep runner.
//
// A chaos sweep intentionally runs scenarios that may wedge: 100% kick
// loss with the guest watchdog off is *supposed* to stall forever. Without
// supervision one such scenario hangs the whole bench process. The
// watchdog runs each scenario in bounded slices (sim-time budget, event
// budget, progress probes) and converts a hang or livelock into a
// structured `ScenarioReport`; `ExperimentRunner` keeps the rest of the
// sweep going and turns any failure into a non-zero process exit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace es2 {

struct ScenarioBudget {
  /// Hard ceiling on total simulated time across all run_for spans.
  SimDuration max_sim_time = sec(30);
  /// Hard ceiling on events executed under the watchdog (catches
  /// same-timestamp livelocks that never advance the clock).
  std::uint64_t max_events = 500'000'000;
  /// Slice length between budget/progress checks.
  SimDuration progress_window = msec(50);
  /// Consecutive event-churning windows without progress before the
  /// scenario is declared stalled.
  int stall_windows = 8;
};

enum class ScenarioStatus {
  kOk,
  kSimTimeBudget,  // exceeded max_sim_time
  kEventBudget,    // exceeded max_events (livelock signature)
  kNoProgress,     // events churn but the progress probe is flat
  kException,      // the scenario body threw
};

const char* to_string(ScenarioStatus status);

struct ScenarioReport {
  std::string name;
  ScenarioStatus status = ScenarioStatus::kOk;
  SimTime sim_now = 0;
  std::uint64_t events = 0;
  std::string detail;
  /// Top metric deltas over the run's sampled window (empty without a
  /// metrics sampler); appended to failure lines so a tripped scenario
  /// reports what was — or wasn't — moving.
  std::string telemetry;

  bool ok() const { return status == ScenarioStatus::kOk; }
  /// One-line structured form, grep-able as "WATCHDOG <name>: ...".
  std::string to_line() const;
};

/// Supervises one Simulator: run in slices, checking budgets and an
/// application-supplied progress probe between slices. Once tripped the
/// status is sticky and further run_for calls return immediately.
class ScenarioWatchdog {
 public:
  /// `progress` returns a monotonically non-decreasing figure of merit
  /// (packets delivered, requests completed); flat progress across
  /// `stall_windows` event-churning windows means livelock/wedge.
  using ProgressProbe = std::function<std::int64_t()>;

  ScenarioWatchdog(Simulator& sim, ScenarioBudget budget);

  /// Runs the simulation for `span` (or until a budget trips). Returns
  /// true if the span completed with budgets intact.
  bool run_for(SimDuration span, const ProgressProbe& progress);

  ScenarioStatus status() const { return status_; }
  bool ok() const { return status_ == ScenarioStatus::kOk; }
  ScenarioReport report(std::string name) const;

 private:
  void trip(ScenarioStatus status, std::string detail);

  Simulator& sim_;
  ScenarioBudget budget_;
  SimTime start_;
  std::uint64_t events_start_;
  ScenarioStatus status_ = ScenarioStatus::kOk;
  std::string detail_;
  std::int64_t last_progress_ = -1;
  int flat_windows_ = 0;
};

/// Runs a set of named scenarios (in parallel — each must own its world),
/// collecting a report per scenario. Failures never abort the sweep; they
/// make exit_code() non-zero.
class ExperimentRunner {
 public:
  using ScenarioFn = std::function<ScenarioReport(const std::string& name)>;

  /// `threads` <= 0 uses hardware concurrency.
  explicit ExperimentRunner(int threads = 0) : threads_(threads) {}

  void add(std::string name, ScenarioFn fn);

  /// Runs every added scenario; exceptions become kException reports.
  void run_all();

  const std::vector<ScenarioReport>& reports() const { return reports_; }
  bool all_ok() const;
  int exit_code() const { return all_ok() ? 0 : 1; }

  /// Prints one structured line per failed scenario (nothing when clean).
  void print_failures(std::FILE* out) const;

 private:
  struct Entry {
    std::string name;
    ScenarioFn fn;
  };

  int threads_;
  std::vector<Entry> entries_;
  std::vector<ScenarioReport> reports_;
};

}  // namespace es2
