// Parallel sweep runner.
//
// Each simulation is single-threaded and self-contained, so parameter
// sweeps (quota values, packet sizes, request rates, configs) parallelize
// perfectly: one task per scenario on a bounded thread pool. Results are
// written into caller-owned slots, so ordering is deterministic no matter
// how the pool schedules.
//
// Workers pull tasks from a shared atomic work index rather than any
// static pre-partition, so a sweep whose scenarios have wildly uneven
// runtimes (macro topologies next to micro ones) never tail-stalls on
// one unlucky worker.
#pragma once

#include <functional>
#include <vector>

namespace es2 {

class ParallelRunner {
 public:
  /// `threads` <= 0 uses the hardware concurrency.
  explicit ParallelRunner(int threads = 0);

  /// Runs all tasks to completion. Tasks must not touch shared mutable
  /// state (each should build its own Simulator and write its own slot).
  /// If tasks throw, the remaining tasks still run and the exception
  /// from the lowest-indexed throwing task is rethrown afterwards
  /// (instead of std::terminate from an exception escaping a worker).
  void run(std::vector<std::function<void()>> tasks) const;

  int threads() const { return threads_; }

 private:
  int threads_;
};

/// Convenience: applies `fn(i)` for i in [0, n) in parallel.
void parallel_for(int n, const std::function<void(int)>& fn, int threads = 0);

}  // namespace es2
