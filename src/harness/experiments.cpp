#include "harness/experiments.h"

#include <array>
#include <functional>
#include <memory>

#include "apps/httpd.h"
#include "apps/memcached.h"
#include "apps/netperf.h"
#include "apps/ping.h"
#include "base/assert.h"
#include "base/strings.h"

namespace es2 {

namespace {

inline constexpr std::uint64_t kStreamFlowBase = 100;

TestbedOptions testbed_options(const Es2Config& config, bool macro,
                               std::uint64_t seed) {
  TestbedOptions o;
  o.config = config;
  o.seed = seed;
  if (macro) {
    o.num_vms = 4;
    o.vcpus_per_vm = 4;
    o.stack_vms = true;
    o.vhost_core = 4;
  } else {
    o.num_vms = 1;
    o.vcpus_per_vm = 1;
    o.stack_vms = false;
    o.vhost_core = 4;
  }
  return o;
}

/// Maps the StreamOptions dataplane axes (queue pairs, ring layout, poll
/// mode) onto the testbed. Defaults leave the options untouched, so
/// pre-dataplane configs keep their exact construction sequence.
void apply_dataplane(TestbedOptions& to, const StreamOptions& opts) {
  to.vhost_params.num_queue_pairs = opts.num_queue_pairs;
  to.vhost_params.ring_layout = opts.ring_layout;
  to.poll_mode = opts.poll_mode;
  to.poll_interval = opts.poll_interval;
  to.adaptive_poll_budget = opts.adaptive_poll_budget;
}

/// The netperf endpoints for one stream scenario, attached in a fixed
/// order so healthy and chaos runs build identical object graphs.
struct StreamWorkload {
  std::vector<std::unique_ptr<NetperfSender>> senders;
  std::vector<std::unique_ptr<PeerStreamReceiver>> peer_rx;
  std::vector<std::unique_ptr<NetperfReceiver>> guest_rx;
  std::vector<std::unique_ptr<PeerStreamSender>> peer_tx;

  void attach(Testbed& tb, const StreamOptions& opts) {
    const int vcpus = tb.tested_vm().num_vcpus();
    for (int t = 0; t < opts.threads; ++t) {
      const std::uint64_t flow =
          kStreamFlowBase + static_cast<std::uint64_t>(t);
      if (opts.vm_sends) {
        senders.push_back(std::make_unique<NetperfSender>(
            tb.guest(), tb.frontend(), flow, opts.proto, opts.msg_size,
            t % vcpus));
        tb.guest().add_task(*senders.back());
        senders.back()->register_metrics(tb.metrics());
        tb.snapshotter().add(format("app/netperf-tx%d", t), *senders.back());
        peer_rx.push_back(
            std::make_unique<PeerStreamReceiver>(tb.peer(), flow, opts.proto));
        peer_rx.back()->register_metrics(tb.metrics());
        tb.snapshotter().add(format("app/peer-rx%d", t), *peer_rx.back());
      } else {
        guest_rx.push_back(std::make_unique<NetperfReceiver>(
            tb.guest(), tb.frontend(), flow, opts.proto));
        guest_rx.back()->register_metrics(tb.metrics());
        tb.snapshotter().add(format("app/netperf-rx%d", t), *guest_rx.back());
        PeerStreamSender::Params p;
        p.proto = opts.proto;
        p.msg_size = opts.msg_size;
        p.udp_rate_pps = opts.udp_offered_pps / opts.threads;
        p.dupack_threshold = opts.dupack_threshold;
        peer_tx.push_back(
            std::make_unique<PeerStreamSender>(tb.peer(), flow, p));
        peer_tx.back()->register_metrics(tb.metrics());
        tb.snapshotter().add(format("app/peer-tx%d", t), *peer_tx.back());
      }
    }
  }

  void start_sources() {
    for (auto& s : peer_tx) s->start();
  }

  /// End-to-end delivered packets — the watchdog's figure of merit.
  std::int64_t packets_delivered() const {
    std::int64_t pkts = 0;
    for (const auto& r : peer_rx) pkts += r->packets_received();
    for (const auto& r : guest_rx) pkts += r->packets_received();
    return pkts;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

std::shared_ptr<TraceData> harvest_trace(Testbed& tb) {
  Tracer* tracer = tb.tracer();
  if (tracer == nullptr) return nullptr;
  auto data = std::make_shared<TraceData>();
  data->records = tracer->snapshot();
  data->breakdown = build_spans(data->records, &data->spans);
  return data;
}

std::shared_ptr<ProfileData> harvest_profile(Testbed& tb) {
  Profiler* profiler = tb.profiler();
  if (profiler == nullptr) return nullptr;
  return std::make_shared<ProfileData>(profiler->data());
}

BlameBreakdown blame_of(const TraceData* data, const BlameOptions& options) {
  if (data == nullptr) return BlameBreakdown{};
  return analyze_blame(data->records, options);
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

double MetricsData::value(const std::string& key, double fallback) const {
  for (const MetricSample& s : samples) {
    if (metric_key(s.name, s.labels) == key) return s.value;
  }
  return fallback;
}

std::shared_ptr<MetricsData> harvest_metrics(Testbed& tb) {
  auto data = std::make_shared<MetricsData>();
  data->samples = snapshot(tb.metrics());
  if (const MetricsSampler* sampler = tb.sampler()) {
    data->sampler_frames = sampler->frames();
    data->sampler_total = sampler->total_samples();
    data->top_deltas = top_metric_deltas(tb.metrics(), *sampler, 5);
  }
  return data;
}

std::shared_ptr<HashSeries> harvest_hashes(Testbed& tb) {
  const EpochHashLog* log = tb.hash_log();
  if (log == nullptr) return nullptr;
  return std::make_shared<HashSeries>(log->series());
}

TraceStages trace_stages(const TraceData* data) {
  TraceStages s;
  if (data == nullptr) return s;
  const SpanBreakdown& b = data->breakdown;
  s.journeys = static_cast<std::int64_t>(data->spans.size());
  s.complete = b.complete;
  s.kick_to_backend_p50 = b.kick_to_backend.p50();
  s.kick_to_backend_p99 = b.kick_to_backend.p99();
  s.backend_to_msi_p50 = b.backend_to_msi.p50();
  s.backend_to_msi_p99 = b.backend_to_msi.p99();
  s.msi_to_dispatch_p50 = b.msi_to_dispatch.p50();
  s.msi_to_dispatch_p99 = b.msi_to_dispatch.p99();
  s.dispatch_to_eoi_p50 = b.dispatch_to_eoi.p50();
  s.dispatch_to_eoi_p99 = b.dispatch_to_eoi.p99();
  s.end_to_end_p50 = b.end_to_end.p50();
  s.end_to_end_p99 = b.end_to_end.p99();
  return s;
}

ExitBreakdown exit_breakdown(const ExitStats& stats, SimTime now) {
  ExitBreakdown b;
  b.interrupt_delivery = stats.rate(ExitReason::kExternalInterrupt, now);
  b.interrupt_completion = stats.rate(ExitReason::kApicAccess, now);
  b.io_instruction = stats.rate(ExitReason::kIoInstruction, now);
  b.others = stats.others_rate(now);
  b.total = stats.total_rate(now);
  b.tig_percent = stats.tig_percent();
  return b;
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

namespace {

/// Wire/vhost rows of the canonical drops{cause=...} family for a stream
/// run (streams have no app-level finite queues; those causes stay zero).
DropCounts stream_drops(Testbed& tb) {
  DropCounts d;
  d.wire = static_cast<std::int64_t>(tb.vm_to_peer().packets_dropped() +
                                     tb.peer_to_vm().packets_dropped());
  d.backpressure = static_cast<std::int64_t>(tb.vm_to_peer().packets_shed() +
                                             tb.peer_to_vm().packets_shed());
  d.sock_backlog = tb.backend().rx_dropped();
  return d;
}

/// Measurement-window bookkeeping shared by the healthy and chaos runners.
struct StreamWindow {
  SimTime start = 0;
  Bytes bytes_base = 0;
  std::int64_t pkt_base = 0;
  std::int64_t kicks_base = 0;
  std::int64_t irqs_base = 0;

  void open(Testbed& tb, StreamWorkload& w) {
    start = tb.sim().now();
    tb.tested_vm().begin_stats_window();
    for (auto& r : w.peer_rx) r->begin_window(start);
    for (auto& r : w.guest_rx) {
      bytes_base += r->bytes_received();
      pkt_base += r->packets_received();
    }
    for (auto& r : w.peer_rx) pkt_base += r->packets_received();
    kicks_base = tb.frontend().kicks();
    const int vcpus = tb.tested_vm().num_vcpus();
    for (int i = 0; i < vcpus; ++i) {
      irqs_base += tb.tested_vm().vcpu(i).irqs_taken();
    }
  }

  StreamResult collect(Testbed& tb, StreamWorkload& w, bool vm_sends) const {
    const SimTime now = tb.sim().now();
    const double secs = to_seconds(now - start);
    StreamResult result;
    result.exits = exit_breakdown(tb.tested_vm().aggregate_stats(), now);
    std::int64_t pkts = 0;
    if (vm_sends) {
      for (auto& r : w.peer_rx) {
        result.throughput_mbps += r->throughput_mbps(now);
        pkts += r->packets_received();
      }
    } else {
      Bytes bytes = 0;
      for (auto& r : w.guest_rx) {
        bytes += r->bytes_received();
        pkts += r->packets_received();
      }
      result.throughput_mbps = mbps(bytes - bytes_base, now - start);
    }
    if (secs > 0) {
      result.packets_per_sec = static_cast<double>(pkts - pkt_base) / secs;
      result.kicks_per_sec =
          static_cast<double>(tb.frontend().kicks() - kicks_base) / secs;
      std::int64_t irqs = 0;
      const int vcpus = tb.tested_vm().num_vcpus();
      for (int i = 0; i < vcpus; ++i) {
        irqs += tb.tested_vm().vcpu(i).irqs_taken();
      }
      result.guest_irqs_per_sec =
          static_cast<double>(irqs - irqs_base) / secs;
    }
    result.rx_dropped = tb.backend().rx_dropped();
    result.link_dropped = static_cast<std::int64_t>(
        tb.vm_to_peer().packets_dropped() + tb.peer_to_vm().packets_dropped());
    result.drops = stream_drops(tb);
    return result;
  }
};

}  // namespace

StreamResult run_stream(const StreamOptions& opts) {
  TestbedOptions to = testbed_options(opts.config, opts.macro, opts.seed);
  apply_dataplane(to, opts);
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  if (opts.quota_override > 0) {
    HybridIoHandling::attach(tb.backend(), opts.quota_override);
  }
  StreamWorkload w;
  w.attach(tb, opts);

  tb.start();
  w.start_sources();

  // Warmup, then open every measurement window at the same instant.
  tb.sim().run_for(opts.warmup);
  StreamWindow window;
  window.open(tb, w);
  tb.sim().run_for(opts.measure);
  StreamResult result = window.collect(tb, w, opts.vm_sends);
  result.trace = harvest_trace(tb);
  result.profile = harvest_profile(tb);
  result.stages = trace_stages(result.trace.get());
  result.metrics = harvest_metrics(tb);
  result.hashes = harvest_hashes(tb);
  return result;
}

namespace {

/// TestbedOptions for a supervised (chaos/recovery) stream run.
TestbedOptions chaos_testbed_options(const ChaosStreamOptions& opts) {
  TestbedOptions to =
      testbed_options(opts.stream.config, opts.stream.macro, opts.stream.seed);
  apply_dataplane(to, opts.stream);
  to.faults = opts.faults;
  to.audit = opts.audit;
  to.audit_period = opts.audit_period;
  to.guest_params.tx_watchdog = opts.tx_watchdog;
  to.trace = opts.stream.trace;
  to.profile = opts.stream.profile;
  to.metrics = opts.stream.metrics;
  to.snapshot = opts.stream.snapshot;
  return to;
}

/// The supervised-run body shared by chaos and recovery streams. `drain`
/// extends the run past the measured window (after calling `on_drain`,
/// which the recovery runner uses to stop injection) — still under the
/// watchdog, so even a wedged drain cannot hang. The measurement window
/// closes before the drain starts; drains never dilute throughput.
ChaosStreamResult supervise_stream(Testbed& tb, StreamWorkload& w,
                                   const ChaosStreamOptions& opts,
                                   const std::string& name, SimDuration drain,
                                   const std::function<void()>& on_drain) {
  tb.start();
  w.start_sources();

  ScenarioWatchdog wd(tb.sim(), opts.budget);
  const auto progress = [&w] { return w.packets_delivered(); };

  StreamWindow window;
  bool window_open = false;
  if (wd.run_for(opts.stream.warmup, progress)) {
    window.open(tb, w);
    window_open = true;
    wd.run_for(opts.stream.measure, progress);
  }

  ChaosStreamResult result;
  // A tripped warmup never opened a window; report zeros rather than a
  // window spanning the whole wedge.
  if (window_open) {
    result.stream = window.collect(tb, w, opts.stream.vm_sends);
  } else {
    result.stream.rx_dropped = tb.backend().rx_dropped();
    result.stream.link_dropped = static_cast<std::int64_t>(
        tb.vm_to_peer().packets_dropped() + tb.peer_to_vm().packets_dropped());
    result.stream.drops = stream_drops(tb);
  }

  if (drain > 0) {
    if (on_drain) on_drain();
    wd.run_for(drain, progress);
  }

  if (tb.faults() != nullptr) result.faults = tb.faults()->stats();
  for (auto& s : w.peer_tx) {
    result.fast_retransmits += s->fast_retransmits();
    result.rto_retransmits += s->retransmits();
  }
  result.tx_watchdog_kicks = tb.frontend().tx_watchdog_kicks();
  result.rx_watchdog_polls = tb.frontend().rx_watchdog_polls();
  result.rx_repolls = tb.backend().rx_repolls();
  if (tb.auditor() != nullptr) {
    result.audit_sweeps = tb.auditor()->sweeps();
    result.audit_violations = tb.auditor()->total_violations();
  }
  result.stream.trace = harvest_trace(tb);
  result.stream.profile = harvest_profile(tb);
  result.stream.stages = trace_stages(result.stream.trace.get());
  result.stream.metrics = harvest_metrics(tb);
  result.stream.hashes = harvest_hashes(tb);
  result.report = wd.report(name);
  // Failure lines carry the top moving metrics so a wedge points at the
  // layer that stopped (or never started) making progress.
  if (!result.report.ok()) {
    result.report.telemetry = result.stream.metrics->top_deltas;
  }
  return result;
}

}  // namespace

ChaosStreamResult run_chaos_stream(const ChaosStreamOptions& opts,
                                   const std::string& name) {
  Testbed tb(chaos_testbed_options(opts));
  if (opts.stream.quota_override > 0) {
    HybridIoHandling::attach(tb.backend(), opts.stream.quota_override);
  }
  StreamOptions stream_opts = opts.stream;
  if (stream_opts.dupack_threshold == 0) {
    stream_opts.dupack_threshold = opts.dupack_threshold;
  }
  StreamWorkload w;
  w.attach(tb, stream_opts);
  return supervise_stream(tb, w, opts, name, /*drain=*/0, nullptr);
}

// ---------------------------------------------------------------------------
// Recovery streams
// ---------------------------------------------------------------------------

namespace {

const char* scope_name(int scope) {
  switch (scope) {
    case kScopeTx: return "tx";
    case kScopeRx: return "rx";
    case kScopeWorker: return "worker";
  }
  return "?";
}

}  // namespace

RecoveryStreamResult run_recovery_stream(const RecoveryStreamOptions& opts,
                                         const std::string& name) {
  const ChaosStreamOptions& co = opts.chaos;
  TestbedOptions to = chaos_testbed_options(co);
  to.guest_params.recovery_ladder = opts.recovery_ladder;
  Testbed tb(to);
  if (co.stream.quota_override > 0) {
    HybridIoHandling::attach(tb.backend(), co.stream.quota_override);
  }
  StreamOptions stream_opts = co.stream;
  if (stream_opts.dupack_threshold == 0) {
    stream_opts.dupack_threshold = co.dupack_threshold;
  }
  StreamWorkload w;
  w.attach(tb, stream_opts);

  RecoveryStreamResult result;
  result.chaos = supervise_stream(tb, w, co, name, opts.drain, [&tb] {
    if (tb.faults() != nullptr) tb.faults()->stop_lifecycle();
  });

  if (const RecoveryLog* log = tb.recovery_log()) {
    Histogram all;
    std::array<Histogram, static_cast<std::size_t>(LifecycleFault::kCount)>
        per_mode;
    result.injected = static_cast<std::int64_t>(log->instances().size());
    for (const FaultInstance& fi : log->instances()) {
      const auto m = static_cast<std::size_t>(fi.mode);
      if (fi.recovered()) {
        ++result.recovered;
        all.record(fi.mttr());
        per_mode[m].record(fi.mttr());
        continue;
      }
      ++result.unrecovered;
      WedgeReport wr;
      wr.instance = fi.id;
      wr.mode = fi.mode;
      wr.scope = fi.scope;
      wr.injected_at = fi.injected_at;
      wr.open_for = tb.sim().now() - fi.injected_at;
      wr.corr = fi.corr;
      wr.detail = format(
          "WATCHDOG %s: %s fault #%lld (scope %s, corr %llu) injected at "
          "%lld ns still open after %lld ns — no recovery rung cleared it",
          name.c_str(), lifecycle_fault_name(fi.mode),
          static_cast<long long>(fi.id), scope_name(fi.scope),
          static_cast<unsigned long long>(fi.corr),
          static_cast<long long>(fi.injected_at),
          static_cast<long long>(wr.open_for));
      result.wedges.push_back(std::move(wr));
    }
    result.mttr_p50 = all.p50();
    result.mttr_p99 = all.p99();
    for (std::size_t m = 0;
         m < static_cast<std::size_t>(LifecycleFault::kCount); ++m) {
      const auto mode = static_cast<LifecycleFault>(m);
      if (log->injected(mode) == 0) continue;
      RecoveryModeStats ms;
      ms.mode = mode;
      ms.injected = log->injected(mode);
      ms.recovered = log->recovered(mode);
      ms.mttr_p50 = per_mode[m].p50();
      ms.mttr_p99 = per_mode[m].p99();
      result.modes.push_back(ms);
    }
    result.rung_watchdog = log->actions(RecoveryRung::kGuestWatchdog);
    result.rung_vhost_repoll = log->actions(RecoveryRung::kVhostRepoll);
    result.rung_queue_reset = log->actions(RecoveryRung::kQueueReset);
    result.rung_device_reset = log->actions(RecoveryRung::kDeviceReset);
  }
  result.ring_faults_detected = tb.backend().ring_faults_detected();
  result.queue_resets = tb.backend().queue_resets();
  result.device_resets = tb.backend().device_resets();
  result.renegotiations = tb.backend().renegotiations();
  result.ladder_queue_resets = tb.frontend().ladder_queue_resets();
  result.ladder_device_resets = tb.frontend().ladder_device_resets();
  result.worker_crashes = tb.vhost_worker().crashes();
  result.worker_restarts = tb.vhost_worker().restarts();
  return result;
}

// ---------------------------------------------------------------------------
// Ping
// ---------------------------------------------------------------------------

PingResult run_ping(const PingOptions& opts) {
  TestbedOptions to = testbed_options(opts.config, /*macro=*/true, opts.seed);
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  const std::uint64_t flow = 7;
  PingResponder responder(tb.guest(), tb.frontend(), flow);
  PingClient client(tb.peer(), flow, opts.interval);
  tb.snapshotter().add("app/ping-responder", responder);
  tb.snapshotter().add("app/ping-client", client);

  tb.start();
  client.start();
  // One interval of warmup, then collect `samples` echoes.
  tb.sim().run_for(opts.interval * 2);
  const SimDuration span = opts.interval * (opts.samples + 1);
  tb.sim().run_for(span);

  PingResult result;
  result.rtt = client.rtt();
  result.samples = client.samples();
  result.lost = client.lost();
  result.trace = harvest_trace(tb);
  result.profile = harvest_profile(tb);
  result.stages = trace_stages(result.trace.get());
  result.metrics = harvest_metrics(tb);
  result.hashes = harvest_hashes(tb);
  return result;
}

// ---------------------------------------------------------------------------
// Memcached
// ---------------------------------------------------------------------------

MemcachedResult run_memcached(const MemcachedOptions& opts) {
  TestbedOptions to = testbed_options(opts.config, /*macro=*/true, opts.seed);
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  const std::uint64_t base_flow = 1000;
  MemcachedServer server(tb.guest(), tb.frontend(), base_flow,
                         opts.client_threads, opts.workers);
  MemaslapClient::Params cp;
  cp.threads = opts.client_threads;
  cp.concurrency_per_thread = opts.concurrency_per_thread;
  cp.get_ratio = opts.get_ratio;
  MemaslapClient client(tb.peer(), base_flow, cp, opts.seed);
  tb.snapshotter().add("app/memcached", server);
  tb.snapshotter().add("app/memaslap", client);

  tb.start();
  client.start();
  tb.sim().run_for(opts.warmup);
  client.begin_window(tb.sim().now());
  tb.sim().run_for(opts.measure);

  MemcachedResult result;
  result.ops_per_sec = client.ops_per_sec(tb.sim().now());
  result.throughput_mbps = client.response_mbps(tb.sim().now());
  result.latency = client.latency();
  result.trace = harvest_trace(tb);
  result.profile = harvest_profile(tb);
  result.stages = trace_stages(result.trace.get());
  result.metrics = harvest_metrics(tb);
  result.hashes = harvest_hashes(tb);
  return result;
}

// ---------------------------------------------------------------------------
// Apache / Httperf
// ---------------------------------------------------------------------------

ApacheResult run_apache(const ApacheOptions& opts) {
  TestbedOptions to = testbed_options(opts.config, /*macro=*/true, opts.seed);
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  const std::uint64_t base_flow = 2000;
  ApacheServer server(tb.guest(), tb.frontend(), base_flow, opts.concurrency,
                      opts.workers);
  AbClient client(tb.peer(), base_flow, opts.concurrency);
  tb.snapshotter().add("app/httpd", server);
  tb.snapshotter().add("app/ab", client);

  tb.start();
  client.start();
  tb.sim().run_for(opts.warmup);
  client.begin_window(tb.sim().now());
  tb.sim().run_for(opts.measure);

  ApacheResult result;
  result.requests_per_sec = client.requests_per_sec(tb.sim().now());
  result.throughput_mbps = client.response_mbps(tb.sim().now());
  result.trace = harvest_trace(tb);
  result.profile = harvest_profile(tb);
  result.stages = trace_stages(result.trace.get());
  result.metrics = harvest_metrics(tb);
  result.hashes = harvest_hashes(tb);
  return result;
}

HttperfResult run_httperf(const HttperfOptions& opts) {
  TestbedOptions to = testbed_options(opts.config, /*macro=*/true, opts.seed);
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  const std::uint64_t base_flow = 3000;
  ApacheServer server(tb.guest(), tb.frontend(), base_flow, /*client_conns=*/1,
                      /*workers=*/4);
  HttperfClient client(tb.peer(), server.listen_flow(), opts.rate_per_sec);
  tb.snapshotter().add("app/httpd", server);
  tb.snapshotter().add("app/httperf", client);

  tb.start();
  client.start();
  tb.sim().run_for(opts.duration);
  client.stop();
  // Let in-flight handshakes settle.
  tb.sim().run_for(msec(500));

  HttperfResult result;
  result.avg_connect_ms = client.connect_time().mean() / 1e6;
  result.p99_connect_ms =
      static_cast<double>(client.connect_time().p99()) / 1e6;
  result.established = client.established();
  result.retries = client.retries();
  result.trace = harvest_trace(tb);
  result.profile = harvest_profile(tb);
  result.stages = trace_stages(result.trace.get());
  result.metrics = harvest_metrics(tb);
  result.hashes = harvest_hashes(tb);
  return result;
}

// ---------------------------------------------------------------------------
// Connection storms
// ---------------------------------------------------------------------------

StormResult run_storm(const StormOptions& opts, const std::string& name) {
  TestbedOptions to = testbed_options(opts.config, /*macro=*/false, opts.seed);
  to.guest_params.overload_mitigation = opts.mitigation;
  to.trace = opts.trace;
  to.profile = opts.profile;
  to.metrics = opts.metrics;
  to.snapshot = opts.snapshot;
  Testbed tb(to);
  ApacheCosts costs;
  costs.syn_backlog = opts.syn_backlog;
  costs.accept_queue = opts.accept_queue;
  ApacheServer server(tb.guest(), tb.frontend(), /*base_flow=*/4000,
                      /*client_conns=*/1, opts.workers, costs);
  StormClient client(tb.peer(), server.listen_flow(), opts.shape, opts.syn_rto,
                     opts.max_retries, /*max_pending=*/65536, opts.syn_payload);
  server.register_metrics(tb.metrics());
  tb.snapshotter().add("app/httpd", server);
  tb.snapshotter().add("app/storm", client);

  tb.start();
  // No-load settle (boot, negotiation); the generator starts cold.
  tb.sim().run_for(opts.warmup);

  ScenarioWatchdog wd(tb.sim(), opts.budget);
  const auto progress = [&client, &server] {
    return client.established() + server.requests_served();
  };
  // Low-level work keeps climbing while the app starves: that is the
  // livelock signature the watchdog separates from a generic wedge.
  wd.set_activity_probe([&tb] {
    return tb.frontend().rx_polled() + tb.backend().rx_packets();
  });

  const SimTime t0 = tb.sim().now();
  client.begin_window(t0);
  client.start();
  const StormShape& sh = opts.shape;
  const SimDuration span = sh.ramp_up + sh.hold + sh.ramp_down + opts.cooldown;
  wd.run_for(span, progress);
  // An *expected* livelock verdict ends supervision, not the experiment:
  // finish the storm span unsupervised so both arms of a mitigation
  // comparison measure the same simulated interval.
  if (opts.expect_livelock && wd.status() == ScenarioStatus::kLivelock &&
      tb.sim().now() < t0 + span) {
    tb.sim().run_for(t0 + span - tb.sim().now());
  }
  client.stop();

  const SimTime now = tb.sim().now();
  StormResult r;
  r.attempted = client.attempted();
  r.established = client.established();
  r.retries = client.retries();
  r.abandoned = client.abandoned();
  r.client_pending_overflows = client.pending_overflows();
  r.accepts = server.accepts();
  r.served = server.requests_served();
  r.goodput_mbps = client.goodput_mbps(now);
  r.conns_per_sec = client.conns_per_sec(now);
  r.connect_p50_ms = static_cast<double>(client.connect_time().p50()) / 1e6;
  r.connect_p99_ms = static_cast<double>(client.connect_time().p99()) / 1e6;
  r.drops = stream_drops(tb);
  r.drops.syn_backlog = server.syn_drops();
  r.drops.accept_queue = server.accept_queue_drops();
  r.drops.accept_shed = server.shed_drops();
  r.overload_max_rung = tb.frontend().overload_max_rung();
  r.livelock_detections = tb.frontend().livelock_detections();
  r.ksoftirqd_defers = tb.frontend().ksoftirqd_defers();
  r.ksoftirqd_polls = tb.frontend().ksoftirqd_polls();
  if (const RecoveryLog* log = tb.recovery_log()) {
    Histogram mttr;
    for (const FaultInstance& fi : log->instances()) {
      if (fi.mode != LifecycleFault::kRxLivelock) continue;
      ++r.episodes;
      if (fi.recovered()) {
        ++r.episodes_recovered;
        mttr.record(fi.mttr());
      }
    }
    r.mttr_p50 = mttr.p50();
    r.mttr_p99 = mttr.p99();
  }
  r.worker_active_high_water = tb.vhost_worker().active_high_water();
  r.report = wd.report(name);
  r.livelocked = r.report.status == ScenarioStatus::kLivelock;
  r.livelock_expected = opts.expect_livelock;
  r.trace = harvest_trace(tb);
  r.profile = harvest_profile(tb);
  r.stages = trace_stages(r.trace.get());
  r.metrics = harvest_metrics(tb);
  r.hashes = harvest_hashes(tb);
  // Unacceptable verdicts carry the top moving metrics, same as chaos.
  if (!r.acceptable()) r.report.telemetry = r.metrics->top_deltas;
  return r;
}

}  // namespace es2
