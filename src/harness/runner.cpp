#include "harness/runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "base/assert.h"
#include "base/log.h"
#include "base/strings.h"
#include "harness/checkpoint.h"
#include "harness/parallel.h"
#include "metrics/metrics.h"
#include "trace/trace.h"

namespace es2 {

const char* to_string(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kOk:
      return "ok";
    case ScenarioStatus::kSimTimeBudget:
      return "sim-time-budget";
    case ScenarioStatus::kEventBudget:
      return "event-budget";
    case ScenarioStatus::kNoProgress:
      return "no-progress";
    case ScenarioStatus::kLivelock:
      return "livelock";
    case ScenarioStatus::kException:
      return "exception";
  }
  return "?";
}

ScenarioStatus scenario_status_from_string(const std::string& s) {
  for (ScenarioStatus status :
       {ScenarioStatus::kOk, ScenarioStatus::kSimTimeBudget,
        ScenarioStatus::kEventBudget, ScenarioStatus::kNoProgress,
        ScenarioStatus::kLivelock, ScenarioStatus::kException}) {
    if (s == to_string(status)) return status;
  }
  return ScenarioStatus::kException;
}

std::string ScenarioReport::to_line() const {
  if (ok()) {
    return format("OK %s: %llu events, sim %.3f ms", name.c_str(),
                  static_cast<unsigned long long>(events),
                  static_cast<double>(sim_now) / 1e6);
  }
  std::string line =
      format("WATCHDOG %s: %s at sim %.3f ms after %llu events (%s)",
             name.c_str(), to_string(status),
             static_cast<double>(sim_now) / 1e6,
             static_cast<unsigned long long>(events), detail.c_str());
  if (!telemetry.empty()) line += format(" telemetry: %s", telemetry.c_str());
  return line;
}

ScenarioWatchdog::ScenarioWatchdog(Simulator& sim, ScenarioBudget budget)
    : sim_(sim),
      budget_(budget),
      start_(sim.now()),
      events_start_(sim.events_executed()) {
  ES2_CHECK(budget_.progress_window > 0);
  ES2_CHECK(budget_.stall_windows > 0);
}

bool ScenarioWatchdog::run_for(SimDuration span,
                               const ProgressProbe& progress) {
  if (status_ != ScenarioStatus::kOk) return false;
  const SimTime span_end = sim_.now() + span;
  while (status_ == ScenarioStatus::kOk && sim_.now() < span_end) {
    const std::uint64_t spent = sim_.events_executed() - events_start_;
    if (spent >= budget_.max_events) {
      trip(ScenarioStatus::kEventBudget,
           format("event budget %llu exhausted",
                  static_cast<unsigned long long>(budget_.max_events)));
      break;
    }
    if (sim_.now() - start_ >= budget_.max_sim_time) {
      trip(ScenarioStatus::kSimTimeBudget,
           format("sim-time budget %.3f ms exhausted",
                  static_cast<double>(budget_.max_sim_time) / 1e6));
      break;
    }
    SimTime slice_end = sim_.now() + budget_.progress_window;
    if (slice_end > span_end) slice_end = span_end;
    // Cap the slice by the remaining event budget too: a same-timestamp
    // livelock never advances the clock, so without the cap one slice
    // would spin forever inside run_until.
    const std::uint64_t slice_cap = budget_.max_events - spent;
    const std::uint64_t executed = sim_.run_until_capped(slice_end, slice_cap);
    if (progress) {
      const std::int64_t current = progress();
      const std::int64_t activity = activity_ ? activity_() : 0;
      const std::int64_t delta = current - last_progress_;
      if (executed > 0 && delta >= 0 && delta <= budget_.stall_tolerance) {
        // Events churned through a whole window yet the figure of merit
        // did not move (beyond the stall tolerance) — count towards a
        // stall verdict. The activity probe decides which kind of stall
        // this is: if low-level work advanced in every flat window, the
        // world is livelocked (busy doing nothing useful), not wedged.
        if (flat_windows_ == 0) {
          activity_in_every_flat_window_ = true;
        }
        if (activity_ && activity == last_activity_) {
          activity_in_every_flat_window_ = false;
        }
        if (++flat_windows_ >= budget_.stall_windows) {
          const bool livelock = activity_ && activity_in_every_flat_window_;
          trip(livelock ? ScenarioStatus::kLivelock
                        : ScenarioStatus::kNoProgress,
               format("progress %s at %lld for %d windows (%.3f ms)%s",
                      budget_.stall_tolerance > 0 ? "stalled" : "flat",
                      static_cast<long long>(current), flat_windows_,
                      static_cast<double>(flat_windows_ *
                                          budget_.progress_window) /
                          1e6,
                      livelock ? ", activity still climbing" : ""));
          break;
        }
      } else {
        flat_windows_ = 0;
      }
      last_progress_ = current;
      last_activity_ = activity;
    }
  }
  return status_ == ScenarioStatus::kOk;
}

void ScenarioWatchdog::trip(ScenarioStatus status, std::string detail) {
  if (status_ != ScenarioStatus::kOk) return;
  status_ = status;
  detail_ = std::move(detail);
  // With tracing on, point the report at the journey nearest the trip.
  if (const Tracer* tracer = sim_.tracer();
      tracer != nullptr && tracer->enabled() && tracer->last_corr() != 0) {
    detail_ += format(" [near corr=%llu]",
                      static_cast<unsigned long long>(tracer->last_corr()));
  }
  ES2_WARN(sim_.now(), "watchdog tripped: %s (%s)", to_string(status_),
           detail_.c_str());
}

ScenarioReport ScenarioWatchdog::report(std::string name) const {
  ScenarioReport r;
  r.name = std::move(name);
  r.status = status_;
  r.sim_now = sim_.now();
  r.events = sim_.events_executed() - events_start_;
  r.detail = detail_;
  return r;
}

void ExperimentRunner::add(std::string name, ScenarioFn fn) {
  entries_.push_back({std::move(name), std::move(fn)});
}

void ExperimentRunner::run_all() {
  reports_.assign(entries_.size(), ScenarioReport{});
  const int max_attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;

  CheckpointDir ckpt(options_.checkpoint_dir);
  if (options_.resume) ckpt.load();
  std::atomic<int> stored{0};

  parallel_for(
      static_cast<int>(entries_.size()),
      [this, &ckpt, &stored, max_attempts](int i) {
        const Entry& e = entries_[static_cast<std::size_t>(i)];
        ScenarioReport& slot = reports_[static_cast<std::size_t>(i)];

        // Replay cells a previous run finished OK. Failed cells re-run:
        // the checkpoint is a crash record, not a verdict to inherit.
        if (const CellCheckpoint* cell = ckpt.find(e.name);
            cell != nullptr && cell->report.ok()) {
          slot = cell->report;
          slot.resumed = true;
          return;
        }

        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          try {
            slot = e.fn(e.name);
            slot.name = e.name;
          } catch (const std::exception& ex) {
            slot = ScenarioReport{};
            slot.name = e.name;
            slot.status = ScenarioStatus::kException;
            slot.detail = ex.what();
          } catch (...) {
            slot = ScenarioReport{};
            slot.name = e.name;
            slot.status = ScenarioStatus::kException;
            slot.detail = "unknown exception";
          }
          slot.attempts = attempt;
          if (slot.ok()) break;
          if (attempt < max_attempts) {
            ES2_WARN(0, "retrying %s (attempt %d/%d failed: %s)",
                     e.name.c_str(), attempt, max_attempts,
                     to_string(slot.status));
          }
        }

        // Persist the final verdict — pass or WATCHDOG row — so a killed
        // sweep resumes from here rather than from zero.
        if (ckpt.enabled()) {
          CellCheckpoint cell;
          cell.report = slot;
          std::string error;
          if (!ckpt.store(cell, &error)) {
            ES2_WARN(0, "checkpoint store failed for %s: %s", e.name.c_str(),
                     error.c_str());
          } else if (options_.die_after_cells > 0 &&
                     stored.fetch_add(1) + 1 >= options_.die_after_cells) {
            // Crash-safety test hook: die at a cell boundary, checkpoint
            // already durable. _Exit skips destructors on purpose — a
            // real crash would too.
            std::_Exit(kDieExitCode);
          }
        }
      },
      options_.threads);

  retries_ = 0;
  resumed_ = 0;
  for (const ScenarioReport& r : reports_) {
    if (r.resumed) {
      ++resumed_;
    } else {
      retries_ += r.attempts - 1;
    }
  }
  if (options_.registry != nullptr) {
    options_.registry->counter("runner.retries").add(retries_);
    options_.registry->counter("runner.resumed_cells").add(resumed_);
  }
}

bool ExperimentRunner::all_ok() const {
  if (reports_.size() != entries_.size()) return false;
  for (const ScenarioReport& r : reports_) {
    if (!r.ok()) return false;
  }
  return true;
}

void ExperimentRunner::print_failures(std::FILE* out) const {
  for (const ScenarioReport& r : reports_) {
    if (!r.ok()) std::fprintf(out, "%s\n", r.to_line().c_str());
  }
}

}  // namespace es2
