#include "harness/testbed.h"

#include "base/assert.h"
#include "base/strings.h"
#include "harness/audits.h"
#include "metrics/export.h"

namespace es2 {

Testbed::Testbed(TestbedOptions options) : options_(std::move(options)) {
  const TestbedOptions& o = options_;
  ES2_CHECK(o.num_vms >= 1 && o.vcpus_per_vm >= 1);
  ES2_CHECK(o.vhost_core >= 0 && o.vhost_core < o.host_cores);

  sim_ = std::make_unique<Simulator>(o.seed);
  if (o.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(o.trace);
    tracer_->enable();
    sim_->set_tracer(tracer_.get());
  }
  if (o.profile.enabled) {
    profiler_ = std::make_unique<Profiler>(o.profile);
    profiler_->enable();
    sim_->set_profiler(profiler_.get());
  }
  host_ = std::make_unique<KvmHost>(*sim_, o.host_cores, o.costs);
  es2_ = std::make_unique<Es2System>(*host_, o.config);

  for (int v = 0; v < o.num_vms; ++v) {
    std::vector<int> pins(static_cast<size_t>(o.vcpus_per_vm));
    for (int j = 0; j < o.vcpus_per_vm; ++j) {
      const int core = o.stack_vms ? j : v * o.vcpus_per_vm + j;
      ES2_CHECK_MSG(core < o.host_cores, "VM pinning exceeds host cores");
      pins[static_cast<size_t>(j)] = core;
    }
    Vm& vm = host_->create_vm(format("vm%d", v), pins, o.config.irq_mode());
    vm.set_timer_hz(o.guest_timer_hz);
    guests_.push_back(std::make_unique<GuestOs>(vm, o.guest_params));
  }

  // Only the tested VM (VM 0) gets a paravirtual network device.
  link_ = std::make_unique<DuplexLink>(*sim_, o.link_gbps, o.link_latency);
  peer_ = std::make_unique<PeerHost>(*sim_, link_->b_to_a);
  peer_->attach_rx(link_->a_to_b);
  worker_ = std::make_unique<VhostWorker>(*host_, "vhost-vm0", o.vhost_core);
  backend_ = std::make_unique<VhostNetBackend>(host_->vm(0), *worker_,
                                               link_->a_to_b, o.vhost_params);
  link_->b_to_a.set_receiver(
      [this](PacketPtr p) { backend_->receive_from_wire(std::move(p)); });
  // Guest-ingress link reference: rung 2 of the overload ladder pushes
  // deterministic 1-in-N shedding onto this link. Inert until the
  // frontend's livelock detector asks for it.
  backend_->set_rx_link(&link_->b_to_a);
  frontend_ = std::make_unique<VirtioNetFrontend>(*guests_[0], *backend_);
  es2_->enable_for(host_->vm(0), *backend_);
  if (o.poll_mode != PollMode::kNotify) {
    // Busy-poll dataplane: the worker spins on the rings instead of
    // sleeping on kicks. Mode goes to the worker first so the backend's
    // poll-source registration sees it.
    worker_->set_poll_mode(o.poll_mode, o.poll_interval,
                           o.adaptive_poll_budget);
    backend_->set_poll_mode(o.poll_mode);
  }

  // The recovery ledger has two clients: lifecycle fault drills and the
  // receive-livelock admission ladder (overload mitigation). Either one
  // arms it; default-off runs build none, keeping the snapshot section
  // set and instrument set byte-identical to the pre-overload era.
  if (o.faults.lifecycle_enabled() || o.guest_params.overload_mitigation) {
    recovery_log_ = std::make_unique<RecoveryLog>();
    backend_->set_recovery_log(recovery_log_.get());
  }
  if (o.guest_params.overload_mitigation) {
    // Overload worlds carry the ladder's link fields in their snapshots;
    // everything else keeps the pre-overload image byte layout.
    link_->a_to_b.arm_overload_snapshot();
    link_->b_to_a.arm_overload_snapshot();
  }

  if (o.faults.enabled()) {
    faults_ = std::make_unique<FaultInjector>(*sim_, o.faults);
    link_->a_to_b.set_fault_injector(faults_.get());
    link_->b_to_a.set_fault_injector(faults_.get());
    backend_->set_fault_injector(faults_.get());
    worker_->set_fault_injector(faults_.get());
    if (o.faults.spurious_irq_period > 0) {
      // Spurious vectors round-robin over the tested VM's vCPUs.
      faults_->start_spurious([this, next = 0]() mutable {
        Vm& vm = host_->vm(0);
        vm.vcpu(next).deliver_interrupt(kSpuriousFaultVector);
        next = (next + 1) % vm.num_vcpus();
      });
    }
    if (o.faults.lifecycle_enabled()) {
      backend_->arm_lifecycle_selfcheck();
      backend_->set_reset_listener([this] {
        if (es2_->redirector() != nullptr) {
          es2_->redirector()->on_device_reset(host_->vm(0));
        }
      });
      LifecycleHooks hooks;
      hooks.corrupt_ring = [this] { backend_->inject_ring_corruption(); };
      hooks.tear_avail = [this] { backend_->inject_avail_tear(); };
      hooks.wedge_handler = [this] { backend_->inject_handler_wedge(); };
      hooks.crash_worker = [this] {
        backend_->inject_worker_crash(options_.faults.worker_restart_delay);
      };
      faults_->start_lifecycle(std::move(hooks));
    }
  }

  if (o.audit) {
    auditor_ = std::make_unique<InvariantAuditor>(*sim_, o.audit_period);
    audits::register_standard_checks(*auditor_, host_->vm(0), *backend_,
                                     host_->sched());
    auditor_->start();
  }

  if (o.cpu_burn) {
    for (int v = 0; v < o.num_vms; ++v) {
      for (int j = 0; j < o.vcpus_per_vm; ++j) {
        burn_tasks_.push_back(
            std::make_unique<CpuBurnTask>(*guests_[static_cast<size_t>(v)], j));
        guests_[static_cast<size_t>(v)]->add_task(*burn_tasks_.back());
      }
    }
  }

  // World snapshot registry: every stateful component under a stable name,
  // in construction order (the snapshot section order and the hash-vector
  // index order). Workloads append themselves when they attach.
  snapshotter_.add("sim", *sim_);
  snapshotter_.add("cfs", host_->sched());
  for (int v = 0; v < host_->num_vms(); ++v) {
    Vm& vm = host_->vm(v);
    snapshotter_.add("vm/" + vm.name(), vm);
  }
  for (auto& guest : guests_)
    snapshotter_.add("guest/" + guest->vm().name(), *guest);
  snapshotter_.add("link/vm_to_peer", link_->a_to_b);
  snapshotter_.add("link/peer_to_vm", link_->b_to_a);
  snapshotter_.add("peer", *peer_);
  snapshotter_.add("vhost-worker", *worker_);
  snapshotter_.add("vhost/vm0", *backend_);
  if (es2_->redirector())
    snapshotter_.add("es2.redirector", *es2_->redirector());
  if (faults_) snapshotter_.add("fault", *faults_);
  if (recovery_log_) {
    // Side-sections: the base layout of every pre-existing section is
    // untouched; these only exist when the corresponding mode (lifecycle
    // faults, overload mitigation) is armed.
    auto side = [this](std::string name, FnSnapshottable::Fn fn) {
      lifecycle_sections_.push_back(
          std::make_unique<FnSnapshottable>(std::move(fn)));
      snapshotter_.add(std::move(name), *lifecycle_sections_.back());
    };
    if (o.faults.lifecycle_enabled()) {
      side("vhost-worker/lifecycle", [this](SnapshotWriter& w) {
        worker_->snapshot_lifecycle_state(w);
      });
      side("vhost/vm0/lifecycle", [this](SnapshotWriter& w) {
        backend_->snapshot_lifecycle_state(w);
      });
      side("guest/vm0/net.lifecycle", [this](SnapshotWriter& w) {
        frontend_->snapshot_lifecycle_state(w);
      });
    }
    if (o.guest_params.overload_mitigation) {
      side("guest/vm0/net.overload", [this](SnapshotWriter& w) {
        frontend_->snapshot_overload_state(w);
      });
    }
    snapshotter_.add("recovery", *recovery_log_);
  }

  register_all_metrics();
  if (o.metrics.enabled) {
    SamplerOptions so;
    so.period = o.metrics.sample_period;
    so.ring_capacity = o.metrics.ring_capacity;
    sampler_ = std::make_unique<MetricsSampler>(*sim_, registry_, so);
    snapshotter_.add("metrics.sampler", *sampler_);
  }
  if (auditor_) {
    // A failed audit reports which metrics were moving when it tripped.
    auditor_->set_context([this] {
      if (sampler_ == nullptr) return std::string();
      return top_metric_deltas(registry_, *sampler_, 5);
    });
  }
}

void Testbed::register_all_metrics() {
  // Event core: scheduler-internal counters for the simulator's own queue.
  const EventQueueStats* qs = &sim_->queue().stats();
  registry_.probe("eventcore.scheduled",
                  [qs] { return static_cast<double>(qs->scheduled); });
  registry_.probe("eventcore.fired",
                  [qs] { return static_cast<double>(qs->fired); });
  registry_.probe("eventcore.cancelled",
                  [qs] { return static_cast<double>(qs->cancelled); });
  registry_.probe("eventcore.boxed_callbacks",
                  [qs] { return static_cast<double>(qs->boxed_callbacks); });
  registry_.probe("eventcore.peak_live",
                  [qs] { return static_cast<double>(qs->peak_live); });
  registry_.probe("eventcore.slabs_allocated",
                  [qs] { return static_cast<double>(qs->slabs_allocated); });
  // Timing-wheel placement counters: where events landed (near ring,
  // wheel, far heap) and how often the far heap migrated/compacted —
  // the event-core pressure signals blame reports read next to the
  // per-stage attribution.
  registry_.probe("eventcore.near_hits",
                  [qs] { return static_cast<double>(qs->near_hits); });
  registry_.probe("eventcore.wheel_hits",
                  [qs] { return static_cast<double>(qs->wheel_hits); });
  registry_.probe("eventcore.far_hits",
                  [qs] { return static_cast<double>(qs->far_hits); });
  registry_.probe("eventcore.far_migrations",
                  [qs] { return static_cast<double>(qs->far_migrations); });
  registry_.probe("eventcore.heap_compactions",
                  [qs] { return static_cast<double>(qs->heap_compactions); });

  host_->sched().register_metrics(registry_);
  for (int v = 0; v < host_->num_vms(); ++v) {
    Vm& vm = host_->vm(v);
    for (int j = 0; j < vm.num_vcpus(); ++j)
      vm.vcpu(j).register_metrics(registry_);
  }
  for (auto& guest : guests_) guest->register_metrics(registry_);
  worker_->register_metrics(registry_);
  backend_->register_metrics(registry_);
  // Poll counters exist only when a polling mode is armed, keeping the
  // frozen instrument set of notify-mode runs unchanged.
  if (options_.poll_mode != PollMode::kNotify) {
    worker_->register_poll_metrics(registry_);
  }
  link_->a_to_b.register_metrics(registry_, "vm_to_peer");
  link_->b_to_a.register_metrics(registry_, "peer_to_vm");
  // Canonical drops{cause=...} family, wire rows. Always on: a drop that
  // isn't counted somewhere is a bug, and these read zero on healthy runs.
  link_->a_to_b.register_drop_metrics(registry_, "vm_to_peer");
  link_->b_to_a.register_drop_metrics(registry_, "peer_to_vm");
  if (faults_) faults_->register_metrics(registry_);
  if (recovery_log_) recovery_log_->register_metrics(registry_);
  if (options_.faults.lifecycle_enabled()) {
    worker_->register_lifecycle_metrics(registry_);
    backend_->register_lifecycle_metrics(registry_);
    frontend_->register_lifecycle_metrics(registry_);
  }
  if (options_.guest_params.overload_mitigation) {
    frontend_->register_overload_metrics(registry_);
  }

  // Epoch-hash position probes. Registered only when hashing is on, so a
  // hash-off registry snapshot is byte-identical to the pre-snapshot era.
  if (options_.snapshot.hash_epochs) {
    registry_.probe("snapshot.epochs", [this] {
      return hash_log_ ? static_cast<double>(hash_log_->epochs()) : 0.0;
    });
    registry_.probe("snapshot.last_hash_hi", [this] {
      return hash_log_
                 ? static_cast<double>(hash_log_->last_world_hash() >> 32)
                 : 0.0;
    });
    registry_.probe("snapshot.last_hash_lo", [this] {
      return hash_log_ ? static_cast<double>(hash_log_->last_world_hash() &
                                             0xFFFFFFFFull)
                       : 0.0;
    });
  }
}

Testbed::~Testbed() = default;

void Testbed::start() {
  // The hash log freezes the component-name vector, so it is created here
  // — after workloads registered themselves — not in the constructor.
  if (options_.snapshot.hash_epochs && hash_log_ == nullptr) {
    hash_log_ = std::make_unique<EpochHashLog>(snapshotter_, options_.snapshot,
                                               options_.seed);
    hash_timer_ = std::make_unique<PeriodicTimer>(
        *sim_, options_.snapshot.epoch,
        [this] { hash_log_->record(sim_->now()); });
    hash_timer_->start();
  }
  // Start the sampler first so late-registered workload instruments (apps
  // attach between construction and start) are still inside the frozen
  // set.
  if (sampler_) sampler_->start();
  for (int v = 0; v < host_->num_vms(); ++v) host_->vm(v).start();
}

SimDuration Testbed::run_measured(SimDuration warmup, SimDuration measure) {
  sim_->run_for(warmup);
  for (int v = 0; v < host_->num_vms(); ++v) host_->vm(v).begin_stats_window();
  sim_->run_for(measure);
  return measure;
}

}  // namespace es2
