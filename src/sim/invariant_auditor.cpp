#include "sim/invariant_auditor.h"

#include "base/log.h"
#include "base/strings.h"
#include "trace/trace.h"

namespace es2 {

InvariantAuditor::InvariantAuditor(Simulator& sim, SimDuration period)
    : sim_(sim), timer_(sim, period, [this] { run_now(); }) {}

void InvariantAuditor::add_check(std::string name, Check check) {
  checks_.push_back(Named{std::move(name), std::move(check)});
}

void InvariantAuditor::start() { timer_.start(); }

void InvariantAuditor::stop() { timer_.stop(); }

int InvariantAuditor::run_now() {
  ++sweeps_;
  // When tracing is on, stamp each violation with the journey nearest the
  // sweep so a failed audit points at a concrete kick->EOI path.
  std::uint64_t corr = 0;
  if (const Tracer* tracer = sim_.tracer();
      tracer != nullptr && tracer->enabled()) {
    corr = tracer->last_corr();
  }
  int found = 0;
  for (Named& c : checks_) {
    std::optional<std::string> violation = c.check();
    if (!violation.has_value()) continue;
    ++found;
    ++total_violations_;
    if (corr != 0) {
      *violation += format(" [near corr=%llu]",
                           static_cast<unsigned long long>(corr));
    }
    ES2_ERROR(sim_.now(), "invariant violated [%s]: %s", c.name.c_str(),
              violation->c_str());
    if (static_cast<int>(violations_.size()) < kMaxRecorded) {
      std::string context = context_ ? context_() : std::string();
      violations_.push_back(Violation{sim_.now(), c.name,
                                      std::move(*violation), corr,
                                      std::move(context)});
    }
  }
  return found;
}

}  // namespace es2
