#include "sim/invariant_auditor.h"

#include "base/log.h"

namespace es2 {

InvariantAuditor::InvariantAuditor(Simulator& sim, SimDuration period)
    : sim_(sim), timer_(sim, period, [this] { run_now(); }) {}

void InvariantAuditor::add_check(std::string name, Check check) {
  checks_.push_back(Named{std::move(name), std::move(check)});
}

void InvariantAuditor::start() { timer_.start(); }

void InvariantAuditor::stop() { timer_.stop(); }

int InvariantAuditor::run_now() {
  ++sweeps_;
  int found = 0;
  for (Named& c : checks_) {
    std::optional<std::string> violation = c.check();
    if (!violation.has_value()) continue;
    ++found;
    ++total_violations_;
    ES2_ERROR(sim_.now(), "invariant violated [%s]: %s", c.name.c_str(),
              violation->c_str());
    if (static_cast<int>(violations_.size()) < kMaxRecorded) {
      violations_.push_back(
          Violation{sim_.now(), c.name, std::move(*violation)});
    }
  }
  return found;
}

}  // namespace es2
