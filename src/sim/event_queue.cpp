#include "sim/event_queue.h"

#include <algorithm>

#include "base/assert.h"

namespace es2 {
namespace detail {

void EventCore::close() {
  // Destroy callbacks of events that never fired (their captures may own
  // resources, exactly like the seed's std::function entries did) and
  // invalidate every outstanding handle via the generation bump.
  for (auto& slab : slabs_) {
    for (EventRecord& r : slab->records) {
      if (r.loc != EventLocation::kFree) {
        if (r.ops != nullptr) {
          r.ops->destroy(r.buf);
          r.ops = nullptr;
        }
        r.gen++;
        r.loc = EventLocation::kFree;
      }
    }
  }
  near_.clear();
  far_.clear();
  near_stale_ = far_stale_ = 0;
  for (Bucket& b : wheel_) b.head = kInvalidSlot;
  for (std::uint64_t& word : occupied_) word = 0;
  live_ = 0;
  // Rebuild the free list from scratch (idempotent), keeping low slots
  // first, so every slab's records stay reachable if the core is used
  // again after close().
  free_head_ = kInvalidSlot;
  for (std::size_t s = slabs_.size(); s-- > 0;) {
    Slab& slab = *slabs_[s];
    const std::uint32_t base = static_cast<std::uint32_t>(s) * kSlabSize;
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
      slab.records[i].prev = kInvalidSlot;
      slab.records[i].next = free_head_;
      free_head_ = base + i;
    }
  }
}

std::uint32_t EventCore::acquire_slot() {
  if (free_head_ == kInvalidSlot) {
    ES2_CHECK_MSG(slabs_.size() < kInvalidSlot / kSlabSize,
                  "event pool exhausted");
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<Slab>());
    Slab& slab = *slabs_.back();
    // Thread the fresh slab onto the free list, keeping low slots first.
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
      slab.records[i].next = free_head_;
      free_head_ = base + i;
    }
    stats_.slabs_allocated++;
  }
  const std::uint32_t slot = free_head_;
  EventRecord& r = record(slot);
  free_head_ = r.next;
  r.next = kInvalidSlot;
  return slot;
}

void EventCore::free_slot(std::uint32_t slot) {
  EventRecord& r = record(slot);
  if (r.ops != nullptr) {
    r.ops->destroy(r.buf);
    r.ops = nullptr;
  }
  r.gen++;  // invalidate outstanding handles / stale heap keys
  r.loc = EventLocation::kFree;
  r.prev = kInvalidSlot;
  r.next = free_head_;
  free_head_ = slot;
}

void EventCore::push_near(std::uint32_t slot, EventRecord& r) {
  r.loc = EventLocation::kNear;
  near_.push_back(HeapKey{r.when, r.seq, slot, r.gen});
  std::push_heap(near_.begin(), near_.end(), KeyLater{});
}

void EventCore::push_far(std::uint32_t slot, EventRecord& r) {
  r.loc = EventLocation::kFar;
  far_.push_back(HeapKey{r.when, r.seq, slot, r.gen});
  std::push_heap(far_.begin(), far_.end(), KeyLater{});
}

void EventCore::link_wheel(std::uint32_t slot, EventRecord& r) {
  const std::uint32_t idx =
      static_cast<std::uint32_t>(bucket_index(r.when)) & (kWheelBuckets - 1);
  r.loc = EventLocation::kWheel;
  r.bucket = idx;
  r.prev = kInvalidSlot;
  r.next = wheel_[idx].head;
  if (r.next != kInvalidSlot) record(r.next).prev = slot;
  wheel_[idx].head = slot;
  occupied_[idx / 64] |= std::uint64_t{1} << (idx % 64);
}

void EventCore::unlink_from_wheel(EventRecord& r, std::uint32_t slot) {
  (void)slot;  // only referenced by the debug check below
  if (r.prev != kInvalidSlot) {
    record(r.prev).next = r.next;
  } else {
    ES2_DCHECK(wheel_[r.bucket].head == slot);
    wheel_[r.bucket].head = r.next;
  }
  if (r.next != kInvalidSlot) record(r.next).prev = r.prev;
  if (wheel_[r.bucket].head == kInvalidSlot) {
    occupied_[r.bucket / 64] &= ~(std::uint64_t{1} << (r.bucket % 64));
  }
}

void EventCore::enqueue(std::uint32_t slot, SimTime when) {
  ES2_CHECK_MSG(when >= 0, "cannot schedule before time 0");
  EventRecord& r = record(slot);
  r.when = when;
  r.seq = next_seq_++;
  const std::uint64_t b = bucket_index(when);
  if (b <= cursor_) {
    push_near(slot, r);
    stats_.near_hits++;
  } else if (b < cursor_ + kWheelBuckets) {
    link_wheel(slot, r);
    stats_.wheel_hits++;
  } else {
    push_far(slot, r);
    stats_.far_hits++;
  }
  stats_.scheduled++;
  ++live_;
  if (live_ > stats_.peak_live) stats_.peak_live = live_;
}

void EventCore::cancel(std::uint32_t slot, std::uint32_t gen) {
  EventRecord& r = record(slot);
  if (r.gen != gen || r.loc == EventLocation::kFree) return;
  const EventLocation loc = r.loc;
  if (loc == EventLocation::kWheel) {
    unlink_from_wheel(r, slot);
  } else if (loc == EventLocation::kNear) {
    ++near_stale_;
  } else {
    ++far_stale_;
  }
  // Reclaim (and bump the generation) BEFORE any compaction so the
  // cancelled key is recognisably dead: compacting first would let it
  // survive the pass while the stale counter resets, and skim() would
  // later underflow that counter when the key finally surfaced.
  free_slot(slot);
  stats_.cancelled++;
  --live_;
  if (loc == EventLocation::kNear) {
    maybe_compact(near_, near_stale_);
  } else if (loc == EventLocation::kFar) {
    maybe_compact(far_, far_stale_);
  }
}

void EventCore::skim(std::vector<HeapKey>& heap, std::size_t& stale) {
  while (!heap.empty()) {
    const HeapKey& top = heap.front();
    if (record(top.slot).gen == top.gen) return;  // live key
    std::pop_heap(heap.begin(), heap.end(), KeyLater{});
    heap.pop_back();
    ES2_DCHECK(stale > 0);
    --stale;
  }
}

void EventCore::maybe_compact(std::vector<HeapKey>& heap, std::size_t& stale) {
  if (stale < 64 || stale * 2 <= heap.size()) return;
  // Precondition: every counted-stale key has a mismatched generation
  // (cancel() calls free_slot() before compacting), so exactly `stale`
  // keys are removed here and resetting the counter to 0 is exact.
  auto dead = [this](const HeapKey& k) {
    return record(k.slot).gen != k.gen;
  };
  heap.erase(std::remove_if(heap.begin(), heap.end(), dead), heap.end());
  std::make_heap(heap.begin(), heap.end(), KeyLater{});
  stale = 0;
  stats_.heap_compactions++;
}

std::uint64_t EventCore::next_occupied_bucket(bool& found) const {
  // Wheel buckets live strictly inside (cursor_, cursor_ + kWheelBuckets),
  // so each set bit maps back to a unique absolute bucket index.
  const std::uint32_t start =
      (static_cast<std::uint32_t>(cursor_) + 1) & (kWheelBuckets - 1);
  for (std::uint32_t scanned = 0; scanned < kWheelBuckets;) {
    const std::uint32_t idx = (start + scanned) & (kWheelBuckets - 1);
    const std::uint32_t word = idx / 64;
    std::uint64_t bits = occupied_[word] >> (idx % 64);
    const std::uint32_t span =
        std::min<std::uint32_t>(64 - idx % 64, kWheelBuckets - scanned);
    if (bits != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
      if (bit < span) {
        const std::uint32_t abs_idx = (idx + bit) & (kWheelBuckets - 1);
        // Distance forward from cursor_ in circular bucket space.
        const std::uint32_t rel =
            (abs_idx - static_cast<std::uint32_t>(cursor_)) &
            (kWheelBuckets - 1);
        found = true;
        return cursor_ + rel;
      }
    }
    scanned += span;
  }
  found = false;
  return 0;
}

void EventCore::migrate_far() {
  for (;;) {
    skim(far_, far_stale_);
    if (far_.empty()) return;
    const HeapKey k = far_.front();
    if (bucket_index(k.when) >= cursor_ + kWheelBuckets) return;
    std::pop_heap(far_.begin(), far_.end(), KeyLater{});
    far_.pop_back();
    EventRecord& r = record(k.slot);
    if (bucket_index(k.when) <= cursor_) {
      push_near(k.slot, r);
    } else {
      link_wheel(k.slot, r);
    }
    stats_.far_migrations++;
  }
}

void EventCore::refill_near() {
  while (near_.empty()) {
    bool found = false;
    const std::uint64_t next_bucket = next_occupied_bucket(found);
    if (found) {
      cursor_ = next_bucket;
      const std::uint32_t idx =
          static_cast<std::uint32_t>(cursor_) & (kWheelBuckets - 1);
      std::uint32_t slot = wheel_[idx].head;
      wheel_[idx].head = kInvalidSlot;
      occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
      while (slot != kInvalidSlot) {
        EventRecord& r = record(slot);
        const std::uint32_t next = r.next;
        r.prev = r.next = kInvalidSlot;
        push_near(slot, r);
        slot = next;
      }
    } else {
      skim(far_, far_stale_);
      ES2_CHECK_MSG(!far_.empty(), "live event count out of sync");
      cursor_ = bucket_index(far_.front().when);
    }
    // The wheel window moved forward: admit far events that now fit.
    migrate_far();
  }
}

SimTime EventCore::next_time() {
  ES2_CHECK_MSG(live_ > 0, "next_time on empty queue");
  skim(near_, near_stale_);
  if (near_.empty()) refill_near();
  return near_.front().when;
}

SimTime EventCore::pop_and_run() {
  ES2_CHECK_MSG(live_ > 0, "pop_and_run on empty queue");
  skim(near_, near_stale_);
  if (near_.empty()) refill_near();
  const HeapKey k = near_.front();
  std::pop_heap(near_.begin(), near_.end(), KeyLater{});
  near_.pop_back();
  EventRecord& r = record(k.slot);
  ES2_DCHECK(r.gen == k.gen);
  // Invalidate handles before running, matching the seed's semantics:
  // during the callback the event is no longer pending and self-cancel
  // is a no-op. The slot is reclaimed only after the callback returns,
  // so reentrant scheduling cannot overwrite the executing closure.
  r.gen++;
  --live_;
  stats_.fired++;
  // Reclaim the slot on both normal return and exceptional unwind: a
  // throwing callback must still have its closure destroyed and its
  // record returned to the free list (the seed's std::function entry
  // was likewise destroyed during unwind).
  struct SlotReclaimer {
    EventCore* core;
    std::uint32_t slot;
    ~SlotReclaimer() { core->free_slot(slot); }
  } reclaim{this, k.slot};
  r.ops->invoke(r.buf);
  return k.when;
}

}  // namespace detail
}  // namespace es2
