#include "sim/event_queue.h"

#include <algorithm>

#include "base/assert.h"

namespace es2 {

void EventHandle::cancel() {
  if (alive_ && *alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle EventQueue::schedule(SimTime when, std::function<void()> fn) {
  ES2_CHECK_MSG(when >= 0, "cannot schedule before time 0");
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(Entry{when, next_seq_++, std::move(fn), alive});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(std::move(alive));
}

void EventQueue::skim() {
  while (!heap_.empty() && !*heap_.front().alive) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::has_next() {
  skim();
  return !heap_.empty();
}

SimTime EventQueue::next_time() {
  skim();
  ES2_CHECK_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.front().when;
}

SimTime EventQueue::pop_and_run() {
  skim();
  ES2_CHECK_MSG(!heap_.empty(), "pop_and_run on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  *entry.alive = false;
  entry.fn();
  return entry.when;
}

}  // namespace es2
