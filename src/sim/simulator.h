// The simulation kernel: a clock plus the event queue.
//
// Every model object holds a `Simulator&` and advances the world purely by
// scheduling callbacks. One `Simulator` is one independent experiment; the
// harness runs many of them concurrently on worker threads, which is safe
// because a Simulator shares no mutable state with any other.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <utility>

#include "base/assert.h"
#include "base/rng.h"
#include "base/units.h"
#include "sim/event_queue.h"
#include "snapshot/snapshot.h"

namespace es2 {

class Tracer;
class Profiler;

class Simulator : public Snapshottable {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  std::uint64_t seed() const { return seed_; }

  /// Derives a named deterministic RNG stream for one component.
  Rng make_rng(std::string_view label) const { return Rng::stream(seed_, label); }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  ///
  /// `fn` is stored inline in the pooled event record — no allocation.
  /// The static_assert enforces the inline-size budget for every model
  /// call site; a callable that genuinely needs more capture space can
  /// go through queue().schedule(), which boxes it on the heap.
  template <typename F>
  EventHandle at(SimTime when, F&& fn) {
    static_assert(sizeof(std::decay_t<F>) <= detail::kInlineCallbackCapacity,
                  "callback captures exceed the inline event buffer "
                  "(detail::kInlineCallbackCapacity); shrink the capture or "
                  "use queue().schedule() to accept a boxed allocation");
    ES2_CHECK_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule(when, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (>= 0) from now.
  template <typename F>
  EventHandle after(SimDuration delay, F&& fn) {
    ES2_CHECK_MSG(delay >= 0, "negative delay");
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` to run at the current time, after already-queued
  /// same-instant events (a "bottom half").
  template <typename F>
  EventHandle defer(F&& fn) {
    return at(now_, std::forward<F>(fn));
  }

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Like run_until, but also stops after `max_events` events even if the
  /// clock has not reached `deadline`. This is the watchdog primitive: a
  /// same-timestamp livelock (an event endlessly rescheduling itself "now")
  /// never advances the clock, so only an event cap can regain control.
  /// When the cap stops the run early the clock is NOT advanced to the
  /// deadline. Returns the number of events executed.
  std::uint64_t run_until_capped(SimTime deadline, std::uint64_t max_events);

  /// Runs events for `span` from the current time.
  std::uint64_t run_for(SimDuration span) { return run_until(now_ + span); }

  /// Runs every remaining event (use only for tests with finite models).
  std::uint64_t run_to_completion();

  std::uint64_t events_executed() const { return events_executed_; }
  EventQueue& queue() { return queue_; }

  /// Event-path tracer attached to this world (not owned); null in
  /// untraced runs. The simulator itself never emits — it only carries the
  /// pointer so model layers and auditors can reach the tracer without
  /// threading it through every constructor.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Scoped profiler attached to this world (not owned); null in
  /// unprofiled runs. Same carrying-only contract as the tracer.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  /// Kernel state: clock, seed, executed-event count, live queue depth.
  /// Pending events themselves are not serialized (callbacks capture
  /// closures); restore is deterministic re-execution — see DESIGN.md §4f.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t seed_;
  std::uint64_t events_executed_ = 0;
  Tracer* tracer_ = nullptr;
  Profiler* profiler_ = nullptr;
};

/// Repeating timer helper built on Simulator::after.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

 private:
  void arm();
  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace es2
