// Periodic structural-invariant auditing.
//
// A simulation bug rarely crashes at the broken site: a virtqueue whose
// used index overtakes avail, a LAPIC with inconsistent IRR/ISR, or a
// runqueue losing a thread surfaces hundreds of microseconds later as a
// hang or a silently wrong throughput number. The auditor runs registered
// checks on a simulated-time period and records violations with their
// timestamp, turning "the sweep wedged" into "check X failed at t".
//
// The framework is domain-agnostic (this library cannot depend on the
// model layers above it); concrete checks are lambdas registered by the
// harness, which links everything. Zero-cost when disabled: a scenario
// that never constructs/starts an auditor schedules no events and touches
// no state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace es2 {

class InvariantAuditor {
 public:
  /// A check returns std::nullopt when the invariant holds, or a
  /// human-readable violation message. Checks may keep mutable state (e.g.
  /// last-seen indices for monotonicity) — they run single-threaded within
  /// one Simulator.
  using Check = std::function<std::optional<std::string>()>;

  struct Violation {
    SimTime at = 0;
    std::string check;
    std::string message;
    /// Correlation id of the journey nearest the violation (the last id an
    /// attached tracer saw); 0 when tracing is off or no journey ran yet.
    std::uint64_t corr = 0;
    /// Telemetry context captured at the violation (see set_context);
    /// empty when no context provider is attached.
    std::string context;
  };

  explicit InvariantAuditor(Simulator& sim, SimDuration period = msec(1));
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  void add_check(std::string name, Check check);

  /// Attaches a context provider, evaluated lazily when a violation is
  /// recorded (e.g. the registry's top metric deltas). Runs at most
  /// kMaxRecorded times per auditor, so it may be moderately expensive.
  void set_context(std::function<std::string()> context) {
    context_ = std::move(context);
  }

  /// Starts/stops the periodic sweep.
  void start();
  void stop();

  /// Runs every check once, immediately; returns violations found now.
  int run_now();

  std::uint64_t sweeps() const { return sweeps_; }
  std::int64_t total_violations() const { return total_violations_; }
  bool clean() const { return total_violations_ == 0; }
  /// First `kMaxRecorded` violations with timestamps (later ones are only
  /// counted, so a hard-broken invariant cannot eat the heap).
  const std::vector<Violation>& violations() const { return violations_; }

  static constexpr int kMaxRecorded = 64;

 private:
  struct Named {
    std::string name;
    Check check;
  };

  Simulator& sim_;
  PeriodicTimer timer_;
  std::function<std::string()> context_;
  std::vector<Named> checks_;
  std::vector<Violation> violations_;
  std::uint64_t sweeps_ = 0;
  std::int64_t total_violations_ = 0;
};

}  // namespace es2
