#include "sim/simulator.h"

#include "base/assert.h"

namespace es2 {

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  while (queue_.has_next() && queue_.next_time() <= deadline) {
    // Advance the clock BEFORE running the event, so callbacks observing
    // now() (and deferring follow-up work) see the event's own timestamp.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed;
  }
  // Advance the clock to the deadline even if the queue ran dry, so that
  // back-to-back run_for() calls measure contiguous wall spans.
  if (now_ < deadline) now_ = deadline;
  events_executed_ += executed;
  return executed;
}

std::uint64_t Simulator::run_until_capped(SimTime deadline,
                                          std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (executed < max_events && queue_.has_next() &&
         queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed;
  }
  // Only a run that genuinely drained the span may claim the deadline as
  // its new clock; a capped stop resumes where it left off.
  if (executed < max_events && now_ < deadline) now_ = deadline;
  events_executed_ += executed;
  return executed;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t executed = 0;
  while (queue_.has_next()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed;
  }
  events_executed_ += executed;
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimDuration period,
                             std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  ES2_CHECK(period_ > 0);
}

void Simulator::snapshot_state(SnapshotWriter& w) const {
  w.put_i64(now_);
  w.put_u64(seed_);
  w.put_u64(events_executed_);
  w.put_u64(queue_.size());
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  running_ = false;
  pending_.cancel();
}

void PeriodicTimer::arm() {
  pending_ = sim_.after(period_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace es2
