// Deterministic discrete-event queue — zero-allocation event core.
//
// Three pieces, replacing the seed's binary heap of heap-allocated
// `std::function` entries:
//
//  * A slab-pooled event store: fixed-size `EventRecord`s in 256-record
//    slabs with a free list. Records never move, so callbacks are
//    constructed once, in place, in a `kInlineCallbackCapacity`-byte
//    inline buffer (type-erased through a static ops vtable). Callables
//    larger than the buffer fall back to one boxed heap allocation; the
//    `boxed_callbacks` counter proves the steady state never takes that
//    path. After warm-up, schedule/cancel/fire perform zero heap
//    allocations.
//
//  * Generation-counted handles: `{slot, generation}` plus a shared
//    reference to the pool core. `cancel()` and `pending()` are O(1);
//    cancellation destroys the callback and reclaims the slot
//    immediately (no lazy heap skimming of whole entries — at most a
//    16-byte stale key stays behind, see below). Handles may outlive
//    the queue: the core is freed when the last handle drops it.
//
//  * A calendar-queue front-end keyed on `SimTime`: a small "near" heap
//    carries everything due in the current 2^kBucketShift-ns bucket or
//    earlier, a kWheelBuckets-slot timer wheel of intrusive lists
//    covers the next ~1 ms, and a sorted overflow heap holds far-future
//    events, migrating into the wheel as the cursor advances. Every
//    event carries a global sequence number and the near heap orders by
//    (when, seq), so firing order is exactly the seed's deterministic
//    (time, insertion-order) contract, independent of bucket layout.
//
// Cancelled events that sit in one of the two heaps leave a stale
// 24-byte key which is dropped when it surfaces; heaps compact
// themselves when more than half their keys are stale, so cancel-heavy
// workloads cannot bloat the queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/units.h"
#include "stats/event_stats.h"

namespace es2 {

class EventQueue;

namespace detail {

/// Inline storage for a scheduled callback. All model lambdas in this
/// codebase capture at most a `this` pointer, a couple of scalars, or a
/// `std::function` copy (32 bytes on libstdc++); 48 bytes holds them all
/// and keeps the whole record at 96 bytes (1.5 cache lines).
inline constexpr std::size_t kInlineCallbackCapacity = 48;

inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

/// Type-erased operations on a callback stored in an EventRecord buffer.
struct CallbackOps {
  void (*invoke)(void* buf);
  void (*destroy)(void* buf);
};

template <typename Fn>
struct InlineOps {
  static void invoke(void* buf) { (*static_cast<Fn*>(buf))(); }
  static void destroy(void* buf) { static_cast<Fn*>(buf)->~Fn(); }
  static constexpr CallbackOps ops{&invoke, &destroy};
};

template <typename Fn>
struct BoxedOps {
  static Fn*& box(void* buf) { return *static_cast<Fn**>(buf); }
  static void invoke(void* buf) { (*box(buf))(); }
  static void destroy(void* buf) { delete box(buf); }
  static constexpr CallbackOps ops{&invoke, &destroy};
};

/// Where a live event currently lives (drives O(1) cancellation).
enum class EventLocation : std::uint8_t {
  kFree = 0,   // on the free list
  kNear,       // keyed into the near heap
  kWheel,      // linked into a wheel bucket
  kFar,        // keyed into the far overflow heap
};

/// One pooled event. Records never move once allocated, so the callback
/// buffer is stable for in-place construction and invocation.
struct EventRecord {
  SimTime when = 0;
  std::uint64_t seq = 0;
  std::uint32_t gen = 0;          // bumped on fire/cancel/free
  EventLocation loc = EventLocation::kFree;
  std::uint32_t prev = kInvalidSlot;  // wheel-bucket list / unused
  std::uint32_t next = kInvalidSlot;  // wheel-bucket list / free list
  std::uint32_t bucket = 0;           // wheel index while loc == kWheel
  const CallbackOps* ops = nullptr;
  alignas(std::max_align_t) unsigned char buf[kInlineCallbackCapacity];
};

/// Key stored in the near/far heaps. Stale keys (generation mismatch)
/// are skimmed when they surface.
struct HeapKey {
  SimTime when;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

struct KeyLater {
  bool operator()(const HeapKey& a, const HeapKey& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

/// The pool + calendar state. Owned jointly by the EventQueue and any
/// outstanding handles, so a handle can always safely answer
/// cancel()/pending() even after its queue is destroyed.
class EventCore {
 public:
  static constexpr int kBucketShift = 12;           // 4096 ns per bucket
  static constexpr std::uint32_t kWheelBuckets = 256;
  static constexpr std::uint32_t kSlabSize = 256;

  EventCore() = default;
  ~EventCore() { close(); }
  EventCore(const EventCore&) = delete;
  EventCore& operator=(const EventCore&) = delete;

  /// Destroys every un-fired callback and invalidates all handles.
  /// Called when the owning queue dies; outstanding handles then report
  /// pending() == false and cancel() as a no-op.
  void close();

  /// Pops a record off the free list (growing by one slab if empty) —
  /// the caller constructs the callback into `record(slot).buf` and
  /// then calls enqueue().
  std::uint32_t acquire_slot();

  /// Returns a slot obtained from acquire_slot() that was never
  /// enqueue()d (callback construction threw). No generation bump is
  /// needed: no handle was ever issued for it and no callback lives in
  /// its buffer.
  void release_unqueued_slot(std::uint32_t slot) {
    EventRecord& r = record(slot);
    r.next = free_head_;
    free_head_ = slot;
  }

  EventRecord& record(std::uint32_t slot) {
    return slabs_[slot / kSlabSize]->records[slot % kSlabSize];
  }
  const EventRecord& record(std::uint32_t slot) const {
    return slabs_[slot / kSlabSize]->records[slot % kSlabSize];
  }

  /// Files a freshly constructed event into the calendar (near heap,
  /// wheel bucket, or far heap by `when`) and stamps its sequence.
  void enqueue(std::uint32_t slot, SimTime when);

  /// O(1): destroys the callback, bumps the generation and reclaims the
  /// slot. Wheel entries unlink immediately; heap entries leave a stale
  /// key behind.
  void cancel(std::uint32_t slot, std::uint32_t gen);

  bool pending(std::uint32_t slot, std::uint32_t gen) const {
    return record(slot).loc != EventLocation::kFree &&
           record(slot).gen == gen;
  }

  bool has_next() const { return live_ > 0; }
  SimTime next_time();
  SimTime pop_and_run();

  std::size_t live() const { return live_; }
  const EventQueueStats& stats() const { return stats_; }
  EventQueueStats& stats() { return stats_; }

 private:
  struct Slab {
    EventRecord records[kSlabSize];
  };
  struct Bucket {
    std::uint32_t head = kInvalidSlot;
  };

  static std::uint64_t bucket_index(SimTime when) {
    return static_cast<std::uint64_t>(when) >> kBucketShift;
  }

  void free_slot(std::uint32_t slot);
  void unlink_from_wheel(EventRecord& r, std::uint32_t slot);
  void push_near(std::uint32_t slot, EventRecord& r);
  void push_far(std::uint32_t slot, EventRecord& r);
  void link_wheel(std::uint32_t slot, EventRecord& r);

  /// Drops stale keys off a heap top; compacts when >half stale.
  void skim(std::vector<HeapKey>& heap, std::size_t& stale);
  void maybe_compact(std::vector<HeapKey>& heap, std::size_t& stale);

  /// Advances the wheel cursor until the near heap holds the earliest
  /// live event. Requires live_ > 0.
  void refill_near();
  /// Pulls far-heap events that now fall inside the wheel window.
  void migrate_far();
  /// Absolute index of the next occupied wheel bucket after cursor_, or
  /// 0 with `found=false` when the wheel is empty.
  std::uint64_t next_occupied_bucket(bool& found) const;

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::uint32_t free_head_ = kInvalidSlot;

  std::vector<HeapKey> near_;  // events with bucket_index(when) <= cursor_
  std::size_t near_stale_ = 0;
  std::vector<HeapKey> far_;   // events at or past the wheel horizon
  std::size_t far_stale_ = 0;
  Bucket wheel_[kWheelBuckets];
  std::uint64_t occupied_[kWheelBuckets / 64] = {};
  std::uint64_t cursor_ = 0;   // absolute bucket index currently drained

  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  EventQueueStats stats_;
};

}  // namespace detail

/// Handle for a scheduled event; cheap to copy, may outlive the event
/// and the queue itself.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly,
  /// on an empty handle, or after the event has fired.
  void cancel() {
    if (core_) core_->cancel(slot_, gen_);
  }

  /// True if the event is still scheduled to fire.
  bool pending() const { return core_ && core_->pending(slot_, gen_); }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventCore> core, std::uint32_t slot,
              std::uint32_t gen)
      : core_(std::move(core)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::EventCore> core_;
  std::uint32_t slot_ = detail::kInvalidSlot;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue() : core_(std::make_shared<detail::EventCore>()) {}
  ~EventQueue() { core_->close(); }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`. Events at the same
  /// instant fire in scheduling order. Callables up to
  /// `detail::kInlineCallbackCapacity` bytes (and at most
  /// `max_align_t`-aligned — the record buffer guarantees no more) are
  /// stored inline in the pooled record (no allocation); larger or
  /// over-aligned ones are boxed.
  template <typename F>
  EventHandle schedule(SimTime when, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "callback must be invocable");
    detail::EventCore& core = *core_;
    const std::uint32_t slot = core.acquire_slot();
    detail::EventRecord& r = core.record(slot);
    // Copy-construction from an lvalue F (or the boxed `new`) may throw
    // even when the move is noexcept; give the slot back on unwind so it
    // is not stranded off both the free list and the calendar.
    try {
      if constexpr (sizeof(Fn) <= detail::kInlineCallbackCapacity &&
                    alignof(Fn) <= alignof(std::max_align_t) &&
                    std::is_nothrow_move_constructible_v<Fn>) {
        ::new (static_cast<void*>(r.buf)) Fn(std::forward<F>(fn));
        r.ops = &detail::InlineOps<Fn>::ops;
      } else {
        ::new (static_cast<void*>(r.buf)) Fn*(new Fn(std::forward<F>(fn)));
        r.ops = &detail::BoxedOps<Fn>::ops;
        core.stats().boxed_callbacks++;
      }
    } catch (...) {
      core.release_unqueued_slot(slot);
      throw;
    }
    core.enqueue(slot, when);
    return EventHandle(core_, slot, r.gen);
  }

  /// True if a live (non-cancelled) event remains.
  bool has_next() const { return core_->has_next(); }

  /// Time of the earliest live event; `has_next()` must be true.
  SimTime next_time() { return core_->next_time(); }

  /// Pops and runs the earliest live event, returning its time.
  SimTime pop_and_run() { return core_->pop_and_run(); }

  /// Live (scheduled, not cancelled) events.
  size_t size() const { return core_->live(); }

  /// Perf counters for this queue (see stats/event_stats.h).
  const EventQueueStats& stats() const { return core_->stats(); }

 private:
  std::shared_ptr<detail::EventCore> core_;
};

}  // namespace es2
