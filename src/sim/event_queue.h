// Deterministic discrete-event queue.
//
// A binary heap of (time, sequence) keys: the sequence number breaks ties
// in insertion order, which makes the simulation fully deterministic and
// independent of allocator behaviour. Cancellation is O(1) lazy removal —
// cancelled entries are dropped when they reach the heap top, which is the
// right trade for this workload (preempted CPU segments cancel their
// completion events constantly).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/units.h"

namespace es2 {

/// Handle for a scheduled event; cheap to copy, may outlive the event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly,
  /// on an empty handle, or after the event has fired.
  void cancel();

  /// True if the event is still scheduled to fire.
  bool pending() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`. Events at the same
  /// instant fire in scheduling order.
  EventHandle schedule(SimTime when, std::function<void()> fn);

  /// True if a live (non-cancelled) event remains.
  bool has_next();

  /// Time of the earliest live event; `has_next()` must be true.
  SimTime next_time();

  /// Pops and runs the earliest live event, returning its time.
  SimTime pop_and_run();

  /// Heap entries including not-yet-skimmed cancelled ones.
  size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skim();

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace es2
