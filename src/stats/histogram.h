// Log-bucketed latency histogram (HdrHistogram-style, simplified).
//
// Values (nanoseconds, bytes, counts …) are bucketed into power-of-two
// magnitude groups each split into `kSubBuckets` linear sub-buckets, giving
// a bounded relative error of 1/kSubBuckets across ten decades while using
// a few KiB of memory. Quantile queries interpolate within the bucket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace es2 {

class Histogram {
 public:
  Histogram();

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::int64_t count);

  std::int64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const { return max_; }
  double mean() const;

  /// Quantile in [0,1]; returns 0 on an empty histogram.
  std::int64_t quantile(double q) const;
  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p90() const { return quantile(0.90); }
  std::int64_t p99() const { return quantile(0.99); }

  void merge(const Histogram& other);
  void reset();

  /// One-line summary with values rendered by `unit` ("us", "ms", raw).
  std::string summary(const std::string& unit = "") const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets -> ~3% error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMagnitudes = 40;

  static int bucket_index(std::int64_t value);
  static std::int64_t bucket_low(int index);
  static std::int64_t bucket_high(int index);

  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace es2
