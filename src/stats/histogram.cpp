#include "stats/histogram.h"

#include <algorithm>
#include <bit>

#include "base/assert.h"
#include "base/strings.h"

namespace es2 {

Histogram::Histogram() : buckets_(kMagnitudes * kSubBuckets, 0) {}

int Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(v);
  const int magnitude = msb - kSubBucketBits + 1;
  const auto sub = static_cast<int>(v >> magnitude) - kSubBuckets / 2;
  // Magnitude group 0 covers [0, kSubBuckets); each later group adds
  // kSubBuckets/2 buckets of width 2^magnitude.
  int index = kSubBuckets + (magnitude - 1) * (kSubBuckets / 2) + sub;
  const int last = kMagnitudes * kSubBuckets - 1;
  return std::min(index, last);
}

std::int64_t Histogram::bucket_low(int index) {
  if (index < kSubBuckets) return index;
  const int rest = index - kSubBuckets;
  const int magnitude = rest / (kSubBuckets / 2) + 1;
  const int sub = rest % (kSubBuckets / 2) + kSubBuckets / 2;
  return static_cast<std::int64_t>(sub) << magnitude;
}

std::int64_t Histogram::bucket_high(int index) {
  if (index < kSubBuckets) return index + 1;
  const int rest = index - kSubBuckets;
  const int magnitude = rest / (kSubBuckets / 2) + 1;
  const int sub = rest % (kSubBuckets / 2) + kSubBuckets / 2;
  return static_cast<std::int64_t>(sub + 1) << magnitude;
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::int64_t count) {
  ES2_CHECK(count >= 0);
  if (count == 0) return;
  if (value < 0) value = 0;
  buckets_[static_cast<size_t>(bucket_index(value))] += count;
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::int64_t Histogram::min() const { return count_ ? min_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Interpolate linearly within the bucket for smoother quantiles.
      const auto idx = static_cast<int>(i);
      const std::int64_t lo = bucket_low(idx);
      const std::int64_t hi = std::min(bucket_high(idx), max_);
      const double into = 1.0 - (static_cast<double>(seen) - target) /
                                    static_cast<double>(buckets_[i]);
      const auto v = lo + static_cast<std::int64_t>(
                              static_cast<double>(hi - lo) * into);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  ES2_CHECK(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::summary(const std::string& unit) const {
  auto render = [&unit](std::int64_t v) -> std::string {
    if (unit == "us") return format("%.1fus", static_cast<double>(v) / 1e3);
    if (unit == "ms") return format("%.2fms", static_cast<double>(v) / 1e6);
    return with_commas(v);
  };
  if (count_ == 0) return "(empty)";
  return format("n=%s min=%s p50=%s p90=%s p99=%s max=%s mean=%s",
                with_commas(count_).c_str(), render(min()).c_str(),
                render(p50()).c_str(), render(p90()).c_str(),
                render(p99()).c_str(), render(max()).c_str(),
                render(static_cast<std::int64_t>(mean())).c_str());
}

}  // namespace es2
