// Perf counters for the event core (see sim/event_queue.h).
//
// One struct per EventQueue, updated inline on the hot path (plain
// integer adds — a Simulator is single-threaded). `wheel_hits` vs
// `near_hits`/`far_hits` shows how well the calendar front-end absorbs
// the workload: near = due in the current bucket (straight to the small
// heap), wheel = O(1) bucket insert, far = overflow heap insert.
#pragma once

#include <cstdint>

namespace es2 {

struct EventQueueStats {
  std::uint64_t scheduled = 0;        // schedule() calls
  std::uint64_t fired = 0;            // callbacks executed
  std::uint64_t cancelled = 0;        // live events cancelled
  std::uint64_t boxed_callbacks = 0;  // callables too big for inline buf
  std::uint64_t near_hits = 0;        // scheduled straight into near heap
  std::uint64_t wheel_hits = 0;       // scheduled into a wheel bucket
  std::uint64_t far_hits = 0;         // scheduled into the overflow heap
  std::uint64_t far_migrations = 0;   // far -> wheel/near refills
  std::uint64_t heap_compactions = 0; // stale-key compaction passes
  std::uint64_t peak_live = 0;        // max concurrently scheduled events
  std::uint64_t slabs_allocated = 0;  // pool growth events (not steady state)
};

}  // namespace es2
