#include "stats/meters.h"

#include "base/assert.h"

namespace es2 {

void TimeWeighted::set(SimTime now, double value) {
  if (!started_) {
    origin_ = now;
    last_change_ = now;
    value_ = value;
    started_ = true;
    return;
  }
  ES2_CHECK_MSG(now >= last_change_, "TimeWeighted updates must be ordered");
  integral_ += value_ * static_cast<double>(now - last_change_);
  last_change_ = now;
  value_ = value;
}

double TimeWeighted::average(SimTime now) const {
  if (!started_ || now <= origin_) return value_;
  const double integral =
      integral_ + value_ * static_cast<double>(now - last_change_);
  return integral / static_cast<double>(now - origin_);
}

}  // namespace es2
