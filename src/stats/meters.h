// Counters, rate meters and time-weighted gauges.
//
// These are the measurement primitives behind the paper's metrics:
//  * `Counter`      — event counts (VM exits by cause, packets, interrupts);
//  * `RateMeter`    — count over a measurement window -> events/second;
//  * `TimeWeighted` — integrates a piecewise-constant value over simulated
//                     time (queue depths, online-vCPU counts);
//  * `SpanAccumulator` — accrues labelled time spans (guest vs host time),
//                     which is exactly how the paper computes TIG.
#pragma once

#include <cstdint>
#include <string>

#include "base/units.h"

namespace es2 {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Converts a counter delta over a time window into a per-second rate.
class RateMeter {
 public:
  /// Marks the start of the measurement window.
  void start(SimTime now) {
    window_start_ = now;
    base_ = count_;
  }

  void add(std::int64_t n = 1) { count_ += n; }

  /// Events per second since start(); zero if no time elapsed.
  double rate(SimTime now) const {
    const SimDuration span = now - window_start_;
    if (span <= 0) return 0.0;
    return static_cast<double>(count_ - base_) / to_seconds(span);
  }

  std::int64_t total() const { return count_; }
  std::int64_t in_window() const { return count_ - base_; }

 private:
  std::int64_t count_ = 0;
  std::int64_t base_ = 0;
  SimTime window_start_ = 0;
};

/// Integrates a piecewise-constant value over time.
class TimeWeighted {
 public:
  void set(SimTime now, double value);
  double average(SimTime now) const;
  double current() const { return value_; }

 private:
  double value_ = 0.0;
  double integral_ = 0.0;
  SimTime last_change_ = 0;
  SimTime origin_ = 0;
  bool started_ = false;
};

/// Accrues time spent in named states; `fraction(state)` gives the share of
/// accounted time — used for time-in-guest (TIG).
class SpanAccumulator {
 public:
  void add(SimDuration span, bool in_guest) {
    if (span <= 0) return;
    (in_guest ? guest_ : host_) += span;
  }

  SimDuration guest_time() const { return guest_; }
  SimDuration host_time() const { return host_; }
  SimDuration total() const { return guest_ + host_; }

  /// Time-in-guest percentage over accounted time (0 if nothing accrued).
  double tig_percent() const {
    const SimDuration t = total();
    if (t <= 0) return 0.0;
    return 100.0 * static_cast<double>(guest_) / static_cast<double>(t);
  }

  void reset() { guest_ = host_ = 0; }

 private:
  SimDuration guest_ = 0;
  SimDuration host_ = 0;
};

}  // namespace es2
