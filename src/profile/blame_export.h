// es2-blame-v1: the versioned export of a blame breakdown, plus the
// renderers the `tools/latency_blame` CLI and bench_blame share.
//
// The JSON is fully deterministic (insertion-ordered members, integer
// nanoseconds, shortest-round-trip doubles), so same-seed runs export
// byte-identical files — the same discipline as es2-bench-v1 and
// es2-hash-v1. `BlameSummary` is the schema-stable subset two runs are
// diffed over; `diff_blame` names the component whose share of the
// journey total regressed the most.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/json.h"
#include "profile/blame.h"

namespace es2 {

inline constexpr const char* kBlameSchema = "es2-blame-v1";

/// Full export: schema stamp, totals, per-component rows (ns, fraction,
/// p50/p99), per-(vm,queue) groups and the worst-journey ledger.
Json blame_to_json(const BlameBreakdown& b);
std::string blame_to_json_text(const BlameBreakdown& b);
bool write_blame_file(const std::string& path, const BlameBreakdown& b);

/// The comparable subset of one export (enough to render the budget table
/// and diff two runs).
struct BlameSummary {
  std::int64_t journeys = 0;
  std::int64_t complete = 0;
  std::int64_t total_ns = 0;
  std::int64_t end_to_end_p50 = 0;
  std::int64_t end_to_end_p99 = 0;
  struct Component {
    std::string name;
    bool wait = false;
    std::int64_t ns = 0;
    double fraction = 0;
    std::int64_t p50 = 0;
    std::int64_t p99 = 0;
  };
  std::vector<Component> components;  // path order
  std::vector<std::string> worst;     // critical-path lines, worst first
};

BlameSummary blame_summary(const BlameBreakdown& b);
/// Parses an es2-blame-v1 file back into a summary. False (with `error`
/// set) on malformed input or a schema mismatch.
bool blame_summary_from_json(const std::string& text, BlameSummary* out,
                             std::string* error);

/// Markdown latency-budget table: one row per component with ns share of
/// the journey total, p50/p99 and a wait/service tag, followed by the
/// worst-journey ledger. The shares column is footed with its sum so a
/// broken partition is visible in the artifact itself.
std::string render_blame_markdown(const BlameSummary& s);

/// Per-component share drift between two runs.
struct BlameDiff {
  struct Row {
    std::string name;
    double fraction_a = 0;
    double fraction_b = 0;
    std::int64_t ns_a = 0;
    std::int64_t ns_b = 0;
  };
  std::vector<Row> rows;
  std::int64_t p99_a = 0;
  std::int64_t p99_b = 0;
  /// Component with the largest share increase in b vs a ("" when no
  /// component grew). The answer to "what regressed?".
  std::string regressed;
  double regressed_delta = 0;
};

BlameDiff diff_blame(const BlameSummary& a, const BlameSummary& b);
std::string render_blame_diff_markdown(const BlameDiff& d);

}  // namespace es2
