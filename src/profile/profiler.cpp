#include "profile/profiler.h"

namespace es2 {

const char* prof_comp_name(ProfComp c) {
  switch (c) {
    case ProfComp::kVhostTurnTx:
      return "vhost_turn_tx";
    case ProfComp::kVhostTurnRx:
      return "vhost_turn_rx";
    case ProfComp::kVhostWireRx:
      return "vhost_wire_rx";
    case ProfComp::kVhostMsi:
      return "vhost_msi";
    case ProfComp::kGuestNapi:
      return "guest_napi";
    case ProfComp::kGuestIrqService:
      return "guest_irq_service";
    case ProfComp::kVcpuExit:
      return "vcpu_exit";
    case ProfComp::kCfsResched:
      return "cfs_resched";
    case ProfComp::kCount:
      break;
  }
  return "?";
}

Profiler::Profiler(ProfileOptions options)
    : ring_capacity_(options.slice_capacity) {
  span_slots_.resize(kProfComps * kMaxKeys);
  tree_.reserve(kMaxNodes);
  stack_.reserve(kMaxDepth);
  ring_.reserve(ring_capacity_);
}

void Profiler::span_begin(ProfComp comp, unsigned key, SimTime now) {
  if (!enabled_) return;
  if (key >= kMaxKeys) key = kMaxKeys - 1;
  SpanSlot& slot =
      span_slots_[static_cast<std::size_t>(comp) * kMaxKeys + key];
  if (slot.open >= 0) {
    ++dropped_;
    return;
  }
  slot.open = now;
}

void Profiler::span_end(ProfComp comp, unsigned key, SimTime now) {
  if (!enabled_) return;
  if (key >= kMaxKeys) key = kMaxKeys - 1;
  SpanSlot& slot =
      span_slots_[static_cast<std::size_t>(comp) * kMaxKeys + key];
  if (slot.open < 0) {
    ++dropped_;
    return;
  }
  ++slot.count;
  slot.sim_ns += now - slot.open;
  if (ring_capacity_ > 0) {
    ProfSlice slice;
    slice.begin = slot.open;
    slice.end = now;
    slice.comp = comp;
    slice.key = static_cast<std::uint16_t>(key);
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(slice);
    } else {
      ring_[slices_total_ % ring_capacity_] = slice;
    }
    ++slices_total_;
  }
  slot.open = -1;
}

std::int32_t Profiler::child_of(std::int32_t parent, ProfComp comp) {
  // `tree_` is reserved to kMaxNodes and never grows past it, so the link
  // pointer into it survives the push_back below.
  std::int32_t* link = parent < 0
                           ? &root_first_
                           : &tree_[static_cast<std::size_t>(parent)].first_child;
  while (*link >= 0) {
    TreeNode& n = tree_[static_cast<std::size_t>(*link)];
    if (n.comp == comp) return *link;
    link = &n.next_sibling;
  }
  if (tree_.size() >= kMaxNodes) return -1;
  TreeNode node;
  node.parent = parent;
  node.comp = comp;
  tree_.push_back(node);
  const auto index = static_cast<std::int32_t>(tree_.size() - 1);
  *link = index;
  return index;
}

void Profiler::push(ProfComp comp) {
  if (!enabled_) return;
  if (stack_.size() >= kMaxDepth) {
    // Over-deep nesting: keep pop() balanced without growing the stack.
    ++overflow_depth_;
    ++dropped_;
    return;
  }
  std::int32_t node = -1;
  if (stack_.empty()) {
    node = child_of(-1, comp);
  } else if (stack_.back().node >= 0) {
    node = child_of(stack_.back().node, comp);
  }
  if (node < 0) ++dropped_;
  stack_.push_back(Frame{node, std::chrono::steady_clock::now()});
}

void Profiler::pop() {
  if (!enabled_) return;
  if (overflow_depth_ > 0) {
    --overflow_depth_;
    return;
  }
  if (stack_.empty()) return;
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (frame.node < 0) return;
  TreeNode& node = tree_[static_cast<std::size_t>(frame.node)];
  ++node.calls;
  node.host_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - frame.entered)
                      .count();
}

ProfileData Profiler::data() const {
  ProfileData out;
  for (std::size_t c = 0; c < kProfComps; ++c) {
    for (std::size_t k = 0; k < kMaxKeys; ++k) {
      const SpanSlot& slot = span_slots_[c * kMaxKeys + k];
      if (slot.count == 0) continue;
      ProfSpanStat stat;
      stat.comp = static_cast<ProfComp>(c);
      stat.key = static_cast<std::uint16_t>(k);
      stat.count = slot.count;
      stat.sim_ns = slot.sim_ns;
      out.spans.push_back(stat);
    }
  }
  out.nodes.reserve(tree_.size());
  for (const TreeNode& n : tree_) {
    ProfNode node;
    node.parent = n.parent;
    node.comp = n.comp;
    node.calls = n.calls;
    node.host_ns = n.host_ns;
    out.nodes.push_back(node);
  }
  out.slices.reserve(ring_.size());
  if (slices_total_ > ring_.size()) {
    // The ring wrapped: oldest surviving slice sits at the write cursor.
    const std::size_t cursor = slices_total_ % ring_capacity_;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.slices.push_back(ring_[(cursor + i) % ring_.size()]);
    }
  } else {
    out.slices = ring_;
  }
  out.slices_total = slices_total_;
  out.dropped = dropped_;
  return out;
}

}  // namespace es2
