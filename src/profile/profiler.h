// Deterministic zero-alloc scoped profiler for the simulated event path.
//
// Two complementary scope kinds, both passive (no RNG draws, no scheduled
// events, no model-state writes — enabling the profiler cannot perturb a
// run, asserted by tests):
//
//  * **Async component spans** — `span_begin`/`span_end` bracket a unit of
//    simulated work that crosses continuation boundaries (a vhost worker
//    turn, a NAPI poll pass, dispatch→EOI interrupt service). They
//    accumulate per-(component, key) call counts and *sim-time* totals,
//    and push slices into a fixed ring for Perfetto export next to the
//    PR 3 journey bars. The key is the per-queue / per-vm label dimension
//    (flat queue index for backend scopes, vm*16+vcpu for guest scopes).
//
//  * **Sync scopes** — RAII `Profiler::Scope` brackets a synchronous C++
//    region and accumulates *host wall-time* (self and total via a
//    preallocated path tree) plus call counts. Collapsed-stack export of
//    the tree is flamegraph-ready: "where does the simulator itself burn
//    host CPU".
//
// Sim-time totals and call counts are deterministic (same seed →
// identical); host-time is measurement noise by nature and is excluded
// from the byte-identical exports unless explicitly requested.
//
// Everything is preallocated at construction: the span table, the scope
// tree (fixed node budget, overflow counted not grown), the scope stack
// and the slice ring — the steady-state record paths perform zero heap
// allocations (asserted via es2_alloc_hook).
//
// Like the tracer, the *library* is always built; the model-layer call
// sites compile away unless the build sets -DES2_PROFILE=ON (see
// profile/hooks.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "base/units.h"

namespace es2 {

enum class ProfComp : std::uint8_t {
  kVhostTurnTx = 0,  // TX handler turn (key = flat queue index)
  kVhostTurnRx,      // RX handler turn (key = flat queue index)
  kVhostWireRx,      // wire arrival into the backend (key = pair)
  kVhostMsi,         // raise_msi -> router -> delivery (key = vm)
  kGuestNapi,        // guest NAPI poll pass (key = vm*16+pair)
  kGuestIrqService,  // dispatch -> EOI (key = vm*16+vcpu)
  kVcpuExit,         // vm-exit handling (key = vm*16+vcpu)
  kCfsResched,       // CFS pick-next/resched (key = core)
  kCount
};

inline constexpr std::size_t kProfComps =
    static_cast<std::size_t>(ProfComp::kCount);

/// Stable lowercase name ("vhost_turn_tx", ...).
const char* prof_comp_name(ProfComp c);

struct ProfileOptions {
  /// Harness convenience: the Testbed only constructs a Profiler (and
  /// attaches it to the simulator) when set.
  bool enabled = false;
  /// Slice ring capacity; once full the ring overwrites the oldest.
  std::size_t slice_capacity = std::size_t{1} << 14;
};

/// One recorded span slice (for Perfetto export).
struct ProfSlice {
  SimTime begin = 0;
  SimTime end = 0;
  ProfComp comp = ProfComp::kVhostTurnTx;
  std::uint16_t key = 0;
};

/// Aggregate for one (component, key): spans only.
struct ProfSpanStat {
  ProfComp comp = ProfComp::kVhostTurnTx;
  std::uint16_t key = 0;
  std::int64_t count = 0;
  std::int64_t sim_ns = 0;
};

/// One sync-scope tree node (preorder; parent index -1 = root).
struct ProfNode {
  std::int32_t parent = -1;
  ProfComp comp = ProfComp::kVhostTurnTx;
  std::int64_t calls = 0;
  std::int64_t host_ns = 0;  // total (self = total - children totals)
};

/// Self-contained snapshot, safe to keep past the profiler's teardown.
struct ProfileData {
  std::vector<ProfSpanStat> spans;  // (comp, key) ascending, count > 0
  std::vector<ProfNode> nodes;      // creation (deterministic) order
  std::vector<ProfSlice> slices;    // oldest first
  std::uint64_t slices_total = 0;   // recorded incl. overwritten
  std::uint64_t dropped = 0;        // scope pushes lost to budget caps
};

class Profiler {
 public:
  explicit Profiler(ProfileOptions options = {});
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // --- async component spans (sim-time) --------------------------------
  // One open slot per (comp, key); a begin over an already-open slot
  // closes nothing and counts as dropped (the model's span pairs are
  // strictly nested per slot, so this only fires on instrumentation
  // bugs). Keys clamp into [0, kMaxKeys).
  void span_begin(ProfComp comp, unsigned key, SimTime now);
  void span_end(ProfComp comp, unsigned key, SimTime now);

  // --- sync scopes (host wall-time) ------------------------------------
  void push(ProfComp comp);
  void pop();
  class Scope {
   public:
    Scope(Profiler* p, ProfComp comp) : p_(p) {
      if (p_ != nullptr) p_->push(comp);
    }
    ~Scope() {
      if (p_ != nullptr) p_->pop();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* p_;
  };

  /// Deterministic aggregate snapshot (host_ns fields excepted).
  ProfileData data() const;

  static constexpr std::size_t kMaxKeys = 256;

 private:
  static constexpr std::size_t kMaxNodes = 512;
  static constexpr std::size_t kMaxDepth = 32;

  struct SpanSlot {
    SimTime open = -1;
    std::int64_t count = 0;
    std::int64_t sim_ns = 0;
  };
  struct TreeNode {
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    ProfComp comp = ProfComp::kVhostTurnTx;
    std::int64_t calls = 0;
    std::int64_t host_ns = 0;
  };
  struct Frame {
    std::int32_t node = -1;
    std::chrono::steady_clock::time_point entered;
  };

  std::int32_t child_of(std::int32_t parent, ProfComp comp);

  bool enabled_ = false;
  std::vector<SpanSlot> span_slots_;  // kProfComps x kMaxKeys
  std::vector<TreeNode> tree_;        // capacity kMaxNodes, never grown
  std::int32_t root_first_ = -1;      // head of the root sibling chain
  std::vector<Frame> stack_;          // capacity kMaxDepth, never grown
  std::size_t overflow_depth_ = 0;    // pushes beyond kMaxDepth (unstored)
  std::vector<ProfSlice> ring_;       // capacity slice_capacity
  std::size_t ring_capacity_;
  std::uint64_t slices_total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace es2
