#include "profile/blame.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"

namespace es2 {

namespace {

// Mirror of the sched tracepoints' thread tag (cpu/thread.cpp): FNV-1a-32
// of the thread name. Duplicated here so the offline analyzer does not
// pull the whole CPU model into its link line.
std::uint32_t thread_tag(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  return h;
}

// Working landmarks for one journey (first occurrence, as in span.cpp),
// plus the blame-specific extras: the origin's queue/direction and the
// first in-journey interrupt-suppression decision.
struct Landmarks {
  std::uint64_t corr = 0;
  std::int8_t vm = -1;
  std::int8_t vcpu = -1;
  std::int16_t queue = -1;
  bool tx_origin = false;
  SimTime origin = -1;
  SimTime backend = -1;
  SimTime suppressed = -1;
  SimTime msi = -1;
  SimTime dispatch = -1;
  SimTime eoi = -1;
};

void note(SimTime& landmark, SimTime t) {
  if (landmark < 0) landmark = t;
}

/// First value in sorted `v` within [lo, hi], or -1.
SimTime first_in(const std::vector<SimTime>& v, SimTime lo, SimTime hi) {
  auto it = std::lower_bound(v.begin(), v.end(), lo);
  if (it == v.end() || *it > hi) return -1;
  return *it;
}

}  // namespace

const char* blame_component_name(BlameComponent c) {
  switch (c) {
    case BlameComponent::kNotifyWake:
      return "notify_wake";
    case BlameComponent::kSchedDelay:
      return "sched_delay";
    case BlameComponent::kQueueWait:
      return "queue_wait";
    case BlameComponent::kBackendService:
      return "backend_service";
    case BlameComponent::kSuppression:
      return "suppression";
    case BlameComponent::kVcpuWait:
      return "vcpu_wait";
    case BlameComponent::kMsiDelivery:
      return "msi_delivery";
    case BlameComponent::kGuestService:
      return "guest_service";
    case BlameComponent::kCount:
      break;
  }
  return "?";
}

bool blame_component_is_wait(BlameComponent c) {
  switch (c) {
    case BlameComponent::kNotifyWake:
    case BlameComponent::kSchedDelay:
    case BlameComponent::kQueueWait:
    case BlameComponent::kSuppression:
    case BlameComponent::kVcpuWait:
      return true;
    default:
      return false;
  }
}

double BlameBreakdown::fraction(BlameComponent c) const {
  if (total_ns <= 0) return 0;
  return static_cast<double>(component_ns[static_cast<std::size_t>(c)]) /
         static_cast<double>(total_ns);
}

BlameBreakdown analyze_blame(const std::vector<TraceRecord>& records,
                             const BlameOptions& options) {
  // Pass 1: landmarks per journey, plus the global time series the
  // attribution cuts against (worker wakes, worker sched-ins, per-vcpu
  // sched-ins). Records arrive oldest-first from Tracer::snapshot(), so
  // the series come out sorted; sort defensively anyway.
  std::vector<Landmarks> journeys;
  std::unordered_map<std::uint64_t, std::size_t> by_corr;
  by_corr.reserve(records.size() / 4 + 1);

  std::unordered_set<std::uint32_t> worker_tags;
  for (const std::string& name : options.worker_threads) {
    worker_tags.insert(thread_tag(name));
  }
  std::unordered_map<std::uint32_t, int> vcpu_tags;  // tag -> vm*max+vcpu
  for (int vm = 0; vm < options.max_vms; ++vm) {
    for (int vcpu = 0; vcpu < options.max_vcpus; ++vcpu) {
      const std::string name = format("vm%d/vcpu%d", vm, vcpu);
      vcpu_tags.emplace(thread_tag(name), vm * options.max_vcpus + vcpu);
    }
  }

  std::vector<SimTime> wakes;
  std::vector<SimTime> worker_sched_in;
  std::vector<SimTime> turns;
  std::unordered_map<int, std::vector<SimTime>> vcpu_sched_in;

  for (const TraceRecord& r : records) {
    if (r.kind == TraceKind::kWorkerTurn) turns.push_back(r.t);
    if (r.kind == TraceKind::kWorkerWake) {
      wakes.push_back(r.t);
      continue;
    }
    if (r.kind == TraceKind::kSchedIn) {
      if (worker_tags.count(r.arg) != 0) {
        worker_sched_in.push_back(r.t);
      } else if (auto it = vcpu_tags.find(r.arg); it != vcpu_tags.end()) {
        vcpu_sched_in[it->second].push_back(r.t);
      }
      continue;
    }
    if (r.corr == 0) continue;
    auto [it, inserted] = by_corr.try_emplace(r.corr, journeys.size());
    if (inserted) {
      journeys.emplace_back();
      journeys.back().corr = r.corr;
    }
    Landmarks& j = journeys[it->second];
    if (j.vm < 0 && r.vm >= 0) j.vm = r.vm;
    if (j.vcpu < 0 && r.vcpu >= 0) j.vcpu = r.vcpu;
    switch (r.kind) {
      case TraceKind::kKick:
        if (j.origin < 0) {
          j.origin = r.t;
          j.queue = static_cast<std::int16_t>(r.arg);
          j.tx_origin = (r.arg % 2) == 0;
        }
        break;
      case TraceKind::kWireRx:
        if (j.origin < 0) {
          j.origin = r.t;
          // kWireRx carries the pair index; the serviced queue is that
          // pair's RX queue.
          j.queue = static_cast<std::int16_t>(2 * r.arg + 1);
          j.tx_origin = false;
        }
        break;
      case TraceKind::kWorkerTurn:
        note(j.backend, r.t);
        if (j.queue < 0) j.queue = static_cast<std::int16_t>(r.arg);
        break;
      case TraceKind::kIrqSuppressed:
        note(j.suppressed, r.t);
        break;
      case TraceKind::kMsiRaise:
      case TraceKind::kPiPost:
      case TraceKind::kLapicPost:
        note(j.msi, r.t);
        break;
      case TraceKind::kIrqDispatch:
        note(j.dispatch, r.t);
        break;
      case TraceKind::kEoi:
        note(j.eoi, r.t);
        break;
      default:
        break;
    }
  }
  std::sort(wakes.begin(), wakes.end());
  std::sort(worker_sched_in.begin(), worker_sched_in.end());
  std::sort(turns.begin(), turns.end());
  for (auto& [slot, v] : vcpu_sched_in) std::sort(v.begin(), v.end());

  // Pass 2: attribute every complete, monotone journey by cutting
  // [origin, eoi] at the landmark and sched/wake times. Cuts are clamped
  // monotone, so segment sums are exact by construction.
  BlameBreakdown out;
  out.journeys = static_cast<std::int64_t>(journeys.size());
  std::vector<JourneyBlame> attributed;
  attributed.reserve(journeys.size());
  std::unordered_map<std::uint32_t, std::size_t> group_index;

  for (const Landmarks& j : journeys) {
    // Journeys without an I/O origin are intentionally skipped: timer and
    // IPI deliveries mint their own corr at the router, so they show up
    // here with post/dispatch/eoi but no kick/wire_rx — they are not part
    // of the virtual-I/O event path this breakdown budgets.
    if (j.origin < 0 || j.msi < 0 || j.dispatch < 0 || j.eoi < 0) continue;
    // Coalesced journeys usually carry no worker-turn record of their own:
    // the turn is tagged with the kick corr that woke the handler, while
    // the interrupt's corr is the latest arrival it covers. The servicing
    // turn is then the latest turn at or before the MSI — clamped to the
    // origin for packets that arrived mid-turn.
    SimTime backend = j.backend;
    if (backend < j.origin || backend > j.msi) {
      backend = -1;
      auto it = std::upper_bound(turns.begin(), turns.end(), j.msi);
      if (it != turns.begin()) {
        backend = std::max(*(it - 1), j.origin);
      }
    }
    if (backend < 0) continue;
    if (j.msi < backend || j.dispatch < j.msi || j.eoi < j.dispatch) {
      continue;  // coalesced landmark order; not attributable
    }
    JourneyBlame b;
    b.corr = j.corr;
    b.vm = j.vm;
    b.vcpu = j.vcpu;
    b.queue = j.queue;
    b.tx_origin = j.tx_origin;
    b.start = j.origin;
    b.eoi = j.eoi;

    // origin -> backend turn: wake, then on-core, then the handler's turn.
    const SimTime wake = first_in(wakes, j.origin, backend);
    SimTime cut = j.origin;
    const SimTime wake_cut = wake >= 0 ? wake : cut;
    b.ns[static_cast<std::size_t>(BlameComponent::kNotifyWake)] =
        wake_cut - cut;
    cut = wake_cut;
    const SimTime sched =
        wake >= 0 ? first_in(worker_sched_in, cut, backend) : -1;
    const SimTime sched_cut = sched >= 0 ? sched : cut;
    b.ns[static_cast<std::size_t>(BlameComponent::kSchedDelay)] =
        sched_cut - cut;
    cut = sched_cut;
    b.ns[static_cast<std::size_t>(BlameComponent::kQueueWait)] =
        backend - cut;

    // backend turn -> msi: service until the suppression decision (if the
    // journey had one), then the EVENT_IDX window until the raise.
    const SimTime supp =
        (j.suppressed >= backend && j.suppressed <= j.msi) ? j.suppressed
                                                             : j.msi;
    b.ns[static_cast<std::size_t>(BlameComponent::kBackendService)] =
        supp - backend;
    b.ns[static_cast<std::size_t>(BlameComponent::kSuppression)] =
        j.msi - supp;

    // msi -> dispatch: wait for the destination vcpu to go on-core, then
    // route + inject.
    SimTime vcpu_on = -1;
    if (j.vm >= 0 && j.vcpu >= 0) {
      auto it = vcpu_sched_in.find(j.vm * options.max_vcpus + j.vcpu);
      if (it != vcpu_sched_in.end()) {
        vcpu_on = first_in(it->second, j.msi, j.dispatch);
      }
    }
    const SimTime vcpu_cut = vcpu_on >= 0 ? vcpu_on : j.msi;
    b.ns[static_cast<std::size_t>(BlameComponent::kVcpuWait)] =
        vcpu_cut - j.msi;
    b.ns[static_cast<std::size_t>(BlameComponent::kMsiDelivery)] =
        j.dispatch - vcpu_cut;

    b.ns[static_cast<std::size_t>(BlameComponent::kGuestService)] =
        j.eoi - j.dispatch;

    ++out.complete;
    const SimDuration total = b.total();
    out.total_ns += total;
    out.end_to_end.record(total);
    for (std::size_t c = 0; c < kBlameComponents; ++c) {
      out.component_ns[c] += b.ns[c];
      out.component_hist[c].record(b.ns[c]);
    }

    const std::uint32_t gkey =
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b.vm)) << 16) |
        static_cast<std::uint16_t>(b.queue);
    auto [git, ginserted] = group_index.try_emplace(gkey, out.groups.size());
    if (ginserted) {
      out.groups.emplace_back();
      out.groups.back().vm = b.vm;
      out.groups.back().queue = b.queue;
    }
    BlameGroup& g = out.groups[git->second];
    ++g.journeys;
    g.total += total;
    for (std::size_t c = 0; c < kBlameComponents; ++c) g.ns[c] += b.ns[c];

    attributed.push_back(b);
  }

  std::sort(out.groups.begin(), out.groups.end(),
            [](const BlameGroup& a, const BlameGroup& b) {
              if (a.vm != b.vm) return a.vm < b.vm;
              return a.queue < b.queue;
            });

  // Worst-journey ledger: everything beyond k x p99, worst first.
  out.ledger_threshold = static_cast<SimDuration>(
      options.ledger_k * static_cast<double>(out.end_to_end.p99()));
  std::vector<JourneyBlame> worst;
  for (const JourneyBlame& b : attributed) {
    if (b.total() >= out.ledger_threshold) worst.push_back(b);
  }
  std::sort(worst.begin(), worst.end(),
            [](const JourneyBlame& a, const JourneyBlame& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.corr < b.corr;
            });
  if (options.ledger_top_n >= 0 &&
      worst.size() > static_cast<std::size_t>(options.ledger_top_n)) {
    worst.resize(static_cast<std::size_t>(options.ledger_top_n));
  }
  out.worst = std::move(worst);
  return out;
}

std::string blame_critical_path(const JourneyBlame& j) {
  std::string out = format("corr=%llu vm=%d q=%d %s total=%lldns:",
                           static_cast<unsigned long long>(j.corr),
                           static_cast<int>(j.vm), static_cast<int>(j.queue),
                           j.tx_origin ? "tx" : "rx",
                           static_cast<long long>(j.total()));
  for (std::size_t c = 0; c < kBlameComponents; ++c) {
    out += format(" %s=%lld",
                  blame_component_name(static_cast<BlameComponent>(c)),
                  static_cast<long long>(j.ns[c]));
  }
  return out;
}

}  // namespace es2
