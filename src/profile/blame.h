// Critical-path latency attribution ("blame") over event-path traces.
//
// The PR 3 span builder reduces a journey to landmark timestamps and
// reports per-stage p50/p99 — it can say a journey was slow between kick
// and backend turn, but not *why*. The blame analyzer goes one level
// deeper: it partitions every complete kick→backend→MSI→dispatch→EOI
// journey into consecutive integer-nanosecond segments, each attributed
// to a named component of the virtual I/O event path:
//
//   notify_wake      kick/wire arrival -> vhost worker activation
//   sched_delay      worker activation -> worker thread on-core (CFS)
//   queue_wait       remaining origin->turn time (handler queued behind
//                    other virtqueues / poll-loop cadence)
//   backend_service  handler turn -> interrupt decision (copy + used ring)
//   suppression      EVENT_IDX window: suppressed-irq decision -> MSI raise
//   vcpu_wait        MSI raise -> destination vCPU on-core (CFS)
//   msi_delivery     remaining msi->dispatch time (route + inject)
//   guest_service    dispatch -> EOI (guest ISR + NAPI until completion)
//
// The partition is exact by construction: segment durations are computed
// as differences of a monotone cut sequence over [origin, eoi], so their
// integer sum equals the journey total — the "fractions sum to 1"
// invariant tests assert to 1e-9 is really exact integer arithmetic.
// Components classify as wait (notify_wake, sched_delay, queue_wait,
// suppression, vcpu_wait) vs service (the rest); "tail blame" is the
// per-component share of total journey time, with per-component
// histograms for distribution shape and a worst-journeys ledger that
// keeps the full cut sequence of any journey beyond k×p99.
//
// Like the span builder this is an offline pass over a record snapshot —
// nothing here runs on the simulation hot path.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "trace/trace.h"

namespace es2 {

enum class BlameComponent : std::uint8_t {
  kNotifyWake = 0,
  kSchedDelay,
  kQueueWait,
  kBackendService,
  kSuppression,
  kVcpuWait,
  kMsiDelivery,
  kGuestService,
  kCount
};

inline constexpr std::size_t kBlameComponents =
    static_cast<std::size_t>(BlameComponent::kCount);

/// Stable lowercase component name ("notify_wake", ...).
const char* blame_component_name(BlameComponent c);
/// true for time spent waiting (queueing/sched/suppression), false for
/// time spent doing useful work (copy, delivery, guest service).
bool blame_component_is_wait(BlameComponent c);

struct BlameOptions {
  /// Thread names whose kSchedIn records count as "the vhost worker went
  /// on-core". Matched via the same FNV-1a-32 tag the sched tracepoints
  /// carry in `arg`. The canonical testbed names one worker per VM.
  std::vector<std::string> worker_threads = {"vhost-vm0"};
  /// vCPU thread names are conventional: "<vm>/vcpu<j>". The analyzer
  /// derives tags for vm0..vm{max_vms-1} x vcpu0..vcpu{max_vcpus-1}.
  int max_vms = 8;
  int max_vcpus = 16;
  /// Worst-journey ledger: keep up to `ledger_top_n` journeys whose total
  /// exceeds `ledger_k` x p99(end-to-end).
  int ledger_top_n = 8;
  double ledger_k = 1.0;
};

/// One attributed journey: a monotone cut sequence over [start, eoi]
/// rendered as per-component durations (ns). Exact: sum(ns) == total.
struct JourneyBlame {
  std::uint64_t corr = 0;
  std::int8_t vm = -1;
  std::int8_t vcpu = -1;
  /// Flat queue index from the origin record (2*pair for TX kicks,
  /// 2*pair+1 for RX refill kicks / wire RX); -1 when unknown.
  std::int16_t queue = -1;
  /// true when the journey began with a guest kick (TX-side), false for
  /// wire-RX-origin journeys.
  bool tx_origin = false;
  SimTime start = -1;
  SimTime eoi = -1;
  std::array<SimDuration, kBlameComponents> ns{};

  SimDuration total() const { return eoi - start; }
};

/// Per-(vm, queue) rollup — the label dimensions multi-tenant sweeps cut
/// by (ROADMAP item 2: per-tenant virtqueue pairs).
struct BlameGroup {
  std::int8_t vm = -1;
  std::int16_t queue = -1;
  std::int64_t journeys = 0;
  SimDuration total = 0;
  std::array<SimDuration, kBlameComponents> ns{};
};

struct BlameBreakdown {
  std::int64_t journeys = 0;  // journeys observed (any landmarks)
  std::int64_t complete = 0;  // journeys attributed (all landmarks)
  /// Aggregate per-component time over complete journeys.
  std::array<SimDuration, kBlameComponents> component_ns{};
  /// Per-journey per-component durations, distribution shape.
  std::array<Histogram, kBlameComponents> component_hist;
  Histogram end_to_end;
  SimDuration total_ns = 0;  // sum of journey totals
  /// Worst-journey ledger: complete journeys with total > k x p99,
  /// descending by total (ties broken by corr), at most top_n.
  std::vector<JourneyBlame> worst;
  SimDuration ledger_threshold = 0;
  /// Per-(vm, queue) rollups, sorted by (vm, queue).
  std::vector<BlameGroup> groups;

  /// Share of total journey time attributed to `c` (0 when empty).
  double fraction(BlameComponent c) const;
};

/// Walks a record snapshot (any order) and attributes every complete
/// journey. Journeys missing a landmark are counted but not attributed.
BlameBreakdown analyze_blame(const std::vector<TraceRecord>& records,
                             const BlameOptions& options = {});

/// The cut sequence of one journey as "component=<ns>" text, path order,
/// zero segments skipped — the ledger's human-readable critical path.
std::string blame_critical_path(const JourneyBlame& j);

}  // namespace es2
