// Profiler exporters: collapsed stacks (flamegraph-ready), es2-prof-v1
// JSON, and Perfetto slices that ride along the trace exporter.
//
// Determinism contract: `kCalls` and `kSimNs` weights depend only on the
// simulated schedule, so same-seed runs export byte-identical text.
// `kHostNs` is wall-clock measurement and varies run to run — useful for
// "where does the simulator burn host CPU", excluded from golden
// comparisons.
#pragma once

#include <string>
#include <vector>

#include "base/json.h"
#include "profile/profiler.h"
#include "trace/export.h"

namespace es2 {

inline constexpr const char* kProfSchema = "es2-prof-v1";

enum class CollapsedWeight {
  kCalls,   // scope/span entry counts (deterministic)
  kSimNs,   // span sim-time totals (deterministic)
  kHostNs,  // sync-scope host self-time (measurement noise)
};

/// Collapsed-stack text, one "frame;frame;... <weight>" line per stack,
/// sorted — pipe into flamegraph.pl / speedscope. Sync scopes render
/// their tree path under "host;"; async spans render as
/// "sim;<comp>;<comp>:k<key>". Zero-weight lines are skipped.
std::string prof_to_collapsed(const ProfileData& data, CollapsedWeight weight);

/// es2-prof-v1 JSON: span aggregates and the sync-scope tree.
/// `include_host` adds the host_ns fields (off for golden comparisons).
Json prof_to_json(const ProfileData& data, bool include_host = false);
std::string prof_to_json_text(const ProfileData& data,
                              bool include_host = false);

/// The profiler's slice ring as Perfetto slices for
/// `to_perfetto_json(records, spans, slices)`.
std::vector<PerfettoSlice> prof_perfetto_slices(const ProfileData& data);

}  // namespace es2
