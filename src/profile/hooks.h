// Compile-time gate for the hot-path profiler instrumentation.
//
// Mirrors trace/hooks.h: the profile *library* (Profiler, blame analyzer,
// exporters) is always built and unit tested; only the scope/span call
// sites threaded through the model layers are conditional. The build
// defines ES2_PROFILE_ENABLED=1 when configured with -DES2_PROFILE=ON;
// otherwise this header pins it to 0 and every call site wrapped in
// `#if ES2_PROFILE_ENABLED` vanishes — the default build's event path
// carries zero profiling instructions and goldens stay bit-identical.
//
// Call-site pattern:
//
//   #if ES2_PROFILE_ENABLED
//     if (Profiler* pf = active_profiler(sim)) {
//       pf->span_begin(ProfComp::kVhostTurnTx, q, sim.now());
//     }
//   #endif
#pragma once

#ifndef ES2_PROFILE_ENABLED
#define ES2_PROFILE_ENABLED 0
#endif

#if ES2_PROFILE_ENABLED

#include "profile/profiler.h"
#include "sim/simulator.h"

namespace es2 {

/// The simulator's profiler when one is attached and enabled, else null.
inline Profiler* active_profiler(Simulator& sim) {
  Profiler* profiler = sim.profiler();
  return profiler != nullptr && profiler->enabled() ? profiler : nullptr;
}

}  // namespace es2

#endif  // ES2_PROFILE_ENABLED
