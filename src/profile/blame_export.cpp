#include "profile/blame_export.h"

#include <cmath>
#include <fstream>

#include "base/strings.h"

namespace es2 {

Json blame_to_json(const BlameBreakdown& b) {
  Json root = Json::object();
  root.set("schema", Json::string(kBlameSchema));
  root.set("journeys", Json::number(static_cast<double>(b.journeys)));
  root.set("complete", Json::number(static_cast<double>(b.complete)));
  root.set("total_ns", Json::number(static_cast<double>(b.total_ns)));

  Json e2e = Json::object();
  e2e.set("p50", Json::number(static_cast<double>(b.end_to_end.p50())));
  e2e.set("p99", Json::number(static_cast<double>(b.end_to_end.p99())));
  e2e.set("max", Json::number(static_cast<double>(b.end_to_end.max())));
  root.set("end_to_end", std::move(e2e));

  Json comps = Json::array();
  for (std::size_t c = 0; c < kBlameComponents; ++c) {
    const auto comp = static_cast<BlameComponent>(c);
    Json row = Json::object();
    row.set("name", Json::string(blame_component_name(comp)));
    row.set("kind",
            Json::string(blame_component_is_wait(comp) ? "wait" : "service"));
    row.set("ns", Json::number(static_cast<double>(b.component_ns[c])));
    row.set("fraction", Json::number(b.fraction(comp)));
    row.set("p50", Json::number(static_cast<double>(b.component_hist[c].p50())));
    row.set("p99", Json::number(static_cast<double>(b.component_hist[c].p99())));
    comps.push_back(std::move(row));
  }
  root.set("components", std::move(comps));

  Json groups = Json::array();
  for (const BlameGroup& g : b.groups) {
    Json row = Json::object();
    row.set("vm", Json::number(g.vm));
    row.set("queue", Json::number(g.queue));
    row.set("journeys", Json::number(static_cast<double>(g.journeys)));
    row.set("total_ns", Json::number(static_cast<double>(g.total)));
    Json by = Json::object();
    for (std::size_t c = 0; c < kBlameComponents; ++c) {
      by.set(blame_component_name(static_cast<BlameComponent>(c)),
             Json::number(static_cast<double>(g.ns[c])));
    }
    row.set("ns", std::move(by));
    groups.push_back(std::move(row));
  }
  root.set("groups", std::move(groups));

  root.set("ledger_threshold_ns",
           Json::number(static_cast<double>(b.ledger_threshold)));
  Json worst = Json::array();
  for (const JourneyBlame& j : b.worst) {
    Json row = Json::object();
    row.set("corr", Json::number(static_cast<double>(j.corr)));
    row.set("vm", Json::number(j.vm));
    row.set("queue", Json::number(j.queue));
    row.set("direction", Json::string(j.tx_origin ? "tx" : "rx"));
    row.set("start_ns", Json::number(static_cast<double>(j.start)));
    row.set("total_ns", Json::number(static_cast<double>(j.total())));
    Json segs = Json::object();
    for (std::size_t c = 0; c < kBlameComponents; ++c) {
      segs.set(blame_component_name(static_cast<BlameComponent>(c)),
               Json::number(static_cast<double>(j.ns[c])));
    }
    row.set("ns", std::move(segs));
    row.set("critical_path", Json::string(blame_critical_path(j)));
    worst.push_back(std::move(row));
  }
  root.set("worst", std::move(worst));
  return root;
}

std::string blame_to_json_text(const BlameBreakdown& b) {
  return blame_to_json(b).dump(2) + "\n";
}

bool write_blame_file(const std::string& path, const BlameBreakdown& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string text = blame_to_json_text(b);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

BlameSummary blame_summary(const BlameBreakdown& b) {
  BlameSummary s;
  s.journeys = b.journeys;
  s.complete = b.complete;
  s.total_ns = b.total_ns;
  s.end_to_end_p50 = b.end_to_end.p50();
  s.end_to_end_p99 = b.end_to_end.p99();
  for (std::size_t c = 0; c < kBlameComponents; ++c) {
    const auto comp = static_cast<BlameComponent>(c);
    BlameSummary::Component row;
    row.name = blame_component_name(comp);
    row.wait = blame_component_is_wait(comp);
    row.ns = b.component_ns[c];
    row.fraction = b.fraction(comp);
    row.p50 = b.component_hist[c].p50();
    row.p99 = b.component_hist[c].p99();
    s.components.push_back(std::move(row));
  }
  for (const JourneyBlame& j : b.worst) {
    s.worst.push_back(blame_critical_path(j));
  }
  return s;
}

bool blame_summary_from_json(const std::string& text, BlameSummary* out,
                             std::string* error) {
  Json root;
  std::string err;
  if (!Json::parse(text, &root, &err)) {
    if (error != nullptr) *error = err;
    return false;
  }
  if (root.string_or("schema", "") != kBlameSchema) {
    if (error != nullptr) {
      *error = "schema mismatch: expected " + std::string(kBlameSchema) +
               ", got '" + root.string_or("schema", "") + "'";
    }
    return false;
  }
  BlameSummary s;
  s.journeys = static_cast<std::int64_t>(root.number_or("journeys", 0));
  s.complete = static_cast<std::int64_t>(root.number_or("complete", 0));
  s.total_ns = static_cast<std::int64_t>(root.number_or("total_ns", 0));
  if (const Json* e2e = root.find("end_to_end"); e2e != nullptr) {
    s.end_to_end_p50 = static_cast<std::int64_t>(e2e->number_or("p50", 0));
    s.end_to_end_p99 = static_cast<std::int64_t>(e2e->number_or("p99", 0));
  }
  const Json* comps = root.find("components");
  if (comps == nullptr || !comps->is_array()) {
    if (error != nullptr) *error = "missing components array";
    return false;
  }
  for (std::size_t i = 0; i < comps->size(); ++i) {
    const Json& row = comps->at(i);
    BlameSummary::Component c;
    c.name = row.string_or("name", "?");
    c.wait = row.string_or("kind", "service") == "wait";
    c.ns = static_cast<std::int64_t>(row.number_or("ns", 0));
    c.fraction = row.number_or("fraction", 0);
    c.p50 = static_cast<std::int64_t>(row.number_or("p50", 0));
    c.p99 = static_cast<std::int64_t>(row.number_or("p99", 0));
    s.components.push_back(std::move(c));
  }
  if (const Json* worst = root.find("worst");
      worst != nullptr && worst->is_array()) {
    for (std::size_t i = 0; i < worst->size(); ++i) {
      s.worst.push_back(worst->at(i).string_or("critical_path", ""));
    }
  }
  *out = std::move(s);
  return true;
}

namespace {

std::string us_str(std::int64_t ns) {
  return format("%.2f", static_cast<double>(ns) / 1000.0);
}

}  // namespace

std::string render_blame_markdown(const BlameSummary& s) {
  std::string md;
  md += "# Latency budget (es2-blame-v1)\n\n";
  md += format("Journeys: %lld traced, %lld attributed. End-to-end p50 %s us, "
               "p99 %s us.\n\n",
               static_cast<long long>(s.journeys),
               static_cast<long long>(s.complete), us_str(s.end_to_end_p50).c_str(),
               us_str(s.end_to_end_p99).c_str());
  md += "| component | kind | total us | share | p50 us | p99 us |\n";
  md += "|---|---|---:|---:|---:|---:|\n";
  double share_sum = 0;
  for (const BlameSummary::Component& c : s.components) {
    share_sum += c.fraction;
    md += format("| %s | %s | %s | %.2f%% | %s | %s |\n", c.name.c_str(),
                 c.wait ? "wait" : "service", us_str(c.ns).c_str(),
                 c.fraction * 100.0, us_str(c.p50).c_str(),
                 us_str(c.p99).c_str());
  }
  md += format("| **total** |  | %s | %.2f%% |  |  |\n", us_str(s.total_ns).c_str(),
               share_sum * 100.0);
  if (!s.worst.empty()) {
    md += "\n## Worst journeys (beyond k x p99)\n\n";
    for (const std::string& line : s.worst) {
      md += "- `" + line + "`\n";
    }
  }
  return md;
}

BlameDiff diff_blame(const BlameSummary& a, const BlameSummary& b) {
  BlameDiff d;
  d.p99_a = a.end_to_end_p99;
  d.p99_b = b.end_to_end_p99;
  for (const BlameSummary::Component& ca : a.components) {
    BlameDiff::Row row;
    row.name = ca.name;
    row.fraction_a = ca.fraction;
    row.ns_a = ca.ns;
    for (const BlameSummary::Component& cb : b.components) {
      if (cb.name == ca.name) {
        row.fraction_b = cb.fraction;
        row.ns_b = cb.ns;
        break;
      }
    }
    const double delta = row.fraction_b - row.fraction_a;
    if (delta > d.regressed_delta) {
      d.regressed_delta = delta;
      d.regressed = row.name;
    }
    d.rows.push_back(std::move(row));
  }
  return d;
}

std::string render_blame_diff_markdown(const BlameDiff& d) {
  std::string md;
  md += "# Blame diff (B vs A)\n\n";
  md += format("End-to-end p99: %s us -> %s us\n\n", us_str(d.p99_a).c_str(),
               us_str(d.p99_b).c_str());
  md += "| component | share A | share B | delta | total A us | total B us |\n";
  md += "|---|---:|---:|---:|---:|---:|\n";
  for (const BlameDiff::Row& r : d.rows) {
    md += format("| %s | %.2f%% | %.2f%% | %+.2f%% | %s | %s |\n",
                 r.name.c_str(), r.fraction_a * 100.0, r.fraction_b * 100.0,
                 (r.fraction_b - r.fraction_a) * 100.0, us_str(r.ns_a).c_str(),
                 us_str(r.ns_b).c_str());
  }
  if (d.regressed.empty()) {
    md += "\nNo component's share grew.\n";
  } else {
    md += format("\nRegressed component: **%s** (+%.2f%% of journey total)\n",
                 d.regressed.c_str(), d.regressed_delta * 100.0);
  }
  return md;
}

}  // namespace es2
