#include "profile/prof_export.h"

#include <algorithm>

#include "base/strings.h"

namespace es2 {

namespace {

std::string node_path(const ProfileData& data, std::size_t index) {
  std::vector<const char*> frames;
  for (std::int32_t at = static_cast<std::int32_t>(index); at >= 0;
       at = data.nodes[static_cast<std::size_t>(at)].parent) {
    frames.push_back(prof_comp_name(data.nodes[static_cast<std::size_t>(at)].comp));
  }
  std::string path = "host";
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    path += ';';
    path += *it;
  }
  return path;
}

/// Sync-tree self host-time: total minus the children's totals.
std::int64_t node_self_host_ns(const ProfileData& data, std::size_t index) {
  std::int64_t self = data.nodes[index].host_ns;
  for (std::size_t i = 0; i < data.nodes.size(); ++i) {
    if (data.nodes[i].parent == static_cast<std::int32_t>(index)) {
      self -= data.nodes[i].host_ns;
    }
  }
  return self > 0 ? self : 0;
}

}  // namespace

std::string prof_to_collapsed(const ProfileData& data,
                              CollapsedWeight weight) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < data.nodes.size(); ++i) {
    std::int64_t w = 0;
    switch (weight) {
      case CollapsedWeight::kCalls:
        w = data.nodes[i].calls;
        break;
      case CollapsedWeight::kHostNs:
        w = node_self_host_ns(data, i);
        break;
      case CollapsedWeight::kSimNs:
        w = 0;  // sync scopes run inside one callback: no sim extent
        break;
    }
    if (w <= 0) continue;
    lines.push_back(node_path(data, i) + format(" %lld", static_cast<long long>(w)));
  }
  if (weight != CollapsedWeight::kHostNs) {
    for (const ProfSpanStat& s : data.spans) {
      const std::int64_t w =
          weight == CollapsedWeight::kCalls ? s.count : s.sim_ns;
      if (w <= 0) continue;
      lines.push_back(format("sim;%s;%s:k%u %lld", prof_comp_name(s.comp),
                             prof_comp_name(s.comp), static_cast<unsigned>(s.key),
                             static_cast<long long>(w)));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Json prof_to_json(const ProfileData& data, bool include_host) {
  Json root = Json::object();
  root.set("schema", Json::string(kProfSchema));
  Json spans = Json::array();
  for (const ProfSpanStat& s : data.spans) {
    Json row = Json::object();
    row.set("comp", Json::string(prof_comp_name(s.comp)));
    row.set("key", Json::number(s.key));
    row.set("count", Json::number(static_cast<double>(s.count)));
    row.set("sim_ns", Json::number(static_cast<double>(s.sim_ns)));
    spans.push_back(std::move(row));
  }
  root.set("spans", std::move(spans));
  Json nodes = Json::array();
  for (std::size_t i = 0; i < data.nodes.size(); ++i) {
    const ProfNode& n = data.nodes[i];
    Json row = Json::object();
    row.set("comp", Json::string(prof_comp_name(n.comp)));
    row.set("parent", Json::number(n.parent));
    row.set("calls", Json::number(static_cast<double>(n.calls)));
    if (include_host) {
      row.set("host_ns", Json::number(static_cast<double>(n.host_ns)));
      row.set("self_host_ns",
              Json::number(static_cast<double>(node_self_host_ns(data, i))));
    }
    nodes.push_back(std::move(row));
  }
  root.set("nodes", std::move(nodes));
  root.set("slices_total",
           Json::number(static_cast<double>(data.slices_total)));
  root.set("dropped", Json::number(static_cast<double>(data.dropped)));
  return root;
}

std::string prof_to_json_text(const ProfileData& data, bool include_host) {
  return prof_to_json(data, include_host).dump(2) + "\n";
}

std::vector<PerfettoSlice> prof_perfetto_slices(const ProfileData& data) {
  std::vector<PerfettoSlice> out;
  out.reserve(data.slices.size());
  for (const ProfSlice& s : data.slices) {
    PerfettoSlice slice;
    slice.name = format("%s:k%u", prof_comp_name(s.comp),
                        static_cast<unsigned>(s.key));
    slice.track = static_cast<int>(s.comp);
    slice.begin = s.begin;
    slice.end = s.end;
    out.push_back(std::move(slice));
  }
  return out;
}

}  // namespace es2
