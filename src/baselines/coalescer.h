// Virtual interrupt coalescing — the related-work baseline of §II-C
// (Dong et al. interrupt moderation; Ahmad et al. vIC).
//
// Sits on a vhost-net device's MSI path and batches interrupts: one is
// raised only after `batch` completions accumulate or `timeout` elapses
// since the first held completion. Fewer interrupts mean fewer VM exits
// in the Baseline stack — but the held completions add up to `timeout` of
// latency to every I/O, which is the paper's argument for eliminating
// exits instead of interrupts ("doing so is far from trivial, likely
// impeding latency or causing wasted CPU cycles").
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "virtio/vhost.h"

namespace es2 {

class InterruptCoalescer {
 public:
  struct Params {
    int batch = 8;                    // raise after this many completions
    SimDuration timeout = usec(100);  // ... or this long after the first
  };

  /// Installs itself as `backend`'s MSI filter. One coalescer per device.
  explicit InterruptCoalescer(VhostNetBackend& backend)
      : InterruptCoalescer(backend, Params()) {}
  InterruptCoalescer(VhostNetBackend& backend, Params params);
  ~InterruptCoalescer();
  InterruptCoalescer(const InterruptCoalescer&) = delete;
  InterruptCoalescer& operator=(const InterruptCoalescer&) = delete;

  std::int64_t raised() const { return raised_; }
  std::int64_t suppressed() const { return suppressed_; }
  std::int64_t timeout_flushes() const { return timeout_flushes_; }

 private:
  bool on_msi(const MsiMessage& msi);
  void flush(bool from_timeout);

  VhostNetBackend& backend_;
  Params params_;
  int held_ = 0;
  MsiMessage held_msi_;
  EventHandle timer_;
  std::int64_t raised_ = 0;
  std::int64_t suppressed_ = 0;
  std::int64_t timeout_flushes_ = 0;
};

}  // namespace es2
