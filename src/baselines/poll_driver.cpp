#include "baselines/poll_driver.h"

#include "base/assert.h"

namespace es2 {

PollModeDriverTask::PollModeDriverTask(GuestOs& os, VirtioNetFrontend& dev,
                                       int vcpu_affinity, Params params)
    : GuestTask(os, "poll-mode-driver", vcpu_affinity), dev_(dev),
      params_(params) {
  // Interrupt substitution: the device never interrupts again.
  dev.backend().rx_vq().disable_interrupts();
}

double PollModeDriverTask::wasted_fraction() const {
  const std::int64_t total = wasted_polls_ + polled_packets_;
  if (total == 0) return 0.0;
  return static_cast<double>(wasted_polls_) / static_cast<double>(total);
}

void PollModeDriverTask::run_unit(Vcpu& vcpu) {
  // One poll probe per scheduling turn; bursts drain up to `burst` packets.
  vcpu.guest_exec(params_.probe, [this, &vcpu] {
    Virtqueue& rx = dev_.backend().rx_vq();
    // Keep interrupts off even if NAPI-style code re-enabled them.
    rx.disable_interrupts();
    if (rx.used_count() == 0) {
      ++wasted_polls_;
      os().task_done(vcpu);  // spin again on the next turn
      return;
    }
    consume_one(vcpu, params_.burst);
  });
}

void PollModeDriverTask::consume_one(Vcpu& vcpu, int budget_left) {
  Virtqueue& rx = dev_.backend().rx_vq();
  auto entry = rx.pop_used();
  if (!entry || budget_left <= 0) {
    // Refill what we consumed so the backend never starves for buffers.
    int added = 0;
    bool kick = false;
    while (rx.free_slots() > 0) {
      const bool ok = rx.add_avail(Virtqueue::Entry{nullptr, 0});
      ES2_CHECK(ok);
      kick = kick || rx.kick_needed();
      ++added;
    }
    if (added > 0) {
      const Cycles cost =
          static_cast<Cycles>(added) * os().params().rx_refill_per_buffer;
      vcpu.guest_exec(cost, [this, &vcpu, kick] {
        if (kick) {
          vcpu.guest_io_kick([this] { dev_.backend().notify_rx(); },
                             [this, &vcpu] { os().task_done(vcpu); });
          return;
        }
        os().task_done(vcpu);
      });
      return;
    }
    os().task_done(vcpu);
    return;
  }
  ES2_CHECK(entry->packet != nullptr);
  const GuestParams& p = os().params();
  const Cycles cost =
      p.rx_udp_per_packet +
      static_cast<Cycles>(p.rx_cycles_per_byte *
                          static_cast<double>(entry->packet->payload));
  PacketPtr packet = entry->packet;
  vcpu.guest_exec(cost, [this, &vcpu, budget_left,
                         packet = std::move(packet)]() mutable {
    ++polled_packets_;
    os().deliver_to_stack(vcpu, packet, [this, &vcpu, budget_left] {
      consume_one(vcpu, budget_left - 1);
    });
  });
}

}  // namespace es2
