// Guest poll-mode driver — the interrupt-substitution baseline of §II-C
// (sEBP; DPDK/Netmap-style poll-mode drivers).
//
// A guest task that permanently disables the device's receive interrupts
// and busy-polls the RX used ring instead: interrupts vanish entirely (no
// delivery or completion exits even in the Baseline stack), and receive
// latency is one poll cycle. The cost is the paper's critique: the poll
// loop burns the vCPU whether or not traffic arrives ("hard to control
// the frequency of polling, likely leading to excess I/O latency or
// wasted CPU cycles"). `wasted_polls()` quantifies it.
//
// NOTE: unlike everything in src/es2, this baseline REQUIRES modifying the
// guest (it replaces the NAPI driver) — exactly the deployment burden the
// paper holds against this class of approaches.
#pragma once

#include <cstdint>

#include "guest/guest_os.h"
#include "guest/virtio_net.h"

namespace es2 {

class PollModeDriverTask final : public GuestTask {
 public:
  struct Params {
    /// Cost of one empty poll probe of the used ring.
    Cycles probe = 400;
    /// Max packets consumed per poll burst before yielding to other tasks.
    int burst = 32;
  };

  PollModeDriverTask(GuestOs& os, VirtioNetFrontend& dev, int vcpu_affinity)
      : PollModeDriverTask(os, dev, vcpu_affinity, Params()) {}
  PollModeDriverTask(GuestOs& os, VirtioNetFrontend& dev, int vcpu_affinity,
                     Params params);

  void run_unit(Vcpu& vcpu) override;

  std::int64_t polled_packets() const { return polled_packets_; }
  /// Poll probes that found the ring empty — pure wasted CPU.
  std::int64_t wasted_polls() const { return wasted_polls_; }
  /// Fraction of poll probes that were wasted.
  double wasted_fraction() const;

 private:
  void consume_one(Vcpu& vcpu, int budget_left);

  VirtioNetFrontend& dev_;
  Params params_;
  std::int64_t polled_packets_ = 0;
  std::int64_t wasted_polls_ = 0;
};

}  // namespace es2
