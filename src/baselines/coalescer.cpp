#include "baselines/coalescer.h"

#include "base/assert.h"

namespace es2 {

InterruptCoalescer::InterruptCoalescer(VhostNetBackend& backend, Params params)
    : backend_(backend), params_(params) {
  ES2_CHECK(params_.batch >= 1);
  ES2_CHECK(params_.timeout > 0);
  backend.set_msi_filter([this](const MsiMessage& msi) { return on_msi(msi); });
}

InterruptCoalescer::~InterruptCoalescer() {
  backend_.set_msi_filter(nullptr);
  timer_.cancel();
}

bool InterruptCoalescer::on_msi(const MsiMessage& msi) {
  held_msi_ = msi;
  if (++held_ >= params_.batch) {
    flush(/*from_timeout=*/false);
    return false;  // flush already raised it
  }
  ++suppressed_;
  if (held_ == 1) {
    timer_ = backend_.vm().host().sim().after(
        params_.timeout, [this] { flush(/*from_timeout=*/true); });
  }
  return false;
}

void InterruptCoalescer::flush(bool from_timeout) {
  if (held_ == 0) return;
  held_ = 0;
  timer_.cancel();
  ++raised_;
  if (from_timeout) ++timeout_flushes_;
  backend_.raise_msi_now(held_msi_);
}

}  // namespace es2
