// ES2 configuration axes — the four stacks of the paper's evaluation:
//
//   Baseline : emulated LAPIC, stock vhost, affinity routing
//   PI       : + posted interrupts (exit-less delivery & completion)
//   PI+H     : + Hybrid I/O Handling (Algorithm 1, quota polling)
//   PI+H+R   : + Intelligent Interrupt Redirection  — full ES2
#pragma once

#include <string>

#include "vm/vcpu.h"

namespace es2 {

/// Redirection target policies (the paper's policy plus ablation variants).
enum class RedirectPolicy {
  kPaper,          // lightest-loaded online vCPU, sticky until descheduled;
                   // offline fallback = head of deschedule-ordered list
  kNoSticky,       // lightest-loaded online vCPU on every interrupt
  kRoundRobin,     // rotate over online vCPUs
  kRandomOffline,  // paper online policy, random offline prediction
};

struct Es2Config {
  bool posted_interrupts = false;
  bool hybrid_io = false;
  bool redirection = false;
  /// Algorithm 1 quota (the vhost poll_quota module parameter). The paper
  /// selects 4 for TCP-dominated and 8 for UDP-dominated workloads.
  int poll_quota = 4;
  RedirectPolicy policy = RedirectPolicy::kPaper;
  /// Multi-queue extension: give each MSI vector its own sticky steering
  /// target instead of one per VM, so a multi-queue device's pairs settle
  /// on distinct vCPUs. Off by default — single-queue stacks are unchanged.
  bool per_queue_affinity = false;

  static Es2Config baseline() { return {}; }
  static Es2Config pi() { return {true, false, false, 4, RedirectPolicy::kPaper}; }
  static Es2Config pi_h(int quota = 4) {
    return {true, true, false, quota, RedirectPolicy::kPaper};
  }
  static Es2Config pi_h_r(int quota = 4) {
    return {true, true, true, quota, RedirectPolicy::kPaper};
  }
  /// All four stacks in the paper's presentation order.
  static const Es2Config* all4();

  InterruptVirtMode irq_mode() const {
    return posted_interrupts ? InterruptVirtMode::kPostedInterrupt
                             : InterruptVirtMode::kEmulatedLapic;
  }

  std::string name() const;
};

}  // namespace es2
