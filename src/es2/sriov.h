// Direct device assignment (SR-IOV VF) with VT-d posted interrupts —
// the paper's §VII applicability discussion, implemented.
//
// A `DirectNic` models a virtual function assigned to the VM:
//   * guest transmits by writing the VF doorbell directly — an ordinary
//     MMIO store into the passed-through BAR, NO VM exit, no vhost;
//   * ingress packets raise the VF's MSI-X interrupt; with VT-d PI the
//     physical interrupt is posted straight into the vCPU's descriptor
//     with no hypervisor involvement (CPU-side PI then delivers exit-less).
//
// Because VT-d PI resolves its destination from a posted-interrupt
// descriptor chosen by software, ES2's intelligent redirection applies
// unchanged: the MSI still flows through the IRQ router where the
// interceptor may repoint it at an online vCPU.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/link.h"
#include "net/packet.h"
#include "vm/vm.h"

namespace es2 {

struct DirectNicParams {
  /// Guest-side doorbell + descriptor write (an untrapped MMIO store).
  Cycles doorbell = 800;
  /// VF hardware DMA + wire handoff latency per packet.
  SimDuration dma_latency = 900;  // ns
  /// VT-d interrupt remapping/posting hardware latency.
  SimDuration posting_latency = 250;  // ns
  int rx_queue_depth = 1024;
};

class DirectNic {
 public:
  DirectNic(Vm& vm, Link& tx_link, DirectNicParams params = {});
  DirectNic(const DirectNic&) = delete;
  DirectNic& operator=(const DirectNic&) = delete;

  Vm& vm() { return vm_; }

  /// Guest transmit from `vcpu` context: doorbell write + DMA, no VM exit.
  void transmit(Vcpu& vcpu, PacketPtr packet, std::function<void()> done);

  /// Wire ingress: DMA into the guest buffer, then the VF's MSI-X
  /// interrupt via VT-d PI (through the router, so redirection applies).
  void receive_from_wire(PacketPtr packet);

  void set_rx_msi(MsiMessage msi) { rx_msi_ = msi; }
  const MsiMessage& rx_msi() const { return rx_msi_; }

  /// Received packets awaiting the guest driver (the guest pops these in
  /// its interrupt handler).
  bool rx_pending() const { return !rx_queue_.empty(); }
  PacketPtr pop_rx();

  std::int64_t tx_packets() const { return tx_packets_; }
  std::int64_t rx_packets() const { return rx_packets_; }
  std::int64_t rx_dropped() const { return rx_dropped_; }

 private:
  Vm& vm_;
  Link& tx_link_;
  DirectNicParams params_;
  MsiMessage rx_msi_;
  std::deque<PacketPtr> rx_queue_;
  std::int64_t tx_packets_ = 0;
  std::int64_t rx_packets_ = 0;
  std::int64_t rx_dropped_ = 0;
};

}  // namespace es2
