#include "es2/sriov.h"

#include "base/assert.h"

namespace es2 {

DirectNic::DirectNic(Vm& vm, Link& tx_link, DirectNicParams params)
    : vm_(vm), tx_link_(tx_link), params_(params) {
  rx_msi_ = MsiMessage{static_cast<Vector>(kFirstDeviceVector + 4), 0,
                       DeliveryMode::kLowestPriority};
}

void DirectNic::transmit(Vcpu& vcpu, PacketPtr packet,
                         std::function<void()> done) {
  // The doorbell is an ordinary store into the passed-through BAR: guest
  // work only, no exit (this is exactly what direct assignment buys).
  vcpu.guest_exec(params_.doorbell,
                  [this, packet = std::move(packet),
                   done = std::move(done)]() mutable {
                    ++tx_packets_;
                    Simulator& sim = vm_.host().sim();
                    sim.after(params_.dma_latency,
                              [this, packet = std::move(packet)]() mutable {
                                tx_link_.transmit(std::move(packet));
                              });
                    done();
                  });
}

void DirectNic::receive_from_wire(PacketPtr packet) {
  if (static_cast<int>(rx_queue_.size()) >= params_.rx_queue_depth) {
    ++rx_dropped_;
    return;
  }
  rx_queue_.push_back(std::move(packet));
  ++rx_packets_;
  // VT-d posting: hardware latency, then the MSI goes through the router
  // (ES2's interception point) and posts into the chosen vCPU.
  vm_.host().sim().after(params_.posting_latency, [this] {
    vm_.host().router().deliver_msi(vm_, rx_msi_);
  });
}

PacketPtr DirectNic::pop_rx() {
  ES2_CHECK_MSG(!rx_queue_.empty(), "pop_rx on empty VF queue");
  PacketPtr p = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return p;
}

}  // namespace es2
