#include "es2/redirect.h"

#include "base/assert.h"

namespace es2 {

InterruptRedirector::InterruptRedirector(KvmHost& host, RedirectPolicy policy,
                                         std::uint64_t seed,
                                         bool per_queue_affinity)
    : host_(host),
      policy_(policy),
      rng_(Rng::stream(seed, "redirector")),
      per_queue_affinity_(per_queue_affinity) {
  host.router().set_interceptor(
      [this](Vm& vm, const MsiMessage& msg) -> int {
        if (!tracks(vm)) return -1;  // untracked VMs keep their affinity
        return select_target(vm, msg);
      });
}

void InterruptRedirector::track(Vm& vm) {
  if (tracks(vm)) return;
  trackers_.emplace(&vm, std::make_unique<VcpuStatusTracker>(vm));
}

bool InterruptRedirector::tracks(const Vm& vm) const {
  return trackers_.count(&vm) != 0;
}

VcpuStatusTracker& InterruptRedirector::tracker(Vm& vm) {
  const auto it = trackers_.find(&vm);
  ES2_CHECK_MSG(it != trackers_.end(), "VM is not tracked");
  return *it->second;
}

void InterruptRedirector::on_device_reset(Vm& vm) {
  if (!tracks(vm)) return;
  tracker(vm).set_sticky_target(-1);
  vector_sticky_.erase(&vm);
}

int InterruptRedirector::sticky_for(Vm& vm, const MsiMessage& msg) {
  if (!per_queue_affinity_) return tracker(vm).sticky_target();
  const auto vm_it = vector_sticky_.find(&vm);
  if (vm_it == vector_sticky_.end()) return -1;
  const auto it = vm_it->second.find(msg.vector);
  return it == vm_it->second.end() ? -1 : it->second;
}

void InterruptRedirector::set_sticky_for(Vm& vm, const MsiMessage& msg,
                                         int target) {
  if (!per_queue_affinity_) {
    tracker(vm).set_sticky_target(target);
    return;
  }
  vector_sticky_[&vm][msg.vector] = target;
}

int InterruptRedirector::select_target(Vm& vm, const MsiMessage& msg) {
  // UP VMs: redirection can have no effect (paper §IV-C, special case 1).
  if (vm.num_vcpus() <= 1) return msg.dest_vcpu;

  VcpuStatusTracker& t = tracker(vm);

  switch (policy_) {
    case RedirectPolicy::kPaper: {
      const int sticky = sticky_for(vm, msg);
      if (sticky >= 0 && t.is_online(sticky)) {
        ++via_sticky_;
        t.count_interrupt(sticky);
        return sticky;
      }
      const int lightest = t.lightest_online();
      if (lightest >= 0) {
        ++via_online_;
        set_sticky_for(vm, msg, lightest);
        t.count_interrupt(lightest);
        return lightest;
      }
      const int predicted = t.predict_next_online();
      if (predicted >= 0) {
        ++via_offline_;
        t.count_interrupt(predicted);
        return predicted;
      }
      return msg.dest_vcpu;
    }

    case RedirectPolicy::kNoSticky: {
      const int lightest = t.lightest_online();
      if (lightest >= 0) {
        ++via_online_;
        t.count_interrupt(lightest);
        return lightest;
      }
      const int predicted = t.predict_next_online();
      if (predicted >= 0) {
        ++via_offline_;
        t.count_interrupt(predicted);
        return predicted;
      }
      return msg.dest_vcpu;
    }

    case RedirectPolicy::kRoundRobin: {
      const auto& online = t.online();
      if (!online.empty()) {
        ++via_online_;
        const int v = online[rr_cursor_++ % online.size()];
        t.count_interrupt(v);
        return v;
      }
      const int predicted = t.predict_next_online();
      if (predicted >= 0) {
        ++via_offline_;
        t.count_interrupt(predicted);
        return predicted;
      }
      return msg.dest_vcpu;
    }

    case RedirectPolicy::kRandomOffline: {
      const int sticky = sticky_for(vm, msg);
      if (sticky >= 0 && t.is_online(sticky)) {
        ++via_sticky_;
        t.count_interrupt(sticky);
        return sticky;
      }
      const int lightest = t.lightest_online();
      if (lightest >= 0) {
        ++via_online_;
        set_sticky_for(vm, msg, lightest);
        t.count_interrupt(lightest);
        return lightest;
      }
      const auto& offline = t.offline();
      if (!offline.empty()) {
        ++via_offline_;
        const int v = offline[rng_.next_below(offline.size())];
        t.count_interrupt(v);
        return v;
      }
      return msg.dest_vcpu;
    }
  }
  ES2_UNREACHABLE("bad redirect policy");
}

void InterruptRedirector::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_u64(rr_cursor_);
  w.put_i64(via_sticky_);
  w.put_i64(via_online_);
  w.put_i64(via_offline_);
  // Walk VMs in host order; trackers_ is an unordered_map keyed by
  // pointer and must never drive serialization order.
  std::uint32_t tracked = 0;
  for (int i = 0; i < host_.num_vms(); ++i)
    if (tracks(host_.vm(i))) ++tracked;
  w.put_u32(tracked);
  for (int i = 0; i < host_.num_vms(); ++i) {
    Vm& vm = host_.vm(i);
    if (!tracks(vm)) continue;
    const auto& t = *trackers_.at(&vm);
    w.put_u32(static_cast<std::uint32_t>(vm.id()));
    w.put_u32(static_cast<std::uint32_t>(t.online().size()));
    for (int v : t.online()) w.put_u32(static_cast<std::uint32_t>(v));
    w.put_u32(static_cast<std::uint32_t>(t.offline().size()));
    for (int v : t.offline()) w.put_u32(static_cast<std::uint32_t>(v));
    w.put_u32(static_cast<std::uint32_t>(
        t.sticky_target() < 0 ? 0xFFFFFFFFu
                              : static_cast<unsigned>(t.sticky_target())));
    for (int v = 0; v < vm.num_vcpus(); ++v) w.put_i64(t.interrupts(v));
    w.put_i64(t.transitions());
  }
  if (per_queue_affinity_) {
    // Appended only when the multi-queue affinity extension is on, so the
    // default stacks keep their exact es2-snap-v1 byte layout. Same host-
    // order walk; the per-VM vector map is ordered by vector number.
    for (int i = 0; i < host_.num_vms(); ++i) {
      Vm& vm = host_.vm(i);
      if (!tracks(vm)) continue;
      const auto vm_it = vector_sticky_.find(&vm);
      const std::size_t entries =
          vm_it == vector_sticky_.end() ? 0 : vm_it->second.size();
      w.put_u32(static_cast<std::uint32_t>(entries));
      if (vm_it == vector_sticky_.end()) continue;
      for (const auto& [vector, target] : vm_it->second) {
        w.put_u32(static_cast<std::uint32_t>(vector));
        w.put_u32(static_cast<std::uint32_t>(target));
      }
    }
  }
}

}  // namespace es2
