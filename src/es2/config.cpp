#include "es2/config.h"

namespace es2 {

const Es2Config* Es2Config::all4() {
  static const Es2Config configs[4] = {
      Es2Config::baseline(),
      Es2Config::pi(),
      Es2Config::pi_h(),
      Es2Config::pi_h_r(),
  };
  return configs;
}

std::string Es2Config::name() const {
  if (!posted_interrupts) return "Baseline";
  std::string n = "PI";
  if (hybrid_io) n += "+H";
  if (redirection) n += "+R";
  return n;
}

}  // namespace es2
