// vCPU scheduling-status tracker (paper §IV-C / §V-B).
//
// ES2 "establishes an information channel to the vCPU scheduler": this
// class subscribes to the per-thread preemption notifiers (the analogue of
// KVM's kvm_sched_in / kvm_sched_out) and maintains, per VM:
//
//   * the *online* list — vCPUs currently running on a physical core;
//   * the *offline* list — descheduled vCPUs, ordered by deschedule time
//     (head = offline the longest = predicted to regain the CPU first);
//   * a per-vCPU processed-interrupt count for load balancing;
//   * the sticky redirection target (kept until it is descheduled, for
//     cache affinity).
//
// The real implementation must synchronize these lists across cores; the
// simulation is single-threaded per host, so the lock is conceptual — but
// update ordering is kept identical to the paper's description.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "vm/vm.h"

namespace es2 {

class VcpuStatusTracker {
 public:
  explicit VcpuStatusTracker(Vm& vm);
  VcpuStatusTracker(const VcpuStatusTracker&) = delete;
  VcpuStatusTracker& operator=(const VcpuStatusTracker&) = delete;

  Vm& vm() { return vm_; }

  /// vCPU indices currently running on a core (unordered).
  const std::vector<int>& online() const { return online_; }

  /// Deschedule-ordered offline list (front = longest offline).
  const std::deque<int>& offline() const { return offline_; }

  bool is_online(int vcpu) const;

  /// The paper's offline prediction: the vCPU that has been offline the
  /// longest, i.e. the head of the offline list. Returns -1 if none.
  int predict_next_online() const {
    return offline_.empty() ? -1 : offline_.front();
  }

  /// The online vCPU with the fewest processed interrupts, or -1.
  int lightest_online() const;

  /// Current sticky target (-1 when unset).
  int sticky_target() const { return sticky_target_; }
  void set_sticky_target(int vcpu) { sticky_target_ = vcpu; }

  void count_interrupt(int vcpu);
  std::int64_t interrupts(int vcpu) const {
    return irq_counts_[static_cast<size_t>(vcpu)];
  }

  std::int64_t transitions() const { return transitions_; }

 private:
  void on_sched(int vcpu, bool in);

  Vm& vm_;
  std::vector<int> online_;
  std::deque<int> offline_;
  std::vector<std::int64_t> irq_counts_;
  int sticky_target_ = -1;
  std::int64_t transitions_ = 0;
};

}  // namespace es2
