// Intelligent Interrupt Redirection (paper §IV-C / §V-C).
//
// Installed as the IRQ router's interceptor (the kvm_set_msi_irq hook).
// For each device MSI toward a tracked SMP VM it selects the most
// appropriate destination vCPU:
//
//   1. the current sticky target if it is still online (cache affinity);
//   2. otherwise the online vCPU with the lightest interrupt load
//      (workload balancing), which becomes the new sticky target;
//   3. otherwise — no vCPU online — the offline vCPU predicted to regain
//      the CPU first: the head of the deschedule-ordered offline list.
//
// Non-device vectors never reach this code (the router filters them), and
// uniprocessor VMs are left untouched (redirection cannot help them).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "base/rng.h"
#include "es2/config.h"
#include "es2/tracker.h"
#include "vm/vm.h"

namespace es2 {

class InterruptRedirector : public Snapshottable {
 public:
  InterruptRedirector(KvmHost& host, RedirectPolicy policy,
                      std::uint64_t seed = 1,
                      bool per_queue_affinity = false);
  InterruptRedirector(const InterruptRedirector&) = delete;
  InterruptRedirector& operator=(const InterruptRedirector&) = delete;

  /// Starts tracking a VM's vCPU scheduling status. Must be called before
  /// the VM starts so no transition is missed.
  void track(Vm& vm);

  VcpuStatusTracker& tracker(Vm& vm);
  bool tracks(const Vm& vm) const;

  // Decision statistics.
  std::int64_t via_sticky() const { return via_sticky_; }
  std::int64_t via_online() const { return via_online_; }
  std::int64_t via_offline_prediction() const { return via_offline_; }

  /// The interceptor body, exposed for tests: returns the destination
  /// vCPU index (or the message's own destination).
  int select_target(Vm& vm, const MsiMessage& msg);

  /// Device-reset hook (wired to the vhost backend's reset listener):
  /// drops the sticky steering target so the renegotiated device starts
  /// from a fresh balancing decision — the pre-reset affinity carries no
  /// cache benefit across a ring teardown. The status tracker itself keeps
  /// running: vCPU online/offline transitions are scheduler facts,
  /// independent of device lifecycle.
  void on_device_reset(Vm& vm);

  /// Serializes the redirector RNG, decision counters and every tracked
  /// VM's status-tracker state (host VM order, never the map's).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  /// Sticky lookup/update: per (VM, vector) when per-queue affinity is on,
  /// else the tracker's single per-VM target.
  int sticky_for(Vm& vm, const MsiMessage& msg);
  void set_sticky_for(Vm& vm, const MsiMessage& msg, int target);

  KvmHost& host_;
  RedirectPolicy policy_;
  Rng rng_;
  bool per_queue_affinity_ = false;
  std::unordered_map<const Vm*, std::unique_ptr<VcpuStatusTracker>> trackers_;
  // Per-(VM, vector) sticky targets (per-queue affinity only). An ordered
  // map so snapshot serialization never depends on hash order.
  std::unordered_map<const Vm*, std::map<int, int>> vector_sticky_;
  std::uint64_t rr_cursor_ = 0;
  std::int64_t via_sticky_ = 0;
  std::int64_t via_online_ = 0;
  std::int64_t via_offline_ = 0;
};

}  // namespace es2
