// ES2 system facade: applies one Es2Config to a host/VM/device trio.
//
// This is the public entry point a deployment uses:
//
//   es2::Es2Config cfg = es2::Es2Config::pi_h_r();
//   es2::Es2System es2sys(host, cfg);
//   Vm& vm = host.create_vm("vm0", pins, cfg.irq_mode());
//   ... build guest + backend ...
//   es2sys.enable_for(vm, backend);   // hybrid quota + redirection tracking
//
// Everything ES2 does is host-side: the guest model is untouched (the
// paper's "no guest modification" property).
#pragma once

#include <vector>

#include "es2/config.h"
#include "es2/redirect.h"
#include "virtio/vhost.h"
#include "vm/vm.h"

namespace es2 {

/// Hybrid I/O Handling (paper §IV-B): installs Algorithm 1's quota on a
/// device's virtqueue handlers. The paper's empirically selected values.
struct HybridIoHandling {
  static constexpr int kQuotaTcp = 4;
  static constexpr int kQuotaUdp = 8;

  static void attach(VhostNetBackend& backend, int quota) {
    backend.set_poll_quota(quota);
  }
  static void detach(VhostNetBackend& backend) { backend.set_poll_quota(0); }
};

class Es2System {
 public:
  Es2System(KvmHost& host, Es2Config config);

  const Es2Config& config() const { return config_; }

  /// Applies the configured components to a VM and its paravirtual device.
  void enable_for(Vm& vm, VhostNetBackend& backend);

  /// Present only when redirection is on.
  InterruptRedirector* redirector() { return redirector_.get(); }

 private:
  KvmHost& host_;
  Es2Config config_;
  std::unique_ptr<InterruptRedirector> redirector_;
};

}  // namespace es2
