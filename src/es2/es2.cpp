#include "es2/es2.h"

#include "base/assert.h"

namespace es2 {

Es2System::Es2System(KvmHost& host, Es2Config config)
    : host_(host), config_(config) {
  if (config_.redirection) {
    redirector_ = std::make_unique<InterruptRedirector>(
        host, config_.policy, host.sim().seed(), config_.per_queue_affinity);
  }
}

void Es2System::enable_for(Vm& vm, VhostNetBackend& backend) {
  ES2_CHECK_MSG(vm.irq_mode() == config_.irq_mode(),
                "VM interrupt mode does not match the ES2 configuration");
  if (config_.hybrid_io) {
    HybridIoHandling::attach(backend, config_.poll_quota);
  }
  if (config_.redirection) {
    redirector_->track(vm);
  }
}

}  // namespace es2
