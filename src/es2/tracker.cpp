#include "es2/tracker.h"

#include <algorithm>

#include "base/assert.h"

namespace es2 {

VcpuStatusTracker::VcpuStatusTracker(Vm& vm)
    : vm_(vm), irq_counts_(static_cast<size_t>(vm.num_vcpus()), 0) {
  // All vCPUs start offline, ordered by index (deterministic bootstrap).
  for (int i = 0; i < vm.num_vcpus(); ++i) {
    offline_.push_back(i);
    vm.vcpu(i).thread().add_notifier(
        [this, i](SimThread&, bool in) { on_sched(i, in); });
  }
}

bool VcpuStatusTracker::is_online(int vcpu) const {
  return std::find(online_.begin(), online_.end(), vcpu) != online_.end();
}

int VcpuStatusTracker::lightest_online() const {
  int best = -1;
  std::int64_t best_count = 0;
  for (const int v : online_) {
    const std::int64_t c = irq_counts_[static_cast<size_t>(v)];
    if (best < 0 || c < best_count || (c == best_count && v < best)) {
      best = v;
      best_count = c;
    }
  }
  return best;
}

void VcpuStatusTracker::count_interrupt(int vcpu) {
  ES2_CHECK(vcpu >= 0 && vcpu < vm_.num_vcpus());
  ++irq_counts_[static_cast<size_t>(vcpu)];
}

void VcpuStatusTracker::on_sched(int vcpu, bool in) {
  ++transitions_;
  if (in) {
    // offline -> online.
    const auto it = std::find(offline_.begin(), offline_.end(), vcpu);
    if (it != offline_.end()) offline_.erase(it);
    if (!is_online(vcpu)) online_.push_back(vcpu);
    return;
  }
  // online -> offline: append at the tail, recording deschedule order.
  const auto it = std::find(online_.begin(), online_.end(), vcpu);
  if (it != online_.end()) online_.erase(it);
  offline_.push_back(vcpu);
  // The paper keeps redirecting to a target only until it is descheduled.
  if (sticky_target_ == vcpu) sticky_target_ = -1;
}

}  // namespace es2
