// CFS-like fair scheduler over simulated cores.
//
// Mirrors the pieces of the Linux Completely Fair Scheduler that matter for
// the paper's experiments: per-core runqueues ordered by virtual runtime,
// weight-scaled vruntime accrual (so "lowest-priority CPU burn" threads
// yield to vCPU threads), a latency-target timeslice with minimum
// granularity, sleeper placement, wakeup preemption, and least-loaded core
// selection for unpinned threads.
//
// All scheduling decisions are funneled through a deferred per-core
// resched event, so component callbacks never observe a context switch in
// their own stack frame.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "cpu/thread.h"
#include "sim/simulator.h"
#include "stats/meters.h"

namespace es2 {

class MetricsRegistry;

struct CfsParams {
  SimDuration sched_latency = msec(6);
  SimDuration min_granularity = usec(750);
  SimDuration wakeup_granularity = msec(1);
  /// Sleeper bonus: a waking thread is placed no further back than
  /// min_vruntime - sched_latency (Linux GENTLE_FAIR_SLEEPERS halves it).
  bool gentle_sleepers = true;
  /// Multiplicative jitter (uniform +/- fraction) applied to each
  /// timeslice. Real cores never tick in lockstep — interrupts, cache
  /// misses and softirqs desynchronize them. Without this, symmetric
  /// multi-VM setups gang-schedule sibling vCPUs across cores, which is
  /// neither realistic nor what the paper's redirection premise assumes.
  double slice_jitter = 0.12;
};

class CfsScheduler;

/// One physical core: at most one running thread plus a fair runqueue.
class Core {
 public:
  Core(CfsScheduler& sched, int id);
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }
  SimThread* current() const { return current_; }
  bool idle() const { return current_ == nullptr; }

  /// Runnable threads including the one currently running.
  int nr_running() const;

  /// Total load weight of runnable threads (for least-loaded placement).
  std::int64_t load() const;

  /// Fraction of time this core was busy since simulation start.
  double utilization(SimTime now) const { return busy_.average(now); }

  /// Floor of the core's virtual-runtime clock; must never move backwards
  /// (exposed for invariant auditing).
  double min_vruntime() const { return min_vruntime_; }

  std::uint64_t context_switches() const { return context_switches_; }

  /// Wakeup preemptions requested on this core (a waking thread beat the
  /// running one by more than the wakeup granularity).
  std::uint64_t preemptions() const { return preemptions_; }

 private:
  friend class CfsScheduler;

  struct ByVruntime {
    bool operator()(const SimThread* a, const SimThread* b) const {
      if (a->vruntime() != b->vruntime()) return a->vruntime() < b->vruntime();
      return a->id() < b->id();
    }
  };

  CfsScheduler& sched_;
  int id_;
  SimThread* current_ = nullptr;
  std::set<SimThread*, ByVruntime> rq_;
  double min_vruntime_ = 0.0;
  bool resched_pending_ = false;
  EventHandle slice_timer_;
  std::uint64_t context_switches_ = 0;
  std::uint64_t preemptions_ = 0;
  TimeWeighted busy_;
};

class CfsScheduler : public Snapshottable {
 public:
  CfsScheduler(Simulator& sim, int num_cores, CfsParams params = {});
  CfsScheduler(const CfsScheduler&) = delete;
  CfsScheduler& operator=(const CfsScheduler&) = delete;

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Core& core(int i);

  /// Registers a thread. `pinned_core` >= 0 pins it; -1 lets the scheduler
  /// place it on the least-loaded core at each wakeup. The thread starts
  /// blocked; call `thread->wake()` to make it runnable.
  void add(SimThread& thread, int pinned_core = -1);

  const CfsParams& params() const { return params_; }
  Simulator& sim() { return sim_; }

  /// Total context switches across all cores.
  std::uint64_t context_switches() const;

  /// Registers per-core telemetry probes (labels core=<id>): runnable
  /// counts, context switches, wakeup preemptions.
  void register_metrics(MetricsRegistry& registry);

  /// Serializes the scheduler RNG plus per-core runqueue state: the
  /// running thread, vruntime floor, and every enqueued thread's
  /// (name, vruntime, cpu_time) in runqueue order. Threads are keyed by
  /// world-local name (SimThread ids are process-global).
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  friend class SimThread;

  // SimThread-facing hooks.
  void on_wake(SimThread& thread);
  void on_block(SimThread& thread);
  void on_finish(SimThread& thread);

  // Internals.
  void enqueue(Core& core, SimThread& thread, bool wakeup);
  void dequeue(Core& core, SimThread& thread);
  void request_resched(Core& core);
  void do_resched(Core& core);
  void switch_out_current(Core& core, bool requeue);
  void account_current(Core& core);
  void update_min_vruntime(Core& core);
  void arm_slice_timer(Core& core);
  SimDuration timeslice(const Core& core) const;
  Core& pick_core_for(SimThread& thread);
  void check_wakeup_preemption(Core& core, SimThread& woken);

  Simulator& sim_;
  CfsParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace es2
