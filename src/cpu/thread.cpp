#include "cpu/thread.h"

#include <atomic>

#include "base/assert.h"
#include "base/log.h"
#include "cpu/cfs.h"
#include "trace/hooks.h"

namespace es2 {

namespace {
std::atomic<std::uint64_t> g_next_thread_id{1};

#if ES2_TRACE_ENABLED
// Sched records must not carry id_: it comes from a process-global counter,
// so a second run in the same process would get different values and break
// byte-identical same-seed traces. Thread names are deterministic; tag the
// records with an FNV-1a hash of the name instead.
std::uint32_t trace_thread_tag(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  return h;
}
#endif
}

SimThread::SimThread(Simulator& sim, std::string name, int weight)
    : sim_(sim),
      name_(std::move(name)),
      id_(g_next_thread_id.fetch_add(1, std::memory_order_relaxed)),
      weight_(weight) {
  ES2_CHECK_MSG(weight_ > 0, "thread weight must be positive");
}

SimThread::~SimThread() {
  if (active_) active_->completion.cancel();
}

SimDuration SimThread::cpu_time() const {
  SimDuration t = cpu_time_;
  if (state_ == State::kRunning) t += sim_.now() - last_ran_start_;
  return t;
}

void SimThread::exec(SimDuration duration, std::function<void()> done) {
  ES2_CHECK_MSG(state_ != State::kFinished, "exec on finished thread");
  ES2_CHECK_MSG(state_ != State::kBlocked, "exec on blocked thread");
  ES2_CHECK_MSG(!active_, "thread already has an active segment");
  ES2_CHECK_MSG(duration >= 0, "negative segment duration");
  active_.emplace();
  active_->remaining = duration;
  active_->done = std::move(done);
  if (state_ == State::kRunning) arm_segment();
}

std::optional<PausedSegment> SimThread::suspend_active() {
  if (!active_) return std::nullopt;
  freeze_segment();
  PausedSegment paused{active_->remaining, std::move(active_->done)};
  active_.reset();
  return paused;
}

void SimThread::resume_segment(PausedSegment segment) {
  exec(segment.remaining, std::move(segment.done));
}

void SimThread::block() {
  ES2_CHECK_MSG(state_ == State::kRunning || state_ == State::kRunnable,
                "block on a non-runnable thread");
  ES2_CHECK_MSG(!active_, "blocking with an active segment");
  ES2_CHECK(sched_ != nullptr);
  sched_->on_block(*this);
}

void SimThread::wake() {
  if (state_ != State::kBlocked) return;
  ES2_CHECK(sched_ != nullptr);
  sched_->on_wake(*this);
}

void SimThread::finish() {
  if (state_ == State::kFinished) return;
  if (active_) {
    active_->completion.cancel();
    active_.reset();
  }
  if (sched_) sched_->on_finish(*this);
  state_ = State::kFinished;
}

void SimThread::arm_segment() {
  ES2_CHECK(active_ && state_ == State::kRunning);
  if (active_->armed) return;
  active_->armed = true;
  active_->armed_at = sim_.now();
  active_->completion =
      sim_.after(active_->remaining, [this] { on_segment_complete(); });
}

void SimThread::freeze_segment() {
  if (!active_ || !active_->armed) return;
  active_->completion.cancel();
  const SimDuration ran = sim_.now() - active_->armed_at;
  active_->remaining -= ran;
  if (active_->remaining < 0) active_->remaining = 0;
  active_->armed = false;
}

void SimThread::on_segment_complete() {
  ES2_CHECK(active_ && state_ == State::kRunning);
  auto done = std::move(active_->done);
  active_.reset();
  if (done) done();
  // The callback must have left the thread either blocked, finished, or
  // with follow-up work (a new segment or a main body to fall back to).
  if (state_ == State::kRunning && !active_) {
    ES2_CHECK_MSG(main_ != nullptr,
                  ("thread '" + name_ + "' idle without main body").c_str());
    main_();
    ES2_CHECK_MSG(state_ != State::kRunning || active_,
                  ("thread '" + name_ + "' main left it running idle").c_str());
  }
}

void SimThread::sched_in(Core& core) {
  ES2_CHECK(state_ == State::kRunnable);
  state_ = State::kRunning;
  core_ = &core;
  last_ran_start_ = sim_.now();
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    tr->emit(sim_.now(), TraceKind::kSchedIn, -1, -1, core.id(),
             trace_thread_tag(name_));
  }
#endif
  notify(true);
  if (active_) {
    arm_segment();
  } else {
    ES2_CHECK_MSG(main_ != nullptr,
                  ("thread '" + name_ + "' scheduled without work").c_str());
    main_();
    ES2_CHECK_MSG(state_ != State::kRunning || active_,
                  ("thread '" + name_ + "' main left it running idle").c_str());
  }
}

void SimThread::sched_out() {
  ES2_CHECK(state_ == State::kRunning);
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(sim_)) {
    tr->emit(sim_.now(), TraceKind::kSchedOut, -1, -1,
             core_ != nullptr ? core_->id() : -1,
             trace_thread_tag(name_));
  }
#endif
  // CPU-time/vruntime accrual happened in CfsScheduler::account_current.
  freeze_segment();
  state_ = State::kRunnable;
  core_ = nullptr;
  notify(false);
}

void SimThread::notify(bool in) {
  for (const auto& notifier : notifiers_) notifier(*this, in);
}

void SimThread::snapshot_state(SnapshotWriter& w) const {
  w.put_u8(static_cast<std::uint8_t>(state_));
  w.put_u32(static_cast<std::uint32_t>(weight_));
  w.put_f64(vruntime_);
  w.put_i64(cpu_time_);
  w.put_bool(active_.has_value());
  w.put_i64(active_.has_value() ? active_->remaining : 0);
  w.put_bool(active_.has_value() && active_->armed);
}

}  // namespace es2
