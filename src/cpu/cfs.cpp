#include "cpu/cfs.h"

#include <algorithm>
#include <limits>

#include "base/assert.h"
#include "base/strings.h"
#include "metrics/metrics.h"
#include "profile/hooks.h"

namespace es2 {

Core::Core(CfsScheduler& sched, int id) : sched_(sched), id_(id) {}

int Core::nr_running() const {
  return static_cast<int>(rq_.size()) + (current_ ? 1 : 0);
}

std::int64_t Core::load() const {
  std::int64_t total = current_ ? current_->weight() : 0;
  for (const SimThread* t : rq_) total += t->weight();
  return total;
}

CfsScheduler::CfsScheduler(Simulator& sim, int num_cores, CfsParams params)
    : sim_(sim), params_(params), rng_(sim.make_rng("cfs")) {
  ES2_CHECK(num_cores > 0);
  cores_.reserve(static_cast<size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(*this, i));
    cores_.back()->busy_.set(sim_.now(), 0.0);
  }
}

Core& CfsScheduler::core(int i) {
  ES2_CHECK(i >= 0 && i < num_cores());
  return *cores_[static_cast<size_t>(i)];
}

std::uint64_t CfsScheduler::context_switches() const {
  std::uint64_t total = 0;
  for (const auto& c : cores_) total += c->context_switches_;
  return total;
}

void CfsScheduler::register_metrics(MetricsRegistry& registry) {
  for (auto& core : cores_) {
    Core* c = core.get();
    MetricLabels labels = {{"core", format("%d", c->id_)}};
    registry.probe("cfs.context_switches", labels, [c] {
      return static_cast<double>(c->context_switches_);
    });
    registry.probe("cfs.preemptions", labels, [c] {
      return static_cast<double>(c->preemptions_);
    });
    registry.probe("cfs.nr_running", labels, [c] {
      return static_cast<double>(c->nr_running());
    });
    registry.probe("cfs.load", labels, [c] {
      return static_cast<double>(c->load());
    });
  }
}

void CfsScheduler::add(SimThread& thread, int pinned_core) {
  ES2_CHECK_MSG(thread.sched_ == nullptr, "thread already registered");
  ES2_CHECK(pinned_core >= -1 && pinned_core < num_cores());
  thread.sched_ = this;
  thread.pinned_core_ = pinned_core;
  thread.state_ = SimThread::State::kBlocked;
}

Core& CfsScheduler::pick_core_for(SimThread& thread) {
  if (thread.pinned_core_ >= 0) return core(thread.pinned_core_);
  Core* best = cores_[0].get();
  std::int64_t best_load = best->load();
  for (auto& c : cores_) {
    const std::int64_t load = c->load();
    if (load < best_load) {
      best = c.get();
      best_load = load;
    }
  }
  return *best;
}

void CfsScheduler::on_wake(SimThread& thread) {
  ES2_CHECK(thread.state_ == SimThread::State::kBlocked);
  Core& target = pick_core_for(thread);
  thread.state_ = SimThread::State::kRunnable;
  enqueue(target, thread, /*wakeup=*/true);
  check_wakeup_preemption(target, thread);
  // Even without wakeup preemption, the newcomer must get its turn when the
  // running thread's slice ends.
  if (target.current_ != nullptr && !target.slice_timer_.pending()) {
    arm_slice_timer(target);
  }
}

void CfsScheduler::on_block(SimThread& thread) {
  if (thread.state_ == SimThread::State::kRunning) {
    Core* c = thread.core_;
    ES2_CHECK(c != nullptr && c->current_ == &thread);
    account_current(*c);
    thread.sched_out();
    thread.state_ = SimThread::State::kBlocked;
    c->current_ = nullptr;
    c->busy_.set(sim_.now(), 0.0);
    update_min_vruntime(*c);
    request_resched(*c);
    return;
  }
  ES2_CHECK(thread.state_ == SimThread::State::kRunnable);
  ES2_CHECK(thread.rq_core_ >= 0);
  Core& c = core(thread.rq_core_);
  dequeue(c, thread);
  thread.state_ = SimThread::State::kBlocked;
}

void CfsScheduler::on_finish(SimThread& thread) {
  switch (thread.state_) {
    case SimThread::State::kRunning: {
      Core* c = thread.core_;
      ES2_CHECK(c != nullptr);
      account_current(*c);
      thread.sched_out();
      c->current_ = nullptr;
      c->busy_.set(sim_.now(), 0.0);
      request_resched(*c);
      break;
    }
    case SimThread::State::kRunnable:
      if (thread.rq_core_ >= 0) dequeue(core(thread.rq_core_), thread);
      break;
    case SimThread::State::kBlocked:
    case SimThread::State::kFinished:
      break;
  }
}

void CfsScheduler::enqueue(Core& core, SimThread& thread, bool wakeup) {
  ES2_CHECK(thread.rq_core_ < 0);
  if (wakeup) {
    // Sleeper placement: never further back than min_vruntime minus the
    // (possibly halved) latency bonus, never ahead of its own history.
    const double latency = static_cast<double>(params_.sched_latency);
    const double bonus = params_.gentle_sleepers ? latency / 2.0 : latency;
    thread.vruntime_ = std::max(thread.vruntime_, core.min_vruntime_ - bonus);
  }
  core.rq_.insert(&thread);
  thread.rq_core_ = core.id_;
  update_min_vruntime(core);
}

void CfsScheduler::dequeue(Core& core, SimThread& thread) {
  const auto erased = core.rq_.erase(&thread);
  ES2_CHECK_MSG(erased == 1, "thread not on expected runqueue");
  thread.rq_core_ = -1;
  update_min_vruntime(core);
}

void CfsScheduler::account_current(Core& core) {
  SimThread* t = core.current_;
  if (t == nullptr) return;
  const SimDuration elapsed = sim_.now() - t->last_ran_start_;
  if (elapsed > 0) {
    t->cpu_time_ += elapsed;
    t->vruntime_ += static_cast<double>(elapsed) *
                    static_cast<double>(kWeightNice0) /
                    static_cast<double>(t->weight_);
    t->last_ran_start_ = sim_.now();
    update_min_vruntime(core);
  }
}

void CfsScheduler::update_min_vruntime(Core& core) {
  double candidate = std::numeric_limits<double>::infinity();
  if (core.current_ != nullptr) candidate = core.current_->vruntime_;
  if (!core.rq_.empty()) {
    candidate = std::min(candidate, (*core.rq_.begin())->vruntime_);
  }
  if (candidate != std::numeric_limits<double>::infinity()) {
    core.min_vruntime_ = std::max(core.min_vruntime_, candidate);
  }
}

SimDuration CfsScheduler::timeslice(const Core& core) const {
  const int n = std::max(core.nr_running(), 1);
  return std::max(params_.sched_latency / n, params_.min_granularity);
}

void CfsScheduler::arm_slice_timer(Core& core) {
  core.slice_timer_.cancel();
  if (core.current_ == nullptr || core.rq_.empty()) return;  // nothing to rotate
  SimDuration slice = timeslice(core);
  if (params_.slice_jitter > 0) {
    const double f =
        1.0 + params_.slice_jitter * (2.0 * rng_.next_double() - 1.0);
    slice = std::max<SimDuration>(
        params_.min_granularity,
        static_cast<SimDuration>(static_cast<double>(slice) * f));
  }
  Core* cp = &core;
  core.slice_timer_ = sim_.after(slice, [this, cp] { do_resched(*cp); });
}

void CfsScheduler::request_resched(Core& core) {
  if (core.resched_pending_) return;
  core.resched_pending_ = true;
  Core* cp = &core;
  sim_.defer([this, cp] {
    if (!cp->resched_pending_) return;
    do_resched(*cp);
  });
}

void CfsScheduler::check_wakeup_preemption(Core& core, SimThread& woken) {
  if (core.current_ == nullptr) {
    request_resched(core);
    return;
  }
  account_current(core);
  const double gran = static_cast<double>(params_.wakeup_granularity);
  if (woken.vruntime_ + gran < core.current_->vruntime_) {
    ++core.preemptions_;
    request_resched(core);
  }
}

void CfsScheduler::do_resched(Core& core) {
#if ES2_PROFILE_ENABLED
  Profiler::Scope prof_scope(active_profiler(sim_), ProfComp::kCfsResched);
#endif
  core.resched_pending_ = false;
  core.slice_timer_.cancel();
  account_current(core);

  SimThread* best =
      core.rq_.empty() ? nullptr : *core.rq_.begin();
  SimThread* current = core.current_;
  if (current != nullptr &&
      (best == nullptr || !Core::ByVruntime{}(best, current))) {
    // Current thread keeps the CPU.
    arm_slice_timer(core);
    return;
  }
  if (current != nullptr) {
    current->sched_out();
    core.current_ = nullptr;
    enqueue(core, *current, /*wakeup=*/false);
  }
  if (best != nullptr) {
    dequeue(core, *best);
    core.current_ = best;
    ++core.context_switches_;
    core.busy_.set(sim_.now(), 1.0);
    best->sched_in(core);
    // sched_in may have synchronously blocked the thread via its main body.
    if (core.current_ == best) arm_slice_timer(core);
  } else {
    core.busy_.set(sim_.now(), 0.0);
  }
  update_min_vruntime(core);
}

void CfsScheduler::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_u32(static_cast<std::uint32_t>(cores_.size()));
  for (const auto& core : cores_) {
    // Threads are identified by their world-local name, not SimThread::id():
    // ids come from a process-global counter, so two same-seed worlds in one
    // process would serialize different bytes for identical states.
    w.put_string(core->current_ != nullptr ? core->current_->name() : "");
    w.put_f64(core->min_vruntime_);
    w.put_bool(core->resched_pending_);
    w.put_u64(core->context_switches_);
    w.put_u64(core->preemptions_);
    w.put_u32(static_cast<std::uint32_t>(core->rq_.size()));
    for (const SimThread* t : core->rq_) {
      w.put_string(t->name());
      t->snapshot_state(w);
    }
  }
}

}  // namespace es2
