// Preemptible simulated threads.
//
// A `SimThread` models one schedulable host entity (a vCPU thread, a vhost
// I/O thread, …). Components drive a thread by submitting *work segments*:
// `exec(duration, done)` consumes `duration` of CPU time once the thread is
// running, then invokes `done` in thread context. Segments are transparently
// frozen/thawed across CFS preemptions, so component code never sees a
// preemption — exactly like a real thread does not.
//
// Threads with no active segment fall back to their `main` body when
// scheduled; `main` must leave the thread either with a pending segment or
// blocked (enforced by ES2_CHECK), which rules out silent busy states.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/units.h"
#include "sim/simulator.h"

namespace es2 {

class CfsScheduler;
class Core;

/// A paused work segment (used by the vCPU layer to nest interrupt handler
/// work inside an interrupted guest segment).
struct PausedSegment {
  SimDuration remaining = 0;
  std::function<void()> done;
};

/// CFS load weights (subset of the kernel's prio_to_weight table).
inline constexpr int kWeightNice0 = 1024;
inline constexpr int kWeightNice19 = 15;  // "lowest-priority" burn scripts
inline constexpr int kWeightNice5 = 335;

class SimThread {
 public:
  enum class State { kBlocked, kRunnable, kRunning, kFinished };

  /// Preemption notifier, mirroring kvm_sched_in / kvm_sched_out:
  /// invoked with sched_in=true right before the thread starts running on a
  /// core, and sched_in=false right after it is descheduled.
  using Notifier = std::function<void(SimThread&, bool sched_in)>;

  SimThread(Simulator& sim, std::string name, int weight = kWeightNice0);
  ~SimThread();
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // --- component-facing API -------------------------------------------

  /// Body invoked whenever the thread is scheduled with no active segment.
  void set_main(std::function<void()> main) { main_ = std::move(main); }

  /// Submits a work segment. Legal in any non-finished, non-blocked state;
  /// at most one active segment at a time.
  void exec(SimDuration duration, std::function<void()> done);

  /// Removes and returns the active segment with its remaining time
  /// (nested-interrupt support). Returns nullopt if no segment is active.
  std::optional<PausedSegment> suspend_active();

  /// Reinstates a previously suspended segment as the active one.
  void resume_segment(PausedSegment segment);

  /// Gives up the CPU until wake(). Must be called from thread context with
  /// no active segment.
  void block();

  /// Makes a blocked thread runnable (no-op otherwise). Safe from any
  /// context; the scheduler decides placement at the next resched point.
  void wake();

  /// Marks the thread permanently finished (test teardown convenience).
  void finish();

  // --- introspection ----------------------------------------------------

  State state() const { return state_; }
  bool running() const { return state_ == State::kRunning; }
  bool has_active_segment() const { return active_.has_value(); }
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  int weight() const { return weight_; }
  Core* core() const { return core_; }
  double vruntime() const { return vruntime_; }

  void add_notifier(Notifier notifier) {
    notifiers_.push_back(std::move(notifier));
  }

  /// Total CPU time this thread has consumed.
  SimDuration cpu_time() const;

  /// Serializes scheduling state (es2-snap-v1 fields): state, weight,
  /// vruntime, consumed CPU time and the active segment's remaining work.
  /// Owners embed this in their own snapshot section.
  void snapshot_state(SnapshotWriter& w) const;

  Simulator& sim() { return sim_; }

 private:
  friend class CfsScheduler;
  friend class Core;

  struct ActiveSegment {
    SimDuration remaining = 0;
    std::function<void()> done;
    EventHandle completion;   // armed only while running
    SimTime armed_at = 0;
    bool armed = false;
  };

  // Scheduler-side hooks.
  void sched_in(Core& core);
  void sched_out();
  void arm_segment();
  void freeze_segment();
  void on_segment_complete();
  void notify(bool sched_in);

  Simulator& sim_;
  std::string name_;
  std::uint64_t id_;
  int weight_;
  State state_ = State::kBlocked;
  std::optional<ActiveSegment> active_;
  std::function<void()> main_;
  std::vector<Notifier> notifiers_;

  // Managed by CfsScheduler.
  CfsScheduler* sched_ = nullptr;
  Core* core_ = nullptr;       // core currently running on (if kRunning)
  int pinned_core_ = -1;       // -1: migratable
  double vruntime_ = 0.0;      // relative to rq min_vruntime while dequeued
  SimTime last_ran_start_ = 0;
  SimDuration cpu_time_ = 0;
  int rq_core_ = -1;           // runqueue the thread is enqueued on
};

}  // namespace es2
