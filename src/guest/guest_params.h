// Guest-side cycle costs.
//
// Calibrated against the paper's Baseline numbers: a 1-vCPU guest sending
// 1024-byte TCP segments sustains ~70k packets/s at ~70% time-in-guest
// (Table I / Fig. 5a), and ~100k packets/s of 256-byte UDP at ~68% TIG
// (Fig. 4a) — which pins the per-packet stack costs to several
// microseconds at 2.3 GHz.
#pragma once

#include "base/units.h"

namespace es2 {

struct GuestParams {
  // --- transmit path (task context: syscall + stack + virtio enqueue) ---
  Cycles udp_send_per_packet = 10000;
  Cycles tcp_send_per_packet = 13300;
  double tx_cycles_per_byte = 0.9;

  // --- receive path (NAPI softirq context, per packet) -------------------
  Cycles rx_tcp_per_packet = 8500;
  Cycles rx_udp_per_packet = 7000;
  double rx_cycles_per_byte = 0.7;
  Cycles rx_ack_processing = 4500;  // pure ACK (no payload) on the sender

  // --- interrupt handling -------------------------------------------------
  Cycles hardirq = 1700;            // device ISR body before EOI
  Cycles softirq_entry = 1800;      // NAPI scheduling + softirq dispatch
  Cycles timer_handler = 3200;      // guest LAPIC timer tick work
  Cycles resched_ipi_handler = 900;
  Cycles napi_complete = 900;       // re-enable irqs + napi_complete
  int napi_weight = 64;             // Linux NAPI budget per poll round

  // --- TCP endpoint behaviour ---------------------------------------------
  Cycles ack_send = 7000;           // generate + enqueue an ACK segment
  int delayed_ack_every = 2;        // ACK every 2nd segment (RFC 1122)
  Bytes tcp_window = kMiB;          // effective send window (autotuned)

  // --- tasks ---------------------------------------------------------------
  Cycles task_switch = 1200;
  SimDuration burn_slice = usec(50);  // CPU-burn work-unit granularity
  Cycles tx_reclaim_per_entry = 250;  // freeing one completed tx descriptor

  // --- netdev TX watchdog ---------------------------------------------------
  /// Linux dev_watchdog analogue, driven from the guest timer tick: when TX
  /// descriptors sit unconsumed with no completion progress for two
  /// consecutive ticks while the host believes the queue idle, the kick was
  /// lost — re-kick. Off by default: on oversubscribed (macro) topologies
  /// legitimate multi-tick scheduling stalls trip it, and the extra kicks
  /// would perturb the golden healthy-path schedules. Chaos scenarios turn
  /// it on (the tick check itself is free either way).
  bool tx_watchdog = false;
  /// Watchdog handler cost when it actually re-kicks (ndo_tx_timeout path).
  Cycles tx_watchdog_rekick = 2500;

  // --- device lifecycle recovery ladder -------------------------------------
  /// Arms the guest half of the recovery ladder, driven from the same timer
  /// tick as the TX watchdog: when the device flags DEVICE_NEEDS_RESET the
  /// driver resets the quarantined queue(s); a dual-queue quarantine or a
  /// queue that keeps coming back quarantined escalates to a full device
  /// reset + feature renegotiation. Off by default so every existing
  /// scenario (including chaos, which relies on the PR-2 watchdog behaviour
  /// alone) keeps bit-identical schedules.
  bool recovery_ladder = false;
  /// Queue resets on the same queue within one DEVICE_NEEDS_RESET episode
  /// before the ladder escalates to a full device reset.
  int ladder_device_reset_after = 2;
  Cycles queue_reset_cost = 20000;   // virtqueue teardown + re-init
  Cycles device_reset_cost = 60000;  // full virtio_device_reset path
  Cycles renegotiate_cost = 15000;   // feature negotiation + vq re-setup

  // --- overload: receive-livelock detection + admission ladder --------------
  /// Arms the receive-livelock detector and the graceful-degradation ladder
  /// (NAPI budget clamp -> backend RX backpressure -> accept shedding).
  /// Off by default so every committed golden keeps bit-identical schedules:
  /// when off, no ksoftirqd task exists, no detector state is sampled and
  /// the NAPI budget-refresh loop behaves exactly as before. Scenarios that
  /// arm it must run an app that reports progress via
  /// GuestOs::note_app_progress (httpd accepts/served, memcached responses);
  /// pure in-softirq sinks would read as permanently livelocked.
  bool overload_mitigation = false;
  /// Packets polled per ksoftirqd work unit once the ladder reaches rung 1
  /// (the NAPI budget clamp). Small enough that the round-robin scheduler
  /// interleaves application tasks between batches.
  int napi_budget_clamp = 16;
  /// RX polls between two detector samples (one guest timer tick, from any
  /// vCPU) that count as storm-level interrupt+poll work.
  std::int64_t livelock_poll_threshold = 64;
  /// Consecutive storming zero-progress samples before the ladder escalates
  /// one rung.
  int livelock_trip_ticks = 2;
  /// Consecutive healthy samples (progress flowing AND poll pressure below
  /// threshold) before the ladder de-escalates one rung — the latch that
  /// keeps mitigation engaged through the storm instead of flapping.
  int livelock_clear_ticks = 8;

  // --- misc ----------------------------------------------------------------
  Cycles rx_refill_per_buffer = 300;
  /// Multiplicative per-work-unit cost jitter (uniform +/- fraction):
  /// models cache effects, syscall variance and softirq interference.
  double cost_jitter = 0.12;
};

}  // namespace es2
