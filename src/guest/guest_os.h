// Guest operating system model (unmodified Linux as far as ES2 is
// concerned — nothing in src/es2 reaches behind this interface).
//
// Implements the `GuestCpu` contract: a tiny two-priority task scheduler
// per vCPU (normal tasks + "lowest-priority CPU burn" tasks, matching the
// paper's test setup), IDT-style interrupt routing (device vectors to
// their driver, timer/IPI vectors to stub handlers), a flow demux that
// hands received packets to protocol sinks, and idle/HLT handling.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "guest/guest_params.h"
#include "net/packet.h"
#include "vm/guest_cpu.h"
#include "vm/vm.h"

namespace es2 {

class GuestOs;
class MetricsRegistry;
class VirtioNetFrontend;

/// A guest-level schedulable task (netperf thread, server worker, burn
/// script). Tasks execute one *work unit* per scheduling turn by chaining
/// Vcpu::guest_exec calls, then return control via GuestOs::task_done().
class GuestTask {
 public:
  GuestTask(GuestOs& os, std::string name, int vcpu_affinity,
            bool low_priority = false);
  virtual ~GuestTask() = default;

  /// Performs one work unit in guest context on `vcpu`; must synchronously
  /// start guest activity and eventually call os().task_done(vcpu) or
  /// block_self() + task_done path.
  virtual void run_unit(Vcpu& vcpu) = 0;

  const std::string& name() const { return name_; }
  int vcpu_affinity() const { return vcpu_affinity_; }
  bool low_priority() const { return low_priority_; }
  bool runnable() const { return runnable_; }

  /// Marks the task runnable; sends a guest resched IPI if its vCPU idles.
  void wake();

  /// Marks the task not runnable (takes effect when its unit completes).
  void block_self() { runnable_ = false; }

  GuestOs& os() { return os_; }
  const GuestOs& os() const { return os_; }

 private:
  GuestOs& os_;
  std::string name_;
  int vcpu_affinity_;
  bool low_priority_;
  bool runnable_ = true;
};

/// Receives packets demultiplexed by flow id in NAPI (softirq) context.
class FlowSink {
 public:
  virtual ~FlowSink() = default;
  /// Handles one packet; must call `done` exactly once (possibly after
  /// guest_exec work on `vcpu`).
  virtual void on_packet(Vcpu& vcpu, const PacketPtr& packet,
                         std::function<void()> done) = 0;
};

class GuestOs final : public GuestCpu, public Snapshottable {
 public:
  GuestOs(Vm& vm, GuestParams params = {});
  ~GuestOs() override;
  GuestOs(const GuestOs&) = delete;
  GuestOs& operator=(const GuestOs&) = delete;

  Vm& vm() { return vm_; }
  const GuestParams& params() const { return params_; }

  /// Applies the configured cost jitter to a work-unit cost.
  Cycles jittered(Cycles cost);

  // --- GuestCpu interface -------------------------------------------------
  void run(int vcpu_index) override;
  void take_interrupt(int vcpu_index, Vector vector) override;

  // --- configuration -------------------------------------------------------
  /// Registers a task; ownership stays with the caller.
  void add_task(GuestTask& task);

  /// Binds a virtio-net device driver (registered by its IRQ vectors).
  void attach_netdev(VirtioNetFrontend& dev);

  /// Routes packets with `flow` to `sink` (guest protocol endpoint).
  void register_flow(std::uint64_t flow, FlowSink& sink);
  void unregister_flow(std::uint64_t flow);

  // --- task-facing ----------------------------------------------------------
  /// A task's work unit finished; the guest scheduler picks what's next.
  void task_done(Vcpu& vcpu);

  /// The default netdev for transmit (first attached).
  VirtioNetFrontend& netdev();

  // --- driver-facing ----------------------------------------------------------
  /// Delivers a received packet to its flow sink (NAPI context).
  void deliver_to_stack(Vcpu& vcpu, const PacketPtr& packet,
                        std::function<void()> done);

  /// True if `vcpu_index`'s logical CPU sits halted in the idle loop.
  bool cpu_idle(int vcpu_index) const;

  std::int64_t packets_to_unknown_flows() const { return unknown_flow_; }

  // --- application progress (overload detection) ----------------------------
  /// Apps call this from task context when they complete application-level
  /// work (an accept, a served page, a memcached response). The receive-
  /// livelock detector keys off this figure: sustained poll work with a
  /// flat app-progress counter IS livelock. Pure integer bookkeeping — no
  /// events, no cycles — so reporting progress never perturbs schedules.
  void note_app_progress() { ++app_progress_; }
  std::int64_t app_progress() const { return app_progress_; }

  /// Registers kernel-level telemetry — flow demux misses (label
  /// vm=<name>) — plus each attached netdev's driver probes.
  void register_metrics(MetricsRegistry& registry);

  /// Serializes the guest kernel: jitter RNG, per-vCPU scheduler cursors,
  /// task runnability, the registered flow set (sorted) and every attached
  /// netdev driver's NAPI/watchdog state.
  void snapshot_state(SnapshotWriter& w) const override;

 private:
  GuestTask* pick_task(int vcpu_index);
  void wake_vcpu_for_task(const GuestTask& task);
  /// Timer-tick tail: runs each netdev's TX watchdog, then EOIs.
  void netdev_watchdog_tick(Vcpu& vcpu, std::size_t i);
  friend class GuestTask;

  Vm& vm_;
  GuestParams params_;
  Rng rng_;
  std::vector<GuestTask*> tasks_;
  std::vector<std::uint64_t> rr_cursor_;      // per-vCPU round-robin cursor
  std::vector<VirtioNetFrontend*> netdevs_;
  std::unordered_map<std::uint64_t, FlowSink*> flows_;
  std::int64_t unknown_flow_ = 0;
  std::int64_t app_progress_ = 0;
};

}  // namespace es2
