// Guest virtio-net front-end driver with NAPI.
//
// The driver side of the paravirtual device: transmit enqueues segments
// into the TX virtqueue and kicks only when the suppression protocol says
// so (this is the guest half of the paper's hybrid scheme — the guest is
// *unmodified*; only the host-written suppression fields change behaviour).
// Receive follows Linux NAPI: hardirq -> napi_schedule (device interrupts
// off) -> softirq poll loop (budgeted) -> re-enable interrupts when drained.
// A full TX ring stops the queue and arms TX-completion interrupts,
// producing real backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "guest/guest_params.h"
#include "net/packet.h"
#include "virtio/vhost.h"
#include "vm/vm.h"

namespace es2 {

class GuestOs;
class GuestTask;

class VirtioNetFrontend {
 public:
  VirtioNetFrontend(GuestOs& os, VhostNetBackend& backend);
  VirtioNetFrontend(const VirtioNetFrontend&) = delete;
  VirtioNetFrontend& operator=(const VirtioNetFrontend&) = delete;

  /// True if this driver owns the given interrupt vector.
  bool owns_vector(Vector v) const;

  /// Hardirq entry for this device (called from GuestOs::take_interrupt);
  /// runs hardirq -> EOI -> NAPI softirq, then Vcpu::irq_done().
  void handle_irq(Vcpu& vcpu, Vector vector);

  /// Transmits one segment from task/softirq context. `done(sent)` is
  /// called with sent=false when the TX ring is full (queue stopped); the
  /// caller should block and retry after `wake()`.
  void transmit(Vcpu& vcpu, PacketPtr packet,
                std::function<void(bool sent)> done);

  /// Registers a task to wake when TX descriptors free up after a stop.
  void add_tx_waiter(GuestTask& task);

  std::int64_t tx_queue_stops() const { return tx_stops_; }
  std::int64_t rx_polled() const { return rx_polled_; }
  std::int64_t kicks() const { return kicks_; }

  VhostNetBackend& backend() { return backend_; }

 private:
  void napi_poll(Vcpu& vcpu, std::function<void()> done);
  void napi_poll_one(Vcpu& vcpu, int budget_left, std::function<void()> done);
  void finish_poll(Vcpu& vcpu, std::function<void()> done);
  /// Frees completed TX descriptors; wakes stopped-queue waiters.
  void reclaim_tx(Vcpu& vcpu, std::function<void()> done);
  void refill_rx(Vcpu& vcpu, std::function<void()> done);

  GuestOs& os_;
  VhostNetBackend& backend_;
  bool napi_scheduled_ = false;
  std::vector<GuestTask*> tx_waiters_;
  std::int64_t tx_stops_ = 0;
  std::int64_t rx_polled_ = 0;
  std::int64_t kicks_ = 0;
};

}  // namespace es2
