// Guest virtio-net front-end driver with NAPI.
//
// The driver side of the paravirtual device: transmit enqueues segments
// into the TX virtqueue and kicks only when the suppression protocol says
// so (this is the guest half of the paper's hybrid scheme — the guest is
// *unmodified*; only the host-written suppression fields change behaviour).
// Receive follows Linux NAPI: hardirq -> napi_schedule (device interrupts
// off) -> softirq poll loop (budgeted) -> re-enable interrupts when drained.
// A full TX ring stops the queue and arms TX-completion interrupts,
// producing real backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "guest/guest_params.h"
#include "net/packet.h"
#include "virtio/vhost.h"
#include "vm/vm.h"

namespace es2 {

class GuestOs;
class GuestTask;
class MetricsRegistry;

class VirtioNetFrontend {
 public:
  VirtioNetFrontend(GuestOs& os, VhostNetBackend& backend);
  ~VirtioNetFrontend();
  VirtioNetFrontend(const VirtioNetFrontend&) = delete;
  VirtioNetFrontend& operator=(const VirtioNetFrontend&) = delete;

  /// True if this driver owns the given interrupt vector.
  bool owns_vector(Vector v) const;

  /// Hardirq entry for this device (called from GuestOs::take_interrupt);
  /// runs hardirq -> EOI -> NAPI softirq, then Vcpu::irq_done().
  void handle_irq(Vcpu& vcpu, Vector vector);

  /// Transmits one segment from task/softirq context. `done(sent)` is
  /// called with sent=false when the TX ring is full (queue stopped); the
  /// caller should block and retry after `wake()`.
  void transmit(Vcpu& vcpu, PacketPtr packet,
                std::function<void(bool sent)> done);

  /// Registers a task to wake when TX descriptors free up after a stop.
  void add_tx_waiter(GuestTask& task);

  /// Guest netdev watchdog (Linux dev_watchdog analogue), called from the
  /// timer tick in guest context. If the TX queue looks wedged — posted
  /// descriptors, no completion progress across two consecutive ticks, and
  /// the host sleeping with notifications armed (i.e. it expects a kick
  /// that evidently never arrived) — re-kicks the backend. It also checks
  /// the RX side for a missed interrupt (used entries parked with
  /// interrupts armed and no NAPI pass running, two ticks in a row) and
  /// runs the NAPI poll the lost MSI would have started, the way e1000's
  /// watchdog recovers missed interrupts. Calls `done` exactly once; on
  /// healthy paths it is a pure state check.
  void tx_watchdog_tick(Vcpu& vcpu, std::function<void()> done);

  /// Guest halves of the recovery ladder (GuestParams::recovery_ladder):
  /// queue resets and full device resets initiated by the driver.
  std::int64_t ladder_queue_resets() const { return ladder_queue_resets_; }
  std::int64_t ladder_device_resets() const { return ladder_device_resets_; }

  // --- overload: receive-livelock detector + admission ladder ---------------
  /// Current admission-ladder rung: 0 none, 1 NAPI budget clamp (polling
  /// defers to the ksoftirqd task), 2 adds backend RX backpressure at the
  /// link, 3 adds SYN-cookie-style accept shedding (applied by the app,
  /// which reads this). Always 0 unless GuestParams::overload_mitigation.
  int overload_rung() const { return overload_rung_; }
  /// Highest rung reached over the run (collapse-severity telemetry).
  int overload_max_rung() const { return overload_max_rung_; }
  /// Livelock episodes detected (rung 0 -> 1 transitions).
  std::int64_t livelock_detections() const { return livelock_detections_; }
  /// NAPI passes whose budget exhausted at rung >= 1 and handed the ring to
  /// ksoftirqd instead of refreshing the budget in softirq context.
  std::int64_t ksoftirqd_defers() const { return ksoftirqd_defers_; }
  /// Packets polled in ksoftirqd task context (fair-shared with app tasks).
  std::int64_t ksoftirqd_polls() const { return ksoftirqd_polls_; }

  std::int64_t tx_queue_stops() const { return tx_stops_; }
  std::int64_t rx_polled() const { return rx_polled_; }
  std::int64_t kicks() const { return kicks_; }
  /// Times the TX watchdog fired a recovery re-kick.
  std::int64_t tx_watchdog_kicks() const { return tx_watchdog_kicks_; }
  /// Times the watchdog ran a NAPI poll to recover a missed RX interrupt.
  std::int64_t rx_watchdog_polls() const { return rx_watchdog_polls_; }

  VhostNetBackend& backend() { return backend_; }

  /// Registers driver telemetry — kicks, NAPI polls, queue stops, watchdog
  /// recoveries (label vm=<name>).
  void register_metrics(MetricsRegistry& registry);

  /// Serializes NAPI scheduling state and the TX/RX watchdog counters.
  /// Embedded in the owning GuestOs's snapshot section.
  void snapshot_state(SnapshotWriter& w) const;

  /// Per-cause watchdog recovery counters (tx_rekick / napi_poll) plus the
  /// ladder counters; registered by the harness only when lifecycle faults
  /// are armed so the frozen instrument set stays unchanged elsewhere.
  void register_lifecycle_metrics(MetricsRegistry& registry);

  /// Serializes ladder state. Separate from snapshot_state (which is
  /// embedded in the GuestOs section) so faults-off images keep their
  /// exact byte layout; registered as its own section when lifecycle
  /// faults are armed.
  void snapshot_lifecycle_state(SnapshotWriter& w) const;

  /// Overload detector/ladder telemetry (label vm=<name>); registered by
  /// the harness only when overload mitigation is armed so the frozen
  /// instrument set stays unchanged elsewhere.
  void register_overload_metrics(MetricsRegistry& registry);

  /// Serializes detector + ladder + ksoftirqd state; registered as its own
  /// side section only when overload mitigation is armed (same discipline
  /// as snapshot_lifecycle_state).
  void snapshot_overload_state(SnapshotWriter& w) const;

 private:
  /// Status-register bring-up shared by the constructor and the device-
  /// reset rung: ACKNOWLEDGE -> DRIVER -> feature ack -> FEATURES_OK ->
  /// queue enable. DRIVER_OK is written by the caller once rings are set
  /// up.
  void negotiate();
  /// Recovery-ladder stage of the watchdog tick (no-op unless
  /// GuestParams::recovery_ladder and DEVICE_NEEDS_RESET).
  void ladder_stage(Vcpu& vcpu, std::function<void()> done);
  void guest_reset_queue(Vcpu& vcpu, int q, std::function<void()> done);
  void guest_reset_device(Vcpu& vcpu, std::function<void()> done);
  /// Watchdog halves for one queue pair; chains to the next pair.
  void watchdog_pair(Vcpu& vcpu, int pair, std::function<void()> done);
  /// Chains refill_rx across pairs [pair, N).
  void refill_all_rx(Vcpu& vcpu, int pair, std::function<void()> done);
  void wake_tx_waiters();
  void napi_poll(Vcpu& vcpu, int pair, std::function<void()> done);
  void napi_poll_one(Vcpu& vcpu, int pair, int budget_left,
                     std::function<void()> done);
  void finish_poll(Vcpu& vcpu, int pair, std::function<void()> done);
  /// Frees completed TX descriptors; wakes stopped-queue waiters.
  void reclaim_tx(Vcpu& vcpu, int pair, std::function<void()> done);
  void refill_rx(Vcpu& vcpu, int pair, std::function<void()> done);

  // --- overload internals ---------------------------------------------------
  class KsoftirqdTask;
  /// Detector sample, run from the watchdog tick (any vCPU's timer): storm
  /// poll work with a flat app-progress counter escalates the ladder; calm
  /// healthy samples de-escalate it. Pure state bookkeeping, no cycles.
  void overload_tick(Vcpu& vcpu);
  void overload_escalate(Vcpu& vcpu);
  void overload_deescalate();
  /// Marks `pair` pending for ksoftirqd and wakes the task; the caller
  /// completes its own `done` continuation afterwards (ends the softirq
  /// pass).
  void ksoftirqd_defer(Vcpu& vcpu, int pair);
  /// One ksoftirqd scheduling turn: polls a clamped batch off one pending
  /// pair, then yields so app tasks interleave.
  void ksoftirqd_unit(Vcpu& vcpu);
  void ksoftirqd_poll(Vcpu& vcpu, int pair, int budget_left);
  /// Pass epilogue in task context: refill, re-enable interrupts, handle
  /// the completion race (which re-queues the pair instead of re-polling).
  void ksoftirqd_finish(Vcpu& vcpu, int pair);

  GuestOs& os_;
  VhostNetBackend& backend_;
  // Per-queue-pair NAPI/watchdog state (index = pair). Single-queue
  // devices only ever touch index 0, which keeps their snapshot bytes and
  // event sequences identical to the pre-MQ driver.
  std::vector<bool> napi_scheduled_;
  std::vector<GuestTask*> tx_waiters_;
  std::int64_t tx_stops_ = 0;
  std::int64_t rx_polled_ = 0;
  std::int64_t kicks_ = 0;
  // TX watchdog state: completion count at the last tick plus a strike
  // counter — a re-kick needs the stall to persist across two ticks, so a
  // kick legitimately in flight at sampling time never trips it.
  std::vector<std::int64_t> watchdog_last_used_;
  std::vector<int> watchdog_strikes_;
  std::int64_t tx_watchdog_kicks_ = 0;
  std::vector<std::int64_t> rx_watchdog_last_polled_;
  std::vector<int> rx_watchdog_strikes_;
  std::int64_t rx_watchdog_polls_ = 0;
  // Per-pair NAPI consumption counters (rx_polled_ stays the aggregate
  // telemetry; the per-pair values feed each pair's RX watchdog).
  std::vector<std::int64_t> rx_polled_by_pair_;
  // Stall flags sampled at the top of each watchdog tick (members, not
  // locals, to keep the tick allocation-free).
  std::vector<char> watchdog_tx_stalled_;
  std::vector<char> watchdog_rx_stalled_;
  // Recovery-ladder state (snapshot via snapshot_lifecycle_state only):
  // queue resets performed per flat queue index within the current
  // DEVICE_NEEDS_RESET episode (decays once the device reports healthy).
  std::vector<int> ladder_recent_;
  std::int64_t ladder_queue_resets_ = 0;
  std::int64_t ladder_device_resets_ = 0;
  // Overload state (snapshot via snapshot_overload_state only; the task
  // exists only when GuestParams::overload_mitigation is set, so unarmed
  // worlds keep their task list, schedules and snapshot bytes unchanged).
  std::unique_ptr<GuestTask> ksoftirqd_;
  std::vector<char> ksoftirqd_pending_;
  int overload_rung_ = 0;
  int overload_max_rung_ = 0;
  int overload_strikes_ = 0;
  int overload_clear_ = 0;
  bool overload_episode_open_ = false;  // RecoveryLog instance awaiting progress
  std::int64_t overload_last_polls_ = 0;
  std::int64_t overload_last_progress_ = 0;
  std::int64_t livelock_detections_ = 0;
  std::int64_t ksoftirqd_defers_ = 0;
  std::int64_t ksoftirqd_polls_ = 0;
};

}  // namespace es2
