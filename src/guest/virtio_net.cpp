#include "guest/virtio_net.h"

#include <algorithm>

#include "base/assert.h"
#include "fault/recovery.h"
#include "guest/guest_os.h"
#include "metrics/metrics.h"
#include "profile/hooks.h"
#include "trace/hooks.h"

namespace es2 {

/// Linux's per-CPU softirq thread, modelled as a guest task pinned to
/// vCPU 0 (where NAPI runs). It exists only when overload mitigation is
/// armed; rung 1 of the admission ladder defers budget-exhausted NAPI
/// passes here, so the round-robin scheduler fair-shares the CPU between
/// polling and the application instead of letting softirq context starve
/// it — the Mogul/Ramakrishnan receive-livelock fix.
class VirtioNetFrontend::KsoftirqdTask final : public GuestTask {
 public:
  KsoftirqdTask(VirtioNetFrontend& fe, GuestOs& os)
      : GuestTask(os, "ksoftirqd/0", /*vcpu_affinity=*/0), fe_(fe) {
    block_self();
  }
  void run_unit(Vcpu& vcpu) override { fe_.ksoftirqd_unit(vcpu); }

 private:
  VirtioNetFrontend& fe_;
};

VirtioNetFrontend::~VirtioNetFrontend() = default;

VirtioNetFrontend::VirtioNetFrontend(GuestOs& os, VhostNetBackend& backend)
    : os_(os), backend_(backend) {
  const int pairs = backend_.num_queue_pairs();
  napi_scheduled_.assign(static_cast<std::size_t>(pairs), false);
  watchdog_last_used_.assign(static_cast<std::size_t>(pairs), 0);
  watchdog_strikes_.assign(static_cast<std::size_t>(pairs), 0);
  rx_watchdog_last_polled_.assign(static_cast<std::size_t>(pairs), 0);
  rx_watchdog_strikes_.assign(static_cast<std::size_t>(pairs), 0);
  rx_polled_by_pair_.assign(static_cast<std::size_t>(pairs), 0);
  watchdog_tx_stalled_.assign(static_cast<std::size_t>(pairs), 0);
  watchdog_rx_stalled_.assign(static_cast<std::size_t>(pairs), 0);
  ladder_recent_.assign(static_cast<std::size_t>(backend_.num_queues()), 0);
  // Real virtio bring-up through the status register: reset, negotiate,
  // queue setup, DRIVER_OK. The backend boots pre-negotiated (for
  // directly-constructed test rings); this sequence rebuilds the identical
  // end state the proper way.
  backend_.write_status(0);
  negotiate();
  // Driver initialization: pre-post every receive ring, run TX with
  // completion interrupts off (Linux virtio-net frees old skbs inline) and
  // RX interrupts on. Refill notifications start disabled host-side.
  for (int pair = 0; pair < pairs; ++pair) {
    Virtqueue& rx = backend_.rx_vq(pair);
    while (rx.free_slots() > 0) {
      const bool ok = rx.add_avail(Virtqueue::Entry{nullptr, 0});
      ES2_CHECK(ok);
    }
    rx.disable_notifications();
    backend_.tx_vq(pair).disable_interrupts();
  }
  backend_.write_status(kStatusAcknowledge | kStatusDriver |
                        kStatusFeaturesOk | kStatusDriverOk);
  ksoftirqd_pending_.assign(static_cast<std::size_t>(pairs), 0);
  if (os.params().overload_mitigation) {
    // Created only when armed: unarmed worlds keep their task list — and
    // therefore their round-robin schedules and snapshot bytes — unchanged.
    ksoftirqd_ = std::make_unique<KsoftirqdTask>(*this, os);
    os.add_task(*ksoftirqd_);
  }
  os.attach_netdev(*this);
}

void VirtioNetFrontend::negotiate() {
  backend_.write_status(kStatusAcknowledge);
  backend_.write_status(kStatusAcknowledge | kStatusDriver);
  const bool ok = backend_.ack_features(backend_.features_offered());
  ES2_CHECK_MSG(ok, "device rejected its own feature offer");
  backend_.write_status(kStatusAcknowledge | kStatusDriver |
                        kStatusFeaturesOk);
  for (int q = 0; q < backend_.num_queues(); ++q) {
    backend_.enable_queue(q, true);
  }
}

void VirtioNetFrontend::wake_tx_waiters() {
  if (tx_waiters_.empty()) return;
  auto waiters = std::move(tx_waiters_);
  tx_waiters_.clear();
  for (GuestTask* task : waiters) task->wake();
}

bool VirtioNetFrontend::owns_vector(Vector v) const {
  for (int pair = 0; pair < backend_.num_queue_pairs(); ++pair) {
    if (v == backend_.rx_msi(pair).vector || v == backend_.tx_msi(pair).vector)
      return true;
  }
  return false;
}

void VirtioNetFrontend::handle_irq(Vcpu& vcpu, Vector vector) {
  // MSI-X routing: each queue pair owns two vectors; NAPI runs on the pair
  // the vector belongs to, leaving other pairs' suppression state alone.
  int pair = 0;
  for (int p = 0; p < backend_.num_queue_pairs(); ++p) {
    if (vector == backend_.rx_msi(p).vector ||
        vector == backend_.tx_msi(p).vector) {
      pair = p;
      break;
    }
  }
  const GuestParams& p = os_.params();
  vcpu.guest_exec(p.hardirq, [this, &vcpu, pair] {
    // napi_schedule: mask this pair's interrupts until polling drains.
    backend_.rx_vq(pair).disable_interrupts();
    backend_.tx_vq(pair).disable_interrupts();
    napi_scheduled_[static_cast<std::size_t>(pair)] = true;
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
      tr->emit(vcpu.vm().host().sim().now(), TraceKind::kNotifyDisable,
               vcpu.vm().id(), vcpu.index(), -1, /*arg=*/2,
               tr->current_service(vcpu.vm().id(), vcpu.index()));
    }
#endif
    vcpu.guest_eoi([this, &vcpu, pair] {
      const GuestParams& p = os_.params();
      vcpu.guest_exec(p.softirq_entry, [this, &vcpu, pair] {
        napi_poll(vcpu, pair, [this, &vcpu, pair] {
          napi_scheduled_[static_cast<std::size_t>(pair)] = false;
          vcpu.irq_done();
        });
      });
    });
  });
}

void VirtioNetFrontend::napi_poll(Vcpu& vcpu, int pair,
                                  std::function<void()> done) {
#if ES2_PROFILE_ENABLED
  // One poll pass per (vm, pair); the span closes in finish_poll when the
  // pass re-arms interrupts (the napi_complete epilogue is excluded).
  if (Profiler* pf = active_profiler(vcpu.vm().host().sim())) {
    pf->span_begin(ProfComp::kGuestNapi,
                   static_cast<unsigned>(vcpu.vm().id() * 16 + pair),
                   vcpu.vm().host().sim().now());
  }
#endif
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
    tr->emit(vcpu.vm().host().sim().now(), TraceKind::kNapiPoll,
             vcpu.vm().id(), vcpu.index(), -1, /*arg=*/0,
             tr->current_service(vcpu.vm().id(), vcpu.index()));
  }
#endif
  reclaim_tx(vcpu, pair, [this, &vcpu, pair, done = std::move(done)]() mutable {
    napi_poll_one(vcpu, pair, os_.params().napi_weight, std::move(done));
  });
}

namespace {
Cycles rx_packet_cost(const GuestParams& p, const Packet& pkt) {
  switch (pkt.proto) {
    case Proto::kTcp:
      if (pkt.payload == 0) return p.rx_ack_processing;
      return p.rx_tcp_per_packet +
             static_cast<Cycles>(p.rx_cycles_per_byte *
                                 static_cast<double>(pkt.payload));
    case Proto::kUdp:
      return p.rx_udp_per_packet +
             static_cast<Cycles>(p.rx_cycles_per_byte *
                                 static_cast<double>(pkt.payload));
    case Proto::kIcmp:
      return p.rx_udp_per_packet;
  }
  return p.rx_udp_per_packet;
}
}  // namespace

void VirtioNetFrontend::napi_poll_one(Vcpu& vcpu, int pair, int budget_left,
                                      std::function<void()> done) {
  Virtqueue& rx = backend_.rx_vq(pair);
  auto entry = rx.pop_used();
  if (!entry) {
    finish_poll(vcpu, pair, std::move(done));
    return;
  }
  ES2_CHECK_MSG(entry->packet != nullptr, "used RX entry without a packet");
  const Cycles cost = rx_packet_cost(os_.params(), *entry->packet);
  PacketPtr packet = entry->packet;
  vcpu.guest_exec(cost, [this, &vcpu, pair, budget_left,
                         packet = std::move(packet),
                         done = std::move(done)]() mutable {
    ++rx_polled_;
    ++rx_polled_by_pair_[static_cast<std::size_t>(pair)];
    os_.deliver_to_stack(
        vcpu, packet,
        [this, &vcpu, pair, budget_left, done = std::move(done)]() mutable {
          if (budget_left <= 1 && overload_rung_ >= 1 &&
              ksoftirqd_ != nullptr) {
            // Budget spent at rung >= 1: hand the still-loaded ring to
            // ksoftirqd (task context) instead of refreshing the budget in
            // softirq context, ending the interrupt pass.
            ksoftirqd_defer(vcpu, pair);
            done();
            return;
          }
          // Linux reschedules the softirq when the budget is spent; the
          // net effect under sustained load is continued polling, which is
          // what we model.
          const int next_budget =
              budget_left > 1 ? budget_left - 1 : os_.params().napi_weight;
          napi_poll_one(vcpu, pair, next_budget, std::move(done));
        });
  });
}

void VirtioNetFrontend::finish_poll(Vcpu& vcpu, int pair,
                                    std::function<void()> done) {
  refill_rx(vcpu, pair, [this, &vcpu, pair, done = std::move(done)]() mutable {
    Virtqueue& rx = backend_.rx_vq(pair);
    rx.enable_interrupts();
    if (rx.used_count() > 0) {
      // Race: more packets completed between the last poll and re-enable.
      rx.disable_interrupts();
      if (overload_rung_ >= 1 && ksoftirqd_ != nullptr) {
        ksoftirqd_defer(vcpu, pair);
        done();
        return;
      }
      napi_poll_one(vcpu, pair, os_.params().napi_weight, std::move(done));
      return;
    }
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
      tr->emit(vcpu.vm().host().sim().now(), TraceKind::kNotifyEnable,
               vcpu.vm().id(), vcpu.index(), -1, /*arg=*/2,
               tr->current_service(vcpu.vm().id(), vcpu.index()));
    }
#endif
    // TX-completion interrupts are armed only while senders wait on a
    // stopped queue; otherwise virtio-net leaves them off.
    if (!tx_waiters_.empty()) {
      backend_.tx_vq(pair).enable_interrupts();
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
        tr->emit(vcpu.vm().host().sim().now(), TraceKind::kNotifyEnable,
                 vcpu.vm().id(), vcpu.index(), -1, /*arg=*/3,
                 tr->current_service(vcpu.vm().id(), vcpu.index()));
      }
#endif
    }
#if ES2_PROFILE_ENABLED
    if (Profiler* pf = active_profiler(vcpu.vm().host().sim())) {
      pf->span_end(ProfComp::kGuestNapi,
                   static_cast<unsigned>(vcpu.vm().id() * 16 + pair),
                   vcpu.vm().host().sim().now());
    }
#endif
    vcpu.guest_exec(os_.params().napi_complete, std::move(done));
  });
}

void VirtioNetFrontend::reclaim_tx(Vcpu& vcpu, int pair,
                                   std::function<void()> done) {
  Virtqueue& tx = backend_.tx_vq(pair);
  int freed = 0;
  while (tx.pop_used()) ++freed;
  if (freed == 0) {
    done();
    return;
  }
  const Cycles cost = static_cast<Cycles>(freed) *
                      os_.params().tx_reclaim_per_entry;
  vcpu.guest_exec(cost, [this, done = std::move(done)]() mutable {
    if (!tx_waiters_.empty()) {
      auto waiters = std::move(tx_waiters_);
      tx_waiters_.clear();
      for (GuestTask* task : waiters) task->wake();
    }
    done();
  });
}

void VirtioNetFrontend::refill_rx(Vcpu& vcpu, int pair,
                                  std::function<void()> done) {
  Virtqueue& rx = backend_.rx_vq(pair);
  int added = 0;
  bool kick = false;
  while (rx.free_slots() > 0) {
    const bool ok = rx.add_avail(Virtqueue::Entry{nullptr, 0});
    ES2_CHECK(ok);
    kick = kick || rx.kick_needed();
    ++added;
  }
  if (added == 0) {
    done();
    return;
  }
  const Cycles cost =
      static_cast<Cycles>(added) * os_.params().rx_refill_per_buffer;
  vcpu.guest_exec(cost, [this, &vcpu, pair, kick,
                         done = std::move(done)]() mutable {
    if (kick) {
      ++kicks_;
      vcpu.guest_io_kick([this, pair] { backend_.notify_rx(pair); },
                         std::move(done));
      return;
    }
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
      // EVENT_IDX said the host is already polling: the refill needed no
      // exit at all — the suppression win the paper's Table 1 counts.
      tr->emit(vcpu.vm().host().sim().now(), TraceKind::kKickSuppressed,
               vcpu.vm().id(), vcpu.index(), -1, /*arg=*/1);
    }
#endif
    done();
  });
}

void VirtioNetFrontend::refill_all_rx(Vcpu& vcpu, int pair,
                                      std::function<void()> done) {
  if (pair >= backend_.num_queue_pairs()) {
    done();
    return;
  }
  refill_rx(vcpu, pair, [this, &vcpu, pair, done = std::move(done)]() mutable {
    refill_all_rx(vcpu, pair + 1, std::move(done));
  });
}

void VirtioNetFrontend::transmit(Vcpu& vcpu, PacketPtr packet,
                                 std::function<void(bool)> done) {
  // XPS-style steering: TX follows the same RSS hash the host uses for RX,
  // so a flow's two directions stay on one queue pair.
  const int pair = backend_.steer_pair(packet->proto, packet->flow);
  Virtqueue& tx = backend_.tx_vq(pair);
  // start_xmit frees completed descriptors inline (cost folded into the
  // caller's per-packet send cost).
  while (tx.pop_used()) {
  }
  if (tx.free_slots() <= 0) {
    // Ring full: stop the queue and arm TX-completion interrupts so the
    // backend's progress wakes the sender.
    ++tx_stops_;
    tx.enable_interrupts();
    if (tx.used_count() > 0) {
      // Race: completions arrived before the irq was armed.
      while (tx.pop_used()) {
      }
      tx.disable_interrupts();
    } else {
      done(false);
      return;
    }
  }
  const bool ok = tx.add_avail(Virtqueue::Entry{packet, packet->wire_size});
  ES2_CHECK(ok);
  if (tx.kick_needed()) {
    ++kicks_;
    vcpu.guest_io_kick([this, pair] { backend_.notify_tx(pair); },
                       [done = std::move(done)] { done(true); });
    return;
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
    tr->emit(vcpu.vm().host().sim().now(), TraceKind::kKickSuppressed,
             vcpu.vm().id(), vcpu.index(), -1, /*arg=*/0);
  }
#endif
  done(true);
}

void VirtioNetFrontend::tx_watchdog_tick(Vcpu& vcpu,
                                         std::function<void()> done) {
  // The receive-livelock detector piggybacks on the same tick. Every
  // vCPU's staggered timer runs it, so it keeps sampling even while the
  // NAPI vCPU is wedged; on a single-vCPU guest the timer interrupt
  // preempts the poll chain mid-segment, which is exactly how a real tick
  // gets through a livelocked CPU. Pure state bookkeeping, no cycles.
  if (ksoftirqd_ != nullptr) overload_tick(vcpu);
  // Sample every pair's stall signatures up front (pure reads); the
  // recovery work below may reset queues, and the flags must reflect the
  // state at tick entry, exactly as the single-queue driver captured them
  // by value before the ladder stage.
  for (int pair = 0; pair < backend_.num_queue_pairs(); ++pair) {
    const auto i = static_cast<std::size_t>(pair);
    Virtqueue& tx = backend_.tx_vq(pair);
    const std::int64_t used_now = tx.total_used();
    // TX stall signature: descriptors posted, zero completion progress
    // since the last tick, and the host sleeping with notifications armed —
    // meaning it expects a kick that evidently never arrived. Anything else
    // resets the strike counter (a kick may legitimately be in flight at
    // sampling time). Busy-poll modes keep notifications off, so the
    // watchdog stays inert there by construction.
    watchdog_tx_stalled_[i] = tx.avail_count() > 0 &&
                              used_now == watchdog_last_used_[i] &&
                              tx.notifications_enabled();
    watchdog_last_used_[i] = used_now;
    // RX missed-interrupt signature (the e1000 watchdog's trick): completed
    // buffers parked in the used ring, zero consumption progress since the
    // last tick, device interrupts armed, and no NAPI pass in flight — the
    // MSI that should have started one evidently never landed, and with
    // used_event stale no later completion will re-raise it. The progress
    // term keeps a merely *pending* interrupt (IRR set, not yet serviced)
    // from ever counting as a stall on healthy paths.
    Virtqueue& rx = backend_.rx_vq(pair);
    watchdog_rx_stalled_[i] = rx.used_count() > 0 &&
                              rx_polled_by_pair_[i] ==
                                  rx_watchdog_last_polled_[i] &&
                              rx.interrupts_enabled() && !napi_scheduled_[i];
    rx_watchdog_last_polled_[i] = rx_polled_by_pair_[i];
  }

  // The watchdog halves run after the (usually pass-through) recovery-
  // ladder stage; a quarantined queue needs a reset, not a re-kick.
  ladder_stage(vcpu, [this, &vcpu, done = std::move(done)]() mutable {
    if (!os_.params().tx_watchdog) {
      std::fill(watchdog_strikes_.begin(), watchdog_strikes_.end(), 0);
      std::fill(rx_watchdog_strikes_.begin(), rx_watchdog_strikes_.end(), 0);
      done();
      return;
    }
    watchdog_pair(vcpu, 0, std::move(done));
  });
}

void VirtioNetFrontend::watchdog_pair(Vcpu& vcpu, int pair,
                                      std::function<void()> done) {
  if (pair >= backend_.num_queue_pairs()) {
    done();
    return;
  }
  const auto i = static_cast<std::size_t>(pair);
  auto next = [this, &vcpu, pair, done = std::move(done)]() mutable {
    watchdog_pair(vcpu, pair + 1, std::move(done));
  };

  // Second half of the pair's tick: recover a lost RX interrupt by running
  // the NAPI pass it would have started. Same two-strike debounce as TX —
  // an MSI legitimately in flight at sampling time never trips it.
  auto rx_stage = [this, &vcpu, pair, i, next = std::move(next)]() mutable {
    if (!watchdog_rx_stalled_[i]) {
      rx_watchdog_strikes_[i] = 0;
      next();
      return;
    }
    if (++rx_watchdog_strikes_[i] < 2) {
      next();
      return;
    }
    rx_watchdog_strikes_[i] = 0;
    ++rx_watchdog_polls_;
    if (RecoveryLog* log = backend_.recovery_log()) {
      log->note_action(RecoveryRung::kGuestWatchdog, kScopeRx);
    }
#if ES2_TRACE_ENABLED
    if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
      tr->emit(vcpu.vm().host().sim().now(), TraceKind::kWatchdogRecover,
               vcpu.vm().id(), vcpu.index(), -1, /*arg=*/1);
    }
#endif
    backend_.rx_vq(pair).disable_interrupts();
    backend_.tx_vq(pair).disable_interrupts();
    napi_scheduled_[i] = true;
    vcpu.guest_exec(os_.params().softirq_entry,
                    [this, &vcpu, pair, i, next = std::move(next)]() mutable {
                      napi_poll(vcpu, pair,
                                [this, i, next = std::move(next)]() mutable {
                                  napi_scheduled_[i] = false;
                                  next();
                                });
                    });
  };

  if (!watchdog_tx_stalled_[i]) {
    watchdog_strikes_[i] = 0;
    rx_stage();
    return;
  }
  if (++watchdog_strikes_[i] < 2) {
    rx_stage();
    return;
  }
  // Two full tick periods without progress: ndo_tx_timeout. Re-kick.
  watchdog_strikes_[i] = 0;
  ++tx_watchdog_kicks_;
  ++kicks_;
  if (RecoveryLog* log = backend_.recovery_log()) {
    log->note_action(RecoveryRung::kGuestWatchdog, kScopeTx);
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
    tr->emit(vcpu.vm().host().sim().now(), TraceKind::kWatchdogRecover,
             vcpu.vm().id(), vcpu.index(), -1, /*arg=*/0);
  }
#endif
  vcpu.guest_exec(os_.params().tx_watchdog_rekick,
                  [this, &vcpu, pair,
                   rx_stage = std::move(rx_stage)]() mutable {
                    vcpu.guest_io_kick([this, pair] {
                      backend_.notify_tx(pair);
                    }, std::move(rx_stage));
                  });
}

void VirtioNetFrontend::ladder_stage(Vcpu& vcpu, std::function<void()> done) {
  const GuestParams& p = os_.params();
  if (!p.recovery_ladder) {
    done();
    return;
  }
  if (!backend_.needs_reset()) {
    // Healthy (or recovered): the episode is over, escalation state decays.
    std::fill(ladder_recent_.begin(), ladder_recent_.end(), 0);
    done();
    return;
  }
  int first_quarantined = -1;
  int quarantined = 0;
  bool repeat_offender = false;
  for (int q = 0; q < backend_.num_queues(); ++q) {
    if (backend_.queue(q).pending_fault() != RingFault::kNone) {
      if (first_quarantined < 0) first_quarantined = q;
      ++quarantined;
    }
    if (ladder_recent_[static_cast<std::size_t>(q)] >=
        p.ladder_device_reset_after) {
      repeat_offender = true;
    }
  }
  if (quarantined == 0 || quarantined == backend_.num_queues() ||
      repeat_offender) {
    // Device-wide damage (every queue quarantined, or NEEDS_RESET with no
    // queue-level diagnosis) or a queue that keeps coming back: top rung.
    guest_reset_device(vcpu, std::move(done));
    return;
  }
  const int q = first_quarantined;
  ++ladder_recent_[static_cast<std::size_t>(q)];
  guest_reset_queue(vcpu, q, std::move(done));
}

void VirtioNetFrontend::guest_reset_queue(Vcpu& vcpu, int q,
                                          std::function<void()> done) {
  ++ladder_queue_resets_;
  vcpu.guest_exec(os_.params().queue_reset_cost,
                  [this, &vcpu, q, done = std::move(done)]() mutable {
    backend_.reset_queue(q);
    const auto pair = static_cast<std::size_t>(q / 2);
    if (q % 2 == 0) {
      // Fresh TX ring: boot suppression state, blocked senders retry into
      // it (their in-flight descriptors are gone; TCP retransmit covers
      // the lost segments).
      backend_.tx_vq(q / 2).disable_interrupts();
      watchdog_last_used_[pair] = 0;
      watchdog_strikes_[pair] = 0;
      wake_tx_waiters();
      done();
      return;
    }
    // Fresh RX ring: re-post every buffer; the ring's notifications come
    // back enabled, so the refill kicks the backend into draining the
    // socket backlog that piled up during the quarantine.
    rx_watchdog_strikes_[pair] = 0;
    refill_rx(vcpu, q / 2, std::move(done));
  });
}

void VirtioNetFrontend::guest_reset_device(Vcpu& vcpu,
                                           std::function<void()> done) {
  ++ladder_device_resets_;
  std::fill(ladder_recent_.begin(), ladder_recent_.end(), 0);
  vcpu.guest_exec(os_.params().device_reset_cost,
                  [this, &vcpu, done = std::move(done)]() mutable {
    backend_.write_status(0);
    negotiate();
    vcpu.guest_exec(os_.params().renegotiate_cost,
                    [this, &vcpu, done = std::move(done)]() mutable {
      for (int pair = 0; pair < backend_.num_queue_pairs(); ++pair) {
        backend_.tx_vq(pair).disable_interrupts();
      }
      backend_.write_status(kStatusAcknowledge | kStatusDriver |
                            kStatusFeaturesOk | kStatusDriverOk);
      std::fill(watchdog_last_used_.begin(), watchdog_last_used_.end(), 0);
      std::fill(watchdog_strikes_.begin(), watchdog_strikes_.end(), 0);
      std::fill(rx_watchdog_strikes_.begin(), rx_watchdog_strikes_.end(), 0);
      wake_tx_waiters();
      refill_all_rx(vcpu, 0, std::move(done));
    });
  });
}

void VirtioNetFrontend::add_tx_waiter(GuestTask& task) {
  for (GuestTask* t : tx_waiters_) {
    if (t == &task) return;
  }
  tx_waiters_.push_back(&task);
}

void VirtioNetFrontend::register_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", os_.vm().name()}};
  registry.probe("guest.net.kicks", labels, [this] {
    return static_cast<double>(kicks_);
  });
  registry.probe("guest.net.rx_polled", labels, [this] {
    return static_cast<double>(rx_polled_);
  });
  registry.probe("guest.net.tx_queue_stops", labels, [this] {
    return static_cast<double>(tx_stops_);
  });
  registry.probe("guest.net.tx_watchdog_kicks", labels, [this] {
    return static_cast<double>(tx_watchdog_kicks_);
  });
  registry.probe("guest.net.rx_watchdog_polls", labels, [this] {
    return static_cast<double>(rx_watchdog_polls_);
  });
}

void VirtioNetFrontend::register_lifecycle_metrics(MetricsRegistry& registry) {
  const std::string vm = os_.vm().name();
  registry.probe("recovery.watchdog", {{"vm", vm}, {"cause", "tx_rekick"}},
                 [this] { return static_cast<double>(tx_watchdog_kicks_); });
  registry.probe("recovery.watchdog", {{"vm", vm}, {"cause", "napi_poll"}},
                 [this] { return static_cast<double>(rx_watchdog_polls_); });
  MetricLabels labels = {{"vm", vm}};
  registry.probe("guest.net.ladder_queue_resets", labels, [this] {
    return static_cast<double>(ladder_queue_resets_);
  });
  registry.probe("guest.net.ladder_device_resets", labels, [this] {
    return static_cast<double>(ladder_device_resets_);
  });
}

// ---------------------------------------------------------------------------
// Overload: receive-livelock detection + graceful-degradation ladder
// ---------------------------------------------------------------------------

void VirtioNetFrontend::overload_tick(Vcpu& vcpu) {
  const GuestParams& p = os_.params();
  const std::int64_t polls = rx_polled_;
  const std::int64_t progress = os_.app_progress();
  const std::int64_t poll_delta = polls - overload_last_polls_;
  const std::int64_t progress_delta = progress - overload_last_progress_;
  overload_last_polls_ = polls;
  overload_last_progress_ = progress;
  if (overload_episode_open_ && progress_delta > 0) {
    // First application-level progress since detection: the episode's MTTR
    // clock stops here, even though the ladder stays latched until the
    // storm actually subsides.
    overload_episode_open_ = false;
    if (RecoveryLog* log = backend_.recovery_log()) {
      log->note_progress(kScopeApp, os_.vm().host().sim().now());
    }
  }
  const bool storming = poll_delta >= p.livelock_poll_threshold;
  if (storming && progress_delta == 0) {
    // The livelock signature: the kernel is demonstrably busy taking
    // interrupts and polling packets, yet the application completes
    // nothing. (Merely idle guests never trip this: no polls, no strikes.)
    overload_clear_ = 0;
    if (++overload_strikes_ >= p.livelock_trip_ticks) {
      overload_strikes_ = 0;
      overload_escalate(vcpu);
    }
    return;
  }
  overload_strikes_ = 0;
  if (overload_rung_ > 0 && progress_delta > 0 && !storming) {
    // Healthy sample: progress flowing and poll pressure below storm
    // level. De-escalation is latched behind a run of these so the ladder
    // holds through the storm instead of flapping at its edges.
    if (++overload_clear_ >= p.livelock_clear_ticks) {
      overload_clear_ = 0;
      overload_deescalate();
    }
    return;
  }
  overload_clear_ = 0;
}

void VirtioNetFrontend::overload_escalate(Vcpu& vcpu) {
  (void)vcpu;
  if (overload_rung_ >= 3) return;  // top rung: hold until samples clear
  ++overload_rung_;
  overload_max_rung_ = std::max(overload_max_rung_, overload_rung_);
  RecoveryLog* log = backend_.recovery_log();
  if (overload_rung_ == 1) {
    // Detection proper: open a recovery episode so MTTR (time back to the
    // first accepted connection / served response) lands in the same
    // report as every other fault class.
    ++livelock_detections_;
    overload_episode_open_ = true;
    if (log != nullptr) {
      std::uint64_t corr = 0;
#if ES2_TRACE_ENABLED
      if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
        corr = tr->current_service(vcpu.vm().id(), vcpu.index());
      }
#endif
      log->open(LifecycleFault::kRxLivelock, kScopeApp,
                os_.vm().host().sim().now(), corr);
      log->note_action(RecoveryRung::kNapiClamp, kScopeApp);
    }
  } else if (overload_rung_ == 2) {
    backend_.set_rx_backpressure(true);
    if (log != nullptr) log->note_action(RecoveryRung::kRxBackpressure, kScopeApp);
  } else {
    // Rung 3 is applied by the application, which polls overload_rung().
    if (log != nullptr) log->note_action(RecoveryRung::kAcceptShed, kScopeApp);
  }
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
    tr->emit(vcpu.vm().host().sim().now(), TraceKind::kWatchdogRecover,
             vcpu.vm().id(), vcpu.index(), -1, /*arg=*/2 + overload_rung_);
  }
#endif
}

void VirtioNetFrontend::overload_deescalate() {
  if (overload_rung_ == 0) return;
  if (overload_rung_ == 2) backend_.set_rx_backpressure(false);
  --overload_rung_;
}

void VirtioNetFrontend::ksoftirqd_defer(Vcpu& vcpu, int pair) {
  (void)vcpu;
  ++ksoftirqd_defers_;
  ksoftirqd_pending_[static_cast<std::size_t>(pair)] = 1;
#if ES2_PROFILE_ENABLED
  // The softirq pass genuinely ends here; ksoftirqd's polling is ordinary
  // task work, so the NAPI span closes now.
  if (Profiler* pf = active_profiler(vcpu.vm().host().sim())) {
    pf->span_end(ProfComp::kGuestNapi,
                 static_cast<unsigned>(vcpu.vm().id() * 16 + pair),
                 vcpu.vm().host().sim().now());
  }
#endif
#if ES2_TRACE_ENABLED
  if (Tracer* tr = active_tracer(vcpu.vm().host().sim())) {
    // arg=1 marks a ksoftirqd handoff (plain poll passes emit arg=0).
    tr->emit(vcpu.vm().host().sim().now(), TraceKind::kNapiPoll,
             vcpu.vm().id(), vcpu.index(), -1, /*arg=*/1,
             tr->current_service(vcpu.vm().id(), vcpu.index()));
  }
#endif
  ksoftirqd_->wake();
}

void VirtioNetFrontend::ksoftirqd_unit(Vcpu& vcpu) {
  int pair = -1;
  for (std::size_t i = 0; i < ksoftirqd_pending_.size(); ++i) {
    if (ksoftirqd_pending_[i] != 0) {
      pair = static_cast<int>(i);
      break;
    }
  }
  if (pair < 0) {
    ksoftirqd_->block_self();
    os_.task_done(vcpu);
    return;
  }
  ksoftirqd_poll(vcpu, pair, os_.params().napi_budget_clamp);
}

void VirtioNetFrontend::ksoftirqd_poll(Vcpu& vcpu, int pair, int budget_left) {
  if (budget_left <= 0) {
    // Batch done, ring still loaded: yield so the round-robin scheduler
    // interleaves application tasks between batches — this is the fair
    // share that restores forward progress. The pair stays pending and
    // the task stays runnable.
    os_.task_done(vcpu);
    return;
  }
  Virtqueue& rx = backend_.rx_vq(pair);
  auto entry = rx.pop_used();
  if (!entry) {
    ksoftirqd_finish(vcpu, pair);
    return;
  }
  ES2_CHECK_MSG(entry->packet != nullptr, "used RX entry without a packet");
  const Cycles cost = rx_packet_cost(os_.params(), *entry->packet);
  PacketPtr packet = entry->packet;
  vcpu.guest_exec(cost, [this, &vcpu, pair, budget_left,
                         packet = std::move(packet)]() mutable {
    ++rx_polled_;
    ++rx_polled_by_pair_[static_cast<std::size_t>(pair)];
    ++ksoftirqd_polls_;
    os_.deliver_to_stack(vcpu, packet, [this, &vcpu, pair, budget_left] {
      ksoftirqd_poll(vcpu, pair, budget_left - 1);
    });
  });
}

void VirtioNetFrontend::ksoftirqd_finish(Vcpu& vcpu, int pair) {
  // Pass epilogue in task context, mirroring finish_poll: refill, re-arm
  // interrupts, handle the completion race (by staying pending and taking
  // another scheduling turn rather than re-polling inline).
  refill_rx(vcpu, pair, [this, &vcpu, pair] {
    Virtqueue& rx = backend_.rx_vq(pair);
    rx.enable_interrupts();
    if (rx.used_count() > 0) {
      rx.disable_interrupts();
      os_.task_done(vcpu);
      return;
    }
    ksoftirqd_pending_[static_cast<std::size_t>(pair)] = 0;
    if (!tx_waiters_.empty()) backend_.tx_vq(pair).enable_interrupts();
    vcpu.guest_exec(os_.params().napi_complete,
                    [this, &vcpu] { os_.task_done(vcpu); });
  });
}

void VirtioNetFrontend::register_overload_metrics(MetricsRegistry& registry) {
  MetricLabels labels = {{"vm", os_.vm().name()}};
  registry.probe("guest.net.overload.rung", labels, [this] {
    return static_cast<double>(overload_rung_);
  });
  registry.probe("guest.net.overload.max_rung", labels, [this] {
    return static_cast<double>(overload_max_rung_);
  });
  registry.probe("guest.net.overload.livelock_detections", labels, [this] {
    return static_cast<double>(livelock_detections_);
  });
  registry.probe("guest.net.overload.ksoftirqd_defers", labels, [this] {
    return static_cast<double>(ksoftirqd_defers_);
  });
  registry.probe("guest.net.overload.ksoftirqd_polls", labels, [this] {
    return static_cast<double>(ksoftirqd_polls_);
  });
}

void VirtioNetFrontend::snapshot_overload_state(SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(overload_rung_));
  w.put_u32(static_cast<std::uint32_t>(overload_max_rung_));
  w.put_u32(static_cast<std::uint32_t>(overload_strikes_));
  w.put_u32(static_cast<std::uint32_t>(overload_clear_));
  w.put_bool(overload_episode_open_);
  w.put_i64(overload_last_polls_);
  w.put_i64(overload_last_progress_);
  w.put_i64(livelock_detections_);
  w.put_i64(ksoftirqd_defers_);
  w.put_i64(ksoftirqd_polls_);
  for (char pend : ksoftirqd_pending_) w.put_bool(pend != 0);
}

void VirtioNetFrontend::snapshot_lifecycle_state(SnapshotWriter& w) const {
  for (int recent : ladder_recent_) {
    w.put_u32(static_cast<std::uint32_t>(recent));
  }
  w.put_i64(ladder_queue_resets_);
  w.put_i64(ladder_device_resets_);
}

void VirtioNetFrontend::snapshot_state(SnapshotWriter& w) const {
  // Pair 0 keeps the exact pre-MQ field order (and therefore byte layout);
  // additional pairs append their state only when negotiated, so
  // single-queue images are bit-identical to older ones.
  w.put_bool(napi_scheduled_[0]);
  w.put_u32(static_cast<std::uint32_t>(tx_waiters_.size()));
  w.put_i64(tx_stops_);
  w.put_i64(rx_polled_);
  w.put_i64(kicks_);
  w.put_i64(watchdog_last_used_[0]);
  w.put_u32(static_cast<std::uint32_t>(watchdog_strikes_[0]));
  w.put_i64(tx_watchdog_kicks_);
  w.put_i64(rx_watchdog_last_polled_[0]);
  w.put_u32(static_cast<std::uint32_t>(rx_watchdog_strikes_[0]));
  w.put_i64(rx_watchdog_polls_);
  for (int pair = 1; pair < backend_.num_queue_pairs(); ++pair) {
    const auto i = static_cast<std::size_t>(pair);
    w.put_bool(napi_scheduled_[i]);
    w.put_i64(watchdog_last_used_[i]);
    w.put_u32(static_cast<std::uint32_t>(watchdog_strikes_[i]));
    w.put_i64(rx_watchdog_last_polled_[i]);
    w.put_u32(static_cast<std::uint32_t>(rx_watchdog_strikes_[i]));
    w.put_i64(rx_polled_by_pair_[i]);
  }
}

}  // namespace es2
