#include "guest/guest_os.h"

#include <algorithm>

#include "base/assert.h"
#include "guest/virtio_net.h"
#include "metrics/metrics.h"

namespace es2 {

// ---------------------------------------------------------------------------
// GuestTask
// ---------------------------------------------------------------------------

GuestTask::GuestTask(GuestOs& os, std::string name, int vcpu_affinity,
                     bool low_priority)
    : os_(os),
      name_(std::move(name)),
      vcpu_affinity_(vcpu_affinity),
      low_priority_(low_priority) {
  ES2_CHECK(vcpu_affinity >= 0 && vcpu_affinity < os.vm().num_vcpus());
}

void GuestTask::wake() {
  if (runnable_) return;
  runnable_ = true;
  os_.wake_vcpu_for_task(*this);
}

// ---------------------------------------------------------------------------
// GuestOs
// ---------------------------------------------------------------------------

GuestOs::GuestOs(Vm& vm, GuestParams params)
    : vm_(vm), params_(params),
      rng_(vm.host().sim().make_rng("guest/" + vm.name())),
      rr_cursor_(static_cast<size_t>(vm.num_vcpus()), 0) {
  vm.set_guest(this);
}

Cycles GuestOs::jittered(Cycles cost) {
  if (params_.cost_jitter <= 0) return cost;
  const double f =
      1.0 + params_.cost_jitter * (2.0 * rng_.next_double() - 1.0);
  return static_cast<Cycles>(static_cast<double>(cost) * f);
}

GuestOs::~GuestOs() = default;

void GuestOs::add_task(GuestTask& task) { tasks_.push_back(&task); }

void GuestOs::attach_netdev(VirtioNetFrontend& dev) {
  netdevs_.push_back(&dev);
}

VirtioNetFrontend& GuestOs::netdev() {
  ES2_CHECK_MSG(!netdevs_.empty(), "guest has no network device");
  return *netdevs_.front();
}

void GuestOs::register_flow(std::uint64_t flow, FlowSink& sink) {
  flows_[flow] = &sink;
}

void GuestOs::unregister_flow(std::uint64_t flow) { flows_.erase(flow); }

GuestTask* GuestOs::pick_task(int vcpu_index) {
  // Two priority levels: any runnable normal task beats any burn task.
  // Round-robin within a level via a per-vCPU rotating cursor.
  GuestTask* burn = nullptr;
  const size_t n = tasks_.size();
  if (n == 0) return nullptr;
  auto& cursor = rr_cursor_[static_cast<size_t>(vcpu_index)];
  for (size_t i = 0; i < n; ++i) {
    GuestTask* t = tasks_[(cursor + 1 + i) % n];
    if (!t->runnable() || t->vcpu_affinity() != vcpu_index) continue;
    if (t->low_priority()) {
      if (burn == nullptr) burn = t;
      continue;
    }
    cursor = (cursor + 1 + i) % n;
    return t;
  }
  return burn;
}

void GuestOs::run(int vcpu_index) {
  Vcpu& vcpu = vm_.vcpu(vcpu_index);
  GuestTask* task = pick_task(vcpu_index);
  if (task == nullptr) {
    // Idle: the guest executes HLT; the vCPU blocks until an interrupt.
    vcpu.guest_halt();
    return;
  }
  vcpu.guest_exec(params_.task_switch,
                  [task, &vcpu] { task->run_unit(vcpu); });
}

void GuestOs::task_done(Vcpu& vcpu) { run(vcpu.index()); }

bool GuestOs::cpu_idle(int vcpu_index) const {
  return vm_.vcpu(vcpu_index).halted();
}

void GuestOs::wake_vcpu_for_task(const GuestTask& task) {
  // If the task's CPU idles in HLT, a resched IPI (a per-vCPU interrupt
  // that must never be redirected) pulls it out of the idle loop.
  Vcpu& vcpu = vm_.vcpu(task.vcpu_affinity());
  if (vcpu.halted()) vcpu.deliver_interrupt(kRescheduleIpiVector);
}

void GuestOs::take_interrupt(int vcpu_index, Vector vector) {
  Vcpu& vcpu = vm_.vcpu(vcpu_index);
  for (VirtioNetFrontend* dev : netdevs_) {
    if (dev->owns_vector(vector)) {
      dev->handle_irq(vcpu, vector);
      return;
    }
  }
  if (vector == kLocalTimerVector) {
    // The tick body also drives the netdev TX watchdog (dev_watchdog runs
    // off the timer in Linux too); on healthy paths that is a pure state
    // check costing no extra guest cycles.
    vcpu.guest_exec(params_.timer_handler,
                    [this, &vcpu] { netdev_watchdog_tick(vcpu, 0); });
    return;
  }
  if (vector == kRescheduleIpiVector || vector == kCallFunctionIpiVector) {
    vcpu.guest_exec(params_.resched_ipi_handler, [&vcpu] {
      vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
    });
    return;
  }
  // Unknown vector: a real guest would report a spurious interrupt.
  vcpu.guest_exec(params_.resched_ipi_handler, [&vcpu] {
    vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
  });
}

void GuestOs::netdev_watchdog_tick(Vcpu& vcpu, std::size_t i) {
  if (i >= netdevs_.size()) {
    vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
    return;
  }
  netdevs_[i]->tx_watchdog_tick(
      vcpu, [this, &vcpu, i] { netdev_watchdog_tick(vcpu, i + 1); });
}

void GuestOs::deliver_to_stack(Vcpu& vcpu, const PacketPtr& packet,
                               std::function<void()> done) {
  const auto it = flows_.find(packet->flow);
  if (it == flows_.end()) {
    ++unknown_flow_;
    done();
    return;
  }
  it->second->on_packet(vcpu, packet, std::move(done));
}

void GuestOs::register_metrics(MetricsRegistry& registry) {
  registry.probe("guest.unknown_flow_packets", {{"vm", vm_.name()}}, [this] {
    return static_cast<double>(unknown_flow_);
  });
  for (VirtioNetFrontend* dev : netdevs_) dev->register_metrics(registry);
}

void GuestOs::snapshot_state(SnapshotWriter& w) const {
  snapshot_rng(w, rng_);
  w.put_i64(unknown_flow_);
  // Detector input, meaningful only when the overload ladder is armed;
  // gating it keeps every pre-overload image byte-identical.
  if (params_.overload_mitigation) w.put_i64(app_progress_);
  w.put_u32(static_cast<std::uint32_t>(rr_cursor_.size()));
  for (std::uint64_t c : rr_cursor_) w.put_u64(c);
  w.put_u32(static_cast<std::uint32_t>(tasks_.size()));
  for (const GuestTask* t : tasks_) {
    w.put_string(t->name());
    w.put_bool(t->runnable());
    w.put_bool(t->low_priority());
  }
  std::vector<std::uint64_t> flow_ids;
  flow_ids.reserve(flows_.size());
  for (const auto& [flow, sink] : flows_) flow_ids.push_back(flow);
  std::sort(flow_ids.begin(), flow_ids.end());
  w.put_u32(static_cast<std::uint32_t>(flow_ids.size()));
  for (std::uint64_t f : flow_ids) w.put_u64(f);
  w.put_u32(static_cast<std::uint32_t>(netdevs_.size()));
  for (const VirtioNetFrontend* dev : netdevs_) dev->snapshot_state(w);
}

}  // namespace es2
