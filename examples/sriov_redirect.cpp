// Example: ES2's applicability to SR-IOV direct device assignment
// (paper §VII).
//
// A VM owns a virtual function directly: transmits are untrapped doorbell
// writes (no I/O-request exits by construction) and ingress interrupts are
// VT-d-posted (no interrupt exits). The one remaining event-path problem
// is scheduling delay when the interrupt's affinity vCPU is offline — and
// intelligent interrupt redirection fixes exactly that, unchanged.
//
//   $ ./sriov_redirect [--fast]
#include <cstdio>
#include <cstring>

#include "base/strings.h"
#include "base/table.h"
#include "es2/sriov.h"
#include "stats/histogram.h"
#include "harness/testbed.h"

using namespace es2;

namespace {

/// Minimal guest for the VF: echoes each received packet back through the
/// VF from its interrupt handler (a latency reflector).
class VfEchoGuest final : public GuestCpu {
 public:
  VfEchoGuest(Vm& vm, DirectNic& nic) : vm_(vm), nic_(nic) {
    vm.set_guest(this);
  }

  void run(int vcpu_index) override {
    // Burn loop: keeps every vCPU runnable like the paper's test setup.
    Vcpu& vcpu = vm_.vcpu(vcpu_index);
    vcpu.guest_exec(115000, [this, vcpu_index] { run(vcpu_index); });
  }

  void take_interrupt(int vcpu_index, Vector vector) override {
    Vcpu& vcpu = vm_.vcpu(vcpu_index);
    if (vector != nic_.rx_msi().vector) {
      vcpu.guest_exec(2000, [&vcpu] {
        vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
      });
      return;
    }
    vcpu.guest_exec(4000, [this, &vcpu] {
      if (!nic_.rx_pending()) {
        vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
        return;
      }
      PacketPtr request = nic_.pop_rx();
      Packet reply;
      reply.proto = Proto::kIcmp;
      reply.flow = request->flow;
      reply.payload = request->payload;
      reply.wire_size = request->wire_size;
      reply.probe_id = request->probe_id;
      reply.sent_at = request->sent_at;
      nic_.transmit(vcpu, make_packet(std::move(reply)), [this, &vcpu] {
        if (nic_.rx_pending()) {
          take_interrupt(vcpu.index(), nic_.rx_msi().vector);
          return;
        }
        vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
      });
    });
  }

 private:
  Vm& vm_;
  DirectNic& nic_;
};

}  // namespace

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  const int probes = fast ? 40 : 120;

  Table t({"Deployment", "p50 RTT", "p99 RTT", "VM exits/s"});
  for (const bool redirect : {false, true}) {
    Simulator sim(1);
    KvmHost host(sim, 8);
    Es2Config cfg = redirect ? Es2Config::pi_h_r() : Es2Config::pi();
    Es2System es2sys(host, cfg);

    // Four 4-vCPU VMs stacked on cores 0-3; VM 0 owns the VF.
    std::vector<std::unique_ptr<VfEchoGuest>> guests;
    std::vector<std::unique_ptr<DirectNic>> nics;
    DuplexLink cable(sim, 40.0, 1500);
    for (int v = 0; v < 4; ++v) {
      Vm& vm = host.create_vm(format("vm%d", v), {0, 1, 2, 3}, cfg.irq_mode());
      if (v == 0) {
        nics.push_back(std::make_unique<DirectNic>(vm, cable.a_to_b));
        guests.push_back(std::make_unique<VfEchoGuest>(vm, *nics.back()));
        if (redirect) es2sys.redirector()->track(vm);
      } else {
        nics.push_back(std::make_unique<DirectNic>(vm, cable.a_to_b));
        guests.push_back(std::make_unique<VfEchoGuest>(vm, *nics.back()));
      }
    }
    cable.b_to_a.set_receiver(
        [&](PacketPtr p) { nics[0]->receive_from_wire(std::move(p)); });

    PeerHost peer(sim, cable.b_to_a);
    peer.attach_rx(cable.a_to_b);
    Histogram rtt;
    std::uint64_t next_probe = 1;
    peer.register_flow(7, [&](const PacketPtr& p) {
      rtt.record(sim.now() - p->sent_at);
    });
    PeriodicTimer prober(sim, msec(40), [&] {
      Packet p;
      p.proto = Proto::kIcmp;
      p.flow = 7;
      p.payload = 56;
      p.wire_size = 110;
      p.probe_id = next_probe++;
      p.sent_at = sim.now();
      peer.send(make_packet(std::move(p)));
    });

    for (int v = 0; v < 4; ++v) host.vm(v).start();
    prober.start();
    sim.run_for(msec(40) * (probes + 2));

    const ExitStats exits = host.vm(0).aggregate_stats();
    t.add_row({redirect ? "VT-d PI + redirection (ES2)" : "VT-d PI only",
               fixed(rtt.p50() / 1e6, 2) + "ms", fixed(rtt.p99() / 1e6, 2) + "ms",
               with_commas(static_cast<std::int64_t>(
                   exits.total_rate(sim.now())))});
  }
  std::printf("SR-IOV VF echo latency under 4x core oversubscription\n%s",
              t.render().c_str());
  std::printf("\nDirect assignment removes I/O-request exits by construction\n"
              "and VT-d PI removes interrupt exits; redirection then removes\n"
              "the remaining vCPU scheduling delay (paper §VII).\n");
  return 0;
}
