// Example: an Apache-style web server VM under two kinds of load — steady
// ApacheBench traffic and an httperf connection-rate ramp (the paper's
// Fig. 8b + Fig. 9 scenarios in one program).
//
//   $ ./web_server [--fast]
#include <cstdio>
#include <cstring>

#include "apps/httpd.h"
#include "base/strings.h"
#include "base/table.h"
#include "harness/testbed.h"

using namespace es2;

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  std::printf("Part 1: ApacheBench throughput, Baseline vs full ES2\n");
  Table t({"Config", "req/s", "Mb/s"});
  for (const Es2Config cfg : {Es2Config::baseline(), Es2Config::pi_h_r()}) {
    TestbedOptions options;
    options.config = cfg;
    options.num_vms = 4;
    options.vcpus_per_vm = 4;
    options.stack_vms = true;
    Testbed testbed(options);
    ApacheServer server(testbed.guest(), testbed.frontend(), 2000,
                        /*client_conns=*/16, /*workers=*/8);
    AbClient ab(testbed.peer(), 2000, 16);
    testbed.start();
    ab.start();
    testbed.sim().run_for(fast ? msec(200) : msec(400));
    ab.begin_window(testbed.sim().now());
    testbed.sim().run_for(fast ? msec(400) : sec(1));
    t.add_row({cfg.name(),
               with_commas(static_cast<std::int64_t>(
                   ab.requests_per_sec(testbed.sim().now()))),
               fixed(ab.response_mbps(testbed.sim().now()), 0)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nPart 2: httperf connection-rate ramp (connect time)\n");
  Table t2({"rate", "Baseline avg", "ES2 avg"});
  for (const double rate : {1200.0, 1900.0, 2400.0}) {
    double avg[2];
    int i = 0;
    for (const Es2Config cfg : {Es2Config::baseline(), Es2Config::pi_h_r()}) {
      TestbedOptions options;
      options.config = cfg;
      options.num_vms = 4;
      options.vcpus_per_vm = 4;
      options.stack_vms = true;
      Testbed testbed(options);
      ApacheServer server(testbed.guest(), testbed.frontend(), 3000, 1, 4);
      HttperfClient httperf(testbed.peer(), server.listen_flow(), rate);
      testbed.start();
      httperf.start();
      testbed.sim().run_for(fast ? sec(1) : sec(2));
      httperf.stop();
      testbed.sim().run_for(msec(500));
      avg[i++] = httperf.connect_time().mean() / 1e6;
    }
    t2.add_row({fixed(rate, 0) + "/s", fixed(avg[0], 2) + "ms",
                fixed(avg[1], 2) + "ms"});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("\nPast the baseline's knee the SYN backlog overflows and 1s\n"
              "SYN retransmissions blow up the mean connect time; ES2's\n"
              "extra event-path headroom moves the knee to higher rates.\n");
  return 0;
}
