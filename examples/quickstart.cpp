// Quickstart: build the paper's testbed, run one netperf TCP send under
// all four configurations, and print the exit breakdown + throughput.
//
//   $ ./quickstart [--fast]
#include <cstdio>
#include <cstring>

#include "base/strings.h"
#include "base/table.h"
#include "harness/experiments.h"

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  es2::Table table({"Config", "IRQ deliv/s", "IRQ compl/s", "I/O req/s",
                    "Others/s", "TIG %", "Throughput Mb/s"});

  for (int i = 0; i < 4; ++i) {
    const es2::Es2Config cfg = es2::Es2Config::all4()[i];
    es2::StreamOptions opts;
    opts.config = cfg;
    opts.proto = es2::Proto::kTcp;
    opts.msg_size = 1024;
    opts.vm_sends = true;
    if (fast) {
      opts.warmup = es2::msec(50);
      opts.measure = es2::msec(200);
    }
    const es2::StreamResult r = es2::run_stream(opts);
    table.add_row({cfg.name(),
                   es2::with_commas(static_cast<std::int64_t>(
                       r.exits.interrupt_delivery)),
                   es2::with_commas(static_cast<std::int64_t>(
                       r.exits.interrupt_completion)),
                   es2::with_commas(
                       static_cast<std::int64_t>(r.exits.io_instruction)),
                   es2::with_commas(static_cast<std::int64_t>(r.exits.others)),
                   es2::fixed(r.exits.tig_percent, 1),
                   es2::fixed(r.throughput_mbps, 0)});
  }

  std::printf("ES2 quickstart — netperf TCP_STREAM send, 1024B messages\n");
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape (paper): PI removes the interrupt exits, PI+H\n"
      "removes most I/O-instruction exits, and TIG climbs above 96%%.\n");
  return 0;
}
