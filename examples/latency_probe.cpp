// Example: latency probing of a consolidated VM — the paper's Fig. 7
// scenario as a tool. Prints the RTT time series for each configuration so
// the scheduling-delay spikes (and their disappearance under redirection)
// are visible sample by sample.
//
//   $ ./latency_probe [--fast] [--samples N]
#include <cstdio>
#include <cstring>

#include "apps/ping.h"
#include "base/strings.h"
#include "harness/testbed.h"

using namespace es2;

int main(int argc, char** argv) {
  int samples = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) samples = 20;
    if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = std::atoi(argv[++i]);
    }
  }

  for (const Es2Config cfg :
       {Es2Config::baseline(), Es2Config::pi(), Es2Config::pi_h_r()}) {
    TestbedOptions options;
    options.config = cfg;
    options.num_vms = 4;
    options.vcpus_per_vm = 4;
    options.stack_vms = true;
    Testbed testbed(options);
    PingResponder responder(testbed.guest(), testbed.frontend(), 7);
    PingClient ping(testbed.peer(), 7, msec(100));
    testbed.start();
    ping.start();
    testbed.sim().run_for(msec(100) * (samples + 2));

    std::printf("\n%s — %d RTT samples (ms):\n", cfg.name().c_str(),
                static_cast<int>(ping.samples().size()));
    // A terminal sparkline of the series: one column per sample.
    for (size_t i = 0; i < ping.samples().size(); ++i) {
      const double ms = static_cast<double>(ping.samples()[i]) / 1e6;
      const int bars = static_cast<int>(ms * 10);  // 0.1ms per '#'
      std::printf("  %3zu %7.3f %s\n", i, ms,
                  std::string(static_cast<size_t>(std::min(bars, 60)), '#')
                      .c_str());
    }
    std::printf("  summary: %s\n", ping.rtt().summary("ms").c_str());
  }
  std::printf("\nThe baseline's spikes are vCPU scheduling delay (the\n"
              "interrupt's affinity target was descheduled); ES2's\n"
              "redirection sends each interrupt to a vCPU that is online.\n");
  return 0;
}
