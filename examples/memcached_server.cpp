// Example: a memcached server VM under memaslap load (the paper's Fig. 8a
// scenario), comparing two deployments interactively.
//
//   $ ./memcached_server [--fast] [--config baseline|pi|pi_h|pi_h_r]
//
// Demonstrates the public API end to end: building the oversubscribed
// testbed, installing an application workload, applying an ES2
// configuration, and reading out throughput/latency.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/memcached.h"
#include "base/strings.h"
#include "harness/testbed.h"

using namespace es2;

namespace {

Es2Config config_by_name(const std::string& name) {
  if (name == "baseline") return Es2Config::baseline();
  if (name == "pi") return Es2Config::pi();
  if (name == "pi_h") return Es2Config::pi_h();
  return Es2Config::pi_h_r();
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string config_name = "pi_h_r";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_name = argv[++i];
    }
  }

  // The paper's macro testbed: four 4-vCPU VMs time-sharing four cores,
  // CPU-burn everywhere, the tested VM runs memcached.
  TestbedOptions options;
  options.config = config_by_name(config_name);
  options.num_vms = 4;
  options.vcpus_per_vm = 4;
  options.stack_vms = true;
  Testbed testbed(options);

  constexpr std::uint64_t kBaseFlow = 1000;
  constexpr int kClientThreads = 16;
  MemcachedServer server(testbed.guest(), testbed.frontend(), kBaseFlow,
                         kClientThreads, /*workers=*/4);

  MemaslapClient::Params load;
  load.threads = kClientThreads;
  load.concurrency_per_thread = 16;  // 256 concurrent requests
  load.get_ratio = 0.9;
  MemaslapClient client(testbed.peer(), kBaseFlow, load, options.seed);

  testbed.start();
  client.start();

  const SimDuration warmup = fast ? msec(150) : msec(400);
  const SimDuration measure = fast ? msec(400) : sec(2);
  testbed.sim().run_for(warmup);
  client.begin_window(testbed.sim().now());
  testbed.tested_vm().begin_stats_window();
  testbed.sim().run_for(measure);

  const SimTime now = testbed.sim().now();
  const ExitStats exits = testbed.tested_vm().aggregate_stats();
  std::printf("memcached VM under %s\n", options.config.name().c_str());
  std::printf("  throughput : %s ops/s (%.0f Mb/s of responses)\n",
              with_commas(static_cast<std::int64_t>(client.ops_per_sec(now)))
                  .c_str(),
              client.response_mbps(now));
  std::printf("  latency    : %s\n", client.latency().summary("ms").c_str());
  std::printf("  exits      : %s\n", exits.summary(now).c_str());
  if (options.config.redirection) {
    auto* red = testbed.es2().redirector();
    std::printf("  redirection: %lld via sticky, %lld via lightest-online, "
                "%lld via offline prediction\n",
                static_cast<long long>(red->via_sticky()),
                static_cast<long long>(red->via_online()),
                static_cast<long long>(red->via_offline_prediction()));
  }
  return 0;
}
