// Fig. 5 — breakdown of VM exit causes + time-in-guest for a VM sending or
// receiving 1024-byte TCP/UDP streams under Baseline / PI / PI+H.
//
// Paper reference TIG: send TCP 70% -> (PI) -> 97.5% (PI+H);
// send UDP 68.5% -> 99.7%; recv TCP 91.1% -> 94.8% -> ~95%;
// recv UDP: PI and PI+H above 99%.
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 5", "Exit breakdown + TIG, send/recv TCP/UDP 1024B");

  struct Case {
    const char* label;
    Proto proto;
    bool vm_sends;
    const char* paper;
  };
  const Case cases[] = {
      {"send TCP", Proto::kTcp, true, "TIG 70% -> 97.5%; EOIs dominate APIC"},
      {"send UDP", Proto::kUdp, true, "TIG 68.5% -> 99.7%; io exits dominate"},
      {"recv TCP", Proto::kTcp, false,
       "TIG 91.1% -> 94.8%; residual io = ACK sends"},
      {"recv UDP", Proto::kUdp, false, "no io exits; PI/PI+H TIG > 99%"},
  };

  CsvWriter csv({"case", "config", "delivery", "completion", "io", "others",
                 "total", "tig_percent"});

  std::vector<StreamResult> results(12);
  std::vector<std::function<void()>> tasks;
  for (size_t c = 0; c < 4; ++c) {
    for (int s = 0; s < 3; ++s) {
      tasks.push_back([&, c, s] {
        StreamOptions o;
        o.config = s == 0 ? Es2Config::baseline()
                          : (s == 1 ? Es2Config::pi()
                                    : Es2Config::pi_h(
                                          cases[c].proto == Proto::kUdp
                                              ? HybridIoHandling::kQuotaUdp
                                              : HybridIoHandling::kQuotaTcp));
        o.proto = cases[c].proto;
        o.msg_size = 1024;
        o.vm_sends = cases[c].vm_sends;
        o.seed = args.seed;
        o.warmup = args.fast ? msec(100) : msec(250);
        o.measure = args.fast ? msec(250) : msec(800);
        // --trace: capture the recv-TCP / PI cell, the paper's canonical
        // exit-less delivery path.
        if (c * 3 + s == 7) {
          o.trace = trace_request(args);
          o.profile = profile_request(args);
          o.snapshot = hash_request(args);
        }
#if ES2_TRACE_ENABLED
        // Trace builds run every cell traced so the per-stage blame
        // columns below cover the whole grid (tracing is passive; the
        // exit/TIG numbers and the gated report are unchanged).
        o.trace.enabled = true;
        o.trace.capacity = std::size_t{1} << 18;
#endif
        results[c * 3 + s] = run_stream(o);
      });
    }
  }
  ParallelRunner().run(std::move(tasks));

  const char* config_names[] = {"Baseline", "PI", "PI+H"};
  for (size_t c = 0; c < 4; ++c) {
    Table t({"Config", "Ext.Int/s", "APIC/s", "I/O Instr/s", "Others/s",
             "Total/s", "TIG %"});
    for (int s = 0; s < 3; ++s) {
      const StreamResult& r = results[c * 3 + s];
      t.add_row({config_names[s], count_str(r.exits.interrupt_delivery),
                 count_str(r.exits.interrupt_completion),
                 count_str(r.exits.io_instruction), count_str(r.exits.others),
                 count_str(r.exits.total), fixed(r.exits.tig_percent, 1)});
      csv.add_row({cases[c].label, config_names[s],
                   fixed(r.exits.interrupt_delivery, 0),
                   fixed(r.exits.interrupt_completion, 0),
                   fixed(r.exits.io_instruction, 0), fixed(r.exits.others, 0),
                   fixed(r.exits.total, 0), fixed(r.exits.tig_percent, 2)});
    }
    std::printf("\n-- %s 1024B   (paper: %s)\n%s", cases[c].label,
                cases[c].paper, t.render().c_str());
  }
  write_csv(args, "fig5", csv);

#if ES2_TRACE_ENABLED
  // Per-stage blame columns (trace builds only): the share of total
  // journey time each event-path component owns, per cell. The committed
  // fig5.csv format above is untouched; the budget gate proper lives in
  // bench_blame.
  CsvWriter blame_csv(
      {"case", "config", "component", "kind", "ns", "fraction"});
  for (size_t c = 0; c < 4; ++c) {
    Table bt({"Config", "notify%", "sched%", "queue%", "backend%", "suppr%",
              "vcpu%", "msi%", "guest%", "p99 us"});
    for (int s = 0; s < 3; ++s) {
      const StreamResult& r = results[c * 3 + s];
      const BlameSummary summary = blame_summary(blame_of(r.trace.get()));
      std::vector<std::string> row{config_names[s]};
      for (const BlameSummary::Component& comp : summary.components) {
        row.push_back(fixed(comp.fraction * 100.0, 1));
        blame_csv.add_row({cases[c].label, config_names[s], comp.name,
                           comp.wait ? "wait" : "service",
                           format("%lld", static_cast<long long>(comp.ns)),
                           format("%.6f", comp.fraction)});
      }
      row.push_back(
          fixed(static_cast<double>(summary.end_to_end_p99) / 1000.0, 1));
      bt.add_row(row);
    }
    std::printf("\n-- %s 1024B blame shares\n%s", cases[c].label,
                bt.render().c_str());
  }
  write_csv(args, "fig5_blame", blame_csv);
#endif

  BenchReport report = make_report(args, "fig5");
  const char* case_keys[] = {"send_tcp", "send_udp", "recv_tcp", "recv_udp"};
  const char* config_keys[] = {"baseline", "pi", "pi_h"};
  for (size_t c = 0; c < 4; ++c) {
    for (int s = 0; s < 3; ++s) {
      const StreamResult& r = results[c * 3 + s];
      const std::string cell =
          std::string(case_keys[c]) + "." + config_keys[s];
      report.add(cell + ".exits_total", r.exits.total);
      report.add(cell + ".tig_percent", r.exits.tig_percent, 0.1);
    }
  }
  write_bench_report(args, report);

  const StreamResult& traced = results[7];
  if (!export_trace(args, traced.trace.get(), traced.stages,
                    traced.profile.get())) {
    return 1;
  }
  if (!export_profile(args, traced.profile.get(), traced.trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, traced.hashes.get())) return 1;
  return 0;
}
