// Fig. 5 — breakdown of VM exit causes + time-in-guest for a VM sending or
// receiving 1024-byte TCP/UDP streams under Baseline / PI / PI+H.
//
// Paper reference TIG: send TCP 70% -> (PI) -> 97.5% (PI+H);
// send UDP 68.5% -> 99.7%; recv TCP 91.1% -> 94.8% -> ~95%;
// recv UDP: PI and PI+H above 99%.
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 5", "Exit breakdown + TIG, send/recv TCP/UDP 1024B");

  struct Case {
    const char* label;
    Proto proto;
    bool vm_sends;
    const char* paper;
  };
  const Case cases[] = {
      {"send TCP", Proto::kTcp, true, "TIG 70% -> 97.5%; EOIs dominate APIC"},
      {"send UDP", Proto::kUdp, true, "TIG 68.5% -> 99.7%; io exits dominate"},
      {"recv TCP", Proto::kTcp, false,
       "TIG 91.1% -> 94.8%; residual io = ACK sends"},
      {"recv UDP", Proto::kUdp, false, "no io exits; PI/PI+H TIG > 99%"},
  };

  CsvWriter csv({"case", "config", "delivery", "completion", "io", "others",
                 "total", "tig_percent"});

  std::vector<StreamResult> results(12);
  std::vector<std::function<void()>> tasks;
  for (size_t c = 0; c < 4; ++c) {
    for (int s = 0; s < 3; ++s) {
      tasks.push_back([&, c, s] {
        StreamOptions o;
        o.config = s == 0 ? Es2Config::baseline()
                          : (s == 1 ? Es2Config::pi()
                                    : Es2Config::pi_h(
                                          cases[c].proto == Proto::kUdp
                                              ? HybridIoHandling::kQuotaUdp
                                              : HybridIoHandling::kQuotaTcp));
        o.proto = cases[c].proto;
        o.msg_size = 1024;
        o.vm_sends = cases[c].vm_sends;
        o.seed = args.seed;
        o.warmup = args.fast ? msec(100) : msec(250);
        o.measure = args.fast ? msec(250) : msec(800);
        // --trace: capture the recv-TCP / PI cell, the paper's canonical
        // exit-less delivery path.
        if (c * 3 + s == 7) {
          o.trace = trace_request(args);
          o.snapshot = hash_request(args);
        }
        results[c * 3 + s] = run_stream(o);
      });
    }
  }
  ParallelRunner().run(std::move(tasks));

  const char* config_names[] = {"Baseline", "PI", "PI+H"};
  for (size_t c = 0; c < 4; ++c) {
    Table t({"Config", "Ext.Int/s", "APIC/s", "I/O Instr/s", "Others/s",
             "Total/s", "TIG %"});
    for (int s = 0; s < 3; ++s) {
      const StreamResult& r = results[c * 3 + s];
      t.add_row({config_names[s], count_str(r.exits.interrupt_delivery),
                 count_str(r.exits.interrupt_completion),
                 count_str(r.exits.io_instruction), count_str(r.exits.others),
                 count_str(r.exits.total), fixed(r.exits.tig_percent, 1)});
      csv.add_row({cases[c].label, config_names[s],
                   fixed(r.exits.interrupt_delivery, 0),
                   fixed(r.exits.interrupt_completion, 0),
                   fixed(r.exits.io_instruction, 0), fixed(r.exits.others, 0),
                   fixed(r.exits.total, 0), fixed(r.exits.tig_percent, 2)});
    }
    std::printf("\n-- %s 1024B   (paper: %s)\n%s", cases[c].label,
                cases[c].paper, t.render().c_str());
  }
  write_csv(args, "fig5", csv);

  BenchReport report = make_report(args, "fig5");
  const char* case_keys[] = {"send_tcp", "send_udp", "recv_tcp", "recv_udp"};
  const char* config_keys[] = {"baseline", "pi", "pi_h"};
  for (size_t c = 0; c < 4; ++c) {
    for (int s = 0; s < 3; ++s) {
      const StreamResult& r = results[c * 3 + s];
      const std::string cell =
          std::string(case_keys[c]) + "." + config_keys[s];
      report.add(cell + ".exits_total", r.exits.total);
      report.add(cell + ".tig_percent", r.exits.tig_percent, 0.1);
    }
  }
  write_bench_report(args, report);

  const StreamResult& traced = results[7];
  if (!export_trace(args, traced.trace.get(), traced.stages)) return 1;
  if (!export_hash_log(args, traced.hashes.get())) return 1;
  return 0;
}
