// Recovery bench — MTTR per lifecycle-fault mode, per stack.
//
// Not a paper figure: this bench certifies the device-lifecycle recovery
// ladder. Each cell runs the peer->VM netperf stream with exactly one
// lifecycle fault mode injected on a deterministic period (ring
// corruption, torn avail-idx, wedged handler, crashed worker), the guest
// recovery ladder armed, the invariant auditor on, and the scenario
// watchdog supervising. The gated rows are the recovery ledger: injected
// and recovered counts must match the baseline exactly (tolerance 0 — one
// silently lost fault instance is a regression), and MTTR p50/p99 must
// stay within a generous band (recovery time is quantized by the guest
// timer and the selfcheck cadence, not by throughput noise).
//
// `--soak` instead runs the long-horizon proof: all four fault modes at
// once for 10 simulated seconds, auditor + epoch state-hash log on. The
// run passes iff every injected fault either recovered in bounded sim
// time or produced a structured WATCHDOG report — zero silent wedges —
// and exits non-zero otherwise, printing each open instance's report
// line with its trace correlation id.
//
// Usage: bench_recovery [--fast] [--seed=N] [--out=DIR] [--soak]
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

namespace {

struct Stack {
  const char* label;
  const char* key;
  Es2Config config;
};

/// One lifecycle mode armed per cell, on a period chosen so a fast cell
/// still sees several instances. The periods are mutually prime-ish so
/// the soak (all armed) interleaves modes instead of phase-locking them.
FaultPlan plan_for(LifecycleFault mode) {
  FaultPlan f;
  switch (mode) {
    case LifecycleFault::kDescCorrupt: f.desc_corrupt_period = msec(97); break;
    case LifecycleFault::kAvailTear: f.avail_tear_period = msec(103); break;
    case LifecycleFault::kHandlerWedge: f.handler_wedge_period = msec(89); break;
    case LifecycleFault::kWorkerCrash: f.worker_crash_period = msec(113); break;
    // Livelock is driven by offered load (bench_storm), not the injector.
    case LifecycleFault::kRxLivelock: break;
    case LifecycleFault::kCount: break;
  }
  return f;
}

FaultPlan plan_all_modes() {
  FaultPlan f;
  f.desc_corrupt_period = msec(97);
  f.avail_tear_period = msec(103);
  f.handler_wedge_period = msec(89);
  f.worker_crash_period = msec(113);
  return f;
}

RecoveryStreamOptions cell_options(const BenchArgs& args,
                                   const Es2Config& config) {
  RecoveryStreamOptions o;
  o.chaos.stream.config = config;
  // Peer->VM TCP: faults on either ring stall end-to-end progress, so
  // every recovery is visible as goodput coming back.
  o.chaos.stream.vm_sends = false;
  o.chaos.stream.seed = args.seed;
  o.chaos.stream.warmup = args.fast ? msec(150) : msec(300);
  o.chaos.stream.measure = args.fast ? msec(600) : msec(1500);
  o.chaos.audit = true;
  // Quarantine windows stretch to the guest-timer cadence; keep the
  // no-progress verdict well clear of a single recovery cycle.
  o.chaos.budget.progress_window = msec(100);
  o.chaos.budget.stall_windows = 12;
  return o;
}

int run_soak(const BenchArgs& args) {
  print_header("Recovery (soak)",
               "all lifecycle fault modes, bounded-MTTR, zero silent wedges");
  RecoveryStreamOptions o = cell_options(args, Es2Config::pi_h_r());
  o.chaos.faults = plan_all_modes();
  o.chaos.stream.warmup = msec(200);
  o.chaos.stream.measure = args.fast ? sec(2) : sec(10);
  o.chaos.budget.max_sim_time = o.chaos.stream.measure + sec(5);
  o.chaos.stream.snapshot.hash_epochs = true;  // the state-hash log leg
  const RecoveryStreamResult r = run_recovery_stream(o, "recovery-soak");

  std::printf("%s\n", r.chaos.report.to_line().c_str());
  std::printf(
      "injected %lld, recovered %lld, unrecovered %lld; mttr p50 %.1f us, "
      "p99 %.1f us\n",
      static_cast<long long>(r.injected), static_cast<long long>(r.recovered),
      static_cast<long long>(r.unrecovered), r.mttr_p50 / 1e3,
      r.mttr_p99 / 1e3);
  for (const RecoveryModeStats& m : r.modes) {
    std::printf("  %-13s injected %lld recovered %lld mttr p50/p99 %.1f/%.1f us\n",
                lifecycle_fault_name(m.mode),
                static_cast<long long>(m.injected),
                static_cast<long long>(m.recovered), m.mttr_p50 / 1e3,
                m.mttr_p99 / 1e3);
  }
  std::printf(
      "rungs: watchdog %lld, vhost re-poll %lld, queue reset %lld, device "
      "reset %lld; worker crashes/restarts %lld/%lld\n",
      static_cast<long long>(r.rung_watchdog),
      static_cast<long long>(r.rung_vhost_repoll),
      static_cast<long long>(r.rung_queue_reset),
      static_cast<long long>(r.rung_device_reset),
      static_cast<long long>(r.worker_crashes),
      static_cast<long long>(r.worker_restarts));
  if (const HashSeries* h = r.chaos.stream.hashes.get()) {
    std::printf("[state-hash log: %zu epochs x %zu components]\n",
                h->entries.size(), h->component_names.size());
  }
  // The soak always hashes; --hash-epochs additionally exports the series
  // for tools/divergence_bisect (recovery-path nondeterminism hunts).
  if (!args.hash_path.empty() &&
      !export_hash_log(args, r.chaos.stream.hashes.get())) {
    return 1;
  }
  std::printf("audit: %llu sweeps, %lld violations\n",
              static_cast<unsigned long long>(r.chaos.audit_sweeps),
              static_cast<long long>(r.chaos.audit_violations));
  for (const WedgeReport& wr : r.wedges) {
    std::printf("%s\n", wr.detail.c_str());
  }
  if (r.injected == 0) {
    std::printf("ERROR: soak injected nothing\n");
    return 1;
  }
  if (!r.clean() || r.chaos.audit_violations != 0) {
    std::printf("SOAK FAILED: %lld unrecovered instance(s), %lld audit "
                "violation(s)\n",
                static_cast<long long>(r.unrecovered),
                static_cast<long long>(r.chaos.audit_violations));
    return 2;
  }
  std::printf("soak ok: every injected fault recovered, zero silent wedges\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) return run_soak(args);
  }

  print_header("Recovery", "MTTR per lifecycle fault mode, per stack");

  const std::vector<Stack> stacks = {
      {"Baseline", "baseline", Es2Config::baseline()},
      {"PI+H+R", "pi_h_r", Es2Config::pi_h_r()},
  };
  const std::vector<LifecycleFault> modes = {
      LifecycleFault::kDescCorrupt, LifecycleFault::kAvailTear,
      LifecycleFault::kHandlerWedge, LifecycleFault::kWorkerCrash};

  std::vector<RecoveryStreamResult> results;
  CsvWriter csv({"stack", "mode", "status", "injected", "recovered",
                 "unrecovered", "mttr_p50_us", "mttr_p99_us", "queue_resets",
                 "device_resets", "ring_faults", "audit_violations"});
  Table t({"stack", "mode", "status", "inj", "rec", "unrec", "mttr p50 us",
           "mttr p99 us", "q-resets", "d-resets", "ring flt", "audit"});
  BenchReport report = make_report(args, "recovery");
  int rc = 0;
  for (const Stack& s : stacks) {
    for (const LifecycleFault mode : modes) {
      RecoveryStreamOptions o = cell_options(args, s.config);
      o.chaos.faults = plan_for(mode);
      const std::string name =
          format("%s/%s", s.label, lifecycle_fault_name(mode));
      const RecoveryStreamResult r = run_recovery_stream(o, name);

      const std::string p50_us = format("%.1f", r.mttr_p50 / 1e3);
      const std::string p99_us = format("%.1f", r.mttr_p99 / 1e3);
      csv.add_row({s.label, lifecycle_fault_name(mode),
                   to_string(r.chaos.report.status),
                   std::to_string(r.injected), std::to_string(r.recovered),
                   std::to_string(r.unrecovered), p50_us, p99_us,
                   std::to_string(r.queue_resets),
                   std::to_string(r.device_resets),
                   std::to_string(r.ring_faults_detected),
                   std::to_string(r.chaos.audit_violations)});
      t.add_row({s.label, lifecycle_fault_name(mode),
                 to_string(r.chaos.report.status), with_commas(r.injected),
                 with_commas(r.recovered), with_commas(r.unrecovered), p50_us,
                 p99_us, with_commas(r.queue_resets),
                 with_commas(r.device_resets),
                 with_commas(r.ring_faults_detected),
                 with_commas(r.chaos.audit_violations)});

      const std::string cell =
          std::string(s.key) + "." + lifecycle_fault_name(mode) + ".";
      // The ledger counts are hard gates: losing (or double-counting) a
      // fault instance is a correctness bug regardless of timing.
      report.add(cell + "injected", static_cast<double>(r.injected), 0.0);
      report.add(cell + "recovered", static_cast<double>(r.recovered), 0.0);
      report.add(cell + "unrecovered", static_cast<double>(r.unrecovered),
                 0.0);
      report.add(cell + "ok", r.clean() ? 1.0 : 0.0, 0.0);
      // MTTR is quantized by watchdog/selfcheck cadences; gate the shape,
      // not the exact tick.
      report.add(cell + "mttr_p50_us", r.mttr_p50 / 1e3, 0.25);
      report.add(cell + "mttr_p99_us", r.mttr_p99 / 1e3, 0.25);

      for (const WedgeReport& wr : r.wedges) {
        std::printf("%s\n", wr.detail.c_str());
      }
      if (!r.clean()) rc = 3;
      results.push_back(r);
    }
  }
  std::printf("%s", t.render().c_str());
  write_csv(args, "recovery", csv);
  write_bench_report(args, report);
  if (rc != 0) std::printf("RECOVERY FAILED: see wedge reports above\n");
  return rc;
}
