// Shared helpers for the per-figure bench binaries.
//
// Every bench accepts `--fast` (shorter warmup/measure for smoke runs) and
// writes its series as CSV under bench/out/ next to printing a table with
// the paper's reference values for side-by-side comparison.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "base/csv.h"
#include "base/strings.h"
#include "base/table.h"
#include "harness/experiments.h"
#include "harness/parallel.h"

namespace es2::bench {

struct BenchArgs {
  bool fast = false;
  std::uint64_t seed = 1;
  std::string out_dir = "bench/out";
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) args.fast = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) args.out_dir = argv[i] + 6;
  }
  return args;
}

inline void print_header(const char* id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("ES2 reproduction (simulated testbed; compare shapes, not\n");
  std::printf("absolute numbers — see EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

inline std::string count_str(double v) {
  return with_commas(static_cast<std::int64_t>(v));
}

inline void write_csv(const BenchArgs& args, const std::string& name,
                      const CsvWriter& csv) {
  const std::string path = args.out_dir + "/" + name + ".csv";
  if (csv.write_file(path)) {
    std::printf("[series written to %s]\n", path.c_str());
  }
}

}  // namespace es2::bench
