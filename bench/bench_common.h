// Shared helpers for the per-figure bench binaries.
//
// Every bench accepts `--fast` (shorter warmup/measure for smoke runs) and
// writes its series as CSV under bench/out/ next to printing a table with
// the paper's reference values for side-by-side comparison.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "base/csv.h"
#include "base/strings.h"
#include "base/table.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "metrics/bench_schema.h"
#include "trace/export.h"
#include "trace/hooks.h"

namespace es2::bench {

struct BenchArgs {
  bool fast = false;
  std::uint64_t seed = 1;
  std::string out_dir = "bench/out";
  /// --trace=<path>: run one representative cell with tracing on and
  /// export its event-path trace as Perfetto JSON to <path>.
  std::string trace_path;
  /// --trace-smoke: after exporting, re-read the file, validate the JSON
  /// and assert the stage latencies are populated; exit nonzero otherwise.
  bool trace_smoke = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) args.fast = true;
    if (std::strcmp(argv[i], "--trace-smoke") == 0) args.trace_smoke = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) args.out_dir = argv[i] + 6;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) args.trace_path = argv[i] + 8;
  }
  return args;
}

/// Trace request for the one bench cell elected to run traced (no-op
/// TraceOptions when --trace was not given).
inline TraceOptions trace_request(const BenchArgs& args) {
  TraceOptions t;
  t.enabled = !args.trace_path.empty();
  t.capacity = std::size_t{1} << 18;
  return t;
}

/// Exports the traced cell's journey data to --trace=<path> and prints the
/// stage breakdown. Returns false when --trace-smoke was requested and the
/// export failed validation (missing records, invalid JSON, empty stages).
inline bool export_trace(const BenchArgs& args, const TraceData* trace,
                         const TraceStages& stages) {
  if (args.trace_path.empty()) return true;
  if (trace == nullptr || trace->records.empty()) {
    std::printf(
        "[trace requested but no records captured — configure with "
        "-DES2_TRACE=ON to compile the instrumentation hooks]\n");
    return !args.trace_smoke;
  }
  const std::string json = to_perfetto_json(trace->records, trace->spans);
  if (!write_file(args.trace_path, json)) {
    std::printf("[trace export to %s failed]\n", args.trace_path.c_str());
    return false;
  }
  std::printf(
      "[trace: %zu records, %lld journeys (%lld complete) -> %s]\n"
      "[stages ns p50/p99: kick->backend %lld/%lld, backend->msi %lld/%lld, "
      "msi->dispatch %lld/%lld, dispatch->eoi %lld/%lld, end-to-end "
      "%lld/%lld]\n",
      trace->records.size(), static_cast<long long>(stages.journeys),
      static_cast<long long>(stages.complete), args.trace_path.c_str(),
      static_cast<long long>(stages.kick_to_backend_p50),
      static_cast<long long>(stages.kick_to_backend_p99),
      static_cast<long long>(stages.backend_to_msi_p50),
      static_cast<long long>(stages.backend_to_msi_p99),
      static_cast<long long>(stages.msi_to_dispatch_p50),
      static_cast<long long>(stages.msi_to_dispatch_p99),
      static_cast<long long>(stages.dispatch_to_eoi_p50),
      static_cast<long long>(stages.dispatch_to_eoi_p99),
      static_cast<long long>(stages.end_to_end_p50),
      static_cast<long long>(stages.end_to_end_p99));
  if (!args.trace_smoke) return true;
  std::string reread;
  if (!read_file(args.trace_path, &reread) || !json_valid(reread)) {
    std::printf("[trace smoke FAILED: exported JSON does not parse]\n");
    return false;
  }
  if (stages.complete <= 0 || stages.end_to_end_p50 <= 0 ||
      stages.msi_to_dispatch_p50 <= 0 || stages.dispatch_to_eoi_p50 <= 0) {
    std::printf("[trace smoke FAILED: stage latencies not populated]\n");
    return false;
  }
  std::printf("[trace smoke ok]\n");
  return true;
}

inline void print_header(const char* id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("ES2 reproduction (simulated testbed; compare shapes, not\n");
  std::printf("absolute numbers — see EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

inline std::string count_str(double v) {
  return with_commas(static_cast<std::int64_t>(v));
}

inline void write_csv(const BenchArgs& args, const std::string& name,
                      const CsvWriter& csv) {
  const std::string path = args.out_dir + "/" + name + ".csv";
  if (csv.write_file(path)) {
    std::printf("[series written to %s]\n", path.c_str());
  }
}

/// Starts this bench's `BENCH_<name>.json` report, stamped with the run's
/// --fast/--seed so the gate can refuse incomparable comparisons.
inline BenchReport make_report(const BenchArgs& args, const std::string& name) {
  return BenchReport(name, args.fast, args.seed);
}

/// Writes the report to `<out_dir>/BENCH_<name>.json`. Every bench calls
/// this unconditionally — the JSON is the regression gate's input.
inline bool write_bench_report(const BenchArgs& args,
                               const BenchReport& report) {
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/BENCH_" + report.bench() + ".json";
  if (!report.write_file(path)) {
    std::printf("[could not write %s]\n", path.c_str());
    return false;
  }
  std::printf("[bench report written to %s]\n", path.c_str());
  return true;
}

}  // namespace es2::bench
