// Shared helpers for the per-figure bench binaries.
//
// Every bench accepts `--fast` (shorter warmup/measure for smoke runs) and
// writes its series as CSV under bench/out/ next to printing a table with
// the paper's reference values for side-by-side comparison.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "base/csv.h"
#include "base/strings.h"
#include "base/table.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "profile/blame_export.h"
#include "profile/prof_export.h"
#include "snapshot/state_hash.h"
#include "metrics/bench_schema.h"
#include "trace/export.h"
#include "trace/hooks.h"

namespace es2::bench {

struct BenchArgs {
  bool fast = false;
  std::uint64_t seed = 1;
  std::string out_dir = "bench/out";
  /// --trace=<path>: run one representative cell with tracing on and
  /// export its event-path trace as Perfetto JSON to <path>.
  std::string trace_path;
  /// --trace-smoke: after exporting, re-read the file, validate the JSON
  /// and assert the stage latencies are populated; exit nonzero otherwise.
  bool trace_smoke = false;
  /// --profile=<path>: run one representative cell with the scoped
  /// profiler on and export collapsed stacks (flamegraph input) to
  /// <path>, the es2-prof-v1 aggregate to <path>.json and — when the cell
  /// is also traced — the es2-blame-v1 latency-budget report to
  /// <path>.blame.json plus the raw ES2T trace to <path>.trace.bin
  /// (tools/latency_blame input).
  std::string profile_path;
  /// --hash-epochs=<path>: run one representative cell with epoch
  /// state-hashing on and export its es2-hash-v1 series to <path>
  /// (divergence-bisector input).
  std::string hash_path;
  /// --ckpt=<dir>: checkpoint each completed sweep cell into <dir>.
  /// --resume=<dir> additionally replays cells that already finished OK.
  std::string ckpt_dir;
  bool resume = false;
  /// --retries=N: bounded per-cell retries before a WATCHDOG row stands.
  int retries = 1;
  /// --die-after=N: crash-safety test hook — _Exit after N cells
  /// checkpoint (requires --ckpt).
  int die_after = 0;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) args.fast = true;
    if (std::strcmp(argv[i], "--trace-smoke") == 0) args.trace_smoke = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) args.out_dir = argv[i] + 6;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) args.trace_path = argv[i] + 8;
    if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      args.profile_path = argv[i] + 10;
    }
    if (std::strncmp(argv[i], "--hash-epochs=", 14) == 0) {
      args.hash_path = argv[i] + 14;
    }
    if (std::strncmp(argv[i], "--ckpt=", 7) == 0) args.ckpt_dir = argv[i] + 7;
    if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      args.ckpt_dir = argv[i] + 9;
      args.resume = true;
    }
    if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      args.retries = static_cast<int>(std::strtol(argv[i] + 10, nullptr, 10));
    }
    if (std::strncmp(argv[i], "--die-after=", 12) == 0) {
      args.die_after = static_cast<int>(std::strtol(argv[i] + 12, nullptr, 10));
    }
  }
  return args;
}

/// Runner options carrying this bench's checkpoint/resume/retry flags.
inline RunnerOptions runner_options(const BenchArgs& args) {
  RunnerOptions o;
  o.checkpoint_dir = args.ckpt_dir;
  o.resume = args.resume;
  o.max_attempts = args.retries < 1 ? 1 : args.retries;
  o.die_after_cells = args.die_after;
  return o;
}

/// Trace request for the one bench cell elected to run traced (no-op
/// TraceOptions when --trace was not given).
inline TraceOptions trace_request(const BenchArgs& args) {
  TraceOptions t;
  t.enabled = !args.trace_path.empty();
  t.capacity = std::size_t{1} << 18;
  return t;
}

/// Profiler request for the one bench cell elected to run profiled (no-op
/// ProfileOptions when --profile was not given). Pairs with trace_request:
/// benches arm both on the same cell so the blame report and the profiler
/// slices describe one run.
inline ProfileOptions profile_request(const BenchArgs& args) {
  ProfileOptions p;
  p.enabled = !args.profile_path.empty();
  return p;
}

/// Exports the traced cell's journey data to --trace=<path> and prints the
/// stage breakdown. When the cell was also profiled, the profiler's span
/// slices ride along as Perfetto "X" events next to the journey bars.
/// Returns false when --trace-smoke was requested and the export failed
/// validation (missing records, invalid JSON, empty stages).
inline bool export_trace(const BenchArgs& args, const TraceData* trace,
                         const TraceStages& stages,
                         const ProfileData* profile = nullptr) {
  if (args.trace_path.empty()) return true;
  if (trace == nullptr || trace->records.empty()) {
    std::printf(
        "[trace requested but no records captured — configure with "
        "-DES2_TRACE=ON to compile the instrumentation hooks]\n");
    return !args.trace_smoke;
  }
  const std::vector<PerfettoSlice> prof_slices =
      profile != nullptr ? prof_perfetto_slices(*profile)
                         : std::vector<PerfettoSlice>{};
  const std::string json =
      to_perfetto_json(trace->records, trace->spans, prof_slices);
  if (!write_file(args.trace_path, json)) {
    std::printf("[trace export to %s failed]\n", args.trace_path.c_str());
    return false;
  }
  std::printf(
      "[trace: %zu records, %lld journeys (%lld complete) -> %s]\n"
      "[stages ns p50/p99: kick->backend %lld/%lld, backend->msi %lld/%lld, "
      "msi->dispatch %lld/%lld, dispatch->eoi %lld/%lld, end-to-end "
      "%lld/%lld]\n",
      trace->records.size(), static_cast<long long>(stages.journeys),
      static_cast<long long>(stages.complete), args.trace_path.c_str(),
      static_cast<long long>(stages.kick_to_backend_p50),
      static_cast<long long>(stages.kick_to_backend_p99),
      static_cast<long long>(stages.backend_to_msi_p50),
      static_cast<long long>(stages.backend_to_msi_p99),
      static_cast<long long>(stages.msi_to_dispatch_p50),
      static_cast<long long>(stages.msi_to_dispatch_p99),
      static_cast<long long>(stages.dispatch_to_eoi_p50),
      static_cast<long long>(stages.dispatch_to_eoi_p99),
      static_cast<long long>(stages.end_to_end_p50),
      static_cast<long long>(stages.end_to_end_p99));
  if (!args.trace_smoke) return true;
  std::string reread;
  if (!read_file(args.trace_path, &reread) || !json_valid(reread)) {
    std::printf("[trace smoke FAILED: exported JSON does not parse]\n");
    return false;
  }
  if (stages.complete <= 0 || stages.end_to_end_p50 <= 0 ||
      stages.msi_to_dispatch_p50 <= 0 || stages.dispatch_to_eoi_p50 <= 0) {
    std::printf("[trace smoke FAILED: stage latencies not populated]\n");
    return false;
  }
  std::printf("[trace smoke ok]\n");
  return true;
}

/// Epoch-hash request for the one bench cell elected to run hashed (no-op
/// SnapshotOptions when --hash-epochs was not given).
inline SnapshotOptions hash_request(const BenchArgs& args) {
  SnapshotOptions s;
  s.hash_epochs = !args.hash_path.empty();
  return s;
}

/// Exports the hashed cell's es2-hash-v1 series to --hash-epochs=<path>.
/// Returns false only when the export was requested and failed.
inline bool export_hash_log(const BenchArgs& args, const HashSeries* series) {
  if (args.hash_path.empty()) return true;
  if (series == nullptr || series->entries.empty()) {
    std::printf("[--hash-epochs requested but no epochs recorded]\n");
    return false;
  }
  if (!write_file(args.hash_path, series->to_json_text())) {
    std::printf("[hash export to %s failed]\n", args.hash_path.c_str());
    return false;
  }
  std::printf("[epoch hashes: %zu epochs x %zu components -> %s]\n",
              series->entries.size(), series->component_names.size(),
              args.hash_path.c_str());
  return true;
}

/// Exports the profiled cell's data to --profile=<path>: collapsed stacks
/// at <path>, the es2-prof-v1 aggregate at <path>.json, and — when the
/// cell was also traced — the es2-blame-v1 latency-budget report at
/// <path>.blame.json plus the raw ES2T binary trace at <path>.trace.bin,
/// printing the per-component budget table. Returns false only when a
/// requested write failed.
inline bool export_profile(const BenchArgs& args, const ProfileData* profile,
                           const TraceData* trace = nullptr) {
  if (args.profile_path.empty()) return true;
  if (profile == nullptr) {
    std::printf("[--profile requested but no profiler ran]\n");
    return false;
  }
  if (profile->spans.empty() && profile->nodes.empty()) {
    std::printf(
        "[profile requested but no scopes recorded — configure with "
        "-DES2_PROFILE=ON to compile the instrumentation hooks]\n");
  }
  if (!write_file(args.profile_path,
                  prof_to_collapsed(*profile, CollapsedWeight::kSimNs))) {
    std::printf("[profile export to %s failed]\n", args.profile_path.c_str());
    return false;
  }
  if (!write_file(args.profile_path + ".json", prof_to_json_text(*profile))) {
    std::printf("[profile export to %s.json failed]\n",
                args.profile_path.c_str());
    return false;
  }
  std::printf("[profile: %zu span stats, %zu scope nodes, %zu slices -> %s]\n",
              profile->spans.size(), profile->nodes.size(),
              profile->slices.size(), args.profile_path.c_str());
  if (trace != nullptr && !trace->records.empty()) {
    const BlameBreakdown blame = blame_of(trace);
    if (!write_blame_file(args.profile_path + ".blame.json", blame)) {
      std::printf("[blame export to %s.blame.json failed]\n",
                  args.profile_path.c_str());
      return false;
    }
    if (!write_file(args.profile_path + ".trace.bin",
                    to_binary(trace->records))) {
      std::printf("[trace export to %s.trace.bin failed]\n",
                  args.profile_path.c_str());
      return false;
    }
    std::printf("%s", render_blame_markdown(blame_summary(blame)).c_str());
    std::printf("[blame: %lld journeys (%lld attributed) -> %s.blame.json]\n",
                static_cast<long long>(blame.journeys),
                static_cast<long long>(blame.complete),
                args.profile_path.c_str());
  }
  return true;
}

/// --profile for benches without a natural testbed cell: runs one short
/// canonical stream with the profiler (and, for blame, the tracer) on and
/// exports it. No-op when the flag was not given.
inline bool export_standalone_profile(const BenchArgs& args) {
  if (args.profile_path.empty()) return true;
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.seed = args.seed;
  o.warmup = msec(100);
  o.measure = msec(400);
  o.profile = profile_request(args);
  o.trace.enabled = true;
  o.trace.capacity = std::size_t{1} << 18;
  const StreamResult r = run_stream(o);
  return export_profile(args, r.profile.get(), r.trace.get());
}

/// --hash-epochs for benches without a natural testbed cell (micro,
/// eventcore, related_work): runs one short canonical stream with hashing
/// on and exports its series. No-op when the flag was not given.
inline bool export_standalone_hash_log(const BenchArgs& args) {
  if (args.hash_path.empty()) return true;
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.seed = args.seed;
  o.warmup = msec(100);
  o.measure = msec(400);
  o.snapshot = hash_request(args);
  const StreamResult r = run_stream(o);
  return export_hash_log(args, r.hashes.get());
}

inline void print_header(const char* id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("ES2 reproduction (simulated testbed; compare shapes, not\n");
  std::printf("absolute numbers — see EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

inline std::string count_str(double v) {
  return with_commas(static_cast<std::int64_t>(v));
}

inline void write_csv(const BenchArgs& args, const std::string& name,
                      const CsvWriter& csv) {
  const std::string path = args.out_dir + "/" + name + ".csv";
  if (csv.write_file(path)) {
    std::printf("[series written to %s]\n", path.c_str());
  }
}

/// Starts this bench's `BENCH_<name>.json` report, stamped with the run's
/// --fast/--seed so the gate can refuse incomparable comparisons.
inline BenchReport make_report(const BenchArgs& args, const std::string& name) {
  return BenchReport(name, args.fast, args.seed);
}

/// Writes the report to `<out_dir>/BENCH_<name>.json`. Every bench calls
/// this unconditionally — the JSON is the regression gate's input.
inline bool write_bench_report(const BenchArgs& args,
                               const BenchReport& report) {
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/BENCH_" + report.bench() + ".json";
  if (!report.write_file(path)) {
    std::printf("[could not write %s]\n", path.c_str());
    return false;
  }
  std::printf("[bench report written to %s]\n", path.c_str());
  return true;
}

}  // namespace es2::bench
