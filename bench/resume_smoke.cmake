# Crash/resume smoke for the self-healing sweep runner.
#
# Invoked by ctest as:
#   cmake -DBENCH_CHAOS=<bench_chaos exe> -DWORK_DIR=<scratch dir>
#         -P resume_smoke.cmake
#
# Three runs of the same --fast chaos sweep:
#   1. uninterrupted reference;
#   2. checkpointing run killed (exit 17) after two cells are durable;
#   3. --resume run that replays the finished cells and re-runs the rest.
# The resumed run must announce the replay and produce a byte-identical
# chaos.csv to the reference — resumption may not change the science.

if(NOT DEFINED BENCH_CHAOS OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "resume_smoke: BENCH_CHAOS and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. Reference run, no checkpointing.
execute_process(
  COMMAND "${BENCH_CHAOS}" --fast --out=${WORK_DIR}/ref
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume_smoke: reference run failed (${rc}):\n${out}")
endif()

# 2. Checkpointing run that self-destructs after two durable cells.
execute_process(
  COMMAND "${BENCH_CHAOS}" --fast --ckpt=${WORK_DIR}/ckpt --die-after=2
          --out=${WORK_DIR}/crashed
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 17)
  message(FATAL_ERROR
    "resume_smoke: expected die-after exit 17, got ${rc}:\n${out}")
endif()

# 3. Resume: replay the checkpointed cells, run the remainder.
execute_process(
  COMMAND "${BENCH_CHAOS}" --fast --resume=${WORK_DIR}/ckpt
          --out=${WORK_DIR}/resumed
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume_smoke: resumed run failed (${rc}):\n${out}${err}")
endif()
string(FIND "${out}" "cells resumed from checkpoint" announce)
if(announce EQUAL -1)
  message(FATAL_ERROR
    "resume_smoke: resumed run did not report replayed cells:\n${out}")
endif()

file(READ "${WORK_DIR}/ref/chaos.csv" ref_csv)
file(READ "${WORK_DIR}/resumed/chaos.csv" resumed_csv)
if(NOT ref_csv STREQUAL resumed_csv)
  message(FATAL_ERROR
    "resume_smoke: resumed chaos.csv differs from the uninterrupted run")
endif()

message(STATUS "resume_smoke ok: resumed sweep is byte-identical")
