// Fig. 8 — throughput of two I/O-intensive macro workloads under the four
// stacks: (a) Memcached driven by memaslap (16 threads x 16 concurrent,
// get/set 9:1); (b) Apache driven by ApacheBench (16 concurrent, 8KB
// pages).
//
// Paper shape: memcached — PI +18%, +H +21% more, full ES2 ~1.8x baseline;
// apache — PI +19%, +H +18% more, full ES2 ~2x baseline.
#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 8", "Memcached and Apache throughput (macro testbed)");

  MemcachedResult mem[4];
  ApacheResult ap[4];
  std::vector<std::function<void()>> tasks;
  for (int c = 0; c < 4; ++c) {
    tasks.push_back([&, c] {
      MemcachedOptions o;
      o.config = Es2Config::all4()[c];
      o.seed = args.seed;
      o.warmup = args.fast ? msec(200) : msec(400);
      o.measure = args.fast ? msec(400) : sec(1);
      // --trace: capture the full-ES2 memcached cell.
      if (c == 3) {
        o.trace = trace_request(args);
        o.profile = profile_request(args);
        o.snapshot = hash_request(args);
      }
      mem[c] = run_memcached(o);
    });
    tasks.push_back([&, c] {
      ApacheOptions o;
      o.config = Es2Config::all4()[c];
      o.seed = args.seed;
      o.warmup = args.fast ? msec(200) : msec(400);
      o.measure = args.fast ? msec(400) : sec(1);
      ap[c] = run_apache(o);
    });
  }
  ParallelRunner().run(std::move(tasks));

  CsvWriter csv({"workload", "config", "throughput", "throughput_mbps",
                 "latency_p50_ms", "latency_p99_ms"});

  std::printf("\n-- (a) Memcached (paper: PI +18%%, +H +21%%, full ~1.8x)\n");
  Table tm({"Config", "ops/s", "Mb/s", "vs baseline", "p50 lat", "p99 lat"});
  for (int c = 0; c < 4; ++c) {
    tm.add_row({Es2Config::all4()[c].name(), count_str(mem[c].ops_per_sec),
                fixed(mem[c].throughput_mbps, 0),
                fixed(mem[c].ops_per_sec / mem[0].ops_per_sec, 2) + "x",
                fixed(mem[c].latency.p50() / 1e6, 2) + "ms",
                fixed(mem[c].latency.p99() / 1e6, 2) + "ms"});
    csv.add_row({"memcached", Es2Config::all4()[c].name(),
                 fixed(mem[c].ops_per_sec, 0),
                 fixed(mem[c].throughput_mbps, 1),
                 fixed(mem[c].latency.p50() / 1e6, 3),
                 fixed(mem[c].latency.p99() / 1e6, 3)});
  }
  std::printf("%s", tm.render().c_str());

  std::printf("\n-- (b) Apache 8KB pages (paper: PI +19%%, +H +18%%, full ~2x)\n");
  Table ta({"Config", "req/s", "Mb/s", "vs baseline"});
  for (int c = 0; c < 4; ++c) {
    ta.add_row({Es2Config::all4()[c].name(), count_str(ap[c].requests_per_sec),
                fixed(ap[c].throughput_mbps, 0),
                fixed(ap[c].requests_per_sec / ap[0].requests_per_sec, 2) + "x"});
    csv.add_row({"apache", Es2Config::all4()[c].name(),
                 fixed(ap[c].requests_per_sec, 0),
                 fixed(ap[c].throughput_mbps, 1), "", ""});
  }
  std::printf("%s", ta.render().c_str());
  write_csv(args, "fig8", csv);

  BenchReport report = make_report(args, "fig8");
  const char* keys[] = {"baseline", "pi", "pi_h", "pi_h_r"};
  for (int c = 0; c < 4; ++c) {
    const std::string k = keys[c];
    report.add("memcached." + k + ".ops_per_sec", mem[c].ops_per_sec);
    report.add("memcached." + k + ".latency_p99_ms",
               mem[c].latency.p99() / 1e6, 0.1);
    report.add("apache." + k + ".requests_per_sec", ap[c].requests_per_sec);
    report.add("apache." + k + ".throughput_mbps", ap[c].throughput_mbps);
  }
  write_bench_report(args, report);

  if (!export_trace(args, mem[3].trace.get(), mem[3].stages,
                    mem[3].profile.get())) {
    return 1;
  }
  if (!export_profile(args, mem[3].profile.get(), mem[3].trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, mem[3].hashes.get())) return 1;
  return 0;
}
