// Connection-storm sweep — overload, receive livelock, graceful degradation.
//
// Not a paper figure: this bench certifies the overload-resilience claims.
// Each cell drives the guest's accept path with a SYN-flood-shaped flash
// crowd (ramp to peak, hold, ramp down, diurnal bursts, TFO payloads, an
// aggressive SYN-RTO retransmit flywheel) across stack x ramp x
// mitigation cells. The "collapse" ramp deliberately outruns the guest's
// NAPI drain rate: with mitigation off the vCPU wedges in softirq — the
// classic receive livelock, which the scenario watchdog must classify as
// kLivelock (busy, not wedged) — and with the overload ladder armed
// (livelock detector -> ksoftirqd polling -> ingress backpressure ->
// accept shedding) the same offered load must retain at least 2x the
// established connections.
//
// Every drop on the path is accounted by canonical cause
// (drops{cause=wire|backpressure|sock_backlog|syn_backlog|accept_queue|
// accept_shed}); the CSV is the blame table of where load was shed.
//
// Usage: bench_storm [--fast] [--seed=N] [--out=DIR]
//                    [--ckpt=DIR | --resume=DIR] [--retries=N]
#include <cstring>
#include <string>
#include <vector>

#include "base/json.h"
#include "bench_common.h"
#include "harness/runner.h"
#include "metrics/metrics.h"

using namespace es2;
using namespace es2::bench;

namespace {

struct Stack {
  const char* label;
  const char* key;
  Es2Config config;
};

struct Ramp {
  const char* label;
  double base_rate;   // conn/s
  double peak_rate;   // conn/s at the top of the ramp
  bool collapses;     // expected to livelock with mitigation off
};

/// The three offered-load regimes. Capacity context: one accept costs
/// ~113 us of guest CPU (~8k accepts/s ceiling), and the NAPI drain rate
/// for TFO SYNs is ~270k pps — "surge" overflows the accept path without
/// outrunning softirq, "collapse" (with the burst multiplier and the RTO
/// flywheel on top) outruns the poll loop itself.
std::vector<Ramp> ramps(bool fast) {
  std::vector<Ramp> r = {
      {"calm", 1000, 3000, false},
      {"collapse", 4000, 400000, true},
  };
  if (!fast) r.insert(r.begin() + 1, Ramp{"surge", 2000, 30000, false});
  return r;
}

StormOptions cell_options(const BenchArgs& args, const Es2Config& config,
                          const Ramp& ramp, bool mitigation) {
  StormOptions o;
  o.config = config;
  o.mitigation = mitigation;
  o.seed = args.seed;
  o.shape.base_rate = ramp.base_rate;
  o.shape.peak_rate = ramp.peak_rate;
  o.shape.ramp_up = args.fast ? msec(200) : msec(300);
  o.shape.hold = args.fast ? msec(500) : msec(800);
  o.shape.ramp_down = args.fast ? msec(200) : msec(300);
  o.cooldown = args.fast ? msec(300) : msec(500);
  // The collapse ramp carries a fatter TFO request, pushing the per-packet
  // receive cost high enough that the offered load outruns the poll loop.
  if (ramp.collapses) o.syn_payload = 256;
  o.expect_livelock = ramp.collapses && !mitigation;
  // A collapse cell spends the whole hold wedged on purpose; give the
  // watchdog enough rope to classify it rather than time out.
  o.budget.max_sim_time = sec(10);
  return o;
}

std::string cell_artifact(const StormResult& r) {
  Json a = Json::object();
  auto put = [&a](const char* k, double v) { a.set(k, Json::number(v)); };
  put("attempted", static_cast<double>(r.attempted));
  put("established", static_cast<double>(r.established));
  put("retries", static_cast<double>(r.retries));
  put("abandoned", static_cast<double>(r.abandoned));
  put("accepts", static_cast<double>(r.accepts));
  put("served", static_cast<double>(r.served));
  put("goodput_mbps", r.goodput_mbps);
  put("conns_per_sec", r.conns_per_sec);
  put("connect_p50_ms", r.connect_p50_ms);
  put("connect_p99_ms", r.connect_p99_ms);
  put("drops_wire", static_cast<double>(r.drops.wire));
  put("drops_backpressure", static_cast<double>(r.drops.backpressure));
  put("drops_sock_backlog", static_cast<double>(r.drops.sock_backlog));
  put("drops_syn_backlog", static_cast<double>(r.drops.syn_backlog));
  put("drops_accept_queue", static_cast<double>(r.drops.accept_queue));
  put("drops_accept_shed", static_cast<double>(r.drops.accept_shed));
  put("max_rung", static_cast<double>(r.overload_max_rung));
  put("detections", static_cast<double>(r.livelock_detections));
  put("ksoftirqd_polls", static_cast<double>(r.ksoftirqd_polls));
  put("episodes", static_cast<double>(r.episodes));
  put("episodes_recovered", static_cast<double>(r.episodes_recovered));
  put("mttr_p50_ns", static_cast<double>(r.mttr_p50));
  put("mttr_p99_ns", static_cast<double>(r.mttr_p99));
  put("livelocked", r.livelocked ? 1.0 : 0.0);
  put("livelock_expected", r.livelock_expected ? 1.0 : 0.0);
  return a.dump();
}

bool restore_cell(const ScenarioReport& rep, StormResult* r) {
  Json a;
  std::string error;
  if (!Json::parse(rep.artifact, &a, &error) || !a.is_object()) return false;
  r->report = rep;
  auto i64 = [&a](const char* k) {
    return static_cast<std::int64_t>(a.number_or(k, 0));
  };
  r->attempted = i64("attempted");
  r->established = i64("established");
  r->retries = i64("retries");
  r->abandoned = i64("abandoned");
  r->accepts = i64("accepts");
  r->served = i64("served");
  r->goodput_mbps = a.number_or("goodput_mbps", 0);
  r->conns_per_sec = a.number_or("conns_per_sec", 0);
  r->connect_p50_ms = a.number_or("connect_p50_ms", 0);
  r->connect_p99_ms = a.number_or("connect_p99_ms", 0);
  r->drops.wire = i64("drops_wire");
  r->drops.backpressure = i64("drops_backpressure");
  r->drops.sock_backlog = i64("drops_sock_backlog");
  r->drops.syn_backlog = i64("drops_syn_backlog");
  r->drops.accept_queue = i64("drops_accept_queue");
  r->drops.accept_shed = i64("drops_accept_shed");
  r->overload_max_rung = static_cast<int>(a.number_or("max_rung", 0));
  r->livelock_detections = i64("detections");
  r->ksoftirqd_polls = i64("ksoftirqd_polls");
  r->episodes = i64("episodes");
  r->episodes_recovered = i64("episodes_recovered");
  r->mttr_p50 = static_cast<SimDuration>(a.number_or("mttr_p50_ns", 0));
  r->mttr_p99 = static_cast<SimDuration>(a.number_or("mttr_p99_ns", 0));
  r->livelocked = a.number_or("livelocked", 0) != 0;
  r->livelock_expected = a.number_or("livelock_expected", 0) != 0;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Storm", "connection storms, livelock, graceful degradation");

  const std::vector<Stack> stacks = {
      {"Baseline", "baseline", Es2Config::baseline()},
      {"PI+H+R", "pi_h_r", Es2Config::pi_h_r()},
  };
  const std::vector<Ramp> ramp_list = ramps(args.fast);
  const std::vector<bool> arms = {false, true};

  const size_t cells = stacks.size() * ramp_list.size() * arms.size();
  std::vector<StormResult> results(cells);
  MetricsRegistry sweep_registry;
  RunnerOptions ro = runner_options(args);
  ro.registry = &sweep_registry;
  ExperimentRunner runner(ro);
  for (size_t s = 0; s < stacks.size(); ++s) {
    for (size_t p = 0; p < ramp_list.size(); ++p) {
      for (size_t m = 0; m < arms.size(); ++m) {
        const size_t idx = (s * ramp_list.size() + p) * arms.size() + m;
        runner.add(
            format("%s/%s/mitigation=%s", stacks[s].label,
                   ramp_list[p].label, arms[m] ? "on" : "off"),
            [&, s, p, m, idx](const std::string& name) {
              StormOptions o =
                  cell_options(args, stacks[s].config, ramp_list[p], arms[m]);
              // --hash-epochs: hash the calmest cell as the storm
              // determinism oracle.
              if (idx == 0) o.snapshot = hash_request(args);
              results[idx] = run_storm(o, name);
              ScenarioReport rep = results[idx].report;
              // An expected livelock verdict is this cell succeeding at
              // demonstrating the failure mode; report it as OK so the
              // runner does not retry or fail the sweep on it. The raw
              // status survives in the artifact and CSV.
              if (results[idx].acceptable()) {
                rep.status = ScenarioStatus::kOk;
                rep.detail.clear();
              }
              rep.artifact = cell_artifact(results[idx]);
              return rep;
            });
      }
    }
  }
  runner.run_all();

  for (size_t i = 0; i < runner.reports().size(); ++i) {
    const ScenarioReport& rep = runner.reports()[i];
    if (rep.resumed && !restore_cell(rep, &results[i])) {
      std::printf("[WARNING: unusable checkpoint artifact for %s]\n",
                  rep.name.c_str());
    }
  }
  if (runner.resumed_cells() > 0 || runner.retries() > 0) {
    std::printf("[runner: %lld cells resumed from checkpoint, %lld retries]\n",
                static_cast<long long>(runner.resumed_cells()),
                static_cast<long long>(runner.retries()));
  }

  CsvWriter csv({"stack", "ramp", "mitigation", "status", "established",
                 "attempted", "served", "goodput_mbps", "connect_p99_ms",
                 "drops_backpressure", "drops_sock_backlog",
                 "drops_syn_backlog", "drops_accept_queue",
                 "drops_accept_shed", "max_rung", "episodes",
                 "episodes_recovered", "mttr_p50_us"});
  Table t({"stack", "ramp", "mit", "status", "estab", "served",
           "goodput Mb/s", "conn p99 ms", "bp drops", "sock drops",
           "syn drops", "aq drops", "shed", "rung", "mttr p50 us"});
  for (size_t s = 0; s < stacks.size(); ++s) {
    for (size_t p = 0; p < ramp_list.size(); ++p) {
      for (size_t m = 0; m < arms.size(); ++m) {
        const StormResult& r =
            results[(s * ramp_list.size() + p) * arms.size() + m];
        const char* mit = arms[m] ? "on" : "off";
        const std::string status = r.livelocked && r.livelock_expected
                                       ? "livelock(expected)"
                                       : to_string(r.report.status);
        csv.add_row({stacks[s].label, ramp_list[p].label, mit, status,
                     std::to_string(r.established),
                     std::to_string(r.attempted), std::to_string(r.served),
                     format("%.2f", r.goodput_mbps),
                     format("%.2f", r.connect_p99_ms),
                     std::to_string(r.drops.backpressure),
                     std::to_string(r.drops.sock_backlog),
                     std::to_string(r.drops.syn_backlog),
                     std::to_string(r.drops.accept_queue),
                     std::to_string(r.drops.accept_shed),
                     std::to_string(r.overload_max_rung),
                     std::to_string(r.episodes),
                     std::to_string(r.episodes_recovered),
                     format("%.1f", r.mttr_p50 / 1e3)});
        t.add_row({stacks[s].label, ramp_list[p].label, mit, status,
                   with_commas(r.established), with_commas(r.served),
                   format("%.2f", r.goodput_mbps),
                   format("%.2f", r.connect_p99_ms),
                   with_commas(r.drops.backpressure),
                   with_commas(r.drops.sock_backlog),
                   with_commas(r.drops.syn_backlog),
                   with_commas(r.drops.accept_queue),
                   with_commas(r.drops.accept_shed),
                   std::to_string(r.overload_max_rung),
                   format("%.1f", r.mttr_p50 / 1e3)});
      }
    }
  }
  std::printf("%s", t.render().c_str());
  write_csv(args, "storm", csv);

  // In-binary hard gates: the sweep's reason to exist.
  int failures = 0;
  auto require = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::printf("GATE FAILED: %s\n", what.c_str());
      ++failures;
    }
  };
  BenchReport report = make_report(args, "storm");
  for (size_t s = 0; s < stacks.size(); ++s) {
    for (size_t p = 0; p < ramp_list.size(); ++p) {
      const size_t off = (s * ramp_list.size() + p) * arms.size();
      const StormResult& roff = results[off];
      const StormResult& ron = results[off + 1];
      const std::string cell = std::string(stacks[s].key) + "." +
                               ramp_list[p].label + ".";
      require(roff.acceptable(), cell + "off: " + roff.report.to_line());
      require(ron.report.ok(), cell + "on: " + ron.report.to_line());
      report.add(cell + "off.ok", roff.acceptable() ? 1.0 : 0.0, 0.0);
      report.add(cell + "on.ok", ron.report.ok() ? 1.0 : 0.0, 0.0);
      // Counts are deterministic per seed; the wide tolerance absorbs
      // deliberate recalibration, not nondeterminism.
      report.add(cell + "off.established",
                 static_cast<double>(roff.established), 0.5);
      report.add(cell + "on.established",
                 static_cast<double>(ron.established), 0.5);
      report.add(cell + "on.max_rung",
                 static_cast<double>(ron.overload_max_rung), 0.0);
      if (!ramp_list[p].collapses) {
        // Benign ramps: mitigation must be a no-op verdict-wise, and the
        // ladder must not fire (no false-positive livelock detections).
        require(!roff.livelocked, cell + "off livelocked on a benign ramp");
        require(ron.livelock_detections == 0,
                cell + "on: false-positive livelock detection");
        continue;
      }
      // The collapse ramp: mitigation off must demonstrably livelock...
      require(roff.livelocked,
              cell + "off did not livelock at the collapse ramp");
      // ... and the armed run must detect it, recover every episode, and
      // retain at least 2x the established connections.
      require(ron.livelock_detections > 0, cell + "on: detector never fired");
      require(ron.episodes > 0 && ron.episodes_recovered == ron.episodes,
              format("%son: %lld/%lld livelock episodes recovered",
                     cell.c_str(),
                     static_cast<long long>(ron.episodes_recovered),
                     static_cast<long long>(ron.episodes)));
      const double retained =
          static_cast<double>(ron.established) /
          static_cast<double>(roff.established > 0 ? roff.established : 1);
      require(retained >= 2.0,
              format("%sgoodput retention %.2fx < 2x (on %lld vs off %lld)",
                     cell.c_str(), retained,
                     static_cast<long long>(ron.established),
                     static_cast<long long>(roff.established)));
      report.add(cell + "retention_x", retained, 0.5);
      report.add(cell + "off.livelocked", roff.livelocked ? 1.0 : 0.0, 0.0);
      report.add(cell + "on.episodes_recovered",
                 static_cast<double>(ron.episodes_recovered), 0.5);
      report.add_info(cell + "on.mttr_p50_us", ron.mttr_p50 / 1e3);
    }
  }
  write_bench_report(args, report);

  if (!export_hash_log(args, results[0].hashes.get())) return 1;

  runner.print_failures(stdout);
  if (failures > 0) {
    std::printf("%d storm gate(s) failed\n", failures);
    return 1;
  }
  return runner.exit_code();
}
