// Fig. 4 — reduction of I/O-instruction exits for a VM sending TCP/UDP
// streams under different quota values (the quota selection experiment).
//
// Paper shape: UDP (a) drops from ~100k/s to <10k at quota 32, ~1k at 16,
// <0.1k at 8 and below; 256B vs 1024B nearly identical; TCP (b) declines
// gradually from 64 to 4, with quota 2 and 4 similar, under 10k/s.
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 4", "I/O instruction exits vs quota (quota selection)");

  struct Case {
    const char* label;
    Proto proto;
    Bytes msg;
  };
  const Case cases[] = {
      {"UDP 256B", Proto::kUdp, 256},
      {"UDP 1024B", Proto::kUdp, 1024},
      {"TCP 1024B", Proto::kTcp, 1024},
  };
  // quota 0 = stock vhost (no hybrid) = the baseline bar in the figure.
  const std::vector<int> quotas = {0, 64, 32, 16, 8, 4, 2};

  CsvWriter csv({"case", "quota", "io_exits_per_sec", "packets_per_sec",
                 "tig_percent"});

  std::vector<StreamResult> results(3 * quotas.size());
  std::vector<std::function<void()>> tasks;
  for (size_t c = 0; c < 3; ++c) {
    for (size_t q = 0; q < quotas.size(); ++q) {
      tasks.push_back([&, c, q] {
        StreamOptions o;
        o.config = quotas[q] == 0 ? Es2Config::pi() : Es2Config::pi_h(quotas[q]);
        o.proto = cases[c].proto;
        o.msg_size = cases[c].msg;
        o.vm_sends = true;
        o.seed = args.seed;
        o.warmup = args.fast ? msec(100) : msec(250);
        o.measure = args.fast ? msec(250) : msec(800);
        // --trace: capture TCP 1024B at the paper-selected quota 4.
        if (c == 2 && quotas[q] == 4) {
          o.trace = trace_request(args);
          o.profile = profile_request(args);
          o.snapshot = hash_request(args);
        }
        results[c * quotas.size() + q] = run_stream(o);
      });
    }
  }
  ParallelRunner().run(std::move(tasks));

  for (size_t c = 0; c < 3; ++c) {
    Table t({"quota", "I/O exits/s", "packets/s", "TIG %"});
    for (size_t q = 0; q < quotas.size(); ++q) {
      const StreamResult& r = results[c * quotas.size() + q];
      const std::string quota_label =
          quotas[q] == 0 ? "stock" : std::to_string(quotas[q]);
      t.add_row({quota_label, count_str(r.exits.io_instruction),
                 count_str(r.packets_per_sec), fixed(r.exits.tig_percent, 1)});
      csv.add_row({cases[c].label, quota_label,
                   fixed(r.exits.io_instruction, 0),
                   fixed(r.packets_per_sec, 0),
                   fixed(r.exits.tig_percent, 2)});
    }
    std::printf("\n-- %s (paper: %s)\n%s", cases[c].label,
                cases[c].proto == Proto::kUdp
                    ? "~100k stock; <10k @32; ~1k @16; <0.1k @<=8"
                    : "gradual decline 64->4; @2 and @4 similar, <10k",
                t.render().c_str());
  }
  std::printf("\nPaper-selected quotas: UDP 8, TCP 4. Note the small-quota\n"
              "throughput penalty (handler switching overhead), the paper's\n"
              "reason not to go below them.\n");
  write_csv(args, "fig4", csv);

  BenchReport report = make_report(args, "fig4");
  const char* keys[] = {"udp256", "udp1024", "tcp1024"};
  for (size_t c = 0; c < 3; ++c) {
    std::vector<double> io_exits_curve;
    for (size_t q = 0; q < quotas.size(); ++q) {
      const StreamResult& r = results[c * quotas.size() + q];
      const std::string cell =
          std::string(keys[c]) + ".q" +
          (quotas[q] == 0 ? std::string("stock") : std::to_string(quotas[q]));
      report.add(cell + ".io_exits_per_sec", r.exits.io_instruction);
      report.add(cell + ".packets_per_sec", r.packets_per_sec);
      io_exits_curve.push_back(r.exits.io_instruction);
    }
    report.add_series(std::string(keys[c]) + ".io_exits_per_sec",
                      std::move(io_exits_curve));
  }
  write_bench_report(args, report);

  const StreamResult& traced = results[2 * quotas.size() + 5];  // TCP, quota 4
  if (!export_trace(args, traced.trace.get(), traced.stages,
                    traced.profile.get())) {
    return 1;
  }
  if (!export_profile(args, traced.profile.get(), traced.trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, traced.hashes.get())) return 1;
  return 0;
}
