// Fig. 9 — Httperf average TCP connection establishment time vs request
// rate (macro testbed).
//
// Paper shape: all four configs have short connect times below ~1,600
// req/s; the baseline's average connect time grows rapidly past ~1,800
// (suspending-event/SYN-backlog overflow), PI slightly later, and full
// ES2 stays low until ~2,600 req/s.
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 9", "Httperf mean TCP connect time vs request rate");

  const std::vector<double> rates =
      args.fast ? std::vector<double>{1400, 1900, 2400}
                : std::vector<double>{800,  1200, 1600, 1800, 2000,
                                      2200, 2400, 2600, 3000};

  const Es2Config configs[4] = {Es2Config::baseline(), Es2Config::pi(),
                                Es2Config::pi_h(), Es2Config::pi_h_r()};
  std::vector<HttperfResult> results(rates.size() * 4);
  std::vector<std::function<void()>> tasks;
  for (size_t r = 0; r < rates.size(); ++r) {
    for (int c = 0; c < 4; ++c) {
      tasks.push_back([&, r, c] {
        HttperfOptions o;
        o.config = configs[c];
        o.rate_per_sec = rates[r];
        o.duration = args.fast ? sec(1) : sec(2);
        o.seed = args.seed;
        // --trace: capture full ES2 at the lowest (healthy) request rate.
        if (r == 0 && c == 3) {
          o.trace = trace_request(args);
          o.profile = profile_request(args);
          o.snapshot = hash_request(args);
        }
        results[r * 4 + c] = run_httperf(o);
      });
    }
  }
  ParallelRunner().run(std::move(tasks));

  Table t({"req rate", "Baseline", "PI", "PI+H", "PI+H+R"});
  CsvWriter csv({"rate", "config", "avg_connect_ms", "p99_connect_ms",
                 "established", "syn_retries"});
  for (size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row = {fixed(rates[r], 0) + "/s"};
    for (int c = 0; c < 4; ++c) {
      const HttperfResult& res = results[r * 4 + c];
      row.push_back(fixed(res.avg_connect_ms, 2) + "ms");
      csv.add_row({fixed(rates[r], 0), configs[c].name(),
                   fixed(res.avg_connect_ms, 3), fixed(res.p99_connect_ms, 3),
                   std::to_string(res.established),
                   std::to_string(res.retries)});
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Paper: baseline knee ~1,800/s (SYN backlog overflow + 1s SYN\n"
      "retransmissions), full ES2 stays low until ~2,600/s.\n");
  write_csv(args, "fig9", csv);

  BenchReport report = make_report(args, "fig9");
  const char* keys[4] = {"baseline", "pi", "pi_h", "pi_h_r"};
  for (int c = 0; c < 4; ++c) {
    std::vector<double> curve;
    for (size_t r = 0; r < rates.size(); ++r) {
      const HttperfResult& res = results[r * 4 + c];
      report.add(std::string(keys[c]) + ".r" +
                     std::to_string(static_cast<int>(rates[r])) +
                     ".avg_connect_ms",
                 res.avg_connect_ms, 0.1);
      report.add(std::string(keys[c]) + ".r" +
                     std::to_string(static_cast<int>(rates[r])) + ".established",
                 static_cast<double>(res.established));
      curve.push_back(res.avg_connect_ms);
    }
    report.add_series(std::string(keys[c]) + ".avg_connect_ms",
                      std::move(curve));
  }
  write_bench_report(args, report);

  if (!export_trace(args, results[3].trace.get(), results[3].stages,
                    results[3].profile.get())) {
    return 1;
  }
  if (!export_profile(args, results[3].profile.get(), results[3].trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, results[3].hashes.get())) return 1;
  return 0;
}
