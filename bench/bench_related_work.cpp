// Related-work comparison bench (paper §II-C): quantifies the arguments
// the paper makes against the prior software approaches, head to head
// with ES2.
//
//   1. Interrupt coalescing (Dong et al. / vIC): fewer exits, but every
//      held completion adds latency.
//   2. Guest poll-mode driver (sEBP / DPDK-style): no interrupts at all,
//      but the poll loop wastes guest CPU at low load and needs guest
//      modification.
//   3. ELI/DID deprivileging: exit-free like PI on a dedicated core, but
//      under core multiplexing deliveries stall in the physical APIC and
//      hazard the core's other tenants — the reason the paper builds on
//      PI instead.
#include <memory>

#include "apps/netperf.h"
#include "apps/ping.h"
#include "baselines/coalescer.h"
#include "baselines/poll_driver.h"
#include "apps/burn.h"
#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

namespace {

struct LatencyLoad {
  double irqs_per_sec = 0;
  double tig = 0;
  double rtt_p50_ms = 0;
  double rtt_p99_ms = 0;
};

/// Micro testbed: UDP ingress at a moderate rate + ping, with optional
/// coalescing or poll-mode driver.
LatencyLoad run_latency_case(bool coalesce, bool poll_driver,
                             std::uint64_t seed, SimDuration measure) {
  TestbedOptions o;
  o.config = Es2Config::baseline();
  o.seed = seed;
  Testbed tb(o);
  std::unique_ptr<InterruptCoalescer> coalescer;
  if (coalesce) coalescer = std::make_unique<InterruptCoalescer>(tb.backend());
  std::unique_ptr<PollModeDriverTask> pmd;
  if (poll_driver) {
    pmd = std::make_unique<PollModeDriverTask>(tb.guest(), tb.frontend(), 0);
    tb.guest().add_task(*pmd);
  }

  NetperfReceiver rx(tb.guest(), tb.frontend(), 200, Proto::kUdp);
  PeerStreamSender::Params sp;
  sp.proto = Proto::kUdp;
  sp.msg_size = 1024;
  sp.udp_rate_pps = 40000;  // moderate load: latency is visible
  sp.udp_burst = 4;
  PeerStreamSender tx(tb.peer(), 200, sp);
  PingResponder responder(tb.guest(), tb.frontend(), 7);
  PingClient ping(tb.peer(), 7, msec(3));

  tb.start();
  tx.start();
  ping.start();
  tb.sim().run_for(msec(100));
  tb.tested_vm().begin_stats_window();
  const auto irqs_base = tb.tested_vm().vcpu(0).irqs_taken();
  tb.sim().run_for(measure);

  LatencyLoad r;
  r.irqs_per_sec =
      static_cast<double>(tb.tested_vm().vcpu(0).irqs_taken() - irqs_base) /
      to_seconds(measure);
  r.tig = tb.tested_vm().aggregate_stats().tig_percent();
  r.rtt_p50_ms = static_cast<double>(ping.rtt().p50()) / 1e6;
  r.rtt_p99_ms = static_cast<double>(ping.rtt().p99()) / 1e6;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Related work", "§II-C prior approaches vs ES2's basis");
  const SimDuration measure = args.fast ? msec(300) : sec(1);

  // --- 1 + 2: coalescing and poll-mode driver vs stock NAPI --------------
  LatencyLoad stock, coalesced, polled;
  {
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&] { stock = run_latency_case(false, false, args.seed, measure); });
    tasks.push_back([&] { coalesced = run_latency_case(true, false, args.seed, measure); });
    tasks.push_back([&] { polled = run_latency_case(false, true, args.seed, measure); });
    ParallelRunner().run(std::move(tasks));
  }
  std::printf("\n-- Interrupt moderation/substitution, Baseline stack,\n"
              "   40k pps UDP ingress + ping (micro testbed)\n");
  Table t1({"Approach", "guest irqs/s", "ping p50", "ping p99", "note"});
  t1.add_row({"stock NAPI", count_str(stock.irqs_per_sec),
              fixed(stock.rtt_p50_ms, 3) + "ms", fixed(stock.rtt_p99_ms, 3) + "ms",
              "reference"});
  t1.add_row({"+ coalescing (8/100us)", count_str(coalesced.irqs_per_sec),
              fixed(coalesced.rtt_p50_ms, 3) + "ms",
              fixed(coalesced.rtt_p99_ms, 3) + "ms",
              "fewer exits, latency tax"});
  t1.add_row({"poll-mode driver", count_str(polled.irqs_per_sec),
              fixed(polled.rtt_p50_ms, 3) + "ms",
              fixed(polled.rtt_p99_ms, 3) + "ms",
              "no irqs; burns vCPU; guest mod"});
  std::printf("%s", t1.render().c_str());

  // --- 3: ELI vs PI, dedicated core then multiplexed ----------------------
  std::printf("\n-- ELI/DID-style deprivileging vs PI (ping RTT)\n");
  struct EliCase {
    const char* label;
    InterruptVirtMode mode;
    bool macro_world;
    double p50 = 0, p99 = 0;
    std::int64_t stalls = 0, hazards = 0;
  };
  std::vector<EliCase> cases = {
      {"PI, dedicated core", InterruptVirtMode::kPostedInterrupt, false},
      {"ELI, dedicated core", InterruptVirtMode::kExitlessDirect, false},
      {"PI,  4x multiplexed", InterruptVirtMode::kPostedInterrupt, true},
      {"ELI, 4x multiplexed", InterruptVirtMode::kExitlessDirect, true},
  };
  std::vector<std::function<void()>> tasks;
  for (auto& c : cases) {
    tasks.push_back([&c, &args] {
      // ELI is not an Es2Config member (it is a related-work baseline), so
      // the world is built through the low-level API, setting the tested
      // VM's InterruptVirtMode directly.
      Simulator sim(args.seed);
      KvmHost host(sim, 8);
      std::vector<std::unique_ptr<GuestOs>> guests;
      std::vector<std::unique_ptr<CpuBurnTask>> burns;
      const int vms = c.macro_world ? 4 : 1;
      const int vcpus = c.macro_world ? 4 : 1;
      for (int v = 0; v < vms; ++v) {
        std::vector<int> pins;
        for (int j = 0; j < vcpus; ++j)
          pins.push_back(c.macro_world ? j : v * vcpus + j);
        Vm& vm = host.create_vm(format("vm%d", v), pins,
                                v == 0 ? c.mode
                                       : InterruptVirtMode::kPostedInterrupt);
        guests.push_back(std::make_unique<GuestOs>(vm));
        for (int j = 0; j < vcpus; ++j) {
          burns.push_back(std::make_unique<CpuBurnTask>(*guests.back(), j));
          guests.back()->add_task(*burns.back());
        }
      }
      DuplexLink cable(sim, 40.0, 1500);
      PeerHost peer(sim, cable.b_to_a);
      peer.attach_rx(cable.a_to_b);
      VhostWorker worker(host, "vhost", c.macro_world ? 4 : 4);
      VhostNetBackend backend(host.vm(0), worker, cable.a_to_b);
      cable.b_to_a.set_receiver(
          [&backend](PacketPtr p) { backend.receive_from_wire(std::move(p)); });
      VirtioNetFrontend frontend(*guests[0], backend);
      PingResponder responder(*guests[0], frontend, 7);
      PingClient ping(peer, 7, msec(40));
      for (int v = 0; v < vms; ++v) host.vm(v).start();
      ping.start();
      sim.run_for(msec(40) * (args.fast ? 50 : 130));
      c.p50 = static_cast<double>(ping.rtt().p50()) / 1e6;
      c.p99 = static_cast<double>(ping.rtt().p99()) / 1e6;
      for (int j = 0; j < vcpus; ++j) {
        c.stalls += host.vm(0).vcpu(j).eli_stalls();
        c.hazards += host.vm(0).vcpu(j).eli_hazards();
      }
    });
  }
  ParallelRunner().run(std::move(tasks));

  Table t2({"Deployment", "ping p50", "ping p99", "stalled irqs", "hazards"});
  CsvWriter csv({"section", "variant", "metric", "value"});
  for (const auto& c : cases) {
    t2.add_row({c.label, fixed(c.p50, 3) + "ms", fixed(c.p99, 3) + "ms",
                std::to_string(c.stalls), std::to_string(c.hazards)});
    csv.add_row({"eli_vs_pi", c.label, "p99_ms", fixed(c.p99, 3)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf(
      "\nOn a dedicated core ELI matches PI (both exit-free) — the paper's\n"
      "observation that PI replaces it without the downsides. Multiplexed,\n"
      "ELI's deliveries stall in the physical APIC while other VMs hold\n"
      "the core (hazards > 0): the multiplexing/security argument of §II-C.\n");

  csv.add_row({"moderation", "stock", "irqs_per_sec", fixed(stock.irqs_per_sec, 0)});
  csv.add_row({"moderation", "coalesced", "irqs_per_sec", fixed(coalesced.irqs_per_sec, 0)});
  csv.add_row({"moderation", "coalesced", "p99_ms", fixed(coalesced.rtt_p99_ms, 3)});
  csv.add_row({"moderation", "poll_driver", "p99_ms", fixed(polled.rtt_p99_ms, 3)});
  write_csv(args, "related_work", csv);

  BenchReport report = make_report(args, "related_work");
  auto add_latency = [&report](const char* key, const LatencyLoad& r) {
    const std::string p = std::string("moderation.") + key + ".";
    report.add(p + "irqs_per_sec", r.irqs_per_sec);
    report.add(p + "rtt_p50_ms", r.rtt_p50_ms, 0.1);
    report.add(p + "rtt_p99_ms", r.rtt_p99_ms, 0.1);
  };
  add_latency("stock", stock);
  add_latency("coalesced", coalesced);
  add_latency("poll_driver", polled);
  const char* eli_keys[4] = {"pi_dedicated", "eli_dedicated", "pi_muxed",
                             "eli_muxed"};
  for (size_t i = 0; i < cases.size(); ++i) {
    const std::string p = std::string("eli_vs_pi.") + eli_keys[i] + ".";
    report.add(p + "rtt_p99_ms", cases[i].p99, 0.1);
    report.add(p + "stalled_irqs", static_cast<double>(cases[i].stalls));
    report.add(p + "hazards", static_cast<double>(cases[i].hazards));
  }
  write_bench_report(args, report);
  if (!export_standalone_hash_log(args)) return 1;
  if (!export_standalone_profile(args)) return 1;
  return 0;
}
