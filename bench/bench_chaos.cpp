// Chaos sweep — the event path under seeded faults.
//
// Not a paper figure: this bench certifies robustness claims. It runs the
// netperf stream workload across loss-rate x stack cells with the full
// fault plan scaled by the loss rate (wire loss with a bursty component,
// swallowed/delayed kicks, dropped MSIs, vhost worker stalls, spurious
// interrupts), the invariant auditor on, and every cell supervised by the
// no-progress watchdog. A healthy stack must keep nonzero goodput at 1%
// loss; the recovery columns show *how* (fast retransmits, RTO fires,
// guest TX-watchdog re-kicks, vhost RX re-polls).
//
// `--wedge` instead runs the deliberately unrecoverable scenario — 100%
// kick loss with the guest TX watchdog disabled — and exits non-zero
// after the scenario watchdog converts the hang into a structured
// "WATCHDOG ..." report. That path is what keeps a chaos sweep from ever
// hanging CI.
//
// The sweep is crash-safe: `--ckpt=DIR` checkpoints every finished cell
// (atomic per-cell JSON), `--resume=DIR` replays finished cells and
// re-runs only the missing/failed ones, reconstructing byte-identical CSV
// and report output from the checkpointed artifacts. `--retries=N` gives
// each cell bounded attempts before its WATCHDOG row stands.
//
// Usage: bench_chaos [--fast] [--seed=N] [--out=DIR] [--wedge]
//                    [--ckpt=DIR | --resume=DIR] [--retries=N]
//                    [--die-after=N]
#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "base/json.h"
#include "bench_common.h"
#include "harness/runner.h"
#include "metrics/metrics.h"

using namespace es2;
using namespace es2::bench;

namespace {

struct Stack {
  const char* label;
  Es2Config config;
};

FaultPlan plan_for(double loss) {
  FaultPlan f;
  if (loss <= 0) return f;  // all-off: no injector is ever constructed
  f.link_loss = loss;
  // A bursty component an order below the i.i.d. floor: rare excursions
  // into a bad state that drops half the packets it sees.
  f.link_burst.p_good_to_bad = loss / 10;
  f.link_burst.p_bad_to_good = 0.2;
  f.link_burst.loss_bad = 0.5;
  // Kept well below the loss rate: go-back-N has no SACK, so heavy
  // reordering manufactures duplicate ACKs for holes that do not exist.
  f.link_reorder = loss / 10;
  f.link_reorder_delay = usec(20);
  f.link_duplicate = loss / 10;
  f.kick_loss = loss / 5;
  f.kick_delay_prob = loss / 2;
  f.msi_loss = loss / 10;
  f.worker_stall_prob = loss;
  f.spurious_irq_period = msec(5);
  return f;
}

int run_wedge(const BenchArgs& args) {
  print_header("Chaos (wedge)", "unrecoverable kick loss caught by watchdog");
  ChaosStreamOptions o;
  o.stream.config = Es2Config::pi();
  o.stream.vm_sends = true;
  o.stream.seed = args.seed;
  o.stream.warmup = msec(200);
  o.stream.measure = msec(800);
  o.faults.kick_loss = 1.0;  // every eventfd kick swallowed
  o.tx_watchdog = false;     // ... and nobody re-kicks
  o.budget.max_sim_time = sec(5);
  const ChaosStreamResult r = run_chaos_stream(o, "wedge-kick-loss");

  std::printf("%s\n", r.report.to_line().c_str());
  std::printf("kicks dropped: %lld, packets delivered after that: %.0f\n",
              static_cast<long long>(r.faults.kicks_dropped),
              r.stream.packets_per_sec);
  if (r.report.ok()) {
    std::printf("ERROR: wedge was not detected\n");
    return 1;
  }
  // Detection IS the pass condition, but the process still exits non-zero:
  // a sweep containing a wedged scenario must fail CI.
  return r.report.status == ScenarioStatus::kNoProgress ? 2 : 3;
}

/// The checkpoint artifact: every derived value the CSV/table/report rows
/// need, so a resumed cell reconstructs them without re-running. Doubles
/// survive the round-trip exactly (json_number is shortest-round-trip).
std::string cell_artifact(const ChaosStreamResult& r) {
  Json a = Json::object();
  a.set("goodput_mbps", Json::number(r.stream.throughput_mbps));
  a.set("link_dropped", Json::number(static_cast<double>(r.stream.link_dropped)));
  a.set("sock_backlog_drops",
        Json::number(static_cast<double>(r.stream.drops.sock_backlog)));
  a.set("backpressure_drops",
        Json::number(static_cast<double>(r.stream.drops.backpressure)));
  a.set("kicks_dropped", Json::number(static_cast<double>(r.faults.kicks_dropped)));
  a.set("fast_retransmits", Json::number(static_cast<double>(r.fast_retransmits)));
  a.set("rto_retransmits", Json::number(static_cast<double>(r.rto_retransmits)));
  a.set("tx_watchdog_kicks", Json::number(static_cast<double>(r.tx_watchdog_kicks)));
  a.set("rx_watchdog_polls", Json::number(static_cast<double>(r.rx_watchdog_polls)));
  a.set("rx_repolls", Json::number(static_cast<double>(r.rx_repolls)));
  a.set("audit_violations", Json::number(static_cast<double>(r.audit_violations)));
  return a.dump();
}

bool restore_cell(const ScenarioReport& rep, ChaosStreamResult* r) {
  Json a;
  std::string error;
  if (!Json::parse(rep.artifact, &a, &error) || !a.is_object()) return false;
  r->report = rep;
  r->stream.throughput_mbps = a.number_or("goodput_mbps", 0);
  r->stream.link_dropped =
      static_cast<std::int64_t>(a.number_or("link_dropped", 0));
  r->stream.drops.wire = r->stream.link_dropped;
  r->stream.drops.sock_backlog =
      static_cast<std::int64_t>(a.number_or("sock_backlog_drops", 0));
  r->stream.drops.backpressure =
      static_cast<std::int64_t>(a.number_or("backpressure_drops", 0));
  r->faults.kicks_dropped =
      static_cast<std::int64_t>(a.number_or("kicks_dropped", 0));
  r->fast_retransmits =
      static_cast<std::int64_t>(a.number_or("fast_retransmits", 0));
  r->rto_retransmits =
      static_cast<std::int64_t>(a.number_or("rto_retransmits", 0));
  r->tx_watchdog_kicks =
      static_cast<std::int64_t>(a.number_or("tx_watchdog_kicks", 0));
  r->rx_watchdog_polls =
      static_cast<std::int64_t>(a.number_or("rx_watchdog_polls", 0));
  r->rx_repolls = static_cast<std::int64_t>(a.number_or("rx_repolls", 0));
  r->audit_violations =
      static_cast<std::int64_t>(a.number_or("audit_violations", 0));
  return true;
}

/// Stack label -> metric-key fragment ("PI+H+R" -> "pi_h_r").
std::string stack_key(const char* label) {
  std::string key;
  for (const char* p = label; *p != '\0'; ++p) {
    if (*p == '+') {
      key += '_';
    } else {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
  }
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wedge") == 0) return run_wedge(args);
  }

  print_header("Chaos", "goodput and recovery under seeded faults");

  const std::vector<Stack> stacks = {
      {"Baseline", Es2Config::baseline()},
      {"PI", Es2Config::pi()},
      {"PI+H", Es2Config::pi_h()},
      {"PI+H+R", Es2Config::pi_h_r()},
  };
  const std::vector<double> losses = args.fast
                                         ? std::vector<double>{0, 0.01}
                                         : std::vector<double>{0, 0.001, 0.01,
                                                               0.05};

  std::vector<ChaosStreamResult> results(losses.size() * stacks.size());
  MetricsRegistry sweep_registry;
  RunnerOptions ro = runner_options(args);
  ro.registry = &sweep_registry;
  ExperimentRunner runner(ro);
  for (size_t l = 0; l < losses.size(); ++l) {
    for (size_t s = 0; s < stacks.size(); ++s) {
      const size_t idx = l * stacks.size() + s;
      runner.add(format("%s/loss=%.3f%%", stacks[s].label, losses[l] * 100),
                 [&, l, s, idx](const std::string& name) {
                   ChaosStreamOptions o;
                   o.stream.config = stacks[s].config;
                   // Peer->VM TCP: exercises the peer's retransmit
                   // machinery, the vhost RX path and the guest IRQ path
                   // all at once.
                   o.stream.vm_sends = false;
                   o.stream.seed = args.seed;
                   o.stream.warmup = args.fast ? msec(150) : msec(300);
                   o.stream.measure = args.fast ? msec(500) : msec(1500);
                   o.faults = plan_for(losses[l]);
                   // A capped-backoff RTO can go silent for up to
                   // rto << max_rto_backoff = 320 ms; tolerate a few in
                   // a row before calling the cell wedged.
                   o.budget.progress_window = msec(100);
                   o.budget.stall_windows = 12;
                   // --hash-epochs: hash the healthiest cell (first stack,
                   // zero loss) — the chaos determinism oracle.
                   if (idx == 0) o.stream.snapshot = hash_request(args);
                   results[idx] = run_chaos_stream(o, name);
                   ScenarioReport rep = results[idx].report;
                   rep.artifact = cell_artifact(results[idx]);
                   return rep;
                 });
    }
  }
  runner.run_all();

  // Cells replayed from checkpoints never ran: rebuild their rows from
  // the checkpointed artifacts so the CSV/report output is byte-identical
  // to an uninterrupted sweep.
  for (size_t i = 0; i < runner.reports().size(); ++i) {
    const ScenarioReport& rep = runner.reports()[i];
    if (rep.resumed && !restore_cell(rep, &results[i])) {
      std::printf("[WARNING: unusable checkpoint artifact for %s]\n",
                  rep.name.c_str());
    }
  }
  if (runner.resumed_cells() > 0 || runner.retries() > 0) {
    std::printf("[runner: %lld cells resumed from checkpoint, %lld retries]\n",
                static_cast<long long>(runner.resumed_cells()),
                static_cast<long long>(runner.retries()));
  }

  CsvWriter csv({"stack", "loss_pct", "status", "goodput_mbps",
                 "link_dropped", "sock_backlog_drops", "backpressure_drops",
                 "kicks_dropped", "fast_retransmits", "rto_retransmits",
                 "tx_watchdog_kicks", "rx_watchdog_polls", "rx_repolls",
                 "audit_violations"});
  Table t({"stack", "loss %", "status", "goodput Mb/s", "wire drops",
           "sock drops", "bp drops", "kick drops", "fast rtx", "rto rtx",
           "wd kicks", "wd polls", "re-polls", "audit"});
  for (size_t l = 0; l < losses.size(); ++l) {
    for (size_t s = 0; s < stacks.size(); ++s) {
      const ChaosStreamResult& r = results[l * stacks.size() + s];
      const std::string loss_pct = format("%.2f", losses[l] * 100);
      csv.add_row({stacks[s].label, loss_pct, to_string(r.report.status),
                   format("%.2f", r.stream.throughput_mbps),
                   std::to_string(r.stream.link_dropped),
                   std::to_string(r.stream.drops.sock_backlog),
                   std::to_string(r.stream.drops.backpressure),
                   std::to_string(r.faults.kicks_dropped),
                   std::to_string(r.fast_retransmits),
                   std::to_string(r.rto_retransmits),
                   std::to_string(r.tx_watchdog_kicks),
                   std::to_string(r.rx_watchdog_polls),
                   std::to_string(r.rx_repolls),
                   std::to_string(r.audit_violations)});
      t.add_row({stacks[s].label, loss_pct, to_string(r.report.status),
                 format("%.2f", r.stream.throughput_mbps),
                 with_commas(r.stream.link_dropped),
                 with_commas(r.stream.drops.sock_backlog),
                 with_commas(r.stream.drops.backpressure),
                 with_commas(r.faults.kicks_dropped),
                 with_commas(r.fast_retransmits),
                 with_commas(r.rto_retransmits),
                 with_commas(r.tx_watchdog_kicks),
                 with_commas(r.rx_watchdog_polls),
                 with_commas(r.rx_repolls),
                 with_commas(r.audit_violations)});
    }
  }
  std::printf("%s", t.render().c_str());
  write_csv(args, "chaos", csv);

  BenchReport report = make_report(args, "chaos");
  for (size_t l = 0; l < losses.size(); ++l) {
    for (size_t s = 0; s < stacks.size(); ++s) {
      const ChaosStreamResult& r = results[l * stacks.size() + s];
      const std::string cell =
          stack_key(stacks[s].label) + ".loss" + format("%g", losses[l] * 100) +
          "pct.";
      // Status is a hard gate: a cell that wedges where the baseline run
      // survived (or vice versa) must fail the diff regardless of goodput.
      report.add(cell + "ok", r.report.ok() ? 1.0 : 0.0, 0.0);
      report.add(cell + "goodput_mbps", r.stream.throughput_mbps);
      report.add(cell + "fast_retransmits",
                 static_cast<double>(r.fast_retransmits), 0.1);
      report.add(cell + "rto_retransmits",
                 static_cast<double>(r.rto_retransmits), 0.1);
      report.add(cell + "rx_repolls", static_cast<double>(r.rx_repolls), 0.1);
      report.add(cell + "audit_violations",
                 static_cast<double>(r.audit_violations), 0.0);
    }
  }
  write_bench_report(args, report);

  if (!export_hash_log(args, results[0].stream.hashes.get())) return 1;

  runner.print_failures(stdout);
  return runner.exit_code();
}
