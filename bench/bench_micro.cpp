// Engine microbenchmarks (google-benchmark): the substrate's hot paths —
// event queue, virtqueue operations, CFS scheduling, PI descriptor posts,
// redirection target selection, and whole-simulation throughput.
//
// The custom main collects each benchmark's per-iteration real time and
// writes BENCH_micro.json in the shared es2-bench-v1 schema. All micro
// numbers are wall-clock and therefore informational (never gated).
//
// Usage: bench_micro [--fast] [--seed=N] [--out=DIR] [--benchmark_* flags]
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apic/vapic.h"
#include "bench_common.h"
#include "cpu/cfs.h"
#include "es2/redirect.h"
#include "harness/experiments.h"
#include "sim/simulator.h"
#include "virtio/virtqueue.h"

namespace es2 {
namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  Simulator sim;
  SimTime t = 0;
  for (auto _ : state) {
    sim.at(t + 10, [] {});
    sim.run_until(t + 10);
    t += 10;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void BM_EventQueueCancel(benchmark::State& state) {
  Simulator sim;
  SimTime t = 0;
  for (auto _ : state) {
    EventHandle h = sim.at(t + 1000000, [] {});
    h.cancel();
    ++t;
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_EventQueueDeepHeap(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    for (int i = 0; i < depth; ++i) sim.at(i, [] {});
    state.ResumeTiming();
    sim.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(1024)->Arg(16384);

void BM_VirtqueueAddPopUsed(benchmark::State& state) {
  Virtqueue vq("bench", 256);
  Packet proto_packet;
  proto_packet.wire_size = 1500;
  const PacketPtr pkt = make_packet(std::move(proto_packet));
  for (auto _ : state) {
    vq.add_avail(Virtqueue::Entry{pkt, 1500});
    benchmark::DoNotOptimize(vq.kick_needed());
    auto e = vq.pop_avail();
    vq.push_used(std::move(*e));
    benchmark::DoNotOptimize(vq.interrupt_needed());
    vq.pop_used();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VirtqueueAddPopUsed);

void BM_PiDescriptorPostSync(benchmark::State& state) {
  VApicPage vapic;
  for (auto _ : state) {
    vapic.pi().post(0x41);
    vapic.sync_pir();
    vapic.deliver();
    vapic.eoi();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PiDescriptorPostSync);

void BM_CfsScheduling(benchmark::State& state) {
  const int nthreads = static_cast<int>(state.range(0));
  Simulator sim;
  CfsScheduler sched(sim, 1);
  std::vector<std::unique_ptr<SimThread>> threads;
  for (int i = 0; i < nthreads; ++i) {
    auto t = std::make_unique<SimThread>(sim, "t");
    SimThread* tp = t.get();
    t->set_main([tp] { tp->exec(usec(50), [] {}); });
    sched.add(*t, 0);
    t->wake();
    threads.push_back(std::move(t));
  }
  SimTime t = 0;
  for (auto _ : state) {
    t += msec(10);
    sim.run_until(t);
  }
  state.counters["ctx_switches/s"] = benchmark::Counter(
      static_cast<double>(sched.context_switches()) / to_seconds(t));
}
BENCHMARK(BM_CfsScheduling)->Arg(2)->Arg(8)->Arg(32);

void BM_RedirectSelectTarget(benchmark::State& state) {
  Simulator sim(1);
  KvmHost host(sim, 8);
  InterruptRedirector redirector(host, RedirectPolicy::kPaper);
  Vm& vm = host.create_vm("vm", {0, 1, 2, 3},
                          InterruptVirtMode::kPostedInterrupt);
  redirector.track(vm);
  const MsiMessage msi{0x40, 0, DeliveryMode::kLowestPriority};
  for (auto _ : state) {
    benchmark::DoNotOptimize(redirector.select_target(vm, msi));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RedirectSelectTarget);

/// Whole-stack simulation throughput: simulated-time per wall-time for the
/// micro TCP-send scenario.
void BM_FullStackSimulation(benchmark::State& state) {
  for (auto _ : state) {
    StreamOptions o;
    o.config = Es2Config::pi_h(4);
    o.proto = Proto::kTcp;
    o.msg_size = 1024;
    o.warmup = msec(20);
    o.measure = msec(80);
    benchmark::DoNotOptimize(run_stream(o));
  }
  state.counters["sim_ms/iter"] = 100;
}
BENCHMARK(BM_FullStackSimulation)->Unit(benchmark::kMillisecond);

/// Console reporter that additionally collects (name, ns/iteration) pairs
/// for the BENCH_micro.json report.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred &&
          run.iterations > 0) {
        collected.emplace_back(run.benchmark_name(),
                               run.real_accumulated_time /
                                   static_cast<double>(run.iterations) * 1e9);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<std::pair<std::string, double>> collected;
};

}  // namespace
}  // namespace es2

int main(int argc, char** argv) {
  const es2::bench::BenchArgs args = es2::bench::parse_args(argc, argv);
  // Benchmark's flag parser must not see our flags; hand it a filtered
  // argv (plus a short min-time under --fast).
  std::vector<std::string> fwd_storage = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      fwd_storage.push_back(argv[i]);
    }
  }
  if (args.fast) fwd_storage.push_back("--benchmark_min_time=0.05");
  std::vector<char*> fwd;
  for (std::string& s : fwd_storage) fwd.push_back(s.data());
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());

  es2::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  es2::BenchReport report = es2::bench::make_report(args, "micro");
  for (const auto& [name, ns] : reporter.collected) {
    std::string key = name;
    for (char& ch : key) {
      if (ch == '/') ch = '_';
    }
    report.add_info(key + ".ns_per_iter", ns);
  }
  es2::bench::write_bench_report(args, report);
  if (!es2::bench::export_standalone_hash_log(args)) return 1;
  if (!es2::bench::export_standalone_profile(args)) return 1;
  return 0;
}
