// Dataplane bench: vhost service discipline x ring layout x offered load.
//
// Not a paper figure: this bench characterizes the packed-ring/multi-queue/
// busy-poll dataplane. It sweeps the vhost worker's three service
// disciplines (hybrid kick-driven notify, exit-less always-poll, adaptive
// poll-budget) against both ring layouts (split, packed) at three TCP
// message sizes, all on the full ES2 stack (PI+H+R), and reports:
//
//  * gated: packets/s and guest kicks/s per cell (deterministic given
//    --seed, so regressions in the steering/suppression/poll path show up
//    as gate failures);
//  * gated invariants: split and packed must produce bit-identical stream
//    scalars per (mode, load) cell, always-poll must run exit-less
//    (kicks/s == 0), and adaptive must kick strictly less than notify;
//  * informational: the always-poll:hybrid kick-savings ratio per load —
//    the crossover EXPERIMENTS.md discusses.
//
// Usage: bench_dataplane [--fast] [--seed=N] [--out=DIR]
#include <string>
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

namespace {

struct ModeCase {
  const char* name;  // metric-key segment
  PollMode mode;
};

struct LoadCase {
  const char* name;
  Bytes msg_size;
};

/// True iff the observable stream scalars match exactly — the same
/// layout-invariance contract ring_conformance_test enforces.
bool scalars_identical(const StreamResult& a, const StreamResult& b) {
  return a.throughput_mbps == b.throughput_mbps &&
         a.packets_per_sec == b.packets_per_sec &&
         a.kicks_per_sec == b.kicks_per_sec &&
         a.guest_irqs_per_sec == b.guest_irqs_per_sec &&
         a.rx_dropped == b.rx_dropped && a.link_dropped == b.link_dropped &&
         a.exits.total == b.exits.total;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Dataplane", "poll mode x ring layout x load sweep");

  const ModeCase modes[] = {
      {"hybrid", PollMode::kNotify},
      {"always_poll", PollMode::kAlwaysPoll},
      {"adaptive", PollMode::kAdaptive},
  };
  const LoadCase loads[] = {
      {"s256", 256},
      {"s1024", 1024},
      {"s4096", 4096},
  };
  const RingLayout layouts[] = {RingLayout::kSplit, RingLayout::kPacked};
  const char* layout_names[] = {"split", "packed"};

  constexpr int kModes = 3, kLoads = 3, kLayouts = 2;
  constexpr int kCells = kModes * kLoads * kLayouts;
  std::vector<StreamResult> results(kCells);
  parallel_for(kCells, [&](int i) {
    const int m = i / (kLoads * kLayouts);
    const int l = (i / kLayouts) % kLoads;
    const int y = i % kLayouts;
    StreamOptions o;
    o.config = Es2Config::pi_h_r();
    o.msg_size = loads[l].msg_size;
    o.num_queue_pairs = 2;
    o.ring_layout = layouts[y];
    o.poll_mode = modes[m].mode;
    o.seed = args.seed;
    o.warmup = args.fast ? msec(50) : msec(200);
    o.measure = args.fast ? msec(200) : msec(600);
    results[i] = run_stream(o);
  });

  const auto cell = [&](int m, int l, int y) -> const StreamResult& {
    return results[m * kLoads * kLayouts + l * kLayouts + y];
  };

  BenchReport report = make_report(args, "dataplane");
  Table t({"mode", "load", "layout", "packets/s", "kicks/s", "irqs/s",
           "Mbit/s"});
  CsvWriter csv({"mode", "load", "layout", "metric", "value"});
  bool invariant_ok = true;
  bool exitless_ok = true;
  bool adaptive_ok = true;
  for (int m = 0; m < kModes; ++m) {
    for (int l = 0; l < kLoads; ++l) {
      for (int y = 0; y < kLayouts; ++y) {
        const StreamResult& r = cell(m, l, y);
        const std::string key = std::string(loads[l].name) + "." +
                                layout_names[y] + "." + modes[m].name;
        report.add(key + ".packets_per_sec", r.packets_per_sec);
        report.add(key + ".kicks_per_sec", r.kicks_per_sec);
        t.add_row({modes[m].name, loads[l].name, layout_names[y],
                   count_str(r.packets_per_sec), count_str(r.kicks_per_sec),
                   count_str(r.guest_irqs_per_sec),
                   fixed(r.throughput_mbps, 1)});
        csv.add_row({modes[m].name, loads[l].name, layout_names[y],
                     "packets_per_sec", fixed(r.packets_per_sec, 0)});
        csv.add_row({modes[m].name, loads[l].name, layout_names[y],
                     "kicks_per_sec", fixed(r.kicks_per_sec, 0)});
        if (modes[m].mode == PollMode::kAlwaysPoll && r.kicks_per_sec != 0.0) {
          exitless_ok = false;
        }
      }
      if (!scalars_identical(cell(m, l, 0), cell(m, l, 1))) {
        invariant_ok = false;
        std::printf("[layout divergence: mode=%s load=%s]\n", modes[m].name,
                    loads[l].name);
      }
    }
  }
  std::printf("%s", t.render().c_str());

  // Adaptive must sit between always-poll (0) and notify on kick rate, per
  // layout and load — strictly below wherever notify mode kicks at all. (At
  // the largest message size the ES2 hybrid stack's in-guest polling already
  // absorbs every kick, so both modes legitimately read zero there.)
  for (int l = 0; l < kLoads; ++l) {
    for (int y = 0; y < kLayouts; ++y) {
      const double notify_kicks = cell(0, l, y).kicks_per_sec;
      const double adaptive_kicks = cell(2, l, y).kicks_per_sec;
      if (notify_kicks > 0.0 ? !(adaptive_kicks < notify_kicks)
                             : adaptive_kicks != 0.0) {
        adaptive_ok = false;
      }
    }
  }
  report.add("invariant.layout_identical", invariant_ok ? 1.0 : 0.0, 0.0);
  report.add("invariant.always_poll_exitless", exitless_ok ? 1.0 : 0.0, 0.0);
  report.add("invariant.adaptive_kicks_below_notify", adaptive_ok ? 1.0 : 0.0,
             0.0);
  std::printf(
      "invariants: layout_identical=%d always_poll_exitless=%d "
      "adaptive_kicks_below_notify=%d\n",
      invariant_ok, exitless_ok, adaptive_ok);

  // The crossover story (informational): what does always-poll buy over the
  // kick-driven hybrid path as the load rises?
  for (int l = 0; l < kLoads; ++l) {
    const double hybrid_pps = cell(0, l, 0).packets_per_sec;
    const double poll_pps = cell(1, l, 0).packets_per_sec;
    const double ratio = hybrid_pps > 0 ? poll_pps / hybrid_pps : 0.0;
    report.add_info(std::string("crossover.") + loads[l].name +
                        ".always_poll_vs_hybrid_pps_ratio",
                    ratio);
    std::printf("crossover %s: always-poll/hybrid packets/s = %.3f\n",
                loads[l].name, ratio);
  }
  for (int m = 0; m < kModes; ++m) {
    std::vector<double> curve;
    for (int l = 0; l < kLoads; ++l) curve.push_back(cell(m, l, 0).packets_per_sec);
    report.add_series(std::string(modes[m].name) + ".packets_per_sec",
                      std::move(curve));
  }

  write_csv(args, "dataplane", csv);
  write_bench_report(args, report);
  if (!export_standalone_hash_log(args)) return 1;
  if (!export_standalone_profile(args)) return 1;
  return (invariant_ok && exitless_ok && adaptive_ok) ? 0 : 1;
}
