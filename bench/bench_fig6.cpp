// Fig. 6 — Netperf TCP throughput vs message size, sending and receiving,
// under the four stacks, in the oversubscribed macro testbed (4 VMs x 4
// vCPUs time-sharing 4 cores).
//
// Paper shape: send — PI +13-19%, PI+H up to +40% more, PI+H+R another
// +15% (~2x total). recv — PI ~+17%; redirection up to +50% over PI+H.
// Known model deviation: in our simulator the macro baseline already
// suppresses most kicks (event-idx under concurrent senders), so the
// send-side PI/PI+H spread is compressed; see EXPERIMENTS.md.
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 6", "Macro netperf TCP throughput vs message size");

  const std::vector<Bytes> sizes =
      args.fast ? std::vector<Bytes>{1024}
                : std::vector<Bytes>{64, 256, 1024, 4096, 16384};

  CsvWriter csv({"direction", "msg_size", "config", "throughput_mbps",
                 "packets_per_sec", "io_exits_per_sec", "tig_percent"});

  BenchReport report = make_report(args, "fig6");
  const char* config_keys[] = {"baseline", "pi", "pi_h", "pi_h_r"};

  for (const bool vm_sends : {true, false}) {
    std::vector<StreamResult> results(sizes.size() * 4);
    std::vector<std::function<void()>> tasks;
    for (size_t s = 0; s < sizes.size(); ++s) {
      for (int c = 0; c < 4; ++c) {
        tasks.push_back([&, s, c] {
          StreamOptions o;
          o.config = Es2Config::all4()[c];
          o.proto = Proto::kTcp;
          o.msg_size = sizes[s];
          o.vm_sends = vm_sends;
          o.macro = true;
          o.threads = 4;
          o.seed = args.seed;
          o.warmup = args.fast ? msec(200) : msec(400);
          o.measure = args.fast ? msec(400) : sec(1);
          // --trace: capture the receiving PI+H+R cell at the largest
          // size — the full redirected event path under oversubscription.
          if (!vm_sends && c == 3 && s == sizes.size() - 1) {
            o.trace = trace_request(args);
            o.profile = profile_request(args);
            o.snapshot = hash_request(args);
          }
          results[s * 4 + c] = run_stream(o);
        });
      }
    }
    ParallelRunner().run(std::move(tasks));

    std::printf("\n-- %s TCP stream (Mb/s)\n", vm_sends ? "sending" : "receiving");
    Table t({"msg size", "Baseline", "PI", "PI+H", "PI+H+R"});
    for (size_t s = 0; s < sizes.size(); ++s) {
      std::vector<std::string> row = {std::to_string(sizes[s]) + "B"};
      for (int c = 0; c < 4; ++c) {
        const StreamResult& r = results[s * 4 + c];
        row.push_back(fixed(r.throughput_mbps, 0));
        csv.add_row({vm_sends ? "send" : "recv", std::to_string(sizes[s]),
                     Es2Config::all4()[c].name(),
                     fixed(r.throughput_mbps, 1),
                     fixed(r.packets_per_sec, 0),
                     fixed(r.exits.io_instruction, 0),
                     fixed(r.exits.tig_percent, 2)});
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    const std::string dir = vm_sends ? "send" : "recv";
    for (int c = 0; c < 4; ++c) {
      std::vector<double> curve;
      for (size_t s = 0; s < sizes.size(); ++s) {
        const StreamResult& r = results[s * 4 + c];
        report.add(dir + "." + config_keys[c] + "." +
                       std::to_string(sizes[s]) + "b.throughput_mbps",
                   r.throughput_mbps);
        curve.push_back(r.throughput_mbps);
      }
      report.add_series(dir + "." + config_keys[c] + ".throughput_mbps",
                        std::move(curve));
    }
    if (!vm_sends) {
      const StreamResult& traced = results[(sizes.size() - 1) * 4 + 3];
      if (!export_trace(args, traced.trace.get(), traced.stages,
                        traced.profile.get())) {
        return 1;
      }
      if (!export_profile(args, traced.profile.get(), traced.trace.get())) {
        return 1;
      }
      if (!export_hash_log(args, traced.hashes.get())) return 1;
    }
  }
  std::printf(
      "\nPaper shape: send PI+13-19%%, +H -> +40%%, +R -> +15%% (~2x);\n"
      "recv: +R up to +50%% over PI+H.\n");
  write_csv(args, "fig6", csv);
  write_bench_report(args, report);
  return 0;
}
