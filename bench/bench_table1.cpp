// Table I — breakdown of VM exit causes, TCP sending (Baseline vs PI).
//
// Paper reference (exits/s): Baseline: delivery 20,258 / completion 38,388
// / I/O request 70,082 / others 2,112 (total 130,840, 44.8% + 53.6%).
// PI: 0 / 0 / 85,018 / 964.
#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Table I", "VM exit causes, netperf TCP send, 1-vCPU VM");

  StreamOptions base_opts;
  base_opts.proto = Proto::kTcp;
  base_opts.msg_size = 1024;
  base_opts.vm_sends = true;
  base_opts.seed = args.seed;
  if (args.fast) {
    base_opts.warmup = msec(100);
    base_opts.measure = msec(300);
  } else {
    base_opts.warmup = msec(300);
    base_opts.measure = sec(1);
  }

  StreamResult results[2];
  parallel_for(2, [&](int i) {
    StreamOptions o = base_opts;
    o.config = i == 0 ? Es2Config::baseline() : Es2Config::pi();
    // --trace: capture the Baseline cell — the exit-heavy path the table
    // dissects.
    if (i == 0) {
      o.trace = trace_request(args);
      o.profile = profile_request(args);
      o.snapshot = hash_request(args);
    }
    results[i] = run_stream(o);
  });

  const StreamResult& base = results[0];
  const StreamResult& pi = results[1];
  const double btotal = base.exits.total;

  Table t({"VM Exit Causes", "Interrupt Delivery", "Interrupt Completion",
           "Guest's I/O Request", "Others"});
  t.add_row({"Paper Baseline (%)", "15.5%", "29.3%", "53.6%", "1.6%"});
  t.add_row({"Ours  Baseline (%)",
             fixed(100 * base.exits.interrupt_delivery / btotal, 1) + "%",
             fixed(100 * base.exits.interrupt_completion / btotal, 1) + "%",
             fixed(100 * base.exits.io_instruction / btotal, 1) + "%",
             fixed(100 * base.exits.others / btotal, 1) + "%"});
  t.add_rule();
  t.add_row({"Paper Baseline (Exits/s)", "20,258", "38,388", "70,082", "2,112"});
  t.add_row({"Ours  Baseline (Exits/s)", count_str(base.exits.interrupt_delivery),
             count_str(base.exits.interrupt_completion),
             count_str(base.exits.io_instruction), count_str(base.exits.others)});
  t.add_rule();
  t.add_row({"Paper PI (Exits/s)", "0", "0", "85,018", "964"});
  t.add_row({"Ours  PI (Exits/s)", count_str(pi.exits.interrupt_delivery),
             count_str(pi.exits.interrupt_completion),
             count_str(pi.exits.io_instruction), count_str(pi.exits.others)});
  std::printf("%s", t.render().c_str());
  std::printf("Total baseline exits/s: paper 130,840, ours %s (TIG %.1f%%)\n",
              count_str(btotal).c_str(), base.exits.tig_percent);
  std::printf("PI raises guest I/O request exits (paper +21%%, ours %+.0f%%)\n",
              100.0 * (pi.exits.io_instruction / base.exits.io_instruction - 1));

  CsvWriter csv({"config", "delivery", "completion", "io_request", "others",
                 "total", "tig_percent"});
  auto row = [&](const char* name, const StreamResult& r) {
    csv.add_row({name, fixed(r.exits.interrupt_delivery, 0),
                 fixed(r.exits.interrupt_completion, 0),
                 fixed(r.exits.io_instruction, 0), fixed(r.exits.others, 0),
                 fixed(r.exits.total, 0), fixed(r.exits.tig_percent, 2)});
  };
  row("baseline", base);
  row("pi", pi);
  write_csv(args, "table1", csv);

  BenchReport report = make_report(args, "table1");
  auto add_config = [&report](const char* name, const StreamResult& r) {
    const std::string p = std::string(name) + ".";
    report.add(p + "exits.delivery", r.exits.interrupt_delivery);
    report.add(p + "exits.completion", r.exits.interrupt_completion);
    report.add(p + "exits.io_request", r.exits.io_instruction);
    report.add(p + "exits.total", r.exits.total);
    report.add(p + "tig_percent", r.exits.tig_percent, 0.1);
    report.add(p + "throughput_mbps", r.throughput_mbps);
  };
  add_config("baseline", base);
  add_config("pi", pi);
  write_bench_report(args, report);

  if (!export_trace(args, base.trace.get(), base.stages,
                    base.profile.get())) {
    return 1;
  }
  if (!export_profile(args, base.profile.get(), base.trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, base.hashes.get())) return 1;
  return 0;
}
