// Event-core microbenchmark: the pooled calendar queue against the seed's
// heap-of-std::function queue (kept verbatim below as `legacy::EventQueue`),
// on the workload shapes the simulator actually produces:
//
//   * schedule+fire churn with a rolling occupancy and realistic delay mix
//     (mostly sub-4µs completions, some sub-ms, a tail of long timers);
//   * the preempted-CPU-segment pattern: schedule a completion, cancel it
//     before it fires, reschedule (the queue's dominant cancel load);
//   * the end-to-end Fig. 4 quota sweep wall time.
//
// Emits BENCH_eventcore.json in the shared es2-bench-v1 schema
// (events/sec, ns/event, allocations/event, speedup vs legacy, fig4 wall
// seconds, queue layer counters) so the perf trajectory is tracked from
// this PR onward. Wall-clock rates are informational (never gated);
// allocation counts and queue-layer counters are deterministic and gated.
// This binary links es2_alloc_hook, so allocations/event is measured, not
// estimated.
//
// Usage: bench_eventcore [--fast] [--seed=N] [--out=DIR]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/alloc_hook.h"
#include "base/assert.h"
#include "base/rng.h"
#include "base/table.h"
#include "base/units.h"
#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "sim/event_queue.h"
#include "base/strings.h"

namespace es2::legacy {

// The seed event queue, verbatim: binary heap of (time, seq) entries, one
// std::function + one shared_ptr<bool> control block per event, lazy
// cancellation skimmed at the heap top. Kept here as the benchmark
// baseline so the speedup claim stays reproducible.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (alive_ && *alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventHandle schedule(SimTime when, std::function<void()> fn) {
    ES2_CHECK_MSG(when >= 0, "cannot schedule before time 0");
    auto alive = std::make_shared<bool>(true);
    heap_.push_back(Entry{when, next_seq_++, std::move(fn), alive});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return EventHandle(std::move(alive));
  }
  bool has_next() {
    skim();
    return !heap_.empty();
  }
  SimTime next_time() {
    skim();
    return heap_.front().when;
  }
  SimTime pop_and_run() {
    skim();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    *entry.alive = false;
    entry.fn();
    return entry.when;
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  void skim() {
    while (!heap_.empty() && !*heap_.front().alive) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace es2::legacy

namespace es2 {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The simulator's delay mix: mostly short completions (near/wheel),
/// a tail of long timers (overflow heap).
SimDuration next_delay(Rng& rng) {
  const std::uint64_t r = rng.next_u64();
  const std::uint64_t c = r % 100;
  const std::uint64_t v = r >> 8;
  if (c < 70) return 1 + static_cast<SimDuration>(v % usec(4));
  if (c < 95) return 1 + static_cast<SimDuration>(v % msec(1));
  return 1 + static_cast<SimDuration>(v % msec(100));
}

struct ChurnResult {
  double events_per_sec = 0;
  double ns_per_event = 0;
  double allocs_per_event = 0;
};

/// Rolling schedule+fire churn: pop the earliest event, schedule one
/// replacement, keeping a steady occupancy like a running simulation.
template <typename Queue>
ChurnResult run_fire_churn(std::int64_t target_fires, std::uint64_t seed) {
  Queue q;
  Rng rng = Rng::stream(seed, "eventcore-fire");
  SimTime now = 0;
  std::int64_t side_effect = 0;
  const int depth = 1024;
  for (int i = 0; i < depth; ++i) {
    q.schedule(now + next_delay(rng), [&side_effect] { ++side_effect; });
  }
  const std::int64_t alloc0 = test::allocation_count();
  const auto start = Clock::now();
  for (std::int64_t fired = 0; fired < target_fires; ++fired) {
    now = q.pop_and_run();
    q.schedule(now + next_delay(rng), [&side_effect] { ++side_effect; });
  }
  const double elapsed = seconds_since(start);
  const std::int64_t allocs = test::allocation_count() - alloc0;
  ES2_CHECK(side_effect >= target_fires);
  ChurnResult r;
  r.events_per_sec = static_cast<double>(target_fires) / elapsed;
  r.ns_per_event = elapsed * 1e9 / static_cast<double>(target_fires);
  r.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(target_fires);
  return r;
}

/// The preempted-segment pattern: schedule a completion, usually cancel
/// it before it fires and rearm. 4 of 5 completions are cancelled.
template <typename Queue>
ChurnResult run_cancel_churn(std::int64_t target_ops, std::uint64_t seed) {
  Queue q;
  Rng rng = Rng::stream(seed, "eventcore-cancel");
  SimTime now = 0;
  std::int64_t side_effect = 0;
  const std::int64_t alloc0 = test::allocation_count();
  const auto start = Clock::now();
  std::int64_t ops = 0;
  while (ops < target_ops) {
    auto h = q.schedule(now + next_delay(rng), [&side_effect] { ++side_effect; });
    ++ops;
    if (rng.next_u64() % 5 != 0) {
      h.cancel();
      ++ops;
    }
    // Drain a little so live events fire and time advances.
    if (ops % 8 == 0 && q.has_next()) {
      now = q.pop_and_run();
      ++ops;
    }
  }
  while (q.has_next()) q.pop_and_run();
  const double elapsed = seconds_since(start);
  const std::int64_t allocs = test::allocation_count() - alloc0;
  ChurnResult r;
  r.events_per_sec = static_cast<double>(target_ops) / elapsed;
  r.ns_per_event = elapsed * 1e9 / static_cast<double>(target_ops);
  r.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(target_ops);
  return r;
}

/// End-to-end check: wall time of the Fig. 4 quota sweep (the PR's
/// representative full-simulation workload) on the production queue.
double fig4_sweep_seconds(bool fast, std::uint64_t seed) {
  struct Case {
    Proto proto;
    Bytes msg;
  };
  const std::vector<Case> cases = fast
      ? std::vector<Case>{{Proto::kUdp, 1024}, {Proto::kTcp, 1024}}
      : std::vector<Case>{{Proto::kUdp, 256}, {Proto::kUdp, 1024},
                          {Proto::kTcp, 1024}};
  const std::vector<int> quotas =
      fast ? std::vector<int>{0, 8, 2} : std::vector<int>{0, 64, 32, 16, 8, 4, 2};
  std::vector<StreamResult> results(cases.size() * quotas.size());
  std::vector<std::function<void()>> tasks;
  for (size_t c = 0; c < cases.size(); ++c) {
    for (size_t q = 0; q < quotas.size(); ++q) {
      tasks.push_back([&, c, q] {
        StreamOptions o;
        o.config = quotas[q] == 0 ? Es2Config::pi() : Es2Config::pi_h(quotas[q]);
        o.proto = cases[c].proto;
        o.msg_size = cases[c].msg;
        o.vm_sends = true;
        o.seed = seed;
        o.warmup = fast ? msec(50) : msec(250);
        o.measure = fast ? msec(150) : msec(800);
        results[c * quotas.size() + q] = run_stream(o);
      });
    }
  }
  const auto start = Clock::now();
  ParallelRunner().run(std::move(tasks));
  return seconds_since(start);
}

/// Runs a long enough mixed workload on the production queue to report
/// the calendar-layer counters in the JSON.
EventQueueStats layer_stats(std::uint64_t seed) {
  EventQueue q;
  Rng rng = Rng::stream(seed, "eventcore-layers");
  SimTime now = 0;
  std::int64_t sink = 0;
  for (int i = 0; i < 512; ++i) {
    q.schedule(now + next_delay(rng), [&sink] { ++sink; });
  }
  for (int i = 0; i < 200000; ++i) {
    now = q.pop_and_run();
    auto h = q.schedule(now + next_delay(rng), [&sink] { ++sink; });
    if (rng.next_u64() % 3 == 0) {
      h.cancel();
      q.schedule(now + next_delay(rng), [&sink] { ++sink; });
    }
  }
  return q.stats();
}

int bench_main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const bool fast = args.fast;
  const std::uint64_t seed = args.seed;

  std::printf("================================================================\n");
  std::printf("eventcore — pooled calendar queue vs seed heap+std::function\n");
  std::printf("================================================================\n");

  const std::int64_t fires = fast ? 300000 : 3000000;
  const std::int64_t cancel_ops = fast ? 300000 : 3000000;

  const ChurnResult fire_new = run_fire_churn<EventQueue>(fires, seed);
  const ChurnResult fire_old = run_fire_churn<legacy::EventQueue>(fires, seed);
  const ChurnResult cancel_new = run_cancel_churn<EventQueue>(cancel_ops, seed);
  const ChurnResult cancel_old =
      run_cancel_churn<legacy::EventQueue>(cancel_ops, seed);

  Table t({"workload", "impl", "events/s", "ns/event", "allocs/event"});
  auto row = [&t](const char* wl, const char* impl, const ChurnResult& r) {
    t.add_row({wl, impl, with_commas(static_cast<std::int64_t>(r.events_per_sec)),
               fixed(r.ns_per_event, 1), fixed(r.allocs_per_event, 4)});
  };
  row("schedule+fire", "pooled", fire_new);
  row("schedule+fire", "legacy", fire_old);
  row("cancel churn", "pooled", cancel_new);
  row("cancel churn", "legacy", cancel_old);
  std::printf("%s", t.render().c_str());
  std::printf("speedup: schedule+fire %.2fx, cancel churn %.2fx\n",
              fire_new.events_per_sec / fire_old.events_per_sec,
              cancel_new.events_per_sec / cancel_old.events_per_sec);

  const EventQueueStats stats = layer_stats(seed);
  std::printf(
      "layers: near %llu, wheel %llu, far %llu (migrations %llu), boxed %llu\n",
      static_cast<unsigned long long>(stats.near_hits),
      static_cast<unsigned long long>(stats.wheel_hits),
      static_cast<unsigned long long>(stats.far_hits),
      static_cast<unsigned long long>(stats.far_migrations),
      static_cast<unsigned long long>(stats.boxed_callbacks));

  const double fig4_s = fig4_sweep_seconds(fast, seed);
  std::printf("fig4 sweep wall time: %.3fs%s\n", fig4_s,
              fast ? " (--fast)" : "");

  BenchReport report = bench::make_report(args, "eventcore");
  auto add_churn = [&report](const char* name, const ChurnResult& r) {
    const std::string p = std::string(name) + ".";
    // Wall-clock rates are machine-dependent: informational only. The
    // allocation count per event is deterministic and gated — it is the
    // zero-steady-state-allocation claim.
    report.add_info(p + "events_per_sec", r.events_per_sec);
    report.add_info(p + "ns_per_event", r.ns_per_event);
    report.add(p + "allocs_per_event", r.allocs_per_event, 0.1);
  };
  add_churn("schedule_fire_pooled", fire_new);
  add_churn("schedule_fire_legacy", fire_old);
  add_churn("cancel_churn_pooled", cancel_new);
  add_churn("cancel_churn_legacy", cancel_old);
  report.add_info("speedup_schedule_fire",
                  fire_new.events_per_sec / fire_old.events_per_sec);
  report.add_info("speedup_cancel_churn",
                  cancel_new.events_per_sec / cancel_old.events_per_sec);
  report.add_info("fig4_sweep_wall_seconds", fig4_s);
  report.add("layers.near_hits", static_cast<double>(stats.near_hits));
  report.add("layers.wheel_hits", static_cast<double>(stats.wheel_hits));
  report.add("layers.far_hits", static_cast<double>(stats.far_hits));
  report.add("layers.far_migrations",
             static_cast<double>(stats.far_migrations));
  report.add("layers.peak_live", static_cast<double>(stats.peak_live));
  report.add("layers.boxed_callbacks",
             static_cast<double>(stats.boxed_callbacks), 0.0);
  bench::write_bench_report(args, report);
  if (!bench::export_standalone_hash_log(args)) return 1;
  if (!bench::export_standalone_profile(args)) return 1;
  return 0;
}

}  // namespace
}  // namespace es2

int main(int argc, char** argv) { return es2::bench_main(argc, argv); }
