// bench_blame — gated critical-path latency budgets for the fig5 stacks.
//
// Runs the paper's canonical exit-less delivery path (recv TCP 1024B)
// under Baseline / PI / PI+H with event-path tracing armed, decomposes
// every kick→EOI journey into per-component blame, and reduces each
// config to a latency budget: the fraction of total journey time each
// component owns, plus end-to-end p50/p99. The fractions are the gated
// metrics — a regression that moves time *between* components (say, from
// backend service into suppression wait) trips this gate even when the
// end-to-end mean barely moves.
//
// The per-journey partition is exact by construction (cut differences
// over [origin, eoi]), and this bench re-asserts it: the summed
// component nanoseconds must equal the summed journey totals, exactly.
// A violation exits nonzero regardless of the report gate.
//
// Without -DES2_TRACE=ON the hooks compile away and no journeys exist;
// the bench then reports only informational zeros and exits 0 (the
// gated comparison, bench_blame_check, is registered only in trace
// builds against bench/baseline-trace/).
#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Blame", "Per-component latency budgets, recv TCP 1024B");

  struct Stack {
    const char* label;
    const char* key;
  };
  const Stack stacks[] = {
      {"Baseline", "baseline"}, {"PI", "pi"}, {"PI+H", "pi_h"}};

  std::vector<StreamResult> results(3);
  std::vector<std::function<void()>> tasks;
  for (int s = 0; s < 3; ++s) {
    tasks.push_back([&, s] {
      StreamOptions o;
      o.config = s == 0 ? Es2Config::baseline()
                        : (s == 1 ? Es2Config::pi()
                                  : Es2Config::pi_h(HybridIoHandling::kQuotaTcp));
      o.proto = Proto::kTcp;
      o.msg_size = 1024;
      o.vm_sends = false;
      o.seed = args.seed;
      o.warmup = args.fast ? msec(100) : msec(250);
      o.measure = args.fast ? msec(250) : msec(800);
      o.trace.enabled = true;
      o.trace.capacity = std::size_t{1} << 18;
      if (s == 2) {
        o.profile = profile_request(args);
        o.snapshot = hash_request(args);
      }
      results[static_cast<size_t>(s)] = run_stream(o);
    });
  }
  ParallelRunner().run(std::move(tasks));

  BenchReport report = make_report(args, "blame");
  CsvWriter csv({"config", "component", "kind", "ns", "fraction", "p50_ns",
                 "p99_ns"});
  bool sum_ok = true;
  bool any_journeys = false;

  for (int s = 0; s < 3; ++s) {
    const StreamResult& r = results[static_cast<size_t>(s)];
    const BlameBreakdown blame = blame_of(r.trace.get());
    const BlameSummary summary = blame_summary(blame);
    std::printf("\n-- %s\n%s", stacks[s].label,
                render_blame_markdown(summary).c_str());

    const std::string cell = stacks[s].key;
    report.add_info(cell + ".journeys", static_cast<double>(blame.journeys));
    report.add_info(cell + ".attributed", static_cast<double>(blame.complete));
    if (blame.complete == 0) continue;
    any_journeys = true;

    // PI+H is expected to land here with a near-zero attributed count:
    // quota-based hybrid handling suppresses virtually every completion
    // interrupt (the guest polls instead), so almost no kick→MSI→EOI
    // journeys exist to decompose. That *is* the result — the budget
    // table above shows the path PI+H removed — but fractions computed
    // from a handful of journeys would gate on noise, so small samples
    // report informationally only.
    [[maybe_unused]] const bool gate_fractions = blame.complete >= 16;

    // The exactness check behind the gate: blame is a partition of the
    // journey interval, so the component sum must equal the journey-total
    // sum to the nanosecond (fractions then sum to 1 within fp rounding).
    std::int64_t component_sum = 0;
    for (const BlameSummary::Component& c : summary.components) {
      component_sum += c.ns;
    }
    if (component_sum != blame.total_ns) {
      std::printf("BLAME SUM VIOLATION (%s): components %lld != total %lld\n",
                  stacks[s].label, static_cast<long long>(component_sum),
                  static_cast<long long>(blame.total_ns));
      sum_ok = false;
    }

    for (const BlameSummary::Component& c : summary.components) {
      csv.add_row({cell, c.name, c.wait ? "wait" : "service",
                   format("%lld", static_cast<long long>(c.ns)),
                   format("%.6f", c.fraction),
                   format("%lld", static_cast<long long>(c.p50)),
                   format("%lld", static_cast<long long>(c.p99))});
#if ES2_TRACE_ENABLED
      // Gate the budget itself. Fractions are ratios of two deterministic
      // sums, so same-seed runs reproduce them exactly; the tolerance only
      // buys room for intentional model drift between baseline refreshes.
      if (gate_fractions) {
        report.add(cell + ".frac." + c.name, c.fraction, 0.20);
      } else {
        report.add_info(cell + ".frac." + c.name, c.fraction);
      }
#endif
    }
#if ES2_TRACE_ENABLED
    if (gate_fractions) {
      report.add(cell + ".e2e_p99_ns",
                 static_cast<double>(summary.end_to_end_p99), 0.15);
      report.add(cell + ".journeys_attributed",
                 static_cast<double>(blame.complete), 0.25);
    } else {
      report.add_info(cell + ".e2e_p99_ns",
                      static_cast<double>(summary.end_to_end_p99));
      report.add_info(cell + ".journeys_attributed",
                      static_cast<double>(blame.complete));
    }
#endif
  }

  if (!any_journeys) {
    std::printf(
        "\n[no journeys captured — configure with -DES2_TRACE=ON to compile "
        "the event-path hooks; blame gates are trace-build-only]\n");
  }

  write_csv(args, "blame", csv);
  write_bench_report(args, report);

  const StreamResult& profiled = results[2];
  if (!export_trace(args, profiled.trace.get(), profiled.stages,
                    profiled.profile.get())) {
    return 1;
  }
  if (!export_profile(args, profiled.profile.get(), profiled.trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, profiled.hashes.get())) return 1;
  return sum_ok ? 0 : 1;
}
