// bench_report — the bench regression gate.
//
// Reads every `BENCH_<name>.json` under --baseline (committed reference
// runs, generated with `--fast --seed=1`) and --current (this build's
// bench output), diffs them metric by metric with the per-metric relative
// tolerances from the schema, and renders a markdown report with
// sparklines for the recorded series.
//
//   bench_report                       render the diff to stdout
//   bench_report --out=report.md      ... and write it to a file
//   bench_report --check              exit non-zero on any gated failure,
//                                     naming each failing metric
//   bench_report --self-test          inject a synthetic 10% regression
//                                     into a copied baseline and verify
//                                     the gate catches it (exit non-zero
//                                     if the gate stays silent)
//
// A current report missing for a committed baseline is a gate failure
// (a bench silently not running must not pass CI); an extra current
// report is informational.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "metrics/bench_schema.h"
#include "trace/export.h"

namespace es2 {
namespace {

struct ReportArgs {
  std::string baseline_dir = "bench/baseline";
  std::string current_dir = "bench/out";
  std::string out_path;
  bool check = false;
  bool self_test = false;
};

ReportArgs parse(int argc, char** argv) {
  ReportArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      args.baseline_dir = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--current=", 10) == 0) {
      args.current_dir = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      args.check = true;
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      args.self_test = true;
    } else {
      std::fprintf(stderr, "bench_report: unknown argument %s\n", argv[i]);
    }
  }
  return args;
}

/// Sorted BENCH_*.json paths in `dir` (empty when the dir is missing).
std::vector<std::string> list_reports(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Diffs every baseline report against its current counterpart. A missing
/// or unreadable current report becomes an incomparable (failing) diff.
struct GateResult {
  std::vector<BenchDiff> diffs;
  std::vector<BenchReport> baselines;
  std::vector<BenchReport> currents;  // parallel; default-constructed when missing
};

GateResult run_gate(const ReportArgs& args) {
  GateResult g;
  for (const std::string& path : list_reports(args.baseline_dir)) {
    BenchReport baseline;
    std::string error;
    if (!BenchReport::read_file(path, &baseline, &error)) {
      BenchDiff d;
      d.bench = std::filesystem::path(path).filename().string();
      d.comparable = false;
      d.incomparable_why = "unreadable baseline: " + error;
      g.diffs.push_back(std::move(d));
      g.baselines.emplace_back();
      g.currents.emplace_back();
      continue;
    }
    const std::string current_path =
        args.current_dir + "/BENCH_" + baseline.bench() + ".json";
    BenchReport current;
    if (!BenchReport::read_file(current_path, &current, &error)) {
      BenchDiff d;
      d.bench = baseline.bench();
      d.comparable = false;
      d.incomparable_why = "no current report (" + error + ")";
      g.diffs.push_back(std::move(d));
      g.baselines.push_back(std::move(baseline));
      g.currents.emplace_back();
      continue;
    }
    g.diffs.push_back(diff_bench(baseline, current));
    g.baselines.push_back(std::move(baseline));
    g.currents.push_back(std::move(current));
  }
  return g;
}

/// The failing report's most-moved metrics (gated or not), largest
/// |relative delta| first — the same "what was moving" pointer the
/// invariant auditor prints, so a REGRESSION line comes with context
/// instead of a lone metric name.
std::string top_deltas_line(const BenchDiff& d, std::size_t n) {
  std::vector<const MetricDelta*> moved;
  for (const MetricDelta& m : d.deltas) {
    if (m.rel != 0.0) moved.push_back(&m);
  }
  std::sort(moved.begin(), moved.end(),
            [](const MetricDelta* a, const MetricDelta* b) {
              if (std::abs(a->rel) != std::abs(b->rel)) {
                return std::abs(a->rel) > std::abs(b->rel);
              }
              return a->metric < b->metric;
            });
  if (moved.size() > n) moved.resize(n);
  std::string line;
  for (const MetricDelta* m : moved) {
    if (!line.empty()) line += ", ";
    line += m->metric;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %+.1f%%", m->rel * 100.0);
    line += buf;
  }
  return line;
}

int report_failures(const std::vector<BenchDiff>& diffs) {
  int failures = 0;
  for (const BenchDiff& d : diffs) {
    if (d.ok()) continue;
    // failures() entries are already "<bench>/<metric>: <delta vs tol>".
    for (const std::string& failure : d.failures()) {
      std::printf("REGRESSION %s\n", failure.c_str());
      ++failures;
    }
    const std::string moved = top_deltas_line(d, 5);
    if (!moved.empty()) {
      std::printf("  %s top deltas: %s\n", d.bench.c_str(), moved.c_str());
    }
  }
  return failures;
}

int run_check(const ReportArgs& args) {
  const GateResult g = run_gate(args);
  if (g.diffs.empty()) {
    std::printf("REGRESSION gate: no baselines found under %s\n",
                args.baseline_dir.c_str());
    return 1;
  }
  std::vector<const BenchReport*> bp, cp;
  for (const BenchReport& b : g.baselines) bp.push_back(&b);
  for (const BenchReport& c : g.currents) cp.push_back(&c);
  const std::string markdown = render_markdown(g.diffs, bp, cp);
  if (!args.out_path.empty()) {
    if (write_file(args.out_path, markdown)) {
      std::printf("[markdown report written to %s]\n", args.out_path.c_str());
    } else {
      std::printf("[could not write %s]\n", args.out_path.c_str());
    }
  } else {
    std::printf("%s", markdown.c_str());
  }
  const int failures = report_failures(g.diffs);
  if (args.check) {
    if (failures > 0) {
      std::printf("bench gate: %d failing metric(s)\n", failures);
      return 1;
    }
    std::printf("bench gate: all %zu benches within tolerance\n",
                g.diffs.size());
  }
  return args.check && failures > 0 ? 1 : 0;
}

/// Proves the gate trips: copies the first baseline with a suitable gated
/// metric, inflates that metric by 10% (past its tolerance), and checks
/// the diff fails *and names the metric*. The clean copy must still pass.
int run_self_test(const ReportArgs& args) {
  for (const std::string& path : list_reports(args.baseline_dir)) {
    BenchReport baseline;
    std::string error;
    if (!BenchReport::read_file(path, &baseline, &error)) {
      std::printf("self-test: skipping unreadable %s (%s)\n", path.c_str(),
                  error.c_str());
      continue;
    }
    // A 10% regression must exceed the metric's tolerance to trip.
    const std::string* victim = nullptr;
    double victim_value = 0, victim_tol = 0;
    for (const auto& [name, m] : baseline.metrics()) {
      if (m.gate && m.value != 0 && m.tol < 0.10) {
        victim = &name;
        victim_value = m.value;
        victim_tol = m.tol;
        break;
      }
    }
    if (victim == nullptr) continue;

    // The untouched copy must pass...
    BenchReport copy = baseline;
    const BenchDiff clean = diff_bench(baseline, copy);
    if (!clean.ok()) {
      std::printf("self-test FAILED: identical copy of %s does not pass\n",
                  baseline.bench().c_str());
      return 1;
    }
    // ... and the 10%-regressed copy must fail, naming the metric.
    copy.add(*victim, victim_value * 1.10, victim_tol);
    const BenchDiff regressed = diff_bench(baseline, copy);
    bool named = false;
    for (const std::string& failure : regressed.failures()) {
      if (failure.find(*victim) != std::string::npos) named = true;
    }
    if (regressed.ok() || !named) {
      std::printf(
          "self-test FAILED: +10%% on %s.%s (tol %.0f%%) not caught\n",
          baseline.bench().c_str(), victim->c_str(), victim_tol * 100);
      return 1;
    }
    std::printf("REGRESSION %s.%s (injected)\n", baseline.bench().c_str(),
                victim->c_str());
    std::printf("self-test ok: +10%% on %s.%s tripped the gate\n",
                baseline.bench().c_str(), victim->c_str());
    return 0;
  }
  std::printf("self-test FAILED: no baseline with a gated metric under %s\n",
              args.baseline_dir.c_str());
  return 1;
}

}  // namespace
}  // namespace es2

int main(int argc, char** argv) {
  const es2::ReportArgs args = es2::parse(argc, argv);
  if (args.self_test) return es2::run_self_test(args);
  return es2::run_check(args);
}
