// Snapshot microbench — what does the robustness layer cost and carry?
//
// Not a paper figure: this bench characterizes the es2-snap-v1 layer. It
// builds the canonical micro testbed (PI+H+R, one netperf TCP stream),
// runs it warm with epoch hashing on, and reports:
//
//  * deterministic, gated: the serialized world image size, the section
//    count, per-component section bytes (a new field in any component's
//    snapshot_state shows up here as a deliberate baseline update), the
//    epoch count recorded by the hash log, hash stability (two digests of
//    an idle world must agree) and the serialize->load round trip;
//  * wall-clock, informational: ns per world hash and ns per serialize —
//    the price of one epoch tick and of one checkpoint.
//
// Usage: bench_snapshot [--fast] [--seed=N] [--out=DIR]
//                       [--hash-epochs=PATH]
#include <chrono>
#include <string>

#include "apps/netperf.h"
#include "bench_common.h"
#include "snapshot/snapshot.h"
#include "snapshot/state_hash.h"

using namespace es2;
using namespace es2::bench;

namespace {

/// Metric-key-safe component name ("vhost/vm0" -> "vhost.vm0").
std::string key_of(const std::string& component) {
  std::string key = component;
  for (char& c : key) {
    if (c == '/') c = '.';
  }
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Snapshot", "es2-snap-v1 image size and hashing cost");

  TestbedOptions to;
  to.config = Es2Config::pi_h_r();
  to.seed = args.seed;
  to.snapshot.hash_epochs = true;
  to.snapshot.epoch = msec(5);
  Testbed tb(to);
  const std::uint64_t flow = 100;
  NetperfSender sender(tb.guest(), tb.frontend(), flow, Proto::kTcp, 1024, 0);
  tb.guest().add_task(sender);
  PeerStreamReceiver receiver(tb.peer(), flow, Proto::kTcp);
  tb.snapshotter().add("app/netperf-tx0", sender);
  tb.snapshotter().add("app/peer-rx0", receiver);

  tb.start();
  tb.sim().run_for(args.fast ? msec(100) : msec(400));

  BenchReport report = make_report(args, "snapshot");

  // --- deterministic image shape (gated; tol 0: bytes are bytes) ----------
  SnapshotWriter w;
  tb.snapshotter().write(w);
  report.add("world.sections", static_cast<double>(w.sections().size()), 0.0);
  report.add("world.total_bytes", static_cast<double>(w.byte_size()), 0.0);

  CsvWriter csv({"component", "bytes", "hash"});
  Table t({"component", "bytes", "hash"});
  for (std::size_t i = 0; i < w.sections().size(); ++i) {
    const SnapshotWriter::Section& s = w.sections()[i];
    // The trailing section stays open until the next begin_section, so its
    // recorded size is 0 — its payload runs to the end of the buffer.
    const std::size_t end =
        (i + 1 == w.sections().size()) ? w.byte_size() : s.offset + s.size;
    const std::size_t size = end - s.offset;
    report.add("bytes." + key_of(s.name), static_cast<double>(size), 0.0);
    const std::string hex = format("%016llx", static_cast<unsigned long long>(
                                                  w.section_hash(i)));
    csv.add_row({s.name, std::to_string(size), hex});
    t.add_row({s.name, std::to_string(size), hex});
  }
  std::printf("%s", t.render().c_str());
  write_csv(args, "snapshot", csv);

  // --- invariants (gated) --------------------------------------------------
  const std::uint64_t h1 = tb.snapshotter().world_hash();
  const std::uint64_t h2 = tb.snapshotter().world_hash();
  report.add("world.hash_stable", h1 == h2 ? 1.0 : 0.0, 0.0);

  const std::string image = tb.snapshotter().serialize();
  SnapshotReader reader;
  std::string error;
  bool roundtrip = reader.load(image, &error);
  roundtrip = roundtrip && reader.section_count() == w.sections().size() &&
              reader.world_hash() == h1;
  if (!roundtrip) {
    std::printf("[roundtrip FAILED: %s]\n",
                error.empty() ? "hash/section mismatch" : error.c_str());
  }
  report.add("roundtrip.ok", roundtrip ? 1.0 : 0.0, 0.0);
  report.add("epochs.recorded", static_cast<double>(tb.hash_log()->epochs()),
             0.0);

  // --- wall-clock costs (informational, never gated) ----------------------
  using Clock = std::chrono::steady_clock;
  const int iters = args.fast ? 64 : 256;
  std::uint64_t sink = 0;
  const auto hash_start = Clock::now();
  for (int i = 0; i < iters; ++i) sink ^= tb.snapshotter().world_hash();
  const double hash_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - hash_start)
                              .count()) /
      iters;
  const auto ser_start = Clock::now();
  std::size_t ser_bytes = 0;
  for (int i = 0; i < iters; ++i) ser_bytes += tb.snapshotter().serialize().size();
  const double ser_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - ser_start)
                              .count()) /
      iters;
  report.add_info("hash.ns_per_world_hash", hash_ns);
  report.add_info("serialize.ns_per_image", ser_ns);
  std::printf(
      "world: %zu sections, %zu bytes; hash %.0f ns, serialize %.0f ns "
      "(x%d, sink=%llx, %zu bytes total)\n",
      w.sections().size(), w.byte_size(), hash_ns, ser_ns, iters,
      static_cast<unsigned long long>(sink & 0xF), ser_bytes);

  write_bench_report(args, report);
  if (!export_hash_log(args, &tb.hash_log()->series())) {
    if (!args.hash_path.empty()) return 1;
  }
  return 0;
}
