// Ablation bench for ES2's design choices (DESIGN.md §4):
//
//   1. redirection target policy: paper (sticky + lightest + offline-head)
//      vs no-sticky vs round-robin vs random-offline prediction;
//   2. the offline prediction's value, visible in ping tail latency;
//   3. quota sensitivity around the paper's chosen values (throughput cost
//      of smaller quotas).
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Ablation", "ES2 design-choice ablations");

  // --- 1+2: redirection policies on ping latency -------------------------
  struct PolicyCase {
    const char* name;
    RedirectPolicy policy;
  };
  const PolicyCase policies[] = {
      {"paper (sticky+lightest+offline-head)", RedirectPolicy::kPaper},
      {"no-sticky", RedirectPolicy::kNoSticky},
      {"round-robin online", RedirectPolicy::kRoundRobin},
      {"random offline prediction", RedirectPolicy::kRandomOffline},
  };
  PingResult ping_results[4];
  parallel_for(4, [&](int i) {
    PingOptions o;
    o.config = Es2Config::pi_h_r();
    o.config.policy = policies[i].policy;
    o.samples = args.fast ? 40 : 120;
    o.interval = msec(80);
    o.seed = args.seed;
    ping_results[i] = run_ping(o);
  });

  std::printf("\n-- Redirection policy vs ping RTT (macro testbed)\n");
  Table tp({"Policy", "p50", "p90", "p99", "mean"});
  CsvWriter csv({"ablation", "variant", "metric", "value"});
  for (int i = 0; i < 4; ++i) {
    const Histogram& h = ping_results[i].rtt;
    tp.add_row({policies[i].name, fixed(h.p50() / 1e6, 2) + "ms",
                fixed(h.p90() / 1e6, 2) + "ms", fixed(h.p99() / 1e6, 2) + "ms",
                fixed(h.mean() / 1e6, 2) + "ms"});
    csv.add_row({"redirect_policy", policies[i].name, "p99_ms",
                 fixed(h.p99() / 1e6, 3)});
    csv.add_row({"redirect_policy", policies[i].name, "mean_ms",
                 fixed(h.mean() / 1e6, 3)});
  }
  std::printf("%s", tp.render().c_str());

  // --- 3: quota sensitivity around the chosen values ---------------------
  std::printf("\n-- Quota sensitivity, UDP 256B micro (paper picks 8)\n");
  const std::vector<int> quotas = {2, 4, 8, 16};
  std::vector<StreamResult> quota_results(quotas.size());
  std::vector<std::function<void()>> tasks;
  for (size_t q = 0; q < quotas.size(); ++q) {
    tasks.push_back([&, q] {
      StreamOptions o;
      o.config = Es2Config::pi_h(quotas[q]);
      o.proto = Proto::kUdp;
      o.msg_size = 256;
      o.seed = args.seed;
      o.warmup = args.fast ? msec(100) : msec(250);
      o.measure = args.fast ? msec(250) : msec(800);
      // --trace: capture the paper's chosen quota (8).
      if (quotas[q] == 8) {
        o.trace = trace_request(args);
        o.profile = profile_request(args);
        o.snapshot = hash_request(args);
      }
      quota_results[q] = run_stream(o);
    });
  }
  ParallelRunner().run(std::move(tasks));

  Table tq({"quota", "I/O exits/s", "packets/s", "note"});
  for (size_t q = 0; q < quotas.size(); ++q) {
    const StreamResult& r = quota_results[q];
    const char* note = quotas[q] == 8 ? "<- paper's choice"
                       : quotas[q] < 8 ? "smaller: switching overhead"
                                       : "larger: polling not sticky";
    tq.add_row({std::to_string(quotas[q]), count_str(r.exits.io_instruction),
                count_str(r.packets_per_sec), note});
    csv.add_row({"quota_udp", std::to_string(quotas[q]), "packets_per_sec",
                 fixed(r.packets_per_sec, 0)});
    csv.add_row({"quota_udp", std::to_string(quotas[q]), "io_exits_per_sec",
                 fixed(r.exits.io_instruction, 0)});
  }
  std::printf("%s", tq.render().c_str());

  write_csv(args, "ablation", csv);

  BenchReport report = make_report(args, "ablation");
  const char* policy_keys[4] = {"paper", "no_sticky", "round_robin",
                                "random_offline"};
  for (int i = 0; i < 4; ++i) {
    const Histogram& h = ping_results[i].rtt;
    report.add(std::string("redirect.") + policy_keys[i] + ".rtt_p99_ms",
               h.p99() / 1e6, 0.1);
    report.add(std::string("redirect.") + policy_keys[i] + ".rtt_mean_ms",
               h.mean() / 1e6, 0.1);
  }
  std::vector<double> quota_curve;
  for (size_t q = 0; q < quotas.size(); ++q) {
    const StreamResult& r = quota_results[q];
    const std::string cell = "quota_udp.q" + std::to_string(quotas[q]);
    report.add(cell + ".packets_per_sec", r.packets_per_sec);
    report.add(cell + ".io_exits_per_sec", r.exits.io_instruction);
    quota_curve.push_back(r.packets_per_sec);
  }
  report.add_series("quota_udp.packets_per_sec", std::move(quota_curve));
  write_bench_report(args, report);

  const StreamResult& traced = quota_results[2];  // quota 8
  if (!export_trace(args, traced.trace.get(), traced.stages,
                    traced.profile.get())) {
    return 1;
  }
  if (!export_profile(args, traced.profile.get(), traced.trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, traced.hashes.get())) return 1;
  return 0;
}
