// Fig. 7 — Ping RTT to the tested VM in the oversubscribed macro testbed.
//
// Paper shape: Baseline RTT varies widely with peaks up to 18ms; PI
// slightly lower; full ES2 (redirection) keeps RTT under 0.5ms. PI+H is
// not shown in the paper (polling has no effect on low-rate ping).
#include <vector>

#include "bench_common.h"

using namespace es2;
using namespace es2::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  print_header("Fig. 7", "Ping RTT under core oversubscription");

  // Paper uses 1s intervals over ~30 samples; we tighten the interval to
  // keep wall time low — RTT is unaffected as it is far below either
  // interval.
  const int samples = args.fast ? 40 : 120;
  const SimDuration interval = args.fast ? msec(80) : msec(250);

  const Es2Config configs[3] = {Es2Config::baseline(), Es2Config::pi(),
                                Es2Config::pi_h_r()};
  const char* names[3] = {"Baseline", "PI", "PI+H+R (ES2)"};
  PingResult results[3];
  parallel_for(3, [&](int i) {
    PingOptions o;
    o.config = configs[i];
    o.samples = samples;
    o.interval = interval;
    o.seed = args.seed;
    // --trace: capture the full-ES2 config, the one the paper plots flat.
    if (i == 2) {
      o.trace = trace_request(args);
      o.profile = profile_request(args);
      o.snapshot = hash_request(args);
    }
    results[i] = run_ping(o);
  });

  Table t({"Config", "p50", "p90", "p99", "max", "mean"});
  CsvWriter csv({"config", "sample_index", "rtt_ms"});
  for (int i = 0; i < 3; ++i) {
    const Histogram& h = results[i].rtt;
    t.add_row({names[i], fixed(h.p50() / 1e6, 2) + "ms",
               fixed(h.p90() / 1e6, 2) + "ms", fixed(h.p99() / 1e6, 2) + "ms",
               fixed(h.max() / 1e6, 2) + "ms", fixed(h.mean() / 1e6, 2) + "ms"});
    int idx = 0;
    for (const SimDuration rtt : results[i].samples) {
      csv.add_row({names[i], std::to_string(idx++), fixed(rtt / 1e6, 3)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Paper: baseline varies up to 18ms peaks; ES2 keeps RTT < 0.5ms.\n"
      "Ours: baseline rides the vCPU scheduling delay (ms-scale), ES2's\n"
      "median is wire-level; residual tail = offline-prediction waits.\n");
  write_csv(args, "fig7", csv);

  BenchReport report = make_report(args, "fig7");
  const char* keys[3] = {"baseline", "pi", "pi_h_r"};
  for (int i = 0; i < 3; ++i) {
    const Histogram& h = results[i].rtt;
    report.add(std::string(keys[i]) + ".rtt_p50_ms", h.p50() / 1e6);
    report.add(std::string(keys[i]) + ".rtt_p99_ms", h.p99() / 1e6, 0.1);
    report.add(std::string(keys[i]) + ".lost",
               static_cast<double>(results[i].lost));
    std::vector<double> series;
    for (const SimDuration rtt : results[i].samples) {
      series.push_back(static_cast<double>(rtt) / 1e6);
    }
    report.add_series(std::string(keys[i]) + ".rtt_ms", std::move(series));
  }
  write_bench_report(args, report);

  if (!export_trace(args, results[2].trace.get(), results[2].stages,
                    results[2].profile.get())) {
    return 1;
  }
  if (!export_profile(args, results[2].profile.get(), results[2].trace.get())) {
    return 1;
  }
  if (!export_hash_log(args, results[2].hashes.get())) return 1;
  return 0;
}
