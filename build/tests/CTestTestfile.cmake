# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/apic_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/es2_test[1]_include.cmake")
include("/root/repo/build/tests/sriov_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
