file(REMOVE_RECURSE
  "CMakeFiles/es2_test.dir/es2_test.cpp.o"
  "CMakeFiles/es2_test.dir/es2_test.cpp.o.d"
  "es2_test"
  "es2_test.pdb"
  "es2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
