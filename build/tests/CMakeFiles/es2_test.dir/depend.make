# Empty dependencies file for es2_test.
# This may be replaced when dependencies are built.
