file(REMOVE_RECURSE
  "CMakeFiles/sriov_test.dir/sriov_test.cpp.o"
  "CMakeFiles/sriov_test.dir/sriov_test.cpp.o.d"
  "sriov_test"
  "sriov_test.pdb"
  "sriov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
