file(REMOVE_RECURSE
  "CMakeFiles/apic_test.dir/apic_test.cpp.o"
  "CMakeFiles/apic_test.dir/apic_test.cpp.o.d"
  "apic_test"
  "apic_test.pdb"
  "apic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
