# Empty dependencies file for es2_apps.
# This may be replaced when dependencies are built.
