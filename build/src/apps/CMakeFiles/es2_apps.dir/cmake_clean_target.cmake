file(REMOVE_RECURSE
  "libes2_apps.a"
)
