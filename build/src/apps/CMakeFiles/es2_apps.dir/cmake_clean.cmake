file(REMOVE_RECURSE
  "CMakeFiles/es2_apps.dir/httpd.cpp.o"
  "CMakeFiles/es2_apps.dir/httpd.cpp.o.d"
  "CMakeFiles/es2_apps.dir/memcached.cpp.o"
  "CMakeFiles/es2_apps.dir/memcached.cpp.o.d"
  "CMakeFiles/es2_apps.dir/netperf.cpp.o"
  "CMakeFiles/es2_apps.dir/netperf.cpp.o.d"
  "CMakeFiles/es2_apps.dir/ping.cpp.o"
  "CMakeFiles/es2_apps.dir/ping.cpp.o.d"
  "libes2_apps.a"
  "libes2_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
