# Empty dependencies file for es2_net.
# This may be replaced when dependencies are built.
