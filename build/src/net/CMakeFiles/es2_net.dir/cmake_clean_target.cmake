file(REMOVE_RECURSE
  "libes2_net.a"
)
