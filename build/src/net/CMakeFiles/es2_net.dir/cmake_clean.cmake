file(REMOVE_RECURSE
  "CMakeFiles/es2_net.dir/link.cpp.o"
  "CMakeFiles/es2_net.dir/link.cpp.o.d"
  "CMakeFiles/es2_net.dir/peer.cpp.o"
  "CMakeFiles/es2_net.dir/peer.cpp.o.d"
  "libes2_net.a"
  "libes2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
