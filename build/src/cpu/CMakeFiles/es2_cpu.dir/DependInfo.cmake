
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cfs.cpp" "src/cpu/CMakeFiles/es2_cpu.dir/cfs.cpp.o" "gcc" "src/cpu/CMakeFiles/es2_cpu.dir/cfs.cpp.o.d"
  "/root/repo/src/cpu/thread.cpp" "src/cpu/CMakeFiles/es2_cpu.dir/thread.cpp.o" "gcc" "src/cpu/CMakeFiles/es2_cpu.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/es2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/es2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/es2_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
