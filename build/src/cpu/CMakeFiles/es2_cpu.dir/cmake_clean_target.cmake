file(REMOVE_RECURSE
  "libes2_cpu.a"
)
