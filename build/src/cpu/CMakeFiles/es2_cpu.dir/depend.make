# Empty dependencies file for es2_cpu.
# This may be replaced when dependencies are built.
