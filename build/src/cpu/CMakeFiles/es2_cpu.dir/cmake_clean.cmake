file(REMOVE_RECURSE
  "CMakeFiles/es2_cpu.dir/cfs.cpp.o"
  "CMakeFiles/es2_cpu.dir/cfs.cpp.o.d"
  "CMakeFiles/es2_cpu.dir/thread.cpp.o"
  "CMakeFiles/es2_cpu.dir/thread.cpp.o.d"
  "libes2_cpu.a"
  "libes2_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
