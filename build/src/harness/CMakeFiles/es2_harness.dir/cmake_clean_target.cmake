file(REMOVE_RECURSE
  "libes2_harness.a"
)
