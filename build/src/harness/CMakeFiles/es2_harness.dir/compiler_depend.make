# Empty compiler generated dependencies file for es2_harness.
# This may be replaced when dependencies are built.
