file(REMOVE_RECURSE
  "CMakeFiles/es2_harness.dir/experiments.cpp.o"
  "CMakeFiles/es2_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/es2_harness.dir/parallel.cpp.o"
  "CMakeFiles/es2_harness.dir/parallel.cpp.o.d"
  "CMakeFiles/es2_harness.dir/testbed.cpp.o"
  "CMakeFiles/es2_harness.dir/testbed.cpp.o.d"
  "libes2_harness.a"
  "libes2_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
