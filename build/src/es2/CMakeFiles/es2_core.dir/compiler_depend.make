# Empty compiler generated dependencies file for es2_core.
# This may be replaced when dependencies are built.
