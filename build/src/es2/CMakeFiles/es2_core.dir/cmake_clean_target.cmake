file(REMOVE_RECURSE
  "libes2_core.a"
)
