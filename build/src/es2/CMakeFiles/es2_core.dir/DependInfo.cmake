
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/es2/config.cpp" "src/es2/CMakeFiles/es2_core.dir/config.cpp.o" "gcc" "src/es2/CMakeFiles/es2_core.dir/config.cpp.o.d"
  "/root/repo/src/es2/es2.cpp" "src/es2/CMakeFiles/es2_core.dir/es2.cpp.o" "gcc" "src/es2/CMakeFiles/es2_core.dir/es2.cpp.o.d"
  "/root/repo/src/es2/redirect.cpp" "src/es2/CMakeFiles/es2_core.dir/redirect.cpp.o" "gcc" "src/es2/CMakeFiles/es2_core.dir/redirect.cpp.o.d"
  "/root/repo/src/es2/sriov.cpp" "src/es2/CMakeFiles/es2_core.dir/sriov.cpp.o" "gcc" "src/es2/CMakeFiles/es2_core.dir/sriov.cpp.o.d"
  "/root/repo/src/es2/tracker.cpp" "src/es2/CMakeFiles/es2_core.dir/tracker.cpp.o" "gcc" "src/es2/CMakeFiles/es2_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/es2_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/es2_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/es2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/es2_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/apic/CMakeFiles/es2_apic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/es2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/es2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/es2_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
