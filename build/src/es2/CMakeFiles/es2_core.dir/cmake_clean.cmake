file(REMOVE_RECURSE
  "CMakeFiles/es2_core.dir/config.cpp.o"
  "CMakeFiles/es2_core.dir/config.cpp.o.d"
  "CMakeFiles/es2_core.dir/es2.cpp.o"
  "CMakeFiles/es2_core.dir/es2.cpp.o.d"
  "CMakeFiles/es2_core.dir/redirect.cpp.o"
  "CMakeFiles/es2_core.dir/redirect.cpp.o.d"
  "CMakeFiles/es2_core.dir/sriov.cpp.o"
  "CMakeFiles/es2_core.dir/sriov.cpp.o.d"
  "CMakeFiles/es2_core.dir/tracker.cpp.o"
  "CMakeFiles/es2_core.dir/tracker.cpp.o.d"
  "libes2_core.a"
  "libes2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
