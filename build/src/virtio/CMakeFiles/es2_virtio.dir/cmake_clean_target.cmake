file(REMOVE_RECURSE
  "libes2_virtio.a"
)
