# Empty dependencies file for es2_virtio.
# This may be replaced when dependencies are built.
