file(REMOVE_RECURSE
  "CMakeFiles/es2_virtio.dir/vhost.cpp.o"
  "CMakeFiles/es2_virtio.dir/vhost.cpp.o.d"
  "CMakeFiles/es2_virtio.dir/virtqueue.cpp.o"
  "CMakeFiles/es2_virtio.dir/virtqueue.cpp.o.d"
  "libes2_virtio.a"
  "libes2_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
