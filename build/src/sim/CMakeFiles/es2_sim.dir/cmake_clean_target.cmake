file(REMOVE_RECURSE
  "libes2_sim.a"
)
