# Empty dependencies file for es2_sim.
# This may be replaced when dependencies are built.
