file(REMOVE_RECURSE
  "CMakeFiles/es2_sim.dir/event_queue.cpp.o"
  "CMakeFiles/es2_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/es2_sim.dir/simulator.cpp.o"
  "CMakeFiles/es2_sim.dir/simulator.cpp.o.d"
  "libes2_sim.a"
  "libes2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
