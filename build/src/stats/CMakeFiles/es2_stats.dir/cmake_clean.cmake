file(REMOVE_RECURSE
  "CMakeFiles/es2_stats.dir/histogram.cpp.o"
  "CMakeFiles/es2_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/es2_stats.dir/meters.cpp.o"
  "CMakeFiles/es2_stats.dir/meters.cpp.o.d"
  "libes2_stats.a"
  "libes2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
