file(REMOVE_RECURSE
  "libes2_stats.a"
)
