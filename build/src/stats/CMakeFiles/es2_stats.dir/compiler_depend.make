# Empty compiler generated dependencies file for es2_stats.
# This may be replaced when dependencies are built.
