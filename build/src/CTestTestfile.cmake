# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("stats")
subdirs("cpu")
subdirs("apic")
subdirs("vm")
subdirs("virtio")
subdirs("net")
subdirs("guest")
subdirs("apps")
subdirs("es2")
subdirs("baselines")
subdirs("harness")
